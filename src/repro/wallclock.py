"""The one sanctioned wall-clock in the codebase.

Everything that *behaves* — the pipeline, the fault injector, the
telemetry algebra — runs on :class:`repro.android.clock.SimulatedClock`
so runs are a pure function of seeds.  But two needs are genuinely
wall-clock shaped and must never touch the sim clock:

- user-facing progress lines (``repro train``'s elapsed-seconds);
- real-hardware micro-timing (a detector reporting how long its own
  numpy forward actually took).

Those call sites route through this module, and ONLY this module is
allowlisted for darpalint's DL001 wall-clock rule (see
``[tool.darpalint.allow]`` in ``pyproject.toml``).  Keeping the escape
hatch to a single leaf file is what keeps the rule meaningful: a new
``time.time()`` anywhere else is a lint failure, not a judgement call.

The clock is monotonic (``perf_counter``), so progress arithmetic can
never go backwards under NTP steps the way ``time.time()`` deltas can.
"""

from __future__ import annotations

import time


def monotonic_ms() -> float:
    """Milliseconds on a monotonic wall clock (arbitrary epoch)."""
    return time.perf_counter() * 1000.0


class Stopwatch:
    """Elapsed real time since construction (or the last ``restart``)."""

    __slots__ = ("_start_ms",)

    def __init__(self) -> None:
        self._start_ms = monotonic_ms()

    def restart(self) -> None:
        self._start_ms = monotonic_ms()

    def elapsed_ms(self) -> float:
        return monotonic_ms() - self._start_ms

    def elapsed_s(self) -> float:
        return self.elapsed_ms() / 1000.0


__all__ = ["Stopwatch", "monotonic_ms"]
