"""Pure route handlers: :class:`RunModel` -> canonical JSON bytes.

Every endpoint is a pure function of the loaded model, and every
response is serialized with :func:`canonical_bytes` (sorted keys,
compact separators, one trailing newline, ``allow_nan=False``), so a
response is byte-identical across runs, platforms and shard-part input
orders — which is what lets the golden harness in ``tests/ops`` pin the
whole dashboard.

Endpoints:

- ``/api/routes``              — index of every concrete route
- ``/api/overview``            — KPI cards (reaction p95/p99 vs budget)
- ``/api/slo``                 — SLO compliance + burn-rate alert timeline
- ``/api/traces/{session}``    — span waterfall for one session
- ``/api/quantiles/{metric}``  — sketch buckets with exemplar links
- ``/api/daemon``              — lane occupancy / shed / rejection records
- ``/api/flame``               — stack profile as a nested icicle tree
- ``/api/flame/diff``          — ranked attribution vs the baseline profile
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.telemetry import (
    DEBOUNCE_SKETCH,
    INFERENCE_SKETCH,
    REACTION_SKETCH,
    SCREENSHOT_SKETCH,
)
from repro.ops.artifacts import OPS_VERSION, RunModel
from repro.profiling import diff_profiles, split_key

#: Short metric names of the quantile drill-down routes.
METRIC_SKETCHES: Mapping[str, str] = {
    "reaction": REACTION_SKETCH,
    "debounce": DEBOUNCE_SKETCH,
    "screenshot": SCREENSHOT_SKETCH,
    "inference": INFERENCE_SKETCH,
}

#: Frame name -> quantile-route metric, for the exemplar links the
#: flame diff attaches to its ranked frames (``analyze`` subtree CPU is
#: what the reaction sketch measures).
FRAME_METRICS: Mapping[str, str] = {
    "analyze": "reaction",
    "debounce": "debounce",
    "screenshot": "screenshot",
    "inference": "inference",
}


class RouteError(Exception):
    """A request the route table cannot serve (carries an HTTP status)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def canonical_bytes(payload: Mapping[str, object]) -> bytes:
    """The one serialization every response goes through."""
    return (json.dumps(payload, sort_keys=True, separators=(",", ":"),
                       allow_nan=False) + "\n").encode("utf-8")


def _sketch_card(name: str, sketch) -> Dict[str, object]:
    return {
        "sketch": name,
        "count": sketch.count,
        "p50_ms": sketch.quantile(0.5),
        "p95_ms": sketch.quantile(0.95),
        "p99_ms": sketch.quantile(0.99),
        "max_ms": 0.0 if sketch.max is None else sketch.max,
        "sum_ms": sketch.sum,
    }


def _ratio(bad: int, total: int) -> float:
    return 1.0 if total == 0 else 1.0 - bad / total


# ---------------------------------------------------------------------------
# Endpoints
# ---------------------------------------------------------------------------

def overview(model: RunModel) -> Dict[str, object]:
    """KPI cards: tail reaction latency vs the paper's budget, per-stage
    latency summaries, fleet health ratios, alert totals."""
    fleet = model.fleet
    reaction = fleet.sketches[REACTION_SKETCH]
    within = reaction.count_le(model.reaction_budget_ms)
    share = 1.0 if reaction.count == 0 else within / reaction.count
    counters = fleet.counters
    cards = {
        short: _sketch_card(name, fleet.sketches[name])
        for short, name in sorted(METRIC_SKETCHES.items())
    }
    analyzed = counters.get("screens_analyzed", 0)
    drawn = counters.get("decorations_drawn", 0)
    rejected = counters.get("overlay_rejections", 0)
    return {
        "version": OPS_VERSION,
        "ct_ms": model.ct_ms,
        "sessions": fleet.sessions,
        "traced_sessions": list(model.sessions),
        "reaction_budget": {
            "budget_ms": model.reaction_budget_ms,
            "within_budget": within,
            "total": reaction.count,
            "share": share,
            "met": share >= 0.95,
        },
        "latency": cards,
        "health": {
            "screens_analyzed": analyzed,
            "decoration_success": _ratio(rejected, drawn + rejected),
            "fallback_share": (0 if analyzed == 0 else
                               counters.get("fallback_detections", 0)
                               / analyzed),
            "capture_failures": counters.get("screenshot_failures", 0),
            "watchdog_aborts": counters.get("deadline_skips", 0),
            "breaker_opens": counters.get("breaker_opens", 0),
        },
        "counters": {name: counters[name] for name in sorted(counters)},
        "slo": {
            "all_met": bool(model.slo.get("all_met", True)),
            "alerts": len(model.slo.get("alerts", ())),  # type: ignore[arg-type]
        },
        # Profile completeness: non-zero drops mean every span-derived
        # figure (profiles, stage CPU) undercounts — surfaced here so
        # no panel has to trust a silently truncated trace.
        "trace": {
            "dropped_spans": model.profile.dropped_spans,
            "orphan_spans": model.profile.orphan_spans,
        },
        "daemon_available": model.daemon is not None,
    }


def slo(model: RunModel) -> Dict[str, object]:
    """SLO compliance plus the burn-rate alert timeline, verbatim from
    the (derived or pre-computed) report — already deterministic."""
    return {
        "version": OPS_VERSION,
        "ct_ms": model.ct_ms,
        "all_met": model.slo.get("all_met"),
        "slos": model.slo.get("slos", []),
        "alerts": model.slo.get("alerts", []),
    }


def traces(model: RunModel, session: int) -> Dict[str, object]:
    """The span waterfall of one session, in (start, span_id) order."""
    trace = model.traces.get(session)
    if trace is None:
        raise RouteError(404, f"no trace for session {session}")
    rows: List[Dict[str, object]] = []
    for span in trace.spans:
        rows.append({
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "depth": span.depth,
            "start_ms": span.start_ms,
            "end_ms": span.end_ms,
            "offset_ms": span.start_ms - trace.start_ms,
            "duration_ms": span.end_ms - span.start_ms,
            "cpu_ms": span.cpu_ms,
            "attributes": dict(span.attributes),
        })
    return {
        "version": OPS_VERSION,
        "session": session,
        "trace_id": trace.trace_id,
        "start_ms": trace.start_ms,
        "end_ms": trace.end_ms,
        "duration_ms": trace.end_ms - trace.start_ms,
        "spans": rows,
    }


def quantiles(model: RunModel, metric: str) -> Dict[str, object]:
    """Bucket-level drill-down of one latency sketch.

    Each occupied bucket carries its deterministic bounds, count, and —
    when the sketch recorded one — the (session, span_id) exemplar the
    merge algebra kept, resolved against the loaded traces so the UI
    can link straight into the waterfall.
    """
    name = METRIC_SKETCHES.get(metric)
    if name is None:
        raise RouteError(404, f"unknown metric {metric!r}")
    sketch = model.fleet.sketches[name]
    gamma = (1.0 + sketch.alpha) / (1.0 - sketch.alpha)
    buckets: List[Dict[str, object]] = []
    if sketch.zero_count:
        buckets.append({"index": None, "lo_ms": 0.0, "hi_ms": 0.0,
                        "value_ms": 0.0, "count": sketch.zero_count,
                        "exemplar": None})
    for index in sorted(sketch.counts):
        exemplar = sketch.exemplars.get(index)
        entry: Dict[str, object] = {
            "index": index,
            "lo_ms": gamma ** (index - 1),
            "hi_ms": gamma ** index,
            "value_ms": sketch.bucket_value(index),
            "count": sketch.counts[index],
            "exemplar": None,
        }
        if exemplar is not None:
            session = int(exemplar.get("session", 0))  # type: ignore[arg-type]
            span_id = int(exemplar.get("span_id", 0))  # type: ignore[arg-type]
            resolves = span_id in model.span_ids(session)
            entry["exemplar"] = {
                "session": session,
                "span_id": span_id,
                "trace_id": exemplar.get("trace_id"),
                "resolves": resolves,
                "href": (f"/api/traces/{session}" if resolves else None),
            }
        buckets.append(entry)
    return {
        "version": OPS_VERSION,
        "metric": metric,
        "sketch": name,
        "alpha": sketch.alpha,
        "count": sketch.count,
        "zero_count": sketch.zero_count,
        "sum_ms": sketch.sum,
        "min_ms": sketch.min,
        "max_ms": sketch.max,
        "quantiles": {"p50_ms": sketch.quantile(0.5),
                      "p95_ms": sketch.quantile(0.95),
                      "p99_ms": sketch.quantile(0.99)},
        "buckets": buckets,
    }


def daemon(model: RunModel) -> Dict[str, object]:
    """Scheduling view: lane occupancy, outcomes, rejections, batches.

    Plain fleet runs have no daemon records; the route then reports
    ``available: false`` rather than 404 so the panel can say so.
    """
    record = model.daemon
    if record is None:
        return {"version": OPS_VERSION, "available": False}
    sessions = record.get("sessions", [])
    lanes: Dict[str, Dict[str, object]] = {}
    for entry in sessions:  # type: ignore[union-attr]
        lane = lanes.setdefault(str(entry.get("lane")), {
            "sessions": 0, "outcomes": {}, "deferred_ms_total": 0.0,
            "deferred_ms_max": 0.0})
        lane["sessions"] = int(lane["sessions"]) + 1  # type: ignore[arg-type]
        outcome = str(entry.get("outcome"))
        lane["outcomes"][outcome] = (  # type: ignore[index]
            lane["outcomes"].get(outcome, 0) + 1)  # type: ignore[union-attr]
        deferred = float(entry.get("deferred_ms", 0.0))  # type: ignore[arg-type]
        # Summation order is the daemon.json record order, which is
        # itself deterministic — no re-association across loads.
        lane["deferred_ms_total"] = (
            float(lane["deferred_ms_total"]) + deferred)  # type: ignore[arg-type]
        lane["deferred_ms_max"] = max(
            float(lane["deferred_ms_max"]), deferred)  # type: ignore[arg-type]
    batches = record.get("batches", [])
    occupancy: Dict[str, int] = {}
    faults: Dict[str, int] = {}
    for batch in batches:  # type: ignore[union-attr]
        size = str(len(batch.get("indices", ())))
        occupancy[size] = occupancy.get(size, 0) + 1
        fault = str(batch.get("fault", "ok"))
        faults[fault] = faults.get(fault, 0) + 1
    return {
        "version": OPS_VERSION,
        "available": True,
        "config": record.get("config"),
        "counters": record.get("counters"),
        "shed_rate": record.get("shed_rate"),
        "mean_batch_occupancy": record.get("mean_batch_occupancy"),
        "lanes": {name: lanes[name] for name in sorted(lanes)},
        "rejections": record.get("rejections", []),
        "batches": {"total": len(batches),  # type: ignore[arg-type]
                    "occupancy": {k: occupancy[k]
                                  for k in sorted(occupancy)},
                    "faults": {k: faults[k] for k in sorted(faults)}},
        "drain": model.drain,
    }


def _flame_node(name: str) -> Dict[str, object]:
    return {"name": name, "self_us": 0, "count": 0, "macs": 0,
            "children": {}}


def _finalize_flame(node: Dict[str, object], total_macs: int) -> int:
    """Children dict -> name-sorted list; returns the subtree total."""
    children = [
        _child for _, _child in sorted(node["children"].items())  # type: ignore[union-attr]
    ]
    total = int(node["self_us"])  # type: ignore[arg-type]
    for child in children:
        total += _finalize_flame(child, total_macs)
    node["children"] = children
    node["total_us"] = total
    node["mac_share"] = (int(node["macs"]) / total_macs  # type: ignore[arg-type]
                         if total_macs else 0.0)
    return total


def flame(model: RunModel) -> Dict[str, object]:
    """The run's stack profile as a nested icicle tree.

    Frames are keyed by span stack path (PlanProfiler steps one level
    below the inference span); every node carries its own attributed
    CPU (``self_us``), the subtree total (``total_us``), call count and
    MAC share, with children in name order — a pure, canonical
    re-projection of ``profile.json``.
    """
    prof = model.profile
    root = _flame_node("all")
    for stack in sorted(prof.frames):
        node = root
        for segment in stack:
            node = node["children"].setdefault(  # type: ignore[union-attr]
                segment, _flame_node(segment))
        stats = prof.frames[stack]
        node["self_us"] = int(node["self_us"]) + stats.cpu_us  # type: ignore[arg-type]
        node["count"] = int(node["count"]) + stats.count  # type: ignore[arg-type]
        node["macs"] = int(node["macs"]) + stats.macs  # type: ignore[arg-type]
    total_macs = prof.total_macs
    _finalize_flame(root, total_macs)
    return {
        "version": OPS_VERSION,
        "available": bool(prof.frames),
        "sessions": prof.sessions,
        "dropped_spans": prof.dropped_spans,
        "orphan_spans": prof.orphan_spans,
        "total_cpu_us": prof.total_cpu_us,
        "total_macs": total_macs,
        "root": root,
    }


def _frame_href(stack: str) -> Optional[str]:
    """Quantile drill-down link for a diff frame (leafmost match wins)."""
    for segment in reversed(split_key(stack)):
        metric = FRAME_METRICS.get(segment)
        if metric is not None:
            return f"/api/quantiles/{metric}"
    return None


def flame_diff(model: RunModel) -> Dict[str, object]:
    """Ranked per-frame attribution of the run vs its baseline profile.

    Needs a ``baseline.profile.json`` in the run directory; without one
    the route reports ``available: false`` (like ``/api/daemon``).
    Each differing frame links to the matching quantile drill-down so
    the UI can jump from "inference grew" to its bucket exemplars.
    """
    baseline = model.baseline_profile
    if baseline is None:
        return {"version": OPS_VERSION, "available": False}
    diff = diff_profiles(baseline, model.profile)
    frames: List[Dict[str, object]] = []
    for delta in diff.frames:
        entry = delta.to_dict()
        entry["href"] = _frame_href(delta.stack)
        frames.append(entry)
    return {
        "version": OPS_VERSION,
        "available": True,
        "empty": diff.empty,
        "base_total_cpu_us": diff.base_total_cpu_us,
        "fresh_total_cpu_us": diff.fresh_total_cpu_us,
        "delta_cpu_us": diff.delta_cpu_us,
        "base_sessions": diff.base_sessions,
        "fresh_sessions": diff.fresh_sessions,
        "base_dropped_spans": diff.base_dropped_spans,
        "fresh_dropped_spans": diff.fresh_dropped_spans,
        "frames": frames,
    }


def routes_index(model: RunModel) -> Dict[str, object]:
    """Every concrete route this run directory can answer."""
    return {
        "version": OPS_VERSION,
        "routes": route_paths(model),
    }


# ---------------------------------------------------------------------------
# Route table
# ---------------------------------------------------------------------------

def route_paths(model: RunModel) -> List[str]:
    """All concrete ``/api`` paths, in deterministic order."""
    paths = ["/api/routes", "/api/overview", "/api/slo", "/api/daemon",
             "/api/flame", "/api/flame/diff"]
    paths += [f"/api/quantiles/{metric}"
              for metric in sorted(METRIC_SKETCHES)]
    paths += [f"/api/traces/{session}" for session in model.sessions]
    return paths


def resolve(model: RunModel, path: str) -> Dict[str, object]:
    """Dispatch one ``/api`` path to its handler (pure; no I/O).

    Raises :class:`RouteError` (with an HTTP status) for unknown paths
    or missing resources.
    """
    path = path.split("?", 1)[0].rstrip("/") or "/"
    if path == "/api/routes":
        return routes_index(model)
    if path == "/api/overview":
        return overview(model)
    if path == "/api/slo":
        return slo(model)
    if path == "/api/daemon":
        return daemon(model)
    if path == "/api/flame":
        return flame(model)
    if path == "/api/flame/diff":
        return flame_diff(model)
    parts = path.split("/")
    if len(parts) == 4 and parts[1] == "api" and parts[2] == "quantiles":
        return quantiles(model, parts[3])
    if len(parts) == 4 and parts[1] == "api" and parts[2] == "traces":
        try:
            session = int(parts[3])
        except ValueError:
            raise RouteError(404, f"bad session index {parts[3]!r}")
        return traces(model, session)
    raise RouteError(404, f"no such route {path!r}")


def golden_name(path: str) -> str:
    """Stable on-disk file name of one route's golden response."""
    return path.strip("/").replace("/", "_") + ".json"


def dump_routes(model: RunModel) -> Dict[str, bytes]:
    """Render every concrete route to its canonical bytes.

    This is both the ``repro dash --once`` payload and the generator of
    the committed goldens — the two sides of the harness share one code
    path by construction.
    """
    return {path: canonical_bytes(resolve(model, path))
            for path in route_paths(model)}


__all__ = [
    "METRIC_SKETCHES",
    "FRAME_METRICS",
    "RouteError",
    "canonical_bytes",
    "overview",
    "slo",
    "traces",
    "quantiles",
    "daemon",
    "flame",
    "flame_diff",
    "routes_index",
    "route_paths",
    "resolve",
    "golden_name",
    "dump_routes",
]
