"""Deterministic JSONL tailing for the SSE ``/events`` endpoint.

The tailer is a pure function of (file bytes, cursor): no wall-clock,
no inotify, no sleeps — the *caller* decides when to poll (the live
server injects a cadence; tests drive :meth:`JsonlTail.poll`
synchronously).  The contract the unit tests pin:

- only complete lines (terminated by ``\\n``) become events; a partial
  line at EOF stays unconsumed until its newline lands, so a writer
  caught mid-``write`` never produces a torn event;
- each event's ``cursor`` is the byte offset just past its newline.
  Constructing a new tailer at any event's cursor (SSE
  ``Last-Event-ID`` resume) replays exactly the events after it —
  a killed-and-resumed stream is byte-identical to an uninterrupted
  read;
- truncation/rotation (the file shrank below the cursor) resets the
  cursor to zero and replays from the start of the new file, which is
  again exactly what a fresh uninterrupted read would deliver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class TailEvent:
    """One complete JSONL line, with the resume cursor after it."""

    cursor: int
    data: str


class JsonlTail:
    """Byte-offset tailer over a growing (or rotating) JSONL file."""

    __slots__ = ("path", "cursor")

    def __init__(self, path: str, cursor: int = 0):
        if cursor < 0:
            raise ValueError("cursor cannot be negative")
        self.path = path
        self.cursor = int(cursor)

    def poll(self) -> List[TailEvent]:
        """Every complete line written since the cursor (may be empty).

        Advances the cursor past the last complete line only; a
        trailing partial line is re-read (in full) by the next poll.
        """
        try:
            with open(self.path, "rb") as fp:
                fp.seek(0, 2)
                size = fp.tell()
                if size < self.cursor:
                    # The file shrank: truncation or rotation.  Replay
                    # from the top of the new contents.
                    self.cursor = 0
                fp.seek(self.cursor)
                chunk = fp.read()
        except FileNotFoundError:
            return []
        events: List[TailEvent] = []
        base = self.cursor
        start = 0
        while True:
            newline = chunk.find(b"\n", start)
            if newline < 0:
                break
            line = chunk[start:newline]
            start = newline + 1
            if line.strip():
                events.append(TailEvent(cursor=base + start,
                                        data=line.decode("utf-8")))
        self.cursor = base + start
        return events


def format_sse(event: TailEvent) -> bytes:
    """One Server-Sent-Events frame: the cursor doubles as the event id,
    so ``Last-Event-ID`` on reconnect IS the resume cursor."""
    return (f"id: {event.cursor}\ndata: {event.data}\n\n").encode("utf-8")


__all__ = ["TailEvent", "JsonlTail", "format_sse"]
