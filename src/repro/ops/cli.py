"""``repro dash`` — serve or dump the ops dashboard for a run directory.

- ``repro dash --dir out/``            serve live on ``--port``
- ``repro dash --dir out/ --once d/``  render every route to ``d/`` and
  exit — exactly the bytes the golden harness commits, so CI can diff a
  fresh dump against ``tests/ops/goldens``.

Mirrors the ``repro regress`` error-path contract: a missing or
unreadable run directory (or dump destination) exits 2 with the reason
on stderr.
"""

from __future__ import annotations

import os
import sys
from typing import Optional

from repro.ops.artifacts import RunDirectoryError, load_run
from repro.ops.routes import dump_routes, golden_name, route_paths
from repro.ops.server import OpsServer


def run_dash(run_dir: str, ct_ms: float = 200.0,
             host: str = "127.0.0.1", port: int = 8765,
             once: Optional[str] = None) -> int:
    try:
        model = load_run(run_dir, ct_ms=ct_ms)
    except RunDirectoryError as exc:
        print(f"dash: cannot load run directory {run_dir}: {exc}",
              file=sys.stderr)
        return 2
    if once is not None:
        dumped = dump_routes(model)
        try:
            os.makedirs(once, exist_ok=True)
            for path in route_paths(model):
                out_path = os.path.join(once, golden_name(path))
                with open(out_path, "wb") as fp:
                    fp.write(dumped[path])
        except OSError as exc:
            print(f"dash: cannot write route dump to {once}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"Wrote {len(dumped)} route responses to {once}")
        return 0
    server = OpsServer(model, run_dir, host=host, port=port)
    print(f"darpa ops dashboard over {run_dir} at {server.address} "
          f"(Ctrl-C to stop)")
    try:
        server.serve_forever()
    # Ctrl-C IS the shutdown protocol for a foreground server; the
    # finally-close below is the recorded outcome.
    except KeyboardInterrupt:  # darpalint: disable=DL005
        pass
    finally:
        server.httpd.server_close()
    return 0


__all__ = ["run_dash"]
