"""Live ops dashboard over fleet run artifacts.

``repro.ops`` is the operator-facing read path of the serving stack: it
ingests the artifacts a fleet run (or the serving daemon) already
leaves behind — ``telemetry.json`` or its ``shard-*.telemetry.json``
parts, ``trace.jsonl`` / ``shard-*.trace.jsonl``, ``metrics.jsonl``,
``daemon.json`` / ``drain.json``, an optional ``slo.json`` — into
frozen view-models (:mod:`repro.ops.artifacts`), maps them through
pure route functions to canonical byte-exact JSON
(:mod:`repro.ops.routes`), and serves the result over a zero-dependency
``http.server`` host with an SSE trace tail (:mod:`repro.ops.server`,
:mod:`repro.ops.tail`).

Because every input artifact is deterministic and every route handler
is a pure function with canonical serialization, the whole dashboard is
pinned by committed golden responses (``tests/ops/``) instead of
screenshots.
"""

from repro.ops.artifacts import (
    RunModel,
    SessionTrace,
    SpanView,
    load_run,
)
from repro.ops.routes import (
    RouteError,
    canonical_bytes,
    dump_routes,
    golden_name,
    resolve,
    route_paths,
)
from repro.ops.tail import JsonlTail, TailEvent, format_sse
from repro.ops.server import OpsServer, respond, stream_events

__all__ = [
    "RunModel",
    "SessionTrace",
    "SpanView",
    "load_run",
    "RouteError",
    "canonical_bytes",
    "dump_routes",
    "golden_name",
    "resolve",
    "route_paths",
    "JsonlTail",
    "TailEvent",
    "format_sse",
    "OpsServer",
    "respond",
    "stream_events",
]
