"""Run-directory artifact loader for the ops dashboard.

A fleet run leaves a directory of deterministic artifacts behind:

- ``telemetry.json`` — the merged :class:`FleetTelemetry` snapshot, or
  (mid-run / pre-merge) per-shard ``shard-*.telemetry.json`` parts;
- ``trace.jsonl`` / ``shard-*.trace.jsonl`` — span JSONL, one line per
  span, each line carrying its global ``session`` index;
- ``metrics.jsonl`` / ``shard-*.metrics.jsonl`` — one
  :class:`MetricsRegistry` snapshot line per session;
- ``daemon.json`` / ``drain.json`` — the serving daemon's scheduling
  records and drain manifest (absent for plain fleet runs);
- ``slo.json`` — an optional pre-computed SLO report (``repro slo
  --json``); when absent the report is derived here from the per-session
  telemetry series with the stock objectives;
- ``profile.json`` / ``shard-*.profile.json`` — the merged stack
  profile or its shard parts (folded here; the merge algebra is
  order-free).  When neither is present the profile is folded from the
  loaded spans on the spot, so bare trace dumps still get a flame view;
- ``baseline.profile.json`` — an optional reference profile the
  ``/api/flame/diff`` route attributes the run against.

:func:`load_run` folds all of that into one frozen :class:`RunModel`.
Every fold is order-canonical — part files are sorted by name before
reading and the sketch algebra is exactly associative — so the model
(and therefore every route response built from it) is byte-identical
no matter how the directory listing enumerated the shard parts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.android.device import DeviceProfile
from repro.core.observability import op_cpu_ms
from repro.core.telemetry import (
    FleetTelemetry,
    REACTION_SLACK_MS,
    RESILIENCE_TELEMETRY_COUNTERS,
    SessionTelemetry,
    SloEngine,
    TELEMETRY_COUNTERS,
    default_slos,
    sketches_from_spans,
)
from repro.profiling import Profile, dropped_from_metrics, profile_from_spans

#: Schema version stamped on every route payload.
OPS_VERSION = 1


class RunDirectoryError(ValueError):
    """The run directory is missing, unreadable, or has no artifacts."""


@dataclass(frozen=True)
class SpanView:
    """One span of the trace waterfall (immutable projection).

    ``depth`` is the nesting level under the session root and
    ``cpu_ms`` the cost-model CPU attributed to this span alone (not
    its subtree) — both precomputed so the route layer stays a pure
    re-projection.
    """

    session: int
    span_id: int
    parent_id: Optional[int]
    trace_id: str
    name: str
    start_ms: float
    end_ms: float
    depth: int
    cpu_ms: float
    attributes: Mapping[str, object]


@dataclass(frozen=True)
class SessionTrace:
    """One session's spans, ordered for waterfall rendering."""

    session: int
    trace_id: str
    start_ms: float
    end_ms: float
    spans: Tuple[SpanView, ...]


@dataclass(frozen=True)
class RunModel:
    """Everything the route layer needs, loaded once, immutable.

    ``fleet`` is a :class:`FleetTelemetry`; it is mutable by type but
    treated as frozen here — routes only read it.
    """

    ct_ms: float
    reaction_budget_ms: float
    fleet: FleetTelemetry
    sessions: Tuple[int, ...]
    traces: Mapping[int, SessionTrace]
    slo: Mapping[str, object]
    daemon: Optional[Mapping[str, object]]
    drain: Optional[Mapping[str, object]]
    profile: Profile
    baseline_profile: Optional[Profile]

    def span_ids(self, session: int) -> frozenset:
        trace = self.traces.get(session)
        if trace is None:
            return frozenset()
        return frozenset(span.span_id for span in trace.spans)


# ---------------------------------------------------------------------------
# Artifact readers
# ---------------------------------------------------------------------------

def _classify(names: Sequence[str]) -> Dict[str, List[str]]:
    """Sort artifact file names into kinds (order-canonical)."""
    plan: Dict[str, List[str]] = {
        "telemetry": [], "trace": [], "metrics": [], "profile": [],
        "single": []}
    for name in sorted(names):
        if name == "telemetry.json" or (name.startswith("shard-")
                                        and name.endswith(".telemetry.json")):
            plan["telemetry"].append(name)
        elif name == "trace.jsonl" or (name.startswith("shard-")
                                       and name.endswith(".trace.jsonl")):
            plan["trace"].append(name)
        elif name == "metrics.jsonl" or (name.startswith("shard-")
                                         and name.endswith(".metrics.jsonl")):
            plan["metrics"].append(name)
        elif name == "profile.json" or (name.startswith("shard-")
                                        and name.endswith(".profile.json")):
            plan["profile"].append(name)
        elif name in ("daemon.json", "drain.json", "slo.json",
                      "baseline.profile.json"):
            plan["single"].append(name)
    return plan


def injectable_listing(run_dir: str,
                       names: Optional[Sequence[str]] = None) -> List[str]:
    """The sanctioned directory enumeration: sorted, injectable.

    Returns ``sorted(names)`` when a listing is injected (goldens
    shuffle it to prove listing-order invariance) and a sorted
    ``os.listdir`` otherwise — callers never see on-disk order, which
    is why darpaflow treats this helper as a listing sanitizer and
    DL008 exempts its body.  Raises :class:`RunDirectoryError` when
    the directory is unreadable.
    """
    try:
        listing = list(names) if names is not None else os.listdir(run_dir)
    except OSError as exc:
        raise RunDirectoryError(f"cannot list run directory: {exc}")
    return sorted(listing)


def _read_jsonl(path: str) -> List[Dict[str, object]]:
    records = []
    with open(path) as fp:
        for lineno, line in enumerate(fp, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise RunDirectoryError(
                    f"{path}:{lineno}: malformed JSONL ({exc})")
            if not isinstance(record, dict):
                raise RunDirectoryError(
                    f"{path}:{lineno}: expected an object per line")
            records.append(record)
    return records


def _session_counters(snapshot: Mapping[str, object]) -> Dict[str, int]:
    """Telemetry counters of one session's registry snapshot."""
    counters: Dict[str, int] = {name: 0 for name in TELEMETRY_COUNTERS}
    recorded = snapshot.get("counters", {})
    for name in TELEMETRY_COUNTERS:
        namespace = ("darpa.resilience."
                     if name in RESILIENCE_TELEMETRY_COUNTERS
                     else "darpa.pipeline.")
        value = recorded.get(namespace + name)  # type: ignore[union-attr]
        if value is not None:
            counters[name] = int(value)
    return counters


def _build_trace(session: int, spans: Sequence[Mapping[str, object]],
                 costs: Mapping[str, float]) -> SessionTrace:
    depth: Dict[int, int] = {}
    by_id = {int(s["span_id"]): s for s in spans}  # type: ignore[arg-type]

    def depth_of(span_id: int) -> int:
        if span_id in depth:
            return depth[span_id]
        parent = by_id[span_id]["parent_id"]
        level = 0 if parent is None else depth_of(int(parent)) + 1  # type: ignore[arg-type]
        depth[span_id] = level
        return level

    views = []
    root_trace, lo, hi = "", 0.0, 0.0
    for span in spans:
        span_id = int(span["span_id"])  # type: ignore[arg-type]
        cpu = sum(int(n) * costs[op]
                  for op, n in span.get("ops", {}).items())  # type: ignore[union-attr]
        view = SpanView(
            session=session,
            span_id=span_id,
            parent_id=(None if span["parent_id"] is None
                       else int(span["parent_id"])),  # type: ignore[arg-type]
            trace_id=str(span["trace_id"]),
            name=str(span["name"]),
            start_ms=float(span["start_ms"]),  # type: ignore[arg-type]
            end_ms=float(span["end_ms"]),  # type: ignore[arg-type]
            depth=depth_of(span_id),
            cpu_ms=cpu,
            attributes=dict(span.get("attributes", {})),  # type: ignore[arg-type]
        )
        views.append(view)
        if view.parent_id is None and view.name == "session":
            root_trace, lo, hi = view.trace_id, view.start_ms, view.end_ms
    views.sort(key=lambda v: (v.start_ms, v.span_id))
    return SessionTrace(session=session, trace_id=root_trace,
                        start_ms=lo, end_ms=hi, spans=tuple(views))


def load_run(
    run_dir: str,
    ct_ms: float = 200.0,
    profile: Optional[DeviceProfile] = None,
    names: Optional[Sequence[str]] = None,
) -> RunModel:
    """Load a run directory into a :class:`RunModel`.

    ``names`` overrides the directory listing (the goldens shuffle it to
    prove the model is listing-order invariant); the loader sorts it
    before reading either way.  Raises :class:`RunDirectoryError` when
    the directory is unreadable or holds no recognizable artifacts.
    """
    profile = profile or DeviceProfile()
    plan = _classify(injectable_listing(run_dir, names))
    if not any(plan.values()):
        raise RunDirectoryError(
            f"no run artifacts (telemetry/trace/daemon) in {run_dir}")

    # Fleet telemetry: merged snapshot and/or shard parts.  In a real
    # directory the two are mutually exclusive (the merge deletes the
    # parts); folding whatever is present keeps mid-run directories
    # loadable, and the sketch algebra makes the fold order-free.
    fleet = FleetTelemetry()
    for name in plan["telemetry"]:
        with open(os.path.join(run_dir, name)) as fp:
            try:
                snap = json.load(fp)
            except json.JSONDecodeError as exc:
                raise RunDirectoryError(f"{name}: malformed JSON ({exc})")
        fleet.merge(FleetTelemetry.from_snapshot(snap))

    # Spans, grouped by global session index.  Line order within a
    # session (span finish order) is preserved — the telemetry
    # derivation depends on it — and part files are read in sorted-name
    # order, which IS global session order for shard parts.
    spans_by_session: Dict[int, List[Dict[str, object]]] = {}
    for name in plan["trace"]:
        for record in _read_jsonl(os.path.join(run_dir, name)):
            session = int(record.pop("session", 0))  # type: ignore[arg-type]
            spans_by_session.setdefault(session, []).append(record)

    metrics_by_session: Dict[int, Mapping[str, object]] = {}
    for name in plan["metrics"]:
        for record in _read_jsonl(os.path.join(run_dir, name)):
            session = int(record.get("session", 0))  # type: ignore[arg-type]
            metrics_by_session[session] = record.get("metrics", {})  # type: ignore[assignment]

    costs = op_cpu_ms(profile)
    sessions = tuple(sorted(spans_by_session))
    traces = {
        session: _build_trace(session, spans_by_session[session], costs)
        for session in sessions
    }

    singles: Dict[str, Mapping[str, object]] = {}
    for name in plan["single"]:
        with open(os.path.join(run_dir, name)) as fp:
            try:
                singles[name] = json.load(fp)
            except json.JSONDecodeError as exc:
                raise RunDirectoryError(f"{name}: malformed JSON ({exc})")

    # Stack profile: merged file and/or shard parts, folded order-free
    # (the profile algebra is all-integer, like the sketches).  A
    # directory with no profile artifacts derives one from its spans so
    # bare trace dumps still serve /api/flame.
    run_profile = Profile()
    for name in plan["profile"]:
        with open(os.path.join(run_dir, name)) as fp:
            try:
                payload = json.load(fp)
            except json.JSONDecodeError as exc:
                raise RunDirectoryError(f"{name}: malformed JSON ({exc})")
        try:
            run_profile.merge(Profile.from_dict(payload))
        except (ValueError, TypeError) as exc:
            raise RunDirectoryError(f"{name}: malformed profile ({exc})")
    if not plan["profile"]:
        for session in sessions:
            metrics = metrics_by_session.get(session, {})
            run_profile.merge(profile_from_spans(
                spans_by_session[session], profile=profile,
                dropped_spans=dropped_from_metrics(metrics)))

    baseline_profile: Optional[Profile] = None
    baseline_payload = singles.get("baseline.profile.json")
    if baseline_payload is not None:
        try:
            baseline_profile = Profile.from_dict(baseline_payload)
        except (ValueError, TypeError) as exc:
            raise RunDirectoryError(
                f"baseline.profile.json: malformed profile ({exc})")

    slo = singles.get("slo.json")
    if slo is None:
        series = [
            SessionTelemetry(
                session=session,
                sketches=sketches_from_spans(
                    spans_by_session[session], profile=profile,
                    session=session),
                counters=_session_counters(
                    metrics_by_session.get(session, {})))
            for session in sessions
        ]
        engine = SloEngine(default_slos(ct_ms=ct_ms, profile=profile))
        slo = engine.evaluate(series).to_dict()

    # A telemetry-free directory (daemon-only, or a bare trace) still
    # loads: the fleet snapshot is then rebuilt from the traces so the
    # overview route has sketches to project.
    if not plan["telemetry"] and sessions:
        for session in sessions:
            fleet.observe_session(SessionTelemetry(
                session=session,
                sketches=sketches_from_spans(
                    spans_by_session[session], profile=profile,
                    session=session),
                counters=_session_counters(
                    metrics_by_session.get(session, {}))))

    return RunModel(
        ct_ms=float(ct_ms),
        reaction_budget_ms=(float(ct_ms) + profile.screenshot_cpu_ms
                            + profile.inference_cpu_ms + REACTION_SLACK_MS),
        fleet=fleet,
        sessions=sessions,
        traces=traces,
        slo=slo,
        daemon=singles.get("daemon.json"),
        drain=singles.get("drain.json"),
        profile=run_profile,
        baseline_profile=baseline_profile,
    )


__all__ = [
    "OPS_VERSION",
    "RunDirectoryError",
    "SpanView",
    "SessionTrace",
    "RunModel",
    "injectable_listing",
    "load_run",
]
