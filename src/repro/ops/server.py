"""Stdlib HTTP/SSE host for the ops dashboard.

The server is a deliberately thin shell: every ``/api`` response comes
from :func:`repro.ops.routes.resolve` (pure) through
:func:`respond` (pure), and the SSE ``/events`` stream is
:func:`stream_events` writing to any file-like object — the live
server hands it the socket's ``wfile`` and a sleeping cadence, the
tests hand it a ``BytesIO`` and a counting cadence.  Nothing in this
module computes a payload.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from importlib import resources
from typing import Callable, Optional
from urllib.parse import parse_qs, urlsplit

from repro.ops.artifacts import RunModel
from repro.ops.routes import RouteError, canonical_bytes, resolve
from repro.ops.tail import JsonlTail, format_sse

#: Default seconds between SSE polls of the trace file.
DEFAULT_POLL_S = 0.5


@dataclass(frozen=True)
class Response:
    """One fully-rendered HTTP response."""

    status: int
    content_type: str
    body: bytes


def static_html() -> bytes:
    """The single-file dashboard page, shipped as package data."""
    return (resources.files(__package__) / "static"
            / "index.html").read_bytes()


def respond(model: RunModel, path: str) -> Response:
    """Pure request -> response mapping for everything except SSE."""
    clean = urlsplit(path).path
    if clean in ("/", "/index.html"):
        return Response(200, "text/html; charset=utf-8", static_html())
    try:
        payload = resolve(model, clean)
    except RouteError as exc:
        return Response(exc.status, "application/json",
                        canonical_bytes({"error": exc.message,
                                         "status": exc.status}))
    return Response(200, "application/json", canonical_bytes(payload))


def stream_events(wfile, tail: JsonlTail,
                  cadence: Callable[[], bool],
                  max_events: Optional[int] = None) -> int:
    """Pump SSE frames from ``tail`` into ``wfile``; returns the count.

    ``cadence()`` runs between polls and returns False to stop — the
    live server sleeps there, tests count there.  ``max_events`` bounds
    the stream (used by tests and ``/events?limit=N``).
    """
    sent = 0
    while True:
        for event in tail.poll():
            wfile.write(format_sse(event))
            sent += 1
            if max_events is not None and sent >= max_events:
                return sent
        try:
            wfile.flush()
        except (ValueError, OSError):
            return sent
        if not cadence():
            return sent


def _sleep_cadence() -> bool:
    time.sleep(DEFAULT_POLL_S)
    return True


class OpsHandler(BaseHTTPRequestHandler):
    """Request glue.  Configuration arrives via class attributes set by
    :class:`OpsServer` (or by the fake-socket tests)."""

    server_version = "darpa-ops/1"
    protocol_version = "HTTP/1.0"

    # Injected configuration:
    model: RunModel = None  # type: ignore[assignment]
    trace_path: str = ""
    cadence: Callable[[], bool] = staticmethod(_sleep_cadence)
    max_events: Optional[int] = None

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if urlsplit(self.path).path == "/events":
            self._serve_events()
            return
        response = respond(self.model, self.path)
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        self.wfile.write(response.body)

    def _serve_events(self) -> None:
        query = parse_qs(urlsplit(self.path).query)
        cursor = 0
        header = self.headers.get("Last-Event-ID")
        if header is not None:
            cursor = int(header)
        elif "cursor" in query:
            cursor = int(query["cursor"][0])
        limit = self.max_events
        if "limit" in query:
            limit = int(query["limit"][0])
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        try:
            stream_events(self.wfile, JsonlTail(self.trace_path, cursor),
                          self.cadence, max_events=limit)
        # A vanished SSE client is the normal end of a stream, not a
        # fault: the client's Last-Event-ID resumes it losslessly.
        except (BrokenPipeError, ConnectionResetError):  # darpalint: disable=DL005
            pass

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test/CLI output deterministic


class OpsServer:
    """A configured ``ThreadingHTTPServer`` over one run directory."""

    def __init__(self, model: RunModel, run_dir: str,
                 host: str = "127.0.0.1", port: int = 0,
                 cadence: Optional[Callable[[], bool]] = None,
                 max_events: Optional[int] = None):
        handler = type("BoundOpsHandler", (OpsHandler,), {
            "model": model,
            "trace_path": os.path.join(run_dir, "trace.jsonl"),
            "cadence": staticmethod(cadence or _sleep_cadence),
            "max_events": max_events,
        })
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()


__all__ = [
    "DEFAULT_POLL_S",
    "Response",
    "static_html",
    "respond",
    "stream_events",
    "OpsHandler",
    "OpsServer",
]
