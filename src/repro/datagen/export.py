"""Dataset release tooling.

The paper releases its AUI dataset publicly; this module is the
equivalent packager for the synthetic corpus: it writes rendered
screenshots (binary PPM — stdlib-only, viewable everywhere) alongside a
COCO ``annotations.json`` and a manifest, producing a directory layout
any detection toolchain can consume.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Sequence

import numpy as np

from repro.datagen.annotations import to_coco
from repro.datagen.corpus import AuiSample, render_state
from repro.datagen.masking import mask_option_texts


def write_ppm(path: Path, image: np.ndarray) -> None:
    """Serialize an (H, W, 3) float image as binary PPM (P6)."""
    data = (np.clip(image, 0.0, 1.0) * 255).astype(np.uint8)
    h, w = data.shape[:2]
    with open(path, "wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode())
        fh.write(data.tobytes())


def read_ppm(path: Path) -> np.ndarray:
    """Load a binary PPM back into a float (H, W, 3) array."""
    with open(path, "rb") as fh:
        magic = fh.readline().strip()
        if magic != b"P6":
            raise ValueError(f"{path} is not a binary PPM (got {magic!r})")
        w, h = map(int, fh.readline().split())
        maxval = int(fh.readline())
        raw = np.frombuffer(fh.read(w * h * 3), dtype=np.uint8)
    return raw.reshape(h, w, 3).astype(np.float32) / maxval


def export_dataset(
    samples: Sequence[AuiSample],
    out_dir: Path,
    masked: bool = False,
    noise_seed: int = 1000,
    limit: Optional[int] = None,
) -> Dict[str, int]:
    """Write a release directory: images/ + annotations.json + manifest.

    Returns counters (images written, annotations written).  Boxes in
    the COCO file are in screen coordinates, matching the renders.
    """
    out_dir = Path(out_dir)
    images_dir = out_dir / "images"
    images_dir.mkdir(parents=True, exist_ok=True)
    chosen = list(samples[:limit] if limit else samples)
    for i, sample in enumerate(chosen):
        image, labels = render_state(sample.screen, noise_seed=noise_seed + i)
        if masked:
            image = mask_option_texts(image, labels)
        write_ppm(images_dir / f"aui_{sample.spec.index:04d}.ppm", image)
    coco = to_coco(chosen)
    # The exporter writes .ppm files; keep file_name consistent.
    for entry in coco["images"]:
        entry["file_name"] = entry["file_name"].replace(".png", ".ppm")
    with open(out_dir / "annotations.json", "w") as fh:
        json.dump(coco, fh, indent=1)
    manifest = {
        "images": len(chosen),
        "annotations": len(coco["annotations"]),
        "masked": masked,
        "format": "PPM (P6) + COCO detection JSON",
        "classes": {c["id"]: c["name"] for c in coco["categories"]},
    }
    with open(out_dir / "manifest.json", "w") as fh:
        json.dump(manifest, fh, indent=1)
    return {"images": len(chosen), "annotations": len(coco["annotations"])}
