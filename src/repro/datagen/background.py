"""Background app content.

AUI dialogs float above ordinary app screens; detection difficulty
depends heavily on that clutter (a detector that only ever saw flat
backgrounds would overfit trivially).  This module builds randomized
view trees in five everyday layouts — feed, grid, article, form and
settings — reused both as scrim content under AUI dialogs and as whole
non-AUI screens.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.geometry.rect import Rect
from repro.imaging.color import Color, PALETTE, mix
from repro.android.resources import ResourceIdPolicy, make_resource_id
from repro.android.view import View, ViewGroup

_WORDS = (
    "daily deals super sale flash news video music live hot top new"
    " best free vip plus home mine cart shop feed game learn read"
).split()

_THUMB_COLORS = ("blue", "teal", "green", "orange", "purple", "pink",
                 "indigo", "cyan", "amber")


def _text(rng: np.random.Generator, n_words: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(n_words))


def _tint(rng: np.random.Generator) -> Color:
    base = PALETTE[str(rng.choice(_THUMB_COLORS))]
    return mix(base, PALETTE["white"], float(rng.uniform(0.0, 0.35)))


def _feed(root: ViewGroup, rng: np.random.Generator, area: Rect) -> None:
    """A vertically scrolling feed: thumbnail + two text lines per row."""
    row_h = float(rng.uniform(64, 92))
    y = area.top + 8
    while y + row_h < area.bottom:
        row = root.add_child(ViewGroup(bounds=Rect(area.left, y, area.w, row_h)))
        row.add_child(View(bounds=Rect(area.left + 10, y + 8, row_h - 16, row_h - 16),
                           bg_color=_tint(rng), corner_radius=6))
        tx = area.left + row_h + 8
        row.add_child(View(bounds=Rect(tx, y + 12, area.w - row_h - 40, 14),
                           text=_text(rng, 3), text_size=11,
                           text_color=PALETTE["dark_gray"]))
        row.add_child(View(bounds=Rect(tx, y + 36, area.w - row_h - 90, 10),
                           text=_text(rng, 2), text_size=8,
                           text_color=PALETTE["gray"]))
        y += row_h + 6


def _grid(root: ViewGroup, rng: np.random.Generator, area: Rect) -> None:
    """A 3-column tile grid (store front / gallery)."""
    cols = 3
    gap = 8.0
    tile_w = (area.w - (cols + 1) * gap) / cols
    tile_h = tile_w * float(rng.uniform(1.0, 1.35))
    y = area.top + gap
    while y + tile_h < area.bottom:
        for c in range(cols):
            x = area.left + gap + c * (tile_w + gap)
            root.add_child(View(bounds=Rect(x, y, tile_w, tile_h * 0.72),
                                bg_color=_tint(rng), corner_radius=5))
            root.add_child(View(bounds=Rect(x, y + tile_h * 0.78, tile_w, 9),
                                text=_text(rng, 2), text_size=7,
                                text_color=PALETTE["dark_gray"]))
        y += tile_h + gap


def _article(root: ViewGroup, rng: np.random.Generator, area: Rect) -> None:
    """A reading screen: headline, hero image, paragraph bars."""
    y = area.top + 14
    root.add_child(View(bounds=Rect(area.left + 14, y, area.w - 28, 18),
                        text=_text(rng, 4), text_size=15,
                        text_color=PALETTE["black"]))
    y += 34
    hero_h = float(rng.uniform(110, 160))
    root.add_child(View(bounds=Rect(area.left + 14, y, area.w - 28, hero_h),
                        bg_color=_tint(rng), corner_radius=8))
    y += hero_h + 16
    while y + 12 < area.bottom - 10:
        width = (area.w - 28) * float(rng.uniform(0.55, 1.0))
        root.add_child(View(bounds=Rect(area.left + 14, y, width, 8),
                            bg_color=PALETTE["light_gray"]))
        y += 18


def _form(root: ViewGroup, rng: np.random.Generator, area: Rect) -> None:
    """A login/checkout form: labeled fields plus one submit button."""
    y = area.top + 40
    for _ in range(int(rng.integers(2, 5))):
        root.add_child(View(bounds=Rect(area.left + 24, y, 90, 10),
                            text=_text(rng, 1), text_size=9,
                            text_color=PALETTE["gray"]))
        root.add_child(View(bounds=Rect(area.left + 24, y + 16, area.w - 48, 34),
                            bg_color=PALETTE["near_white"], corner_radius=6,
                            border_color=PALETTE["light_gray"], border_width=1))
        y += 66
    root.add_child(View(bounds=Rect(area.left + 24, y + 14, area.w - 48, 42),
                        bg_color=_tint(rng), corner_radius=21, clickable=True,
                        text=_text(rng, 1), text_size=13,
                        text_color=PALETTE["white"]))


def _settings(root: ViewGroup, rng: np.random.Generator, area: Rect) -> None:
    """A settings list: rows with a label and a trailing toggle."""
    y = area.top + 10
    while y + 46 < area.bottom:
        root.add_child(View(bounds=Rect(area.left + 16, y + 16, 150, 12),
                            text=_text(rng, 2), text_size=10,
                            text_color=PALETTE["dark_gray"]))
        on = bool(rng.integers(0, 2))
        root.add_child(View(
            bounds=Rect(area.right - 56, y + 14, 36, 18),
            bg_color=PALETTE["green"] if on else PALETTE["light_gray"],
            corner_radius=9, clickable=True,
        ))
        root.add_child(View(bounds=Rect(area.left + 10, y + 45, area.w - 20, 1),
                            bg_color=PALETTE["light_gray"]))
        y += 48


_LAYOUTS: Dict[str, Callable[[ViewGroup, np.random.Generator, Rect], None]] = {
    "feed": _feed,
    "grid": _grid,
    "article": _article,
    "form": _form,
    "settings": _settings,
}

LAYOUT_NAMES = tuple(_LAYOUTS)


def build_background_content(
    rng: np.random.Generator,
    width: int = 360,
    height: int = 568,
    layout: str = "",
    package: str = "com.example.app",
    id_policy: ResourceIdPolicy = ResourceIdPolicy.READABLE,
) -> ViewGroup:
    """Build one everyday app screen as a view tree.

    ``layout`` picks the archetype explicitly; empty chooses at random.
    A top app-bar with a title is always present.
    """
    if layout and layout not in _LAYOUTS:
        raise ValueError(f"unknown layout {layout!r}; expected one of {LAYOUT_NAMES}")
    name = layout or str(rng.choice(list(_LAYOUTS)))
    root = ViewGroup(bounds=Rect(0, 0, width, height),
                     bg_color=PALETTE["white"],
                     resource_id=make_resource_id(package, "root", ResourceIdPolicy.READABLE))
    bar_color = _tint(rng)
    root.add_child(View(bounds=Rect(0, 0, width, 48), bg_color=bar_color))
    root.add_child(View(bounds=Rect(16, 16, 120, 16), text=_text(rng, 2),
                        text_size=13, text_color=PALETTE["white"]))
    _LAYOUTS[name](root, rng, Rect(0, 48, width, height - 48))
    del id_policy  # content views are scenery; ids are minted by templates
    return root
