"""Synthetic AUI corpus generation.

The paper's measurement study (Section III-A) rests on two datasets:

- ``D_app`` — 632 popular apps crawled from the Mi Store leaderboard;
- ``D_aui`` — 1,072 manually-verified AUI screenshots gathered by
  Monkey-driving those apps plus crawling huaban.com.

Neither is available offline, so this package *generates* statistically
equivalent ones: seven parameterized AUI templates matching Table I's
type taxonomy, non-AUI screens (including the benign small-close-button
dialogs the paper identifies as its FP source), quota-driven sampling
that reproduces Table I / Table II and the Section III-A layout
statistics exactly, COCO-format annotation export, and the text-masking
transform of Figure 7.
"""

from repro.datagen.specs import (
    AuiType,
    SampleSpec,
    TABLE1_QUOTAS,
    TABLE2_SPLITS,
    make_sample_specs,
)
from repro.datagen.background import build_background_content
from repro.datagen.templates import build_aui_screen, build_non_aui_screen
from repro.datagen.corpus import (
    AppProfile,
    AuiSample,
    Corpus,
    build_app_dataset,
    build_corpus,
)
from repro.datagen.splits import SplitName, split_corpus
from repro.datagen.annotations import to_coco
from repro.datagen.masking import mask_option_texts

__all__ = [
    "AuiType",
    "SampleSpec",
    "TABLE1_QUOTAS",
    "TABLE2_SPLITS",
    "make_sample_specs",
    "build_background_content",
    "build_aui_screen",
    "build_non_aui_screen",
    "AppProfile",
    "AuiSample",
    "Corpus",
    "build_app_dataset",
    "build_corpus",
    "SplitName",
    "split_corpus",
    "to_coco",
    "mask_option_texts",
]
