"""Train/validation/test splitting matched to Table II.

The paper splits ``D_aui`` 6:2:2 into 642/215/215 screenshots carrying
(453, 657), (150, 223) and (141, 222) AGO/UPO boxes respectively.  A
random 6:2:2 split would only match those box counts in expectation;
``split_corpus`` instead performs a greedy assignment followed by a
swap-repair pass so that every published count is matched exactly —
making the regenerated Table II bit-identical run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.datagen.corpus import AuiSample, Corpus
from repro.datagen.specs import TABLE2_SPLITS

SplitName = str  # "train" | "val" | "test"

_SPLIT_ORDER: Tuple[SplitName, ...] = ("train", "val", "test")


class SplitInfeasibleError(RuntimeError):
    """Raised when repair cannot satisfy the target box counts."""


@dataclass
class _Need:
    shots: int
    ago: int
    upo: int


def _targets() -> Dict[SplitName, _Need]:
    return {
        name: _Need(shots, ago, upo)
        for name, (shots, ago, upo) in TABLE2_SPLITS.items()
    }


def _greedy_assign(
    samples: Sequence[AuiSample], rng: np.random.Generator
) -> Dict[SplitName, List[int]]:
    """First pass: fill screenshot quotas, roughly tracking box quotas."""
    need = _targets()
    order = list(range(len(samples)))
    rng.shuffle(order)
    assignment: Dict[SplitName, List[int]] = {s: [] for s in _SPLIT_ORDER}
    for idx in order:
        spec = samples[idx].spec
        best, best_score = None, None
        for name in _SPLIT_ORDER:
            n = need[name]
            if n.shots <= 0:
                continue
            # Score: how well this sample's boxes relieve remaining need.
            ago_fit = min(n.ago, int(spec.has_ago))
            upo_fit = min(n.upo, spec.n_upo)
            score = (ago_fit + upo_fit, n.shots)
            if best_score is None or score > best_score:
                best, best_score = name, score
        assert best is not None, "screenshot quotas must cover all samples"
        assignment[best].append(idx)
        need[best].shots -= 1
        need[best].ago -= int(spec.has_ago)
        need[best].upo -= spec.n_upo
    return assignment


def _counts(samples: Sequence[AuiSample], idxs: Sequence[int]) -> Tuple[int, int]:
    ago = sum(1 for i in idxs if samples[i].spec.has_ago)
    upo = sum(samples[i].spec.n_upo for i in idxs)
    return ago, upo


def _swap_repair(
    samples: Sequence[AuiSample],
    assignment: Dict[SplitName, List[int]],
    max_rounds: int = 10_000,
) -> None:
    """Swap samples between splits until box counts hit their targets.

    Each swap exchanges one sample from a surplus split with one from a
    deficit split, keeping screenshot counts fixed.  AGO counts are
    repaired with swaps that preserve per-sample UPO counts, and vice
    versa, so fixing one dimension never breaks the other.
    """
    targets = _targets()

    def deviation(name: SplitName) -> Tuple[int, int]:
        ago, upo = _counts(samples, assignment[name])
        return ago - targets[name].ago, upo - targets[name].upo

    for _ in range(max_rounds):
        devs = {name: deviation(name) for name in _SPLIT_ORDER}
        if all(d == (0, 0) for d in devs.values()):
            return
        # Repair AGO first: find a split with surplus and one in deficit.
        ago_over = [n for n in _SPLIT_ORDER if devs[n][0] > 0]
        ago_under = [n for n in _SPLIT_ORDER if devs[n][0] < 0]
        if ago_over and ago_under:
            src, dst = ago_over[0], ago_under[0]
            if _swap_matching(samples, assignment, src, dst,
                              want_ago=True, keep="upo"):
                continue
        upo_over = [n for n in _SPLIT_ORDER if devs[n][1] > 0]
        upo_under = [n for n in _SPLIT_ORDER if devs[n][1] < 0]
        if upo_over and upo_under:
            src, dst = upo_over[0], upo_under[0]
            if _swap_by_upo(samples, assignment, src, dst):
                continue
        raise SplitInfeasibleError(
            f"no repairing swap available; deviations: {devs}"
        )
    raise SplitInfeasibleError("swap repair did not converge")


def _swap_matching(samples, assignment, src, dst, want_ago: bool,
                   keep: str) -> bool:
    """Swap an AGO-bearing sample in ``src`` with a same-UPO-count
    AGO-free sample in ``dst`` (moves one AGO from src to dst... i.e.
    reduces src surplus)."""
    for i in assignment[src]:
        si = samples[i].spec
        if si.has_ago != want_ago:
            continue
        for j in assignment[dst]:
            sj = samples[j].spec
            if sj.has_ago == want_ago:
                continue
            if keep == "upo" and si.n_upo != sj.n_upo:
                continue
            _do_swap(assignment, src, dst, i, j)
            return True
    return False


def _swap_by_upo(samples, assignment, src, dst) -> bool:
    """Swap to move one UPO from ``src`` to ``dst`` without touching
    AGO counts: partners share ``has_ago`` and differ by 1 in UPO."""
    for i in assignment[src]:
        si = samples[i].spec
        for j in assignment[dst]:
            sj = samples[j].spec
            if si.has_ago != sj.has_ago:
                continue
            if si.n_upo - sj.n_upo == 1:
                _do_swap(assignment, src, dst, i, j)
                return True
    return False


def _do_swap(assignment, src, dst, i, j) -> None:
    assignment[src].remove(i)
    assignment[dst].remove(j)
    assignment[src].append(j)
    assignment[dst].append(i)


def split_corpus(
    corpus: Corpus, seed: int = 0
) -> Dict[SplitName, List[AuiSample]]:
    """Split ``corpus.samples`` to the exact Table II counts.

    Raises :class:`SplitInfeasibleError` when the corpus' box totals
    cannot satisfy the published split rows (never happens for corpora
    built by :func:`repro.datagen.corpus.build_corpus`).
    """
    total_needed = sum(n for n, _, _ in TABLE2_SPLITS.values())
    if len(corpus.samples) != total_needed:
        raise SplitInfeasibleError(
            f"corpus has {len(corpus.samples)} samples, Table II needs {total_needed}"
        )
    rng = np.random.default_rng(seed + 7)
    assignment = _greedy_assign(corpus.samples, rng)
    _swap_repair(corpus.samples, assignment)
    out: Dict[SplitName, List[AuiSample]] = {}
    for name in _SPLIT_ORDER:
        idxs = sorted(assignment[name])
        out[name] = [corpus.samples[i] for i in idxs]
    return out


def split_summary(
    splits: Dict[SplitName, List[AuiSample]]
) -> Dict[SplitName, Tuple[int, int, int]]:
    """(screenshots, AGO boxes, UPO boxes) per split — Table II rows."""
    out = {}
    for name, samples in splits.items():
        ago = sum(1 for s in samples if s.spec.has_ago)
        upo = sum(s.spec.n_upo for s in samples)
        out[name] = (len(samples), ago, upo)
    return out
