"""AUI screen templates — one per Table I subject.

Every template materializes the visual asymmetry the paper defines
(Section II-A): the App-Guided Option is large, central and
high-contrast; the User-Preferred Option is small, peripheral,
low-contrast or translucent.  Templates build *view trees*, not
bitmaps, so the same sample feeds the CV pipeline (via rendering), the
FraudDroid-like baseline (via metadata) and the runtime experiments
(via simulated apps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.rect import Rect
from repro.imaging.color import Color, PALETTE, mix
from repro.imaging.color import AGO_ACCENTS, UPO_MUTED
from repro.android.resources import ResourceIdPolicy, make_resource_id
from repro.android.view import SemanticRole, Shape, View, ViewGroup
from repro.android.apps import ScreenState
from repro.datagen.background import build_background_content
from repro.datagen.specs import AuiType, SampleSpec

WINDOW_W = 360
WINDOW_H = 568
FULLSCREEN_H = 640

_AGO_TEXTS = ("open now", "get it", "download", "subscribe", "upgrade",
              "claim cash", "join free", "allow", "rate five", "buy now")
_UPO_TEXTS = ("skip", "close", "later", "no thanks", "cancel", "deny")
#: Bare text links use short labels — "no thanks" renders as a wide
#: banner at UPO sizes, which no real app does for a dismiss link.
_UPO_LINK_TEXTS = ("skip", "close", "later", "deny")


@dataclass
class _Minter:
    """Mints resource ids under the sample app's naming policy."""

    package: str
    policy: ResourceIdPolicy
    rng: np.random.Generator

    def __call__(self, readable: str):
        return make_resource_id(self.package, readable, self.policy, self.rng)


def _accent(rng: np.random.Generator) -> Color:
    return PALETTE[str(rng.choice(AGO_ACCENTS))]


def _muted(rng: np.random.Generator) -> Color:
    return PALETTE[str(rng.choice(UPO_MUTED))]


def _window_height(fullscreen: bool) -> int:
    return FULLSCREEN_H if fullscreen else WINDOW_H


# ---------------------------------------------------------------------------
# Option builders
# ---------------------------------------------------------------------------

def _ago_rect(rng: np.random.Generator, central: bool, height: int) -> Rect:
    """Geometry of an AGO button: big, and central when the spec says so."""
    w = float(rng.uniform(190, 290))
    h = float(rng.uniform(46, 66))
    if central:
        cx = WINDOW_W / 2 + float(rng.uniform(-12, 12))
        cy = height * float(rng.uniform(0.42, 0.68))
    else:
        cx = WINDOW_W / 2 + float(rng.uniform(-40, 40))
        cy = height * float(rng.choice([0.18, 0.88])) + float(rng.uniform(-10, 10))
    return Rect.from_center(cx, cy, w, h)


def _add_ago(root: View, rng: np.random.Generator, spec: SampleSpec,
             mint: _Minter, text: Optional[str] = None,
             circle: bool = False) -> Rect:
    height = _window_height(spec.fullscreen)
    # Integer-aligned bounds: real annotation boxes are drawn on the
    # pixel grid, and pixel alignment is what makes IoU=0.9 reachable.
    rect = _ago_rect(rng, spec.ago_central, height).rounded()
    color = _accent(rng)
    # A minority of real AGOs are sloppily designed: washed-out colors
    # that barely pop from the artwork.  These drive AGO recall below
    # AGO precision, as in the paper's Table III.
    if rng.random() < 0.22:
        color = mix(color, PALETTE["near_white"], float(rng.uniform(0.55, 0.8)))
    # Many promo screens carry a *secondary* call-to-action (learn
    # more, see rules…) that is NOT the app-guided option; an imperfect
    # detector confuses the two, which is the paper's AGO FP source.
    if rng.random() < 0.45:
        _add_decoy_button(root, rng, mint, height, avoid=rect)
    if circle:
        d = float(rng.uniform(88, 120))
        rect = Rect.from_center(*rect.center, d, d).rounded()
        view = View(bounds=rect, shape=Shape.CIRCLE, bg_color=color,
                    clickable=True, role=SemanticRole.AGO,
                    resource_id=mint("btn_action"),
                    text=text or str(rng.choice(_AGO_TEXTS)), text_size=13,
                    text_color=PALETTE["white"])
    else:
        view = View(bounds=rect, shape=Shape.ROUNDED, bg_color=color,
                    corner_radius=rect.h / 2.2, clickable=True,
                    role=SemanticRole.AGO, resource_id=mint("btn_action"),
                    text=text or str(rng.choice(_AGO_TEXTS)),
                    text_size=15, text_color=PALETTE["white"])
    root.add_child(view)
    return rect


def _add_decoy_button(root: View, rng: np.random.Generator, mint: _Minter,
                      height: int, avoid: Rect) -> None:
    """An unannotated mid-size secondary button near the AGO."""
    w = float(rng.uniform(110, 175))
    h = float(rng.uniform(32, 46))
    for _ in range(10):
        cx = WINDOW_W / 2 + float(rng.uniform(-60, 60))
        cy = float(rng.uniform(height * 0.25, height * 0.9))
        rect = Rect.from_center(cx, cy, w, h).rounded()
        if rect.inflated(8).intersection(avoid).is_empty():
            break
    else:
        return
    color = mix(_accent(rng), PALETTE["white"], float(rng.uniform(0.1, 0.4)))
    root.add_child(View(bounds=rect, shape=Shape.ROUNDED,
                        corner_radius=rect.h / 2.2, bg_color=color,
                        clickable=True, text=str(rng.choice(("learn more", "see rules", "details"))),
                        text_size=11, text_color=PALETTE["white"],
                        resource_id=mint("btn_secondary")))


def _upo_rect(rng: np.random.Generator, corner: bool, height: int,
              size: float) -> Rect:
    if corner:
        margin = float(rng.uniform(8, 26))
        corners = [
            (WINDOW_W - margin - size, margin),               # top-right
            (margin, margin),                                 # top-left
            (WINDOW_W - margin - size, height - margin - size),  # bottom-right
        ]
        weights = [0.72, 0.16, 0.12]
        idx = int(rng.choice(len(corners), p=weights))
        x, y = corners[idx]
    else:
        # Peripheral but not cornered: a thin strip above/below center.
        x = WINDOW_W / 2 + float(rng.uniform(-70, 70)) - size / 2
        y = height * float(rng.choice([0.78, 0.86])) - size / 2
    return Rect(x, y, size, size)


def _clamp_to_window(rect: Rect, height: int, margin: float = 2.0) -> Rect:
    """Keep an option fully on screen; off-screen options would be
    unannotatable (and unclickable) on a real device."""
    x = float(np.clip(rect.x, margin, WINDOW_W - margin - rect.w))
    y = float(np.clip(rect.y, margin, height - margin - rect.h))
    return Rect(x, y, rect.w, rect.h)


def _add_upo(root: View, rng: np.random.Generator, spec: SampleSpec,
             mint: _Minter, occupied: List[Rect]) -> List[Rect]:
    """Add ``spec.n_upo`` user-preferred options; returns their rects."""
    height = _window_height(spec.fullscreen)
    rects: List[Rect] = []
    for i in range(spec.n_upo):
        if spec.hard_upo:
            size = float(rng.uniform(11, 16))
            alpha = float(rng.uniform(0.2, 0.42))
        else:
            size = float(rng.uniform(17, 30))
            alpha = float(rng.uniform(0.88, 1.0))
        corner = spec.upo_corner if i == 0 else not spec.upo_corner
        for _ in range(12):  # rejection-sample a free spot
            rect = _upo_rect(rng, corner, height, size)
            if all(rect.inflated(6).intersection(o).is_empty() for o in occupied + rects):
                break
        style = rng.choice(["cross", "chip", "text"], p=[0.7, 0.25, 0.05])
        if style == "cross":
            rect = _clamp_to_window(rect, height).rounded()
            view = View(bounds=rect, shape=Shape.CIRCLE,
                        bg_color=_muted(rng), bg_alpha=alpha,
                        icon="cross", icon_color=PALETTE["dark_gray"],
                        icon_alpha=alpha, clickable=True,
                        role=SemanticRole.UPO, resource_id=mint("iv_close"))
        elif style == "chip":
            chip = _clamp_to_window(
                Rect(rect.x - size * 0.7, rect.y, size * 2.4, size),
                height).rounded()
            rect = chip
            view = View(bounds=chip, shape=Shape.ROUNDED,
                        corner_radius=chip.h / 2, bg_color=_muted(rng),
                        bg_alpha=alpha, clickable=True,
                        text=str(rng.choice(_UPO_TEXTS)),
                        text_size=max(6.0, chip.h * 0.45),
                        text_color=PALETTE["dark_gray"], text_alpha=alpha,
                        role=SemanticRole.UPO, resource_id=mint("btn_skip"))
        else:
            # Bare text link: bounds sized to the rendered ink so the
            # annotation matches what a labeler would draw around it.
            from repro.imaging.text import pseudo_text_width
            text = str(rng.choice(_UPO_LINK_TEXTS))
            text_size = max(6.0, min(size * 0.8, 16.0))
            ink_w = pseudo_text_width(text, text_size)
            label = _clamp_to_window(
                Rect(rect.x - ink_w / 2, rect.y, ink_w, text_size),
                height).rounded()
            rect = label
            view = View(bounds=label, clickable=True, text=text,
                        text_size=text_size,
                        text_color=PALETTE["gray"], text_alpha=alpha,
                        role=SemanticRole.UPO, resource_id=mint("tv_cancel"))
        root.add_child(view)
        rects.append(rect)
    return rects


# ---------------------------------------------------------------------------
# Shared scaffolding
# ---------------------------------------------------------------------------

def _dim_scrim(root: ViewGroup, rng: np.random.Generator, height: int) -> None:
    root.add_child(View(bounds=Rect(0, 0, WINDOW_W, height),
                        bg_color=PALETTE["black"],
                        bg_alpha=float(rng.uniform(0.45, 0.7))))


def _dialog_card(root: ViewGroup, rng: np.random.Generator,
                 height: int, tall: bool = False) -> Rect:
    w = float(rng.uniform(260, 310))
    h = float(rng.uniform(300, 400)) if tall else float(rng.uniform(180, 260))
    card = Rect.from_center(WINDOW_W / 2, height * 0.45, w, h)
    root.add_child(View(bounds=card, shape=Shape.ROUNDED, corner_radius=14,
                        bg_color=PALETTE["white"]))
    return card


def _poster(root: ViewGroup, rng: np.random.Generator, height: int) -> None:
    """Full-bleed promotional artwork (gradient + blocks + banner text)."""
    a, b = _accent(rng), _accent(rng)
    root.add_child(View(bounds=Rect(0, 0, WINDOW_W, height),
                        bg_color=mix(a, PALETTE["white"], 0.15)))
    for _ in range(int(rng.integers(2, 5))):
        bw = float(rng.uniform(60, 200))
        bh = float(rng.uniform(40, 140))
        x = float(rng.uniform(0, WINDOW_W - bw))
        y = float(rng.uniform(40, height - bh - 40))
        # Pastel blocks: strongly whitened so the vivid AGO keeps a
        # clear color margin against the artwork around it.
        root.add_child(View(bounds=Rect(x, y, bw, bh), shape=Shape.ROUNDED,
                            corner_radius=10,
                            bg_color=mix(b, PALETTE["white"],
                                         float(rng.uniform(0.5, 0.8))),
                            bg_alpha=float(rng.uniform(0.6, 1.0))))
    root.add_child(View(bounds=Rect(30, height * 0.22, WINDOW_W - 60, 26),
                        text="mega sale today", text_size=20,
                        text_color=PALETTE["white"]))


def _ad_tag(root: ViewGroup, rng: np.random.Generator, height: int,
            mint: _Minter) -> None:
    """The legally-required but barely-noticeable "advertisement" tag."""
    x = float(rng.choice([6, WINDOW_W - 40]))
    y = float(rng.choice([6, height - 16]))
    root.add_child(View(bounds=Rect(x, y, 34, 10), text="AD",
                        text_size=7, text_color=PALETTE["gray"],
                        text_alpha=0.55, resource_id=mint("tv_ad_tag")))


# ---------------------------------------------------------------------------
# Per-type templates
# ---------------------------------------------------------------------------

def _tpl_advertisement(root, rng, spec, mint, height):
    _poster(root, rng, height)
    _ad_tag(root, rng, height, mint)
    if spec.has_ago:
        return _add_ago(root, rng, spec, mint, text="open now")
    # Whole-surface ad: tapping anywhere opens it; no distinct AGO box.
    root.clickable = True
    root.resource_id = mint("ad_container")
    return None


def _tpl_sales_promotion(root, rng, spec, mint, height):
    _dim_scrim(root, rng, height)
    card = _dialog_card(root, rng, height, tall=True)
    root.add_child(View(bounds=Rect(card.x + 20, card.y + 24, card.w - 40, 20),
                        text="limited offer", text_size=16,
                        text_color=PALETTE["red"]))
    root.add_child(View(bounds=Rect(card.x + 24, card.y + 64, card.w - 48,
                                    card.h * 0.34),
                        bg_color=mix(_accent(rng), PALETTE["white"], 0.6),
                        corner_radius=8))
    if spec.has_ago:
        return _add_ago(root, rng, spec, mint, text="join free")
    root.clickable = True
    root.resource_id = mint("promo_container")
    return None


def _tpl_lucky_money(root, rng, spec, mint, height):
    _dim_scrim(root, rng, height)
    packet = Rect.from_center(WINDOW_W / 2, height * 0.44,
                              float(rng.uniform(230, 280)),
                              float(rng.uniform(300, 360)))
    root.add_child(View(bounds=packet, shape=Shape.ROUNDED, corner_radius=18,
                        bg_color=PALETTE["lucky_red"]))
    root.add_child(View(bounds=Rect(packet.x + 24, packet.y + 30,
                                    packet.w - 48, 22),
                        text="cash reward", text_size=17,
                        text_color=PALETTE["gold"]))
    if spec.has_ago:
        return _add_ago(root, rng, spec, mint, text="claim cash", circle=True)
    root.clickable = True
    root.resource_id = mint("red_packet")
    return None


def _tpl_app_upgrade(root, rng, spec, mint, height):
    _dim_scrim(root, rng, height)
    card = _dialog_card(root, rng, height)
    root.add_child(View(bounds=Rect(card.x + 20, card.y + 20, card.w - 40, 18),
                        text="new version ready", text_size=14,
                        text_color=PALETTE["black"]))
    for i in range(3):
        root.add_child(View(bounds=Rect(card.x + 24, card.y + 56 + i * 18,
                                        (card.w - 48) * 0.8, 8),
                            bg_color=PALETTE["light_gray"]))
    if spec.has_ago:
        return _add_ago(root, rng, spec, mint, text="upgrade")
    root.clickable = True
    root.resource_id = mint("upgrade_dialog")
    return None


def _tpl_operation_guide(root, rng, spec, mint, height):
    _dim_scrim(root, rng, height)
    spot = Rect.from_center(float(rng.uniform(80, 280)),
                            float(rng.uniform(120, height - 160)), 90, 90)
    root.add_child(View(bounds=spot, shape=Shape.CIRCLE,
                        bg_color=PALETTE["white"], bg_alpha=0.92))
    root.add_child(View(bounds=Rect(40, spot.bottom + 18, WINDOW_W - 80, 14),
                        text="tap here to explore", text_size=11,
                        text_color=PALETTE["white"]))
    if spec.has_ago:
        return _add_ago(root, rng, spec, mint, text="got it")
    root.clickable = True
    root.resource_id = mint("guide_overlay")
    return None


def _tpl_feedback_request(root, rng, spec, mint, height):
    _dim_scrim(root, rng, height)
    card = _dialog_card(root, rng, height)
    root.add_child(View(bounds=Rect(card.x + 20, card.y + 22, card.w - 40, 16),
                        text="enjoying the app", text_size=13,
                        text_color=PALETTE["black"]))
    for i in range(5):
        cx = card.x + card.w / 2 + (i - 2) * 34
        root.add_child(View(bounds=Rect.from_center(cx, card.y + 80, 24, 24),
                            shape=Shape.CIRCLE, bg_color=PALETTE["amber"]))
    if spec.has_ago:
        return _add_ago(root, rng, spec, mint, text="rate five")
    root.clickable = True
    root.resource_id = mint("rate_dialog")
    return None


def _tpl_permission_request(root, rng, spec, mint, height):
    _dim_scrim(root, rng, height)
    card = _dialog_card(root, rng, height)
    root.add_child(View(bounds=Rect(card.x + 20, card.y + 22, card.w - 40, 14),
                        text="allow location always", text_size=12,
                        text_color=PALETTE["black"]))
    root.add_child(View(bounds=Rect(card.x + 24, card.y + 52, card.w - 48, 40),
                        bg_color=PALETTE["near_white"], corner_radius=6))
    if spec.has_ago:
        return _add_ago(root, rng, spec, mint, text="allow")
    root.clickable = True
    root.resource_id = mint("perm_dialog")
    return None


_TEMPLATES = {
    AuiType.ADVERTISEMENT: _tpl_advertisement,
    AuiType.SALES_PROMOTION: _tpl_sales_promotion,
    AuiType.LUCKY_MONEY: _tpl_lucky_money,
    AuiType.APP_UPGRADE: _tpl_app_upgrade,
    AuiType.OPERATION_GUIDE: _tpl_operation_guide,
    AuiType.FEEDBACK_REQUEST: _tpl_feedback_request,
    AuiType.PERMISSION_REQUEST: _tpl_permission_request,
}


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def build_aui_screen(
    spec: SampleSpec,
    package: str = "com.example.app",
    id_policy: ResourceIdPolicy = ResourceIdPolicy.READABLE,
) -> ScreenState:
    """Materialize a sample spec into a labeled AUI screen."""
    rng = np.random.default_rng(spec.style_seed)
    mint = _Minter(package, id_policy, rng)
    height = _window_height(spec.fullscreen)
    root = ViewGroup(bounds=Rect(0, 0, WINDOW_W, height),
                     bg_color=PALETTE["white"])
    # Dialog-style AUIs sit above ordinary app content.
    if spec.aui_type is not AuiType.ADVERTISEMENT or bool(rng.integers(0, 2)):
        content = build_background_content(rng, WINDOW_W, height,
                                           package=package)
        root.add_child(content)

    ago_rect = _TEMPLATES[spec.aui_type](root, rng, spec, mint, height)
    occupied = [ago_rect] if ago_rect is not None else []
    upo_rects = _add_upo(root, rng, spec, mint, occupied)

    labels: List[Tuple[str, Rect]] = []
    if ago_rect is not None:
        labels.append(("AGO", ago_rect))
    labels.extend(("UPO", r) for r in upo_rects)
    return ScreenState(
        root=root,
        fullscreen=spec.fullscreen,
        is_aui=True,
        label_boxes=labels,
        name=f"aui:{spec.aui_type.value}:{spec.index}",
    )


def build_non_aui_screen(
    rng: np.random.Generator,
    benign_close: bool = False,
    package: str = "com.example.app",
    id_policy: ResourceIdPolicy = ResourceIdPolicy.READABLE,
    fullscreen: bool = False,
) -> ScreenState:
    """An ordinary (non-AUI) screen.

    With ``benign_close`` the screen shows a dialog that *has* a small
    close button but no app-guided option — the paper's canonical
    false-positive bait (its project repo keeps a folder of these).
    """
    mint = _Minter(package, id_policy, rng)
    height = _window_height(fullscreen)
    root = ViewGroup(bounds=Rect(0, 0, WINDOW_W, height),
                     bg_color=PALETTE["white"])
    root.add_child(build_background_content(rng, WINDOW_W, height,
                                            package=package))
    if benign_close:
        _dim_scrim(root, rng, height)
        card = _dialog_card(root, rng, height)
        root.add_child(View(bounds=Rect(card.x + 18, card.y + 20,
                                        card.w - 36, 14),
                            text="whats new this week", text_size=11,
                            text_color=PALETTE["black"]))
        for i in range(3):
            root.add_child(View(bounds=Rect(card.x + 20, card.y + 52 + i * 20,
                                            (card.w - 40) * 0.85, 8),
                                bg_color=PALETTE["light_gray"]))
        # Two balanced, same-sized plain buttons: no asymmetry.
        bw = (card.w - 60) / 2
        for j, label in enumerate(("ok", "view")):
            root.add_child(View(
                bounds=Rect(card.x + 20 + j * (bw + 20), card.bottom - 54,
                            bw, 34),
                shape=Shape.ROUNDED, corner_radius=8,
                bg_color=PALETTE["near_white"],
                border_color=PALETTE["light_gray"], border_width=1,
                clickable=True, text=label, text_size=11,
                text_color=PALETTE["dark_gray"],
                resource_id=mint(f"btn_{label}"),
            ))
        size = float(rng.uniform(16, 24))
        root.add_child(View(
            bounds=Rect(card.right - size - 8, card.y + 8, size, size),
            shape=Shape.CIRCLE, bg_color=PALETTE["light_gray"],
            bg_alpha=0.9, icon="cross", icon_color=PALETTE["dark_gray"],
            clickable=True, role=SemanticRole.BENIGN_CLOSE,
            resource_id=mint("iv_close"),
        ))
    return ScreenState(
        root=root,
        fullscreen=fullscreen,
        is_aui=False,
        label_boxes=[],
        name="non_aui:benign_close" if benign_close else "non_aui:plain",
    )
