"""COCO-format annotation export.

The paper labels AGO/UPO bounding boxes "following the format of COCO
dataset".  ``to_coco`` serializes a list of samples into that schema
(``images`` / ``annotations`` / ``categories``), usable directly by any
COCO-consuming tooling and by our own loaders.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.datagen.corpus import AuiSample
from repro.datagen.templates import FULLSCREEN_H, WINDOW_W

CATEGORY_IDS: Dict[str, int] = {"AGO": 1, "UPO": 2}


def to_coco(samples: Sequence[AuiSample]) -> dict:
    """Export samples as a COCO detection dictionary.

    Boxes are reported in *screen* coordinates (what a deployed model
    sees), i.e. window boxes shifted by the status-bar offset for
    non-full-screen samples.
    """
    images: List[dict] = []
    annotations: List[dict] = []
    ann_id = 1
    for image_id, sample in enumerate(samples, start=1):
        spec = sample.spec
        images.append(
            {
                "id": image_id,
                "file_name": f"aui_{spec.index:04d}.png",
                "width": WINDOW_W,
                "height": FULLSCREEN_H,
                "aui_type": spec.aui_type.value,
                "source": sample.source,
                "app_package": sample.app.package,
            }
        )
        offset_y = 0.0 if spec.fullscreen else 24.0
        for role, rect in sample.screen.label_boxes:
            shifted = rect.translated(0.0, offset_y)
            annotations.append(
                {
                    "id": ann_id,
                    "image_id": image_id,
                    "category_id": CATEGORY_IDS[role],
                    "bbox": list(shifted.as_coco()),
                    "area": shifted.area,
                    "iscrowd": 0,
                }
            )
            ann_id += 1
    return {
        "info": {
            "description": "Synthetic AUI dataset (DARPA reproduction)",
            "version": "1.0",
        },
        "images": images,
        "annotations": annotations,
        "categories": [
            {"id": cid, "name": name, "supercategory": "aui_option"}
            for name, cid in CATEGORY_IDS.items()
        ],
    }
