"""Text masking (paper Figure 7 / Table IV).

To show that DARPA keys on visual appearance rather than language, the
paper re-trains on AUIs whose AGO/UPO texts are blurred out.
``mask_option_texts`` applies that transform to a rendered screenshot:
each option box's interior is heavily blurred, destroying glyph
structure while preserving shape, size, placement and color.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.rect import Rect
from repro.imaging.filters import blur_region


def mask_option_texts(
    image: np.ndarray,
    labels: Sequence[Tuple[str, Rect]],
    sigma: float = 3.5,
    shrink: float = 0.12,
) -> np.ndarray:
    """Blur the text-bearing interior of every labeled option box.

    ``shrink`` insets the blur region slightly so box *edges* (the
    geometry signal) survive while interior strokes (the text) do not —
    mirroring the paper's Figure 7 where button outlines remain visible.
    """
    if not 0.0 <= shrink < 0.5:
        raise ValueError("shrink must be in [0, 0.5)")
    out = image
    for _, rect in labels:
        inset = min(rect.w, rect.h) * shrink
        out = blur_region(out, rect.inflated(-inset), sigma=sigma)
    return out
