"""Corpus assembly: the synthetic ``D_app`` and ``D_aui``.

``build_app_dataset`` mints 632 app profiles spanning the paper's
categories with realistic resource-id naming policies (most real apps
ship ProGuard-obfuscated, which is what defeats FraudDroid in Table VI).
``build_corpus`` deals the 1,072 quota-matched AUI sample specs across
those apps, attaches template-built screens, and adds a pool of non-AUI
screens for false-positive and runtime evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geometry.rect import Rect
from repro.android.apps import ScreenState
from repro.android.resources import ResourceIdPolicy
from repro.android.window import Screen, WindowManager
from repro.android.renderer import render_screen
from repro.datagen.specs import AuiType, SampleSpec, make_sample_specs
from repro.datagen.templates import build_aui_screen, build_non_aui_screen

#: Mi-Store-leaderboard-like category mix for D_app.
APP_CATEGORIES: Tuple[Tuple[str, float], ...] = (
    ("shopping", 0.14),
    ("social", 0.13),
    ("video", 0.12),
    ("games", 0.12),
    ("utilities", 0.11),
    ("news", 0.09),
    ("finance", 0.08),
    ("education", 0.08),
    ("travel", 0.07),
    ("health", 0.06),
)

#: Resource-id policy mix.  The paper blames FraudDroid's 14.4% recall
#: on obfuscated or dynamically-generated ids; most shipped APKs are
#: ProGuard/R8-processed, so readable ids are the minority.
ID_POLICY_MIX: Tuple[Tuple[ResourceIdPolicy, float], ...] = (
    (ResourceIdPolicy.READABLE, 0.18),
    (ResourceIdPolicy.OBFUSCATED, 0.57),
    (ResourceIdPolicy.DYNAMIC, 0.25),
)

N_APPS = 632
#: Screenshot provenance (Section III-A): 7,884 of 8,855 raw shots came
#: from Monkey runs, 971 from huaban.com.
FRACTION_FROM_MONKEY = 7884 / 8855


@dataclass(frozen=True)
class AppProfile:
    """One entry of the simulated ``D_app``."""

    package: str
    category: str
    id_policy: ResourceIdPolicy
    from_google_play: bool


@dataclass
class AuiSample:
    """One labeled AUI screenshot of ``D_aui`` (lazily rendered)."""

    spec: SampleSpec
    app: AppProfile
    source: str  # "monkey" | "huaban"
    _screen: Optional[ScreenState] = field(default=None, repr=False)

    @property
    def screen(self) -> ScreenState:
        if self._screen is None:
            self._screen = build_aui_screen(
                self.spec, package=self.app.package,
                id_policy=self.app.id_policy,
            )
        return self._screen

    @property
    def aui_type(self) -> AuiType:
        return self.spec.aui_type


def render_state(
    state: ScreenState,
    screen: Optional[Screen] = None,
    noise_seed: Optional[int] = None,
) -> Tuple[np.ndarray, List[Tuple[str, Rect]]]:
    """Rasterize a screen state; labels are returned in screen coords.

    This is the exact pipeline a runtime screenshot goes through, so
    training images and deployment images share their distribution.
    """
    screen = screen or Screen()
    wm = WindowManager(screen)
    window = wm.attach_app_window(state.root, "com.dataset.render",
                                  fullscreen=state.fullscreen)
    rng = np.random.default_rng(noise_seed) if noise_seed is not None else None
    canvas = render_screen(wm, noise_rng=rng)
    offset = window.offset
    labels = [(role, rect.offset_by(offset)) for role, rect in state.label_boxes]
    return canvas.to_array(), labels


@dataclass
class Corpus:
    """The assembled datasets: D_app, D_aui, and evaluation negatives."""

    apps: List[AppProfile]
    samples: List[AuiSample]
    negatives: List[ScreenState]
    seed: int

    def type_distribution(self) -> Dict[AuiType, int]:
        """Regenerates Table I."""
        counts = {t: 0 for t in AuiType}
        for sample in self.samples:
            counts[sample.aui_type] += 1
        return counts

    def box_totals(self) -> Tuple[int, int]:
        """(AGO boxes, UPO boxes) across the corpus (Table II totals)."""
        ago = sum(1 for s in self.samples if s.spec.has_ago)
        upo = sum(s.spec.n_upo for s in self.samples)
        return ago, upo

    def layout_statistics(self) -> Dict[str, float]:
        """Section III-A: central-AGO and corner-UPO fractions."""
        with_ago = [s for s in self.samples if s.spec.has_ago]
        with_upo = [s for s in self.samples if s.spec.n_upo > 0]
        return {
            "ago_central": sum(s.spec.ago_central for s in with_ago) / len(with_ago),
            "upo_corner": sum(s.spec.upo_corner for s in with_upo) / len(with_upo),
            "first_party": sum(s.spec.first_party for s in self.samples) / len(self.samples),
        }


def build_app_dataset(seed: int = 0, n_apps: int = N_APPS) -> List[AppProfile]:
    """Mint the simulated ``D_app`` deterministically."""
    rng = np.random.default_rng(seed)
    categories = [c for c, _ in APP_CATEGORIES]
    cat_p = np.array([p for _, p in APP_CATEGORIES])
    cat_p = cat_p / cat_p.sum()
    policies = [p for p, _ in ID_POLICY_MIX]
    pol_p = np.array([w for _, w in ID_POLICY_MIX])
    pol_p = pol_p / pol_p.sum()
    apps = []
    for i in range(n_apps):
        category = str(rng.choice(categories, p=cat_p))
        policy = policies[int(rng.choice(len(policies), p=pol_p))]
        apps.append(
            AppProfile(
                package=f"com.{category}.app{i:03d}",
                category=category,
                id_policy=policy,
                # Mi-Store apps are mostly outside Google Play.
                from_google_play=bool(rng.random() < 0.2),
            )
        )
    return apps


def build_corpus(seed: int = 0, n_negatives: int = 400) -> Corpus:
    """Assemble the full synthetic corpus.

    Screens are built lazily (first access to ``sample.screen``), so
    corpus construction itself is instant and statistics-only consumers
    (Table I/II benches) never pay for view-tree building.
    """
    rng = np.random.default_rng(seed + 1)
    apps = build_app_dataset(seed)
    specs = make_sample_specs(seed)
    n_monkey = round(FRACTION_FROM_MONKEY * len(specs))
    sources = ["monkey"] * n_monkey + ["huaban"] * (len(specs) - n_monkey)
    rng.shuffle(sources)
    samples = [
        AuiSample(spec=spec, app=apps[int(rng.integers(0, len(apps)))],
                  source=sources[i])
        for i, spec in enumerate(specs)
    ]
    negatives: List[ScreenState] = []
    for i in range(n_negatives):
        benign = i % 3 == 0  # every third negative carries a close button
        negatives.append(
            build_non_aui_screen(
                rng, benign_close=benign,
                package=apps[int(rng.integers(0, len(apps)))].package,
                fullscreen=bool(rng.integers(0, 2)),
            )
        )
    return Corpus(apps=apps, samples=samples, negatives=negatives, seed=seed)
