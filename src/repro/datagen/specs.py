"""Sample specifications and the paper's published quotas.

The generator is *quota-driven*: instead of sampling type/layout flags
independently (which would only match the paper's statistics in
expectation), it deals out exact per-sample flags so the regenerated
Table I, Table II and Section III-A layout statistics are identical to
the paper's on every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

import numpy as np


class AuiType(Enum):
    """The seven AUI subjects of Table I."""

    ADVERTISEMENT = "Advertisement"
    SALES_PROMOTION = "Sales promotion"
    LUCKY_MONEY = "Lucky money (Red packet)"
    APP_UPGRADE = "App upgrade"
    OPERATION_GUIDE = "Operation guide"
    FEEDBACK_REQUEST = "Feedback request"
    PERMISSION_REQUEST = "Sensitive permission request"


#: Table I — instances per AUI type (total 1,072).
TABLE1_QUOTAS: Dict[AuiType, int] = {
    AuiType.ADVERTISEMENT: 696,
    AuiType.SALES_PROMOTION: 179,
    AuiType.LUCKY_MONEY: 131,
    AuiType.APP_UPGRADE: 43,
    AuiType.OPERATION_GUIDE: 16,
    AuiType.FEEDBACK_REQUEST: 4,
    AuiType.PERMISSION_REQUEST: 3,
}

TOTAL_AUI_SAMPLES = sum(TABLE1_QUOTAS.values())  # 1,072

#: Table II — (screenshots, AGO boxes, UPO boxes) per split.
TABLE2_SPLITS: Dict[str, Tuple[int, int, int]] = {
    "train": (642, 453, 657),
    "val": (215, 150, 223),
    "test": (215, 141, 222),
}

#: Section III-A layout statistics.
FRACTION_AGO_CENTRAL = 0.946
FRACTION_UPO_CORNER = 0.731

#: Hosts of AUI (Section III-A): 35.1% first-party, rest third-party ads.
FRACTION_FIRST_PARTY = 376 / 1072

#: Total annotated boxes across the corpus.  AGO matches Table II's
#: bottom row (744).  For UPO, Table II's split rows sum to
#: 657 + 223 + 222 = 1,102 while its printed total says 1,103 — the
#: paper's table is off by one; we honour the split rows.
TOTAL_AGO_BOXES = 744
TOTAL_UPO_BOXES = 1102


@dataclass(frozen=True)
class SampleSpec:
    """Everything a template needs to build one AUI screen.

    ``has_ago`` is False for screens whose entire surface acts as the
    app-guided option (no distinct AGO widget is annotated) — the reason
    Table II counts only 744 AGO boxes over 1,072 screenshots.
    ``n_upo`` can be 0 (no escape offered at all) or 2 (two competing
    dismissal affordances), matching the paper's observation that
    screenshots "may have more than one UPO".
    """

    index: int
    aui_type: AuiType
    has_ago: bool
    n_upo: int
    ago_central: bool
    upo_corner: bool
    fullscreen: bool
    first_party: bool
    hard_upo: bool  # translucent / extra-small UPO (the paper's FN source)
    style_seed: int

    def __post_init__(self) -> None:
        if self.n_upo not in (0, 1, 2):
            raise ValueError(f"n_upo must be 0..2, got {self.n_upo}")
        if not self.has_ago and self.n_upo == 0:
            raise ValueError("a sample must annotate at least one option")


def _deal_flags(total: int, n_true: int, rng: np.random.Generator) -> List[bool]:
    """Exactly ``n_true`` Trues among ``total`` flags, shuffled."""
    flags = [True] * n_true + [False] * (total - n_true)
    rng.shuffle(flags)
    return flags


def make_sample_specs(seed: int = 0) -> List[SampleSpec]:
    """Deal the 1,072 sample specs matching every published statistic.

    Deterministic for a given seed.  Box totals: 744 samples carry an
    AGO; UPO counts are dealt so they sum to exactly 1,103 with a small
    number of no-UPO and two-UPO screens.
    """
    rng = np.random.default_rng(seed)
    total = TOTAL_AUI_SAMPLES

    types: List[AuiType] = []
    for aui_type, quota in TABLE1_QUOTAS.items():
        types.extend([aui_type] * quota)
    rng.shuffle(types)  # type: ignore[arg-type]

    has_ago = _deal_flags(total, TOTAL_AGO_BOXES, rng)

    # UPO counts: choose k2 two-UPO and k0 zero-UPO screens such that
    # (total - k0 - k2) + 2*k2 = TOTAL_UPO_BOXES  =>  k2 - k0 = 30.
    k0, k2 = 40, 70
    upo_counts = [2] * k2 + [0] * k0 + [1] * (total - k0 - k2)
    rng.shuffle(upo_counts)
    # Zero-UPO screens must still have an AGO to be annotatable; repair
    # collisions by swapping with a one-UPO screen that has an AGO.
    for i in range(total):
        if upo_counts[i] == 0 and not has_ago[i]:
            for j in range(total):
                if upo_counts[j] == 1 and has_ago[j]:
                    upo_counts[i], upo_counts[j] = 1, 0
                    break

    n_ago = sum(has_ago)
    ago_central_pool = _deal_flags(n_ago, round(FRACTION_AGO_CENTRAL * n_ago), rng)
    n_with_upo = sum(1 for c in upo_counts if c > 0)
    upo_corner_pool = _deal_flags(n_with_upo, round(FRACTION_UPO_CORNER * n_with_upo), rng)

    fullscreen = _deal_flags(total, round(0.42 * total), rng)
    first_party = _deal_flags(total, round(FRACTION_FIRST_PARTY * total), rng)
    # ~12% of UPOs are visually hard (translucent/extra small); these
    # drive the recall ceiling the paper reports.
    hard = _deal_flags(total, round(0.12 * total), rng)

    specs: List[SampleSpec] = []
    ago_i = upo_i = 0
    for i in range(total):
        ago_flag = has_ago[i]
        central = ago_central_pool[ago_i] if ago_flag else False
        if ago_flag:
            ago_i += 1
        corner = False
        if upo_counts[i] > 0:
            corner = upo_corner_pool[upo_i]
            upo_i += 1
        specs.append(
            SampleSpec(
                index=i,
                aui_type=types[i],
                has_ago=ago_flag,
                n_upo=upo_counts[i],
                ago_central=central,
                upo_corner=corner,
                fullscreen=fullscreen[i],
                first_party=first_party[i],
                hard_upo=hard[i] and upo_counts[i] > 0,
                style_seed=int(rng.integers(0, 2**31 - 1)),
            )
        )
    return specs
