"""Pseudo-text rendering.

We have no font rasterizer offline, and the paper's point (Table IV,
text-masked experiment) is precisely that DARPA does *not* read text —
only its visual footprint matters.  So we render "text" as deterministic
per-character glyph textures: each character becomes a small pattern of
bars derived from its code point.  The result has the visual statistics
of text (horizontal runs of high-frequency strokes) without any
linguistic content, which is exactly the signal a CV detector sees.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.rect import Rect
from repro.imaging.canvas import Canvas
from repro.imaging.color import Color

#: Width of a glyph cell relative to the text size (height).
_GLYPH_ASPECT = 0.62
#: Gap between glyph cells relative to the text size.
_GLYPH_GAP = 0.14


def pseudo_text_width(text: str, size: float) -> float:
    """Advance width of ``text`` rendered at height ``size``."""
    if not text:
        return 0.0
    n = len(text)
    return n * size * _GLYPH_ASPECT + (n - 1) * size * _GLYPH_GAP


def _glyph_bars(char: str) -> np.ndarray:
    """A deterministic 5x3 on/off stroke pattern for a character.

    Spaces render empty.  Other characters hash their code point into a
    pattern with 6-10 lit cells, giving text-like stroke density.
    """
    if char.isspace():
        return np.zeros((5, 3), dtype=bool)
    code = ord(char)
    # A tiny splitmix-style scrambler keeps patterns well distributed.
    state = (code * 0x9E3779B1 + 0x85EBCA6B) & 0xFFFFFFFF
    bits = []
    for _ in range(15):
        state = (state * 0x2545F491 + 0x343FD) & 0xFFFFFFFF
        bits.append((state >> 16) & 1)
    pattern = np.array(bits, dtype=bool).reshape(5, 3)
    # Guarantee visible mass: force the middle row on.
    pattern[2, :] = True
    return pattern


def draw_pseudo_text(
    canvas: Canvas,
    text: str,
    x: float,
    y: float,
    size: float,
    color: Color,
    alpha: float = 1.0,
) -> Rect:
    """Draw ``text`` with its top-left at ``(x, y)``; returns its bounds.

    ``size`` is the text height in pixels.  Glyphs are drawn as 5x3 cell
    grids of filled blocks.
    """
    if size <= 0:
        raise ValueError("text size must be positive")
    cursor = x
    glyph_w = size * _GLYPH_ASPECT
    gap = size * _GLYPH_GAP
    cell_h = size / 5.0
    cell_w = glyph_w / 3.0
    for char in text:
        pattern = _glyph_bars(char)
        for row in range(5):
            for col in range(3):
                if pattern[row, col]:
                    canvas.fill_rect(
                        Rect(cursor + col * cell_w, y + row * cell_h,
                             cell_w, cell_h),
                        color,
                        alpha=alpha,
                    )
        cursor += glyph_w + gap
    width = pseudo_text_width(text, size)
    return Rect(x, y, width, size)
