"""Pure-NumPy raster imaging.

Screens in the simulated Android substrate are rendered to ``float32``
RGB arrays of shape ``(H, W, 3)`` with channel values in ``[0, 1]``.
This package provides the drawing primitives (rectangles, rounded
rectangles, circles, pseudo-text), alpha compositing, blur and edge
filters, and color utilities (relative luminance, WCAG-style contrast
ratio) that the dataset generator uses to craft visually asymmetric UIs
and that the detectors consume.
"""

from repro.imaging.canvas import Canvas
from repro.imaging.color import (
    Color,
    contrast_ratio,
    mix,
    relative_luminance,
    PALETTE,
)
from repro.imaging.filters import (
    box_blur,
    gaussian_blur,
    gradient_magnitude,
    to_grayscale,
)
from repro.imaging.text import draw_pseudo_text, pseudo_text_width

__all__ = [
    "Canvas",
    "Color",
    "contrast_ratio",
    "mix",
    "relative_luminance",
    "PALETTE",
    "box_blur",
    "gaussian_blur",
    "gradient_magnitude",
    "to_grayscale",
    "draw_pseudo_text",
    "pseudo_text_width",
]
