"""A float RGB canvas with alpha-composited drawing primitives.

The simulated Android renderer draws view trees onto a ``Canvas``; the
dataset generator draws AUI screens directly.  All drawing is clipped to
the canvas bounds, and every primitive accepts an ``alpha`` so that the
generator can produce the translucent, low-salience UPOs the paper
describes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.geometry.rect import Rect
from repro.imaging.color import Color


class Canvas:
    """An ``(H, W, 3)`` float32 RGB raster with [0, 1] channels."""

    def __init__(self, width: int, height: int, background: Optional[Color] = None):
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = int(width)
        self.height = int(height)
        self.pixels = np.zeros((self.height, self.width, 3), dtype=np.float32)
        if background is not None:
            self.pixels[:] = background.as_array()

    # -- bookkeeping ---------------------------------------------------

    @property
    def bounds(self) -> Rect:
        return Rect(0, 0, self.width, self.height)

    def copy(self) -> "Canvas":
        clone = Canvas(self.width, self.height)
        clone.pixels = self.pixels.copy()
        return clone

    def _clip(self, rect: Rect) -> Optional[Tuple[int, int, int, int]]:
        """Integer (y0, y1, x0, x1) slice bounds for a rect, or None."""
        r = rect.clipped_to(self.bounds)
        if r.is_empty():
            return None
        x0, y0 = int(np.floor(r.left)), int(np.floor(r.top))
        x1, y1 = int(np.ceil(r.right)), int(np.ceil(r.bottom))
        x0, x1 = max(0, x0), min(self.width, x1)
        y0, y1 = max(0, y0), min(self.height, y1)
        if x1 <= x0 or y1 <= y0:
            return None
        return y0, y1, x0, x1

    # -- compositing ------------------------------------------------------

    def _blend_region(
        self, y0: int, y1: int, x0: int, x1: int, color: Color, alpha: float
    ) -> None:
        alpha = float(np.clip(alpha, 0.0, 1.0))
        if alpha <= 0.0:
            return
        region = self.pixels[y0:y1, x0:x1]
        region *= 1.0 - alpha
        region += alpha * color.as_array()

    def _blend_mask(self, y0: int, y1: int, x0: int, x1: int, mask: np.ndarray,
                    color: Color, alpha: float) -> None:
        """Blend ``color`` where ``mask`` (float in [0,1]) is positive."""
        alpha = float(np.clip(alpha, 0.0, 1.0))
        if alpha <= 0.0:
            return
        a = (mask * alpha)[..., None].astype(np.float32)
        region = self.pixels[y0:y1, x0:x1]
        region *= 1.0 - a
        region += a * color.as_array()

    # -- primitives ---------------------------------------------------------

    def fill(self, color: Color) -> None:
        self.pixels[:] = color.as_array()

    def fill_rect(self, rect: Rect, color: Color, alpha: float = 1.0) -> None:
        clip = self._clip(rect)
        if clip is None:
            return
        self._blend_region(*clip, color=color, alpha=alpha)

    def stroke_rect(self, rect: Rect, color: Color, thickness: int = 2,
                    alpha: float = 1.0) -> None:
        """Outline a rect; strokes grow inward from the rect edge."""
        t = max(1, int(thickness))
        edges = [
            Rect(rect.left, rect.top, rect.w, t),                 # top
            Rect(rect.left, rect.bottom - t, rect.w, t),          # bottom
            Rect(rect.left, rect.top, t, rect.h),                 # left
            Rect(rect.right - t, rect.top, t, rect.h),            # right
        ]
        for edge in edges:
            self.fill_rect(edge, color, alpha=alpha)

    def fill_rounded_rect(self, rect: Rect, color: Color, radius: float,
                          alpha: float = 1.0) -> None:
        """Rect with circular corners — the shape of most app buttons."""
        clip = self._clip(rect)
        if clip is None:
            return
        y0, y1, x0, x1 = clip
        radius = float(np.clip(radius, 0.0, min(rect.w, rect.h) / 2.0))
        ys = np.arange(y0, y1, dtype=np.float32)[:, None] + 0.5
        xs = np.arange(x0, x1, dtype=np.float32)[None, :] + 0.5
        # Distance from each pixel to the rounded-rect interior.
        inner_left = rect.left + radius
        inner_right = rect.right - radius
        inner_top = rect.top + radius
        inner_bottom = rect.bottom - radius
        dx = np.maximum(np.maximum(inner_left - xs, xs - inner_right), 0.0)
        dy = np.maximum(np.maximum(inner_top - ys, ys - inner_bottom), 0.0)
        dist = np.sqrt(dx * dx + dy * dy)
        mask = np.clip(radius - dist + 0.5, 0.0, 1.0) if radius > 0 else (dist <= 0).astype(np.float32)
        # For radius == 0 dist is 0 inside the rect, so mask is the full box.
        self._blend_mask(y0, y1, x0, x1, mask.astype(np.float32), color, alpha)

    def fill_circle(self, cx: float, cy: float, radius: float, color: Color,
                    alpha: float = 1.0) -> None:
        rect = Rect.from_center(cx, cy, 2 * radius, 2 * radius)
        clip = self._clip(rect)
        if clip is None:
            return
        y0, y1, x0, x1 = clip
        ys = np.arange(y0, y1, dtype=np.float32)[:, None] + 0.5
        xs = np.arange(x0, x1, dtype=np.float32)[None, :] + 0.5
        dist = np.sqrt((xs - cx) ** 2 + (ys - cy) ** 2)
        mask = np.clip(radius - dist + 0.5, 0.0, 1.0)
        self._blend_mask(y0, y1, x0, x1, mask, color, alpha)

    def draw_line(self, x0: float, y0: float, x1: float, y1: float,
                  color: Color, thickness: int = 2, alpha: float = 1.0) -> None:
        """A straight segment rendered as a series of filled squares."""
        length = max(abs(x1 - x0), abs(y1 - y0))
        steps = max(2, int(np.ceil(length)))
        t = max(1, int(thickness))
        for i in range(steps + 1):
            f = i / steps
            px = x0 + (x1 - x0) * f
            py = y0 + (y1 - y0) * f
            self.fill_rect(Rect.from_center(px, py, t, t), color, alpha=alpha)

    def draw_cross(self, cx: float, cy: float, size: float, color: Color,
                   thickness: int = 2, alpha: float = 1.0) -> None:
        """An 'X' glyph — the universal close-button icon."""
        half = size / 2.0
        self.draw_line(cx - half, cy - half, cx + half, cy + half, color,
                       thickness=thickness, alpha=alpha)
        self.draw_line(cx - half, cy + half, cx + half, cy - half, color,
                       thickness=thickness, alpha=alpha)

    def fill_vertical_gradient(self, rect: Rect, top: Color, bottom: Color,
                               alpha: float = 1.0) -> None:
        clip = self._clip(rect)
        if clip is None:
            return
        y0, y1, x0, x1 = clip
        span = max(1.0, rect.h)
        ts = ((np.arange(y0, y1, dtype=np.float32) + 0.5 - rect.top) / span)
        ts = np.clip(ts, 0.0, 1.0)[:, None, None]
        grad = (1.0 - ts) * top.as_array() + ts * bottom.as_array()
        alpha = float(np.clip(alpha, 0.0, 1.0))
        region = self.pixels[y0:y1, x0:x1]
        region *= 1.0 - alpha
        region += alpha * grad

    def add_noise(self, rng: np.random.Generator, scale: float = 0.01) -> None:
        """Sensor/compression-like noise so screens aren't perfectly flat."""
        noise = rng.normal(0.0, scale, size=self.pixels.shape).astype(np.float32)
        self.pixels = np.clip(self.pixels + noise, 0.0, 1.0)

    # -- sampling -----------------------------------------------------------

    def sample_mean(self, rect: Rect) -> Color:
        """Mean color inside a rect (background estimation)."""
        clip = self._clip(rect)
        if clip is None:
            return Color(0.0, 0.0, 0.0)
        y0, y1, x0, x1 = clip
        mean = self.pixels[y0:y1, x0:x1].reshape(-1, 3).mean(axis=0)
        return Color.from_array(mean)

    def to_array(self) -> np.ndarray:
        """The raw (H, W, 3) float32 buffer (a defensive copy)."""
        return self.pixels.copy()

    @classmethod
    def from_array(cls, array: np.ndarray) -> "Canvas":
        if array.ndim != 3 or array.shape[2] != 3:
            raise ValueError(f"expected (H, W, 3) array, got {array.shape}")
        canvas = cls(array.shape[1], array.shape[0])
        canvas.pixels = np.clip(array.astype(np.float32), 0.0, 1.0)
        return canvas
