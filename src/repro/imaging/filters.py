"""Image filters used for augmentation, masking and classical features.

The text-masking experiment (paper Fig. 7 / Table IV) blurs all text on
AGO/UPO regions; the RCNN baselines' region proposers need gradient
magnitude; resizing feeds detector inputs.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.geometry.rect import Rect


def to_grayscale(image: np.ndarray) -> np.ndarray:
    """Luma-weighted grayscale, shape (H, W)."""
    if image.ndim == 2:
        return image.astype(np.float32)
    weights = np.array([0.2126, 0.7152, 0.0722], dtype=np.float32)
    return (image[..., :3] @ weights).astype(np.float32)


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Channel-wise Gaussian blur; no-op for sigma <= 0."""
    if sigma <= 0:
        return image.astype(np.float32, copy=True)
    if image.ndim == 2:
        return ndimage.gaussian_filter(image, sigma=sigma).astype(np.float32)
    out = np.empty_like(image, dtype=np.float32)
    for c in range(image.shape[2]):
        out[..., c] = ndimage.gaussian_filter(image[..., c], sigma=sigma)
    return out


def box_blur(image: np.ndarray, size: int) -> np.ndarray:
    """Uniform blur with a ``size x size`` kernel; no-op for size <= 1."""
    if size <= 1:
        return image.astype(np.float32, copy=True)
    if image.ndim == 2:
        return ndimage.uniform_filter(image, size=size).astype(np.float32)
    out = np.empty_like(image, dtype=np.float32)
    for c in range(image.shape[2]):
        out[..., c] = ndimage.uniform_filter(image[..., c], size=size)
    return out


def blur_region(image: np.ndarray, rect: Rect, sigma: float = 3.0) -> np.ndarray:
    """Blur only inside ``rect`` — the paper's text-masking operation."""
    out = image.astype(np.float32, copy=True)
    h, w = out.shape[:2]
    r = rect.clipped_to(Rect(0, 0, w, h)).rounded()
    if r.is_empty():
        return out
    y0, y1 = int(r.top), int(r.bottom)
    x0, x1 = int(r.left), int(r.right)
    out[y0:y1, x0:x1] = gaussian_blur(out[y0:y1, x0:x1], sigma)
    return out


def gradient_magnitude(image: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude of the grayscale image, shape (H, W)."""
    gray = to_grayscale(image)
    gx = ndimage.sobel(gray, axis=1)
    gy = ndimage.sobel(gray, axis=0)
    return np.hypot(gx, gy).astype(np.float32)


def resize(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bilinear-ish resize via scipy zoom (order=1), channel-wise."""
    if image.ndim == 2:
        zoom = (out_h / image.shape[0], out_w / image.shape[1])
        out = ndimage.zoom(image, zoom, order=1)
    else:
        zoom = (out_h / image.shape[0], out_w / image.shape[1], 1)
        out = ndimage.zoom(image, zoom, order=1)
    # scipy zoom can be off by one pixel; crop/pad to the exact shape.
    out = out[:out_h, :out_w]
    pad_h, pad_w = out_h - out.shape[0], out_w - out.shape[1]
    if pad_h > 0 or pad_w > 0:
        pads = [(0, max(0, pad_h)), (0, max(0, pad_w))]
        if out.ndim == 3:
            pads.append((0, 0))
        out = np.pad(out, pads, mode="edge")
    return np.clip(out.astype(np.float32), 0.0, 1.0)
