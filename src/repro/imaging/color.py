"""Colors, luminance, and contrast.

AUI patterns work by manipulating *visual salience*: an AGO is large,
central, and high-contrast; a UPO is small, peripheral, and low-contrast
or translucent (paper Section II-A).  The dataset generator quantifies
that manipulation with the relative-luminance / contrast-ratio math
standardized by WCAG 2.x, implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class Color:
    """An RGB color with components in [0, 1]."""

    r: float
    g: float
    b: float

    def __post_init__(self) -> None:
        for name, v in (("r", self.r), ("g", self.g), ("b", self.b)):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"channel {name} out of [0, 1]: {v}")

    @classmethod
    def from_hex(cls, code: str) -> "Color":
        code = code.lstrip("#")
        if len(code) != 6:
            raise ValueError(f"expected 6-digit hex color, got {code!r}")
        r, g, b = (int(code[i : i + 2], 16) / 255.0 for i in (0, 2, 4))
        return cls(r, g, b)

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "Color":
        r, g, b = (float(np.clip(v, 0.0, 1.0)) for v in arr[:3])
        return cls(r, g, b)

    def as_array(self) -> np.ndarray:
        return np.array([self.r, self.g, self.b], dtype=np.float32)

    def lightened(self, amount: float) -> "Color":
        """Move linearly towards white by ``amount`` in [0, 1]."""
        return mix(self, WHITE, amount)

    def darkened(self, amount: float) -> "Color":
        """Move linearly towards black by ``amount`` in [0, 1]."""
        return mix(self, BLACK, amount)


def mix(a: Color, b: Color, t: float) -> Color:
    """Linear interpolation from ``a`` (t=0) to ``b`` (t=1)."""
    t = float(np.clip(t, 0.0, 1.0))
    return Color(
        a.r + (b.r - a.r) * t,
        a.g + (b.g - a.g) * t,
        a.b + (b.b - a.b) * t,
    )


def _linearize(channel: float) -> float:
    """sRGB -> linear-light transfer function (WCAG definition)."""
    if channel <= 0.03928:
        return channel / 12.92
    return ((channel + 0.055) / 1.055) ** 2.4


def relative_luminance(color: Color) -> float:
    """WCAG relative luminance: 0.0 for black, 1.0 for white."""
    return (
        0.2126 * _linearize(color.r)
        + 0.7152 * _linearize(color.g)
        + 0.0722 * _linearize(color.b)
    )


def contrast_ratio(a: Color, b: Color) -> float:
    """WCAG contrast ratio between two colors, in [1, 21].

    The dataset generator uses this to *construct* asymmetric salience
    (AGOs above ~4.5:1 against their background, UPOs near 1.2:1), and
    analyses use it to *verify* that asymmetry.
    """
    la, lb = relative_luminance(a), relative_luminance(b)
    lighter, darker = max(la, lb), min(la, lb)
    return (lighter + 0.05) / (darker + 0.05)


WHITE = Color(1.0, 1.0, 1.0)
BLACK = Color(0.0, 0.0, 0.0)

#: A material-like palette the synthetic app screens draw from.
PALETTE: Dict[str, Color] = {
    "white": WHITE,
    "black": BLACK,
    "near_white": Color.from_hex("#f5f5f5"),
    "light_gray": Color.from_hex("#e0e0e0"),
    "gray": Color.from_hex("#9e9e9e"),
    "dark_gray": Color.from_hex("#424242"),
    "red": Color.from_hex("#e53935"),
    "deep_orange": Color.from_hex("#f4511e"),
    "orange": Color.from_hex("#fb8c00"),
    "amber": Color.from_hex("#ffb300"),
    "yellow": Color.from_hex("#fdd835"),
    "green": Color.from_hex("#43a047"),
    "teal": Color.from_hex("#00897b"),
    "cyan": Color.from_hex("#00acc1"),
    "blue": Color.from_hex("#1e88e5"),
    "indigo": Color.from_hex("#3949ab"),
    "purple": Color.from_hex("#8e24aa"),
    "pink": Color.from_hex("#d81b60"),
    "gold": Color.from_hex("#d4af37"),
    "lucky_red": Color.from_hex("#c62828"),
}

#: Vivid hues the generator prefers for attention-grabbing AGOs.
AGO_ACCENTS: Tuple[str, ...] = (
    "red",
    "deep_orange",
    "orange",
    "amber",
    "green",
    "blue",
    "purple",
    "pink",
    "gold",
)

#: Muted tones the generator prefers for barely-noticeable UPOs.
#: (Real close buttons on dim scrims are light — a dark icon on a dark
#: scrim would be invisible even to an annotator.)
UPO_MUTED: Tuple[str, ...] = (
    "light_gray",
    "gray",
    "near_white",
    "white",
)
