"""A millisecond-resolution simulated clock.

Everything time-dependent in the substrate — event timestamps, the
debounce cut-off ``ct``, app timelines, performance accounting — reads
this clock.  Simulations advance it explicitly, which keeps every run
deterministic and lets tests fast-forward through "one minute with
Monkey" instantly.
"""

from __future__ import annotations

from typing import Callable, List, Tuple


class SimulatedClock:
    """Monotonic simulated time in milliseconds, with scheduled callbacks."""

    def __init__(self, start_ms: float = 0.0):
        self._now = float(start_ms)
        # Min-heap-by-scan is fine: schedules per run are small.
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self._timer_seq = 0

    @property
    def now_ms(self) -> float:
        return self._now

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> int:
        """Run ``callback`` once, ``delay_ms`` from now; returns a handle."""
        if delay_ms < 0:
            raise ValueError("cannot schedule in the past")
        self._timer_seq += 1
        handle = self._timer_seq
        self._timers.append((self._now + delay_ms, handle, callback))
        return handle

    def cancel(self, handle: int) -> bool:
        """Cancel a scheduled callback; returns True when it was pending."""
        for i, (_, h, _) in enumerate(self._timers):
            if h == handle:
                del self._timers[i]
                return True
        return False

    def advance(self, delta_ms: float) -> None:
        """Move time forward, firing due callbacks in timestamp order."""
        if delta_ms < 0:
            raise ValueError("time cannot go backwards")
        target = self._now + delta_ms
        while True:
            due = [(t, h, cb) for (t, h, cb) in self._timers if t <= target]
            if not due:
                break
            due.sort(key=lambda item: (item[0], item[1]))
            t, h, cb = due[0]
            self._timers = [item for item in self._timers if item[1] != h]
            # Callbacks observe the time they fire at, and may schedule
            # further timers (which this loop will also honour if due).
            self._now = max(self._now, t)
            cb()
        self._now = target

    def pending_timers(self) -> int:
        return len(self._timers)
