"""Accessibility events.

Android defines accessibility event types as single-bit masks; DARPA
registers for *all 23 of them* (paper Section V, "Event registration")
and is notified whenever any UI change occurs.  The bit values below are
the real SDK constants — e.g. ``TYPE_WINDOWS_CHANGED`` is
``0x00400000``, the code the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional


class AccessibilityEventType(IntEnum):
    """All 23 accessibility event bit-masks (2^0 .. 2^22)."""

    TYPE_VIEW_CLICKED = 0x00000001
    TYPE_VIEW_LONG_CLICKED = 0x00000002
    TYPE_VIEW_SELECTED = 0x00000004
    TYPE_VIEW_FOCUSED = 0x00000008
    TYPE_VIEW_TEXT_CHANGED = 0x00000010
    TYPE_WINDOW_STATE_CHANGED = 0x00000020
    TYPE_NOTIFICATION_STATE_CHANGED = 0x00000040
    TYPE_VIEW_HOVER_ENTER = 0x00000080
    TYPE_VIEW_HOVER_EXIT = 0x00000100
    TYPE_TOUCH_EXPLORATION_GESTURE_START = 0x00000200
    TYPE_TOUCH_EXPLORATION_GESTURE_END = 0x00000400
    TYPE_WINDOW_CONTENT_CHANGED = 0x00000800
    TYPE_VIEW_SCROLLED = 0x00001000
    TYPE_VIEW_TEXT_SELECTION_CHANGED = 0x00002000
    TYPE_ANNOUNCEMENT = 0x00004000
    TYPE_VIEW_ACCESSIBILITY_FOCUSED = 0x00008000
    TYPE_VIEW_ACCESSIBILITY_FOCUS_CLEARED = 0x00010000
    TYPE_VIEW_TEXT_TRAVERSED_AT_MOVEMENT_GRANULARITY = 0x00020000
    TYPE_GESTURE_DETECTION_START = 0x00040000
    TYPE_GESTURE_DETECTION_END = 0x00080000
    TYPE_TOUCH_INTERACTION_START = 0x00100000
    TYPE_TOUCH_INTERACTION_END = 0x00200000
    TYPE_WINDOWS_CHANGED = 0x00400000


#: Mask covering every event type (what DARPA registers for).
TYPES_ALL_MASK = sum(t.value for t in AccessibilityEventType)

#: Event types that indicate the visible UI may have changed and a
#: settled screen could follow — the debouncer treats these as
#: "UI update" signals.  Pointer bookkeeping events do not repaint.
UI_UPDATE_TYPES = frozenset(
    {
        AccessibilityEventType.TYPE_WINDOW_STATE_CHANGED,
        AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED,
        AccessibilityEventType.TYPE_WINDOWS_CHANGED,
        AccessibilityEventType.TYPE_VIEW_SCROLLED,
        AccessibilityEventType.TYPE_VIEW_CLICKED,
        AccessibilityEventType.TYPE_VIEW_FOCUSED,
        AccessibilityEventType.TYPE_VIEW_TEXT_CHANGED,
    }
)


@dataclass(frozen=True)
class AccessibilityEvent:
    """One event delivered to subscribed accessibility services.

    Deliberately generic, as the paper observes: the payload identifies
    *that* something changed and in which package, never whether the new
    UI is an AUI — which is why DARPA cannot filter by type alone and
    needs the cut-off-time debounce.
    """

    event_type: AccessibilityEventType
    package: str
    timestamp_ms: float
    window_id: Optional[int] = None

    @property
    def code(self) -> int:
        """The numeric event code, e.g. 0x00400000 for WINDOWS_CHANGED."""
        return int(self.event_type)

    def is_ui_update(self) -> bool:
        return self.event_type in UI_UPDATE_TYPES
