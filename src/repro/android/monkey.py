"""A UI/Application Exerciser Monkey.

The paper drives each app "for 1 minute with Monkey" both to harvest
screenshots for the dataset and to generate runtime workloads.  Our
Monkey injects pseudo-random taps at a configurable rate; every tap
produces the touch-interaction event pair plus (when it lands on a
clickable view) a ``TYPE_VIEW_CLICKED`` event, matching how real input
shows up on the accessibility bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.android.device import Device
from repro.android.events import AccessibilityEventType
from repro.android.view import View


@dataclass
class MonkeyTap:
    """One injected tap and what it hit."""

    at_ms: float
    x: float
    y: float
    hit_view_id: Optional[int]


class Monkey:
    """Random tap injector with a deterministic RNG."""

    def __init__(self, device: Device, seed: int = 0,
                 taps_per_second: float = 1.5):
        if taps_per_second <= 0:
            raise ValueError("taps_per_second must be positive")
        self.device = device
        self.rng = np.random.default_rng(seed)
        self.taps_per_second = taps_per_second
        self.taps: List[MonkeyTap] = []

    def _tap_once(self) -> MonkeyTap:
        screen = self.device.screen
        x = float(self.rng.uniform(0, screen.width))
        y = float(self.rng.uniform(0, screen.height))
        top = self.device.window_manager.top_app_window()
        package = top.package if top else "<system>"
        self.device.emit_event(
            AccessibilityEventType.TYPE_TOUCH_INTERACTION_START, package)
        hit = self.device.window_manager.dispatch_click(x, y)
        if hit is not None:
            self.device.emit_event(
                AccessibilityEventType.TYPE_VIEW_CLICKED, package)
        self.device.emit_event(
            AccessibilityEventType.TYPE_TOUCH_INTERACTION_END, package)
        tap = MonkeyTap(
            at_ms=self.device.clock.now_ms, x=x, y=y,
            hit_view_id=hit.view_id if hit is not None else None,
        )
        self.taps.append(tap)
        return tap

    def schedule_run(self, duration_ms: float) -> int:
        """Schedule taps over ``duration_ms`` on the device clock.

        Inter-tap gaps are exponential with mean ``1/taps_per_second``;
        returns the number of taps scheduled.  Advance the clock to run.
        """
        if duration_ms <= 0:
            raise ValueError("duration must be positive")
        t = 0.0
        count = 0
        mean_gap_ms = 1000.0 / self.taps_per_second
        while True:
            t += float(self.rng.exponential(mean_gap_ms))
            if t >= duration_ms:
                break
            self.device.clock.schedule(t, self._tap_once)
            count += 1
        return count
