"""The Accessibility Service surface DARPA builds on.

This mirrors the subset of ``android.accessibilityservice`` the paper
uses (Section IV-B, Section V):

- registration for all 23 event types with a notification timeout that
  coalesces event storms;
- ``take_screenshot`` (Android 11+ only, as the paper notes);
- overlay management through the WindowManager (decoration views and
  the invisible calibration anchor);
- dispatched taps (the auto-bypass option clicks the UPO region).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.geometry.rect import Offset, Rect
from repro.android.device import Device, PerfOp
from repro.android.events import AccessibilityEvent, TYPES_ALL_MASK
from repro.android.renderer import render_screen
from repro.android.view import View, Visibility
from repro.android.window import LayoutParams, Window, WindowType


class ScreenshotUnsupportedError(RuntimeError):
    """Raised on devices below Android 11 (API 30)."""


class ScreenshotRinsedError(RuntimeError):
    """Raised when code touches a screenshot after its rinse."""


@dataclass
class Screenshot:
    """A captured screen raster with a privacy-conscious lifecycle.

    The paper stores screenshots only in app-internal storage and
    "rinses them immediately after running the CV-model".  ``rinse()``
    destroys the pixel buffer; later access raises, so a pipeline that
    leaks screenshots fails loudly in tests.
    """

    _pixels: Optional[np.ndarray]
    taken_at_ms: float
    package: str

    @property
    def pixels(self) -> np.ndarray:
        if self._pixels is None:
            raise ScreenshotRinsedError("screenshot was rinsed after use")
        return self._pixels

    @property
    def rinsed(self) -> bool:
        return self._pixels is None

    def rinse(self) -> None:
        if self._pixels is not None:
            self._pixels.fill(0.0)  # overwrite before dropping the ref
            self._pixels = None


class AccessibilityService:
    """A simulated accessibility service bound to one device.

    Construct, optionally set :attr:`on_event`, then :meth:`connect`.
    Events arriving within ``notification_timeout_ms`` of the previous
    delivery are coalesced: only the latest is delivered when the
    timeout expires (Android's ``AccessibilityServiceInfo`` behaviour).
    """

    def __init__(
        self,
        device: Device,
        package: str = "org.repro.darpa",
        event_mask: int = TYPES_ALL_MASK,
        notification_timeout_ms: float = 0.0,
    ):
        if notification_timeout_ms < 0:
            raise ValueError("notification timeout cannot be negative")
        self.device = device
        self.package = package
        self.event_mask = event_mask
        self.notification_timeout_ms = notification_timeout_ms
        self.on_event: Optional[Callable[[AccessibilityEvent], None]] = None
        self.connected = False
        #: Optional :class:`repro.core.observability.Tracer`; when set,
        #: every event receipt runs inside an ``event`` span and its
        #: delivery charge is attributed there.  None (the default)
        #: keeps this module decoupled from the tracing layer.
        self.tracer = None
        self._pending: Optional[AccessibilityEvent] = None
        self._timer: Optional[int] = None
        self._overlays: List[View] = []

    # -- lifecycle ------------------------------------------------------

    def connect(self) -> None:
        """Register with the OS for the configured event mask."""
        if self.connected:
            return
        self.device.register_event_listener(self.event_mask, self._receive)
        self.connected = True

    def disconnect(self) -> None:
        """Unregister from the event bus and drop any coalesced event.

        Without this, a stopped service still receives every bus event,
        and a pending notification-timeout timer can deliver one more
        coalesced event *after* shutdown.  Safe to call twice; the
        service can :meth:`connect` again afterwards.
        """
        if not self.connected:
            return
        self.device.unregister_event_listener(self._receive)
        if self._timer is not None:
            self.device.clock.cancel(self._timer)
            self._timer = None
        self._pending = None
        self.connected = False

    # -- event delivery ----------------------------------------------------

    def _receive(self, event: AccessibilityEvent) -> None:
        if self.tracer is None:
            self._receive_inner(event)
            return
        with self.tracer.span("event", type=event.event_type.name,
                              package=event.package):
            self._receive_inner(event)

    def _receive_inner(self, event: AccessibilityEvent) -> None:
        self.device.perf.record(PerfOp.EVENT_DELIVERED)
        if self.notification_timeout_ms <= 0:
            self._deliver(event)
            return
        self._pending = event
        if self._timer is None:
            self._timer = self.device.clock.schedule(
                self.notification_timeout_ms, self._flush_pending
            )

    def _flush_pending(self) -> None:
        self._timer = None
        event, self._pending = self._pending, None
        if event is not None:
            self._deliver(event)

    def _deliver(self, event: AccessibilityEvent) -> None:
        if self.on_event is not None:
            self.on_event(event)

    # -- capabilities ---------------------------------------------------

    def take_screenshot(self, stub: bool = False) -> Screenshot:
        """``AccessibilityService.takeScreenshot`` (API 30+).

        ``stub`` skips rasterization and returns a 1x1 placeholder —
        for simulation sweeps whose detector never reads pixels (e.g.
        the oracle-driven ct sweeps), where rendering would dominate
        wall-clock without changing any counted operation.  Perf
        accounting is identical either way.
        """
        if self.device.api_level < 30:
            raise ScreenshotUnsupportedError(
                f"takeScreenshot needs API 30+, device has {self.device.api_level}"
            )
        faults = getattr(self.device, "faults", None)
        if faults is not None:
            # The OS interval limit rejects before any capture work...
            faults.check_screenshot_throttle()
        self.device.perf.record(PerfOp.SCREENSHOT)
        if faults is not None:
            # ...while a transient capture failure is billed like a
            # capture: the work happened, the buffer was lost.
            faults.check_screenshot_failure()
        top = self.device.window_manager.top_app_window()
        if stub:
            pixels = np.zeros((1, 1, 3), dtype=np.float32)
        else:
            canvas = render_screen(self.device.window_manager,
                                   noise_rng=self.device.rng)
            pixels = canvas.to_array()
        return Screenshot(
            _pixels=pixels,
            taken_at_ms=self.device.clock.now_ms,
            package=top.package if top else "<none>",
        )

    def add_overlay(self, view: View, params: LayoutParams) -> Window:
        """Mount an overlay view (decoration or calibration anchor).

        Raises :class:`repro.android.faults.OverlayRejectedError` when a
        fault plan revokes the overlay permission mid-run.
        """
        faults = getattr(self.device, "faults", None)
        if faults is not None:
            faults.check_overlay()
        window = self.device.window_manager.add_view(view, params, self.package)
        self._overlays.append(view)
        return window

    def remove_overlay(self, view: View) -> bool:
        removed = self.device.window_manager.remove_view(view)
        if removed and view in self._overlays:
            self._overlays.remove(view)
        return removed

    def remove_all_overlays(self) -> int:
        count = 0
        for view in list(self._overlays):
            if self.remove_overlay(view):
                count += 1
        return count

    @property
    def overlays(self) -> List[View]:
        return list(self._overlays)

    def get_location_on_screen(self, view: View) -> Offset:
        """Proxy for ``View.getLocationOnScreen`` on an overlay view."""
        return self.device.window_manager.get_location_on_screen(view)

    def measure_window_offset(self) -> Offset:
        """The paper's anchor-view calibration (Section IV-D).

        Mounts an invisible 1x1 anchor at overlay coordinate ``(0, 0)``,
        reads its on-screen location, and unmounts it.  The result is
        the current window's screen offset: ``(0, 0)`` for full-screen
        apps, ``(0, status_bar_height)`` otherwise.
        """
        anchor = View(bounds=Rect(0, 0, 1, 1), visibility=Visibility.INVISIBLE)
        self.add_overlay(anchor, LayoutParams(x=0, y=0, width=1, height=1))
        try:
            return self.get_location_on_screen(anchor)
        finally:
            self.remove_overlay(anchor)

    def dispatch_click(self, screen_x: float, screen_y: float) -> Optional[View]:
        """Inject a tap at screen coordinates (auto-bypass path)."""
        return self.device.window_manager.dispatch_click(screen_x, screen_y)
