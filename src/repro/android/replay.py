"""Session recording and deterministic replay.

The paper's overhead methodology (Section VI-D) runs each app manually
while *recording* the interaction, then *replays* the identical session
with DARPA attached (SoloPi records, Airtest replays) so the
with/without measurements compare the same workload.  This module is
that record/replay loop for the simulated substrate: a
:class:`SessionRecorder` captures every accessibility event and tap of
a live run into a :class:`SessionTrace`, and :func:`replay_trace`
re-emits the trace onto a fresh device with millisecond-identical
timing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.android.device import Device
from repro.android.events import AccessibilityEvent, AccessibilityEventType


@dataclass(frozen=True)
class TraceEntry:
    """One recorded occurrence: an accessibility event or an input tap."""

    at_ms: float
    kind: str                     # "event" | "tap"
    event_type: Optional[int] = None
    package: str = ""
    x: float = 0.0
    y: float = 0.0

    def to_json(self) -> dict:
        return {
            "at_ms": self.at_ms, "kind": self.kind,
            "event_type": self.event_type, "package": self.package,
            "x": self.x, "y": self.y,
        }

    @classmethod
    def from_json(cls, data: dict) -> "TraceEntry":
        return cls(**data)


@dataclass
class SessionTrace:
    """An ordered recording of one session."""

    entries: List[TraceEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        times = [e.at_ms for e in self.entries]
        if times != sorted(times):
            raise ValueError("trace entries must be time-ordered")

    @property
    def duration_ms(self) -> float:
        return self.entries[-1].at_ms if self.entries else 0.0

    def events(self) -> List[TraceEntry]:
        return [e for e in self.entries if e.kind == "event"]

    def taps(self) -> List[TraceEntry]:
        return [e for e in self.entries if e.kind == "tap"]

    # -- persistence ----------------------------------------------------

    def save(self, path: Path) -> None:
        payload = {"version": 1,
                   "entries": [e.to_json() for e in self.entries]}
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Path) -> "SessionTrace":
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != 1:
            raise ValueError(f"unsupported trace version: {payload.get('version')}")
        return cls(entries=[TraceEntry.from_json(e)
                            for e in payload["entries"]])


class SessionRecorder:
    """Attaches to a device and records its event/tap stream."""

    def __init__(self, device: Device):
        self.device = device
        self._entries: List[TraceEntry] = []
        self._recording = False

    def start(self) -> None:
        if self._recording:
            return
        from repro.android.events import TYPES_ALL_MASK
        self.device.register_event_listener(TYPES_ALL_MASK, self._on_event)
        self._recording = True

    def _on_event(self, event: AccessibilityEvent) -> None:
        self._entries.append(TraceEntry(
            at_ms=event.timestamp_ms, kind="event",
            event_type=int(event.event_type), package=event.package,
        ))

    def record_tap(self, x: float, y: float) -> None:
        """Taps are injected by test drivers, not announced on the bus;
        drivers call this alongside ``dispatch_click``."""
        self._entries.append(TraceEntry(
            at_ms=self.device.clock.now_ms, kind="tap", x=x, y=y,
        ))

    def trace(self) -> SessionTrace:
        return SessionTrace(entries=sorted(self._entries,
                                           key=lambda e: e.at_ms))


def replay_trace(
    trace: SessionTrace,
    device: Device,
    include_taps: bool = True,
) -> Tuple[int, int]:
    """Schedule the trace onto ``device`` with identical timing.

    Returns ``(n_events, n_taps)`` scheduled.  Advance the device clock
    past ``trace.duration_ms`` to run the replay.
    """
    n_events = n_taps = 0
    now = device.clock.now_ms
    for entry in trace.entries:
        delay = entry.at_ms - now
        if delay < 0:
            raise ValueError("trace starts before the device's current time")
        if entry.kind == "event":
            n_events += 1
            device.clock.schedule(
                delay,
                lambda e=entry: device.emit_event(
                    AccessibilityEventType(e.event_type), e.package),
            )
        elif entry.kind == "tap" and include_taps:
            n_taps += 1
            device.clock.schedule(
                delay,
                lambda e=entry: device.window_manager.dispatch_click(e.x, e.y),
            )
    return n_events, n_taps
