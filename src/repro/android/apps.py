"""Scripted simulated apps.

Runtime experiments (Tables VI-VIII, Figure 8) need apps that behave
like real ones: they flip between screens, fire bursts of
``TYPE_WINDOW_CONTENT_CHANGED`` while animating, occasionally pop an
AUI interstitial, and keep emitting minor UI-update events at the high
rates the paper measured (~32 events/min on Taobao just browsing).

An app is an :class:`AppSpec` — a package name, a resource-id naming
policy, and a :class:`UiTimeline` of :class:`UiStep`s.  Binding a spec
to a device yields a :class:`SimulatedApp` that schedules every step on
the device clock and logs exactly which screens were visible when,
giving experiments their ground truth for AUI coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.geometry.rect import Rect
from repro.android.device import Device
from repro.android.events import AccessibilityEventType
from repro.android.resources import ResourceIdPolicy
from repro.android.view import SemanticRole, View


@dataclass
class ScreenState:
    """One renderable screen plus its ground-truth labels.

    ``label_boxes`` holds ``(role, rect)`` pairs in *window*
    coordinates; ``is_aui`` is True when the screen is an asymmetric
    dark UI (it then has at least an AGO box).
    """

    root: View
    fullscreen: bool = False
    is_aui: bool = False
    label_boxes: List[Tuple[str, Rect]] = field(default_factory=list)
    name: str = "screen"

    def boxes_of(self, role: str) -> List[Rect]:
        return [rect for r, rect in self.label_boxes if r == role]

    def truth_views(self) -> List[View]:
        """Views tagged AGO/UPO in the tree (for metadata baselines)."""
        out = []
        for view in self.root.iter_tree():
            if view.role in (SemanticRole.AGO, SemanticRole.UPO):
                out.append(view)
        return out


@dataclass
class UiStep:
    """Show ``screen`` at ``at_ms``, then emit follow-up content-changed
    events (animation ticks, list refreshes, carousel swaps…).

    Follow-ups come either from the uniform ``minor_updates`` /
    ``minor_spacing_ms`` pair, or — when richer rhythm is needed, e.g.
    burst-pause animations for the ct-sweep experiments — from an
    explicit ``update_offsets`` list of millisecond offsets relative to
    ``at_ms`` (which overrides the uniform pair).
    """

    at_ms: float
    screen: ScreenState
    minor_updates: int = 0
    minor_spacing_ms: float = 50.0
    update_offsets: Optional[List[float]] = None

    def offsets(self) -> List[float]:
        """Resolved follow-up event offsets (ms after ``at_ms``)."""
        if self.update_offsets is not None:
            return sorted(self.update_offsets)
        return [(i + 1) * self.minor_spacing_ms
                for i in range(self.minor_updates)]

    def last_event_ms(self) -> float:
        offs = self.offsets()
        return self.at_ms + (offs[-1] if offs else 0.0)

    def settle_time_ms(self, next_at_ms: Optional[float]) -> float:
        """Quiet time between this step's last event and the next step.

        This is what the cut-off debounce races against: a screen whose
        quiet window is shorter than ``ct`` is never screenshotted.
        """
        if next_at_ms is None:
            return float("inf")
        return max(0.0, next_at_ms - self.last_event_ms())


@dataclass
class UiTimeline:
    """An ordered sequence of steps covering one app session."""

    steps: List[UiStep]

    def __post_init__(self) -> None:
        times = [s.at_ms for s in self.steps]
        if times != sorted(times):
            raise ValueError("timeline steps must be in ascending time order")

    @property
    def duration_ms(self) -> float:
        if not self.steps:
            return 0.0
        return self.steps[-1].last_event_ms()

    def aui_steps(self) -> List[UiStep]:
        return [s for s in self.steps if s.screen.is_aui]


@dataclass
class AppSpec:
    """Static description of a simulated app."""

    package: str
    timeline: UiTimeline
    id_policy: ResourceIdPolicy = ResourceIdPolicy.READABLE
    category: str = "utility"


@dataclass
class ShownRecord:
    """Log entry: ``screen`` was foreground during [start, end)."""

    screen: ScreenState
    start_ms: float
    end_ms: float

    @property
    def dwell_ms(self) -> float:
        return self.end_ms - self.start_ms


class SimulatedApp:
    """An :class:`AppSpec` running on a :class:`Device`."""

    def __init__(self, device: Device, spec: AppSpec):
        self.device = device
        self.spec = spec
        self.current: Optional[ScreenState] = None
        self.shown_log: List[ShownRecord] = []
        self._launched = False

    def launch(self) -> None:
        """Schedule every timeline step on the device clock."""
        if self._launched:
            raise RuntimeError(f"{self.spec.package} already launched")
        self._launched = True
        now = self.device.clock.now_ms
        for step in self.spec.timeline.steps:
            delay = step.at_ms  # timeline times are relative to launch
            self.device.clock.schedule(delay, lambda s=step: self._show_step(s))
        del now

    def _show_step(self, step: UiStep) -> None:
        clock = self.device.clock
        if self.current is not None and self.shown_log:
            self.shown_log[-1].end_ms = clock.now_ms
        self.current = step.screen
        self.shown_log.append(
            ShownRecord(screen=step.screen, start_ms=clock.now_ms,
                        end_ms=float("inf"))
        )
        window = self.device.window_manager.attach_app_window(
            step.screen.root, self.spec.package, fullscreen=step.screen.fullscreen
        )
        self.device.emit_event(
            AccessibilityEventType.TYPE_WINDOW_STATE_CHANGED,
            self.spec.package, window_id=window.window_id,
        )
        self.device.emit_event(
            AccessibilityEventType.TYPE_WINDOWS_CHANGED,
            self.spec.package, window_id=window.window_id,
        )
        for offset in step.offsets():
            clock.schedule(
                offset,
                lambda wid=window.window_id: self.device.emit_event(
                    AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED,
                    self.spec.package, window_id=wid,
                ),
            )

    def finish(self) -> None:
        """Close the shown log at the current clock time."""
        if self.shown_log and self.shown_log[-1].end_ms == float("inf"):
            self.shown_log[-1].end_ms = self.device.clock.now_ms

    # -- ground truth helpers -----------------------------------------

    def aui_records(self, min_dwell_ms: float = 0.0) -> List[ShownRecord]:
        """Screens that were AUIs and stayed up at least ``min_dwell_ms``."""
        return [
            rec for rec in self.shown_log
            if rec.screen.is_aui and rec.dwell_ms >= min_dwell_ms
        ]
