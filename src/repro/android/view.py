"""Views and view trees.

A ``View`` is the unit of UI in the substrate, mirroring
``android.view.View``: it owns bounds (in *window* coordinates), visual
styling, interactivity flags, a resource id, and children.  The dataset
generator additionally tags views with a :class:`SemanticRole` so that
ground-truth AGO/UPO boxes can be derived mechanically from the tree
instead of hand-labeled.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterator, List, Optional

from repro.geometry.rect import Rect
from repro.imaging.color import Color
from repro.android.resources import ResourceId


class Visibility(Enum):
    """Android's three-state view visibility."""

    VISIBLE = "visible"
    INVISIBLE = "invisible"  # occupies space but is not drawn
    GONE = "gone"            # neither drawn nor laid out


class SemanticRole(Enum):
    """Ground-truth annotation role of a view.

    Only ``AGO`` and ``UPO`` produce detection targets; everything else
    is scenery.  ``BENIGN_CLOSE`` marks small close buttons on screens
    that are *not* AUIs — the paper's main false-positive source.
    """

    NONE = "none"
    AGO = "AGO"
    UPO = "UPO"
    BENIGN_CLOSE = "benign_close"
    CONTENT = "content"


class Shape(Enum):
    """Drawable background shape of a view."""

    RECT = "rect"
    ROUNDED = "rounded"
    CIRCLE = "circle"


_view_ids = itertools.count(1)


@dataclass
class View:
    """A node of the simulated view hierarchy.

    ``bounds`` are expressed in the coordinate space of the containing
    window (NOT the screen); the window's own offset is applied at
    render/hit-test time, exactly as on Android — this distinction is
    what makes the paper's Figure 4 calibration bug reproducible.
    """

    bounds: Rect
    resource_id: Optional[ResourceId] = None
    clickable: bool = False
    visibility: Visibility = Visibility.VISIBLE
    role: SemanticRole = SemanticRole.NONE

    # -- styling ------------------------------------------------------
    shape: Shape = Shape.RECT
    bg_color: Optional[Color] = None
    bg_alpha: float = 1.0
    corner_radius: float = 0.0
    border_color: Optional[Color] = None
    border_width: int = 0
    text: Optional[str] = None
    text_size: float = 12.0
    text_color: Optional[Color] = None
    text_alpha: float = 1.0
    icon: Optional[str] = None  # "cross" | "circle" | "bar"
    icon_color: Optional[Color] = None
    icon_alpha: float = 1.0

    # -- behaviour -------------------------------------------------------
    on_click: Optional[Callable[[], None]] = None
    children: List["View"] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.view_id: int = next(_view_ids)
        if not 0.0 <= self.bg_alpha <= 1.0:
            raise ValueError(f"bg_alpha out of range: {self.bg_alpha}")

    # -- tree ops ----------------------------------------------------------

    def add_child(self, child: "View") -> "View":
        self.children.append(child)
        return child

    def iter_tree(self) -> Iterator["View"]:
        """Pre-order traversal including self; skips GONE subtrees."""
        if self.visibility is Visibility.GONE:
            return
        yield self
        for child in self.children:
            yield from child.iter_tree()

    def iter_visible(self) -> Iterator["View"]:
        """Pre-order traversal of views that are actually drawn."""
        for view in self.iter_tree():
            if view.visibility is Visibility.VISIBLE:
                yield view

    def find_by_role(self, role: SemanticRole) -> List["View"]:
        return [v for v in self.iter_tree() if v.role is role]

    def find_by_resource_entry(self, needle: str) -> List["View"]:
        """Views whose resource-id entry contains ``needle``."""
        out = []
        for v in self.iter_tree():
            if v.resource_id is not None and needle in v.resource_id.entry:
                out.append(v)
        return out

    # -- interaction -----------------------------------------------------

    def hit_test(self, x: float, y: float) -> Optional["View"]:
        """Topmost visible *clickable* view at window point ``(x, y)``.

        Android dispatches touches to the deepest, latest-drawn view;
        we walk children in reverse draw order.
        """
        if self.visibility is not Visibility.VISIBLE:
            return None
        if not self.bounds.contains_point(x, y):
            return None
        for child in reversed(self.children):
            hit = child.hit_test(x, y)
            if hit is not None:
                return hit
        return self if self.clickable else None

    def click(self) -> bool:
        """Invoke the click handler; True when one ran."""
        if self.on_click is not None:
            self.on_click()
            return True
        return False

    # -- introspection -----------------------------------------------------

    def depth(self) -> int:
        """Tree height below (and including) this node."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def count(self) -> int:
        return sum(1 for _ in self.iter_tree())


class ViewGroup(View):
    """A container view; identical to :class:`View` but never clickable
    by default and conventionally style-free.  Exists so generated trees
    read like Android layouts."""

    pass
