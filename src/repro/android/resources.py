"""Android resource identifiers and the obfuscation thereof.

FraudDroid-style detectors (paper Section VI-C) match views against a
lexicon of known resource-id substrings (``btn_close``, ``ad_skip``…).
The paper attributes FraudDroid's collapse on AUI detection to apps
obfuscating those ids or generating them dynamically.  This module
models both the well-named and the obfuscated regimes.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np


class ResourceIdPolicy(Enum):
    """How an app names its view resources."""

    #: Human-readable ids (``com.app:id/btn_close``) — heuristics work.
    READABLE = "readable"
    #: ProGuard/R8-style obfuscation (``com.app:id/a1x``).
    OBFUSCATED = "obfuscated"
    #: Ids minted at runtime (``com.app:id/v_283711``) — unmatchable.
    DYNAMIC = "dynamic"


@dataclass(frozen=True)
class ResourceId:
    """A fully-qualified Android resource id: ``<package>:id/<entry>``."""

    package: str
    entry: str

    def __str__(self) -> str:
        return f"{self.package}:id/{self.entry}"

    @property
    def qualified(self) -> str:
        return str(self)


_OBFUSCATION_ALPHABET = string.ascii_lowercase + string.digits


def obfuscate_entry(entry: str, rng: np.random.Generator, length: int = 3) -> str:
    """Replace a readable entry name with a ProGuard-style short name."""
    del entry  # the readable name must not leak into the result
    chars = rng.choice(list(_OBFUSCATION_ALPHABET), size=length)
    return "".join(chars)


def make_resource_id(
    package: str,
    readable_entry: str,
    policy: ResourceIdPolicy,
    rng: Optional[np.random.Generator] = None,
) -> ResourceId:
    """Mint a resource id for a view under the app's naming policy."""
    if policy is ResourceIdPolicy.READABLE:
        return ResourceId(package, readable_entry)
    if rng is None:
        raise ValueError(f"policy {policy} requires an rng")
    if policy is ResourceIdPolicy.OBFUSCATED:
        return ResourceId(package, obfuscate_entry(readable_entry, rng))
    # DYNAMIC: runtime-generated numeric suffixes.
    return ResourceId(package, f"v_{int(rng.integers(10_000, 999_999))}")
