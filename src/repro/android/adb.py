"""ADB-style view-hierarchy dumps.

The paper's FraudDroid comparison feeds screenshots to DARPA and "the
corresponding metadata of screenshots captured by ADB tool" to the
heuristic baseline.  ``dump_view_hierarchy`` is that metadata path: a
flat list of :class:`NodeInfo` records carrying resource ids, bounds in
screen coordinates, clickability and text — everything a
``uiautomator dump`` exposes, and nothing a CV model would use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.geometry.rect import Rect
from repro.android.view import View, Visibility
from repro.android.window import Window, WindowManager


@dataclass(frozen=True)
class NodeInfo:
    """One node of an exported hierarchy dump."""

    resource_id: str  # fully qualified, or "" when the view has none
    bounds: Rect      # screen coordinates
    clickable: bool
    text: str
    package: str
    depth: int

    @property
    def resource_entry(self) -> str:
        """The entry part after ``:id/`` (empty when id-less)."""
        if ":id/" not in self.resource_id:
            return ""
        return self.resource_id.split(":id/", 1)[1]


def _dump_view(view: View, window: Window, depth: int,
               out: List[NodeInfo]) -> None:
    if view.visibility is not Visibility.VISIBLE:
        return
    out.append(
        NodeInfo(
            resource_id=str(view.resource_id) if view.resource_id else "",
            bounds=window.screen_bounds_of(view),
            clickable=view.clickable,
            text=view.text or "",
            package=window.package,
            depth=depth,
        )
    )
    for child in view.children:
        _dump_view(child, window, depth + 1, out)


def dump_view_hierarchy(wm: WindowManager,
                        package: Optional[str] = None) -> List[NodeInfo]:
    """Export the visible hierarchy of application windows.

    ``package`` restricts the dump to one app; overlays (which belong
    to the accessibility app, not the inspected app) are excluded, as
    ``uiautomator`` excludes other processes' overlay surfaces.
    """
    nodes: List[NodeInfo] = []
    for window in wm.windows:
        if window.kind.value != "application":
            continue
        if package is not None and window.package != package:
            continue
        _dump_view(window.root, window, 0, nodes)
    return nodes
