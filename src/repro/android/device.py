"""The simulated device: clock, screen, windows, event bus, cost model.

``Device`` wires the substrate together and carries the SoloPi-like
performance meter.  The meter converts *counted work* — accessibility
events delivered, screenshots taken, model inferences run, decorations
drawn — into the CPU/memory/frame-rate/power figures of the paper's
Tables VII and VIII through one set of declared calibration constants
(:class:`DeviceProfile`).  Nothing in the overhead tables is hard-coded;
changing the workload changes the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.android.clock import SimulatedClock
from repro.android.events import AccessibilityEvent, AccessibilityEventType
from repro.android.window import Screen, WindowManager


class PerfOp(Enum):
    """Billable operations the meter counts."""

    EVENT_DELIVERED = "event_delivered"
    SCREENSHOT = "screenshot"
    INFERENCE = "inference"
    #: Degraded-mode heuristic pass (FraudDroid fallback while the
    #: detector circuit breaker is open) — metadata only, no CNN.
    FALLBACK_INFERENCE = "fallback_inference"
    CACHE_PROBE = "cache_probe"
    DECORATION = "decoration"
    APP_FRAME = "app_frame"


@dataclass(frozen=True)
class DeviceProfile:
    """Calibration constants of a Redmi-10-class device.

    Baselines reproduce the paper's measured idle-with-apps workload
    (Table VII row 1); per-operation costs are the model — they were
    fitted once so that DARPA's default workload (200 ms cut-off over
    the Table VI app corpus) lands near the paper's overhead rows, and
    are *never* adjusted per experiment.
    """

    # Baseline workload of the foreground apps themselves.
    baseline_cpu_pct: float = 55.22
    baseline_memory_mb: float = 4291.96
    baseline_fps: float = 81.0
    baseline_power_mw: float = 443.85

    # CPU-milliseconds charged per operation.  The inference figure is
    # the full-screen capture -> preprocess -> CNN forward path on a
    # Redmi-10-class ARM CPU.
    event_cpu_ms: float = 0.3
    screenshot_cpu_ms: float = 30.0
    inference_cpu_ms: float = 100.0
    decoration_cpu_ms: float = 3.0
    # Fingerprinting a settled frame and probing the detection cache
    # (one grid average-pool + hash lookup; no CNN).
    cache_probe_cpu_ms: float = 2.0
    # One FraudDroid-style heuristic pass over the hierarchy dump
    # (string matching + placement rules; runs while the detector
    # breaker is open).
    fallback_cpu_ms: float = 6.0

    # Resident memory charged while components are loaded (MB).
    monitoring_memory_mb: float = 60.2
    model_memory_mb: float = 55.4
    decoration_memory_mb: float = 6.3
    # Transient working set of in-flight screenshot buffers, charged per
    # screenshot-per-minute of sustained capture rate.
    screenshot_memory_mb_per_min: float = 0.45

    # Power charged per operation (milliwatt-seconds = millijoules).
    event_power_mj: float = 0.16
    screenshot_power_mj: float = 25.0
    inference_power_mj: float = 110.0
    cache_probe_power_mj: float = 1.5
    fallback_power_mj: float = 4.0
    decoration_power_mj: float = 2.0

    # Frame-rate penalty: every main-thread CPU-ms stolen per second of
    # wall time costs this many frames per second.
    fps_per_cpu_ms_per_s: float = 0.075
    # Decoration redraws additionally contend with the render thread.
    fps_decoration_penalty: float = 0.012


@dataclass
class PerfReport:
    """Averaged SoloPi-style metrics over one measured run."""

    cpu_pct: float
    memory_mb: float
    fps: float
    power_mw: float
    counts: Dict[str, int] = field(default_factory=dict)

    def as_row(self) -> Tuple[float, float, float, float]:
        return (self.cpu_pct, self.memory_mb, self.fps, self.power_mw)


class PerfMeter:
    """Accumulates operation counts and derives averaged metrics.

    Observers (see :meth:`set_observers`) let the tracing layer mirror
    every charge without the meter knowing anything about spans: the
    hooks fire after the meter's own bookkeeping and default to None,
    so an unobserved meter costs one predicate per call.
    """

    def __init__(self, profile: DeviceProfile):
        self.profile = profile
        self._counts: Dict[PerfOp, int] = {op: 0 for op in PerfOp}
        self._components: set = set()
        self._on_record: Optional[Callable[[PerfOp, int], None]] = None
        self._on_component: Optional[Callable[[str], None]] = None
        self._on_reset: Optional[Callable[[], None]] = None

    def set_observers(
        self,
        on_record: Optional[Callable[[PerfOp, int], None]] = None,
        on_component: Optional[Callable[[str], None]] = None,
        on_reset: Optional[Callable[[], None]] = None,
    ) -> None:
        """Install (or clear) the charge/component/reset observers."""
        self._on_record = on_record
        self._on_component = on_component
        self._on_reset = on_reset

    def record(self, op: PerfOp, n: int = 1) -> None:
        if n < 0:
            raise ValueError("operation count cannot be negative")
        self._counts[op] += n
        if self._on_record is not None:
            self._on_record(op, n)

    def enable_component(self, name: str) -> None:
        """Mark a DARPA component (``monitoring`` | ``detection`` |
        ``decoration``) as resident, charging its memory."""
        allowed = {"monitoring", "detection", "decoration"}
        if name not in allowed:
            raise ValueError(f"unknown component {name!r}; expected one of {sorted(allowed)}")
        self._components.add(name)
        if self._on_component is not None:
            self._on_component(name)

    def count(self, op: PerfOp) -> int:
        return self._counts[op]

    def counts(self) -> Dict[str, int]:
        """Current totals keyed by op value (read-only copy)."""
        return {op.value: c for op, c in self._counts.items()}

    def components(self) -> set:
        return set(self._components)

    def reset(self) -> None:
        self._counts = {op: 0 for op in PerfOp}
        self._components = set()
        if self._on_reset is not None:
            self._on_reset()

    def report(self, duration_ms: float) -> PerfReport:
        """Averaged metrics over a run of ``duration_ms``."""
        if duration_ms <= 0:
            raise ValueError("duration must be positive")
        p = self.profile
        seconds = duration_ms / 1000.0

        cpu_ms = (
            self._counts[PerfOp.EVENT_DELIVERED] * p.event_cpu_ms
            + self._counts[PerfOp.SCREENSHOT] * p.screenshot_cpu_ms
            + self._counts[PerfOp.INFERENCE] * p.inference_cpu_ms
            + self._counts[PerfOp.FALLBACK_INFERENCE] * p.fallback_cpu_ms
            + self._counts[PerfOp.CACHE_PROBE] * p.cache_probe_cpu_ms
            + self._counts[PerfOp.DECORATION] * p.decoration_cpu_ms
        )
        cpu_pct = p.baseline_cpu_pct + cpu_ms / duration_ms * 100.0

        memory_mb = p.baseline_memory_mb
        if "monitoring" in self._components:
            memory_mb += p.monitoring_memory_mb
        if "detection" in self._components:
            memory_mb += p.model_memory_mb
        if "decoration" in self._components:
            memory_mb += p.decoration_memory_mb
        shots_per_min = self._counts[PerfOp.SCREENSHOT] / (duration_ms / 60_000.0)
        memory_mb += shots_per_min * p.screenshot_memory_mb_per_min

        cpu_ms_per_s = cpu_ms / seconds if seconds > 0 else 0.0
        fps = p.baseline_fps - cpu_ms_per_s * p.fps_per_cpu_ms_per_s
        fps -= self._counts[PerfOp.DECORATION] / seconds * p.fps_decoration_penalty * p.baseline_fps
        fps = max(1.0, fps)

        power_mj = (
            self._counts[PerfOp.EVENT_DELIVERED] * p.event_power_mj
            + self._counts[PerfOp.SCREENSHOT] * p.screenshot_power_mj
            + self._counts[PerfOp.INFERENCE] * p.inference_power_mj
            + self._counts[PerfOp.FALLBACK_INFERENCE] * p.fallback_power_mj
            + self._counts[PerfOp.CACHE_PROBE] * p.cache_probe_power_mj
            + self._counts[PerfOp.DECORATION] * p.decoration_power_mj
        )
        power_mw = p.baseline_power_mw + power_mj / seconds

        return PerfReport(
            cpu_pct=cpu_pct,
            memory_mb=memory_mb,
            fps=fps,
            power_mw=power_mw,
            counts={op.value: c for op, c in self._counts.items()},
        )


class Device:
    """One simulated phone: the root object of any runtime experiment."""

    #: Android 11 — the first release whose AccessibilityService exposes
    #: ``takeScreenshot`` (the paper's minimum supported version).
    DEFAULT_API_LEVEL = 30

    def __init__(
        self,
        screen: Optional[Screen] = None,
        profile: Optional[DeviceProfile] = None,
        api_level: int = DEFAULT_API_LEVEL,
        seed: int = 0,
    ):
        self.screen = screen or Screen()
        self.clock = SimulatedClock()
        self.window_manager = WindowManager(self.screen)
        self.perf = PerfMeter(profile or DeviceProfile())
        self.api_level = api_level
        self.rng = np.random.default_rng(seed)
        self._listeners: List[Tuple[int, Callable[[AccessibilityEvent], None]]] = []
        self._event_log: List[AccessibilityEvent] = []

    # -- event bus ------------------------------------------------------

    def register_event_listener(
        self,
        mask: int,
        callback: Callable[[AccessibilityEvent], None],
    ) -> None:
        """Subscribe a callback to accessibility events matching ``mask``."""
        self._listeners.append((mask, callback))

    def unregister_event_listener(
        self, callback: Callable[[AccessibilityEvent], None]
    ) -> bool:
        """Remove a subscribed callback; True when it was registered.

        Matched by equality, not identity: a bound method like
        ``service._receive`` is a fresh object on every attribute
        access, but compares equal across accesses.
        """
        for i, (_, registered) in enumerate(self._listeners):
            if registered == callback:
                del self._listeners[i]
                return True
        return False

    def emit_event(
        self,
        event_type: AccessibilityEventType,
        package: str,
        window_id: Optional[int] = None,
    ) -> AccessibilityEvent:
        """The OS announces a UI change to every subscribed service."""
        event = AccessibilityEvent(
            event_type=event_type,
            package=package,
            timestamp_ms=self.clock.now_ms,
            window_id=window_id,
        )
        self._event_log.append(event)
        self._dispatch(event)
        return event

    def _dispatch(self, event: AccessibilityEvent) -> None:
        """Deliver one logged event to matching listeners.

        Split from :meth:`emit_event` so fault-injecting subclasses
        (:class:`repro.android.faults.FaultyDevice`) can drop, duplicate
        or storm deliveries without touching the event log.
        """
        for mask, callback in self._listeners:
            if mask & int(event.event_type):
                callback(event)

    @property
    def event_log(self) -> List[AccessibilityEvent]:
        return list(self._event_log)

    def clear_event_log(self) -> None:
        self._event_log = []
