"""A simulated Android substrate.

DARPA runs on a phone; this package is the phone.  It reproduces, in a
deterministic discrete-event simulation, every Android mechanism the
paper's runtime depends on:

- view trees with bounds, colors, text, clickability and resource ids
  (:mod:`repro.android.view`, :mod:`repro.android.resources`);
- windows, the status/navigation bars, full-screen vs windowed modes,
  and a ``WindowManager`` that hosts overlay views
  (:mod:`repro.android.window`);
- the 23 ``AccessibilityEvent`` types and an ``AccessibilityService``
  with event subscription, notification throttling, screenshots and
  dispatched clicks (:mod:`repro.android.events`,
  :mod:`repro.android.accessibility`);
- a renderer that rasterizes the window stack into screenshots
  (:mod:`repro.android.renderer`);
- scripted apps whose UI timelines emit realistic event streams
  (:mod:`repro.android.apps`), and a Monkey-style exerciser
  (:mod:`repro.android.monkey`);
- a SoloPi-like device cost model that turns counted work into CPU,
  memory, frame-rate and power figures (:mod:`repro.android.device`);
- an ``adb``-style metadata dump of the view hierarchy
  (:mod:`repro.android.adb`).
"""

from repro.android.clock import SimulatedClock
from repro.android.resources import ResourceId, ResourceIdPolicy
from repro.android.view import View, ViewGroup, Visibility, SemanticRole
from repro.android.window import (
    LayoutParams,
    Screen,
    Window,
    WindowManager,
    WindowType,
)
from repro.android.events import AccessibilityEvent, AccessibilityEventType
from repro.android.renderer import render_screen, render_window
from repro.android.accessibility import AccessibilityService, Screenshot
from repro.android.device import Device, DeviceProfile, PerfMeter, PerfReport
from repro.android.apps import AppSpec, SimulatedApp, UiTimeline, UiStep
from repro.android.monkey import Monkey
from repro.android.adb import dump_view_hierarchy, NodeInfo
from repro.android.faults import (
    DetectorCrashError,
    FaultInjector,
    FaultPlan,
    FaultyDetector,
    FaultyDevice,
    InjectedFault,
    OverlayRejectedError,
    ScreenshotFailedError,
    ScreenshotThrottledError,
)

__all__ = [
    "SimulatedClock",
    "ResourceId",
    "ResourceIdPolicy",
    "View",
    "ViewGroup",
    "Visibility",
    "SemanticRole",
    "LayoutParams",
    "Screen",
    "Window",
    "WindowManager",
    "WindowType",
    "AccessibilityEvent",
    "AccessibilityEventType",
    "render_screen",
    "render_window",
    "AccessibilityService",
    "Screenshot",
    "Device",
    "DeviceProfile",
    "PerfMeter",
    "PerfReport",
    "AppSpec",
    "SimulatedApp",
    "UiTimeline",
    "UiStep",
    "Monkey",
    "dump_view_hierarchy",
    "NodeInfo",
    "DetectorCrashError",
    "FaultInjector",
    "FaultPlan",
    "FaultyDetector",
    "FaultyDevice",
    "InjectedFault",
    "OverlayRejectedError",
    "ScreenshotFailedError",
    "ScreenshotThrottledError",
]
