"""Windows, the screen, and the WindowManager.

The substrate reproduces the exact geometry that makes DARPA's
decoration calibration necessary (paper Section IV-D / Figure 4):

- The *screen* is the physical raster, including a status bar at the
  top and a navigation bar at the bottom.
- An *application window* either covers the whole screen (full-screen
  mode, offset ``(0, 0)``) or only the area between the bars (offset
  ``(0, status_bar_height)``).
- Views position themselves in *window* coordinates; overlay windows
  added through ``WindowManager.add_view`` share the application
  window's insets, so placing a decoration at raw *screen* coordinates
  lands it too low by exactly the window offset.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.geometry.rect import Offset, Rect
from repro.android.view import View, Visibility


class WindowType(Enum):
    """The window layers we model (a small subset of Android's)."""

    APPLICATION = "application"
    ACCESSIBILITY_OVERLAY = "accessibility_overlay"


@dataclass(frozen=True)
class Screen:
    """Physical screen geometry in logical pixels."""

    width: int = 360
    height: int = 640
    status_bar_height: int = 24
    nav_bar_height: int = 48

    def __post_init__(self) -> None:
        usable = self.height - self.status_bar_height - self.nav_bar_height
        if usable <= 0:
            raise ValueError("bars leave no room for app content")

    @property
    def bounds(self) -> Rect:
        return Rect(0, 0, self.width, self.height)

    @property
    def app_area(self) -> Rect:
        """The region between the status and navigation bars."""
        return Rect(
            0,
            self.status_bar_height,
            self.width,
            self.height - self.status_bar_height - self.nav_bar_height,
        )

    def window_offset(self, fullscreen: bool) -> Offset:
        """Screen offset of an app (or overlay) window's origin."""
        if fullscreen:
            return Offset(0, 0)
        return Offset(0, self.status_bar_height)

    def window_size(self, fullscreen: bool) -> Rect:
        if fullscreen:
            return self.bounds
        area = self.app_area
        return Rect(0, 0, area.w, area.h)


@dataclass
class LayoutParams:
    """``WindowManager.LayoutParams`` — position/size of an added view.

    ``x``/``y`` are interpreted in the overlay window's own coordinate
    space (which shares the app window's insets), which is precisely why
    uncalibrated screen coordinates misplace decorations.
    """

    x: float = 0.0
    y: float = 0.0
    width: float = 0.0
    height: float = 0.0
    window_type: WindowType = WindowType.ACCESSIBILITY_OVERLAY


_window_ids = itertools.count(1)


@dataclass
class Window:
    """A window: a root view positioned somewhere on the screen."""

    root: View
    package: str
    kind: WindowType = WindowType.APPLICATION
    fullscreen: bool = False
    offset: Offset = field(default_factory=Offset)

    def __post_init__(self) -> None:
        self.window_id: int = next(_window_ids)

    def screen_bounds_of(self, view: View) -> Rect:
        """A view's bounds translated into screen coordinates."""
        return view.bounds.offset_by(self.offset)

    def contains_view(self, view: View) -> bool:
        return any(v is view for v in self.root.iter_tree())


class WindowManager:
    """Owns the window stack (bottom-to-top z-order) for one screen."""

    def __init__(self, screen: Screen):
        self.screen = screen
        self._stack: List[Window] = []

    # -- application windows ------------------------------------------

    def attach_app_window(self, root: View, package: str,
                          fullscreen: bool = False) -> Window:
        """Show an application window, replacing any window of the same
        package (apps swap screens rather than stack them)."""
        self._stack = [w for w in self._stack
                       if not (w.package == package and w.kind is WindowType.APPLICATION)]
        window = Window(
            root=root,
            package=package,
            kind=WindowType.APPLICATION,
            fullscreen=fullscreen,
            offset=self.screen.window_offset(fullscreen),
        )
        self._stack.append(window)
        return window

    def top_app_window(self) -> Optional[Window]:
        for window in reversed(self._stack):
            if window.kind is WindowType.APPLICATION:
                return window
        return None

    # -- overlays (the DARPA decoration path) ------------------------------

    def add_view(self, view: View, params: LayoutParams, package: str) -> Window:
        """``WindowManager.addView`` — mount an overlay view.

        The view's bounds are taken from ``params``; the overlay window
        inherits the insets of the current foreground app window, so a
        non-full-screen app yields a non-zero overlay offset.
        """
        view.bounds = Rect(params.x, params.y, params.width, params.height)
        top = self.top_app_window()
        fullscreen = top.fullscreen if top is not None else True
        window = Window(
            root=view,
            package=package,
            kind=WindowType.ACCESSIBILITY_OVERLAY,
            fullscreen=fullscreen,
            offset=self.screen.window_offset(fullscreen),
        )
        self._stack.append(window)
        return window

    def remove_view(self, view: View) -> bool:
        """``WindowManager.removeView`` — unmount an overlay by its root."""
        for i, window in enumerate(self._stack):
            if window.kind is WindowType.ACCESSIBILITY_OVERLAY and window.root is view:
                del self._stack[i]
                return True
        return False

    def remove_windows_of(self, package: str) -> int:
        """Drop every window owned by ``package``; returns the count."""
        before = len(self._stack)
        self._stack = [w for w in self._stack if w.package != package]
        return before - len(self._stack)

    # -- queries -----------------------------------------------------------

    @property
    def windows(self) -> List[Window]:
        """Bottom-to-top snapshot of the stack."""
        return list(self._stack)

    def overlays(self) -> List[Window]:
        return [w for w in self._stack if w.kind is WindowType.ACCESSIBILITY_OVERLAY]

    def window_of(self, view: View) -> Optional[Window]:
        for window in self._stack:
            if window.contains_view(view):
                return window
        return None

    def get_location_on_screen(self, view: View) -> Offset:
        """``View.getLocationOnScreen`` — screen coords of a view origin.

        This is the API DARPA's anchor-view calibration uses: an anchor
        added at window ``(0, 0)`` reports exactly the window offset.
        """
        window = self.window_of(view)
        if window is None:
            raise ValueError("view is not attached to any window")
        return Offset(window.offset.x + view.bounds.x,
                      window.offset.y + view.bounds.y)

    def dispatch_click(self, screen_x: float, screen_y: float) -> Optional[View]:
        """Route a tap at screen coordinates to the topmost clickable view."""
        for window in reversed(self._stack):
            local_x = screen_x - window.offset.x
            local_y = screen_y - window.offset.y
            hit = window.root.hit_test(local_x, local_y)
            if hit is not None:
                hit.click()
                return hit
        return None
