"""Rasterizing window stacks into screenshots.

``AccessibilityService.take_screenshot`` ultimately calls
:func:`render_screen`, which composites the window stack bottom-to-top
onto a :class:`~repro.imaging.canvas.Canvas`, then draws the system bars
when the foreground app is not full-screen.  Ground-truth images for the
dataset generator come through the same code path, so the detector never
sees a rendering style it wasn't trained on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.rect import Offset, Rect
from repro.imaging.canvas import Canvas
from repro.imaging.color import Color, PALETTE
from repro.imaging.text import draw_pseudo_text, pseudo_text_width
from repro.android.view import Shape, View, Visibility
from repro.android.window import Screen, Window, WindowManager, WindowType

_STATUS_BAR_COLOR = Color.from_hex("#1a1a1a")
_NAV_BAR_COLOR = Color.from_hex("#101010")
_WALLPAPER = Color.from_hex("#202028")


def _draw_view(canvas: Canvas, view: View, offset: Offset) -> None:
    """Draw one view (not its children) at its screen position."""
    rect = view.bounds.offset_by(offset)
    if view.bg_color is not None:
        if view.shape is Shape.CIRCLE:
            cx, cy = rect.center
            canvas.fill_circle(cx, cy, min(rect.w, rect.h) / 2.0,
                               view.bg_color, alpha=view.bg_alpha)
        elif view.shape is Shape.ROUNDED:
            canvas.fill_rounded_rect(rect, view.bg_color, view.corner_radius,
                                     alpha=view.bg_alpha)
        else:
            canvas.fill_rect(rect, view.bg_color, alpha=view.bg_alpha)
    if view.border_color is not None and view.border_width > 0:
        canvas.stroke_rect(rect, view.border_color,
                           thickness=view.border_width, alpha=view.bg_alpha)
    if view.icon is not None and view.icon_color is not None:
        cx, cy = rect.center
        size = min(rect.w, rect.h) * 0.6
        if view.icon == "cross":
            canvas.draw_cross(cx, cy, size, view.icon_color,
                              thickness=max(1, int(size / 8)),
                              alpha=view.icon_alpha)
        elif view.icon == "circle":
            canvas.fill_circle(cx, cy, size / 2.0, view.icon_color,
                               alpha=view.icon_alpha)
        elif view.icon == "bar":
            canvas.fill_rect(Rect.from_center(cx, cy, size, size / 4.0),
                             view.icon_color, alpha=view.icon_alpha)
    if view.text and view.text_color is not None:
        size = view.text_size
        text_w = pseudo_text_width(view.text, size)
        # Auto-fit: shrink oversize text so the ink stays inside the
        # view, as Android's ellipsizing keeps labels inside buttons.
        if text_w > rect.w * 0.96 and text_w > 0:
            size = max(3.0, size * rect.w * 0.96 / text_w)
            text_w = pseudo_text_width(view.text, size)
        tx = rect.center[0] - text_w / 2.0
        ty = rect.center[1] - size / 2.0
        draw_pseudo_text(canvas, view.text, tx, ty, size,
                         view.text_color, alpha=view.text_alpha)


def render_view_tree(canvas: Canvas, root: View, offset: Offset) -> None:
    """Pre-order draw of a view subtree (parents under children)."""
    if root.visibility is not Visibility.VISIBLE:
        return
    _draw_view(canvas, root, offset)
    for child in root.children:
        render_view_tree(canvas, child, offset)


def render_window(window: Window, screen: Screen) -> Canvas:
    """Rasterize a single window against a blank screen."""
    canvas = Canvas(screen.width, screen.height, background=_WALLPAPER)
    render_view_tree(canvas, window.root, window.offset)
    return canvas


def render_screen(
    wm: WindowManager,
    noise_rng: Optional[np.random.Generator] = None,
    noise_scale: float = 0.008,
) -> Canvas:
    """Composite the full window stack into a screenshot.

    System bars are drawn above app windows whenever the foreground app
    is not full-screen; accessibility overlays are always topmost (their
    stack position already guarantees that).
    """
    screen = wm.screen
    canvas = Canvas(screen.width, screen.height, background=_WALLPAPER)
    for window in wm.windows:
        render_view_tree(canvas, window.root, window.offset)
    top = wm.top_app_window()
    fullscreen = top.fullscreen if top is not None else False
    if not fullscreen:
        canvas.fill_rect(
            Rect(0, 0, screen.width, screen.status_bar_height),
            _STATUS_BAR_COLOR,
        )
        # Status bar furniture: clock and signal blocks.
        canvas.fill_rect(Rect(8, 8, 30, 8), PALETTE["light_gray"])
        canvas.fill_rect(Rect(screen.width - 40, 8, 32, 8), PALETTE["light_gray"])
        canvas.fill_rect(
            Rect(0, screen.height - screen.nav_bar_height,
                 screen.width, screen.nav_bar_height),
            _NAV_BAR_COLOR,
        )
        # Navigation pills.
        y = screen.height - screen.nav_bar_height / 2.0
        for frac in (0.25, 0.5, 0.75):
            canvas.fill_circle(screen.width * frac, y, 6, PALETTE["gray"])
        # Re-draw overlays so decorations are never hidden by the bars.
        for window in wm.overlays():
            render_view_tree(canvas, window.root, window.offset)
    if noise_rng is not None:
        canvas.add_noise(noise_rng, scale=noise_scale)
    return canvas
