"""Deterministic fault injection for the simulated Android substrate.

A phone is a hostile runtime: ``takeScreenshot`` is rate-limited by the
OS and fails under memory pressure, accessibility events get dropped or
delivered in storms, the overlay permission can be revoked mid-run, and
the on-device detector competes for CPU.  This module injects exactly
those faults into the simulated device — seeded, and clocked off the
:class:`~repro.android.clock.SimulatedClock` — so every chaos run is
bit-for-bit reproducible and the resilience layer
(:mod:`repro.core.resilience`) can be tested against realistic failure
schedules instead of hand-placed exceptions.

Layout:

- :class:`FaultPlan` — the frozen, seeded description of *what* to
  inject at which rates;
- :class:`FaultInjector` — the per-device runtime that draws the
  injection decisions and counts what it injected;
- :class:`FaultyDevice` — a :class:`~repro.android.device.Device` whose
  event dispatch drops, duplicates, or storms deliveries;
- :class:`FaultyDetector` — wraps any ``Detector`` with injected
  crashes and simulated latency spikes.

The error taxonomy mirrors what real Android surfaces would raise:
``ScreenshotThrottledError`` is the ``takeScreenshot`` interval limit
(``ERROR_TAKE_SCREENSHOT_INTERVAL_TIME_SHORT``), ``OverlayRejectedError``
the ``BadTokenException`` after a ``SYSTEM_ALERT_WINDOW`` revocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.android.clock import SimulatedClock
from repro.android.device import Device


class InjectedFault(RuntimeError):
    """Base class of every injectable failure."""


class ScreenshotFailedError(InjectedFault):
    """A transient ``takeScreenshot`` failure (capture did not complete)."""


class ScreenshotThrottledError(ScreenshotFailedError):
    """The OS rate limit rejected a capture taken too soon after the
    previous one (a fast-fail: no capture work was performed)."""


class OverlayRejectedError(InjectedFault):
    """The WindowManager refused an overlay mount (permission revoked
    mid-run — Android's ``BadTokenException``)."""


class DetectorCrashError(InjectedFault):
    """The on-device detector raised mid-inference."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative chaos schedule.

    All rates are per-opportunity probabilities in ``[0, 1]``; the
    default plan injects nothing.  Two runs with the same plan, fleet,
    and seeds observe the identical fault sequence.
    """

    seed: int = 0
    #: Probability one ``takeScreenshot`` call fails after doing its
    #: capture work (the buffer is lost; the cost is still charged).
    screenshot_failure_rate: float = 0.0
    #: OS rate limit: captures closer together than this are rejected
    #: with :class:`ScreenshotThrottledError` (0 disables).
    screenshot_min_interval_ms: float = 0.0
    #: Probability an emitted accessibility event is never delivered.
    event_drop_rate: float = 0.0
    #: Probability an event is delivered twice (bus duplication).
    event_duplicate_rate: float = 0.0
    #: Probability an event fans out into a storm of
    #: :attr:`event_storm_size` identical deliveries.
    event_storm_rate: float = 0.0
    event_storm_size: int = 6
    #: Probability an overlay mount is rejected.
    overlay_rejection_rate: float = 0.0
    #: Probability the wrapped detector raises :class:`DetectorCrashError`.
    detector_failure_rate: float = 0.0
    #: Probability an inference takes :attr:`detector_spike_ms` longer
    #: than its :attr:`detector_base_ms` budget (CPU contention spike).
    detector_spike_rate: float = 0.0
    detector_spike_ms: float = 400.0
    detector_base_ms: float = 100.0
    # -- daemon-facing worker faults (see repro.core.daemon) -----------
    #: Probability a shared inference worker stalls before executing one
    #: coalesced batch; the batch still executes, but completes
    #: :attr:`worker_stall_ms` late on the simulated clock.
    worker_stall_rate: float = 0.0
    worker_stall_ms: float = 3000.0
    #: Probability a worker crashes before executing a batch: the batch
    #: never runs, its sessions must be re-enqueued (without re-counting
    #: their telemetry), and the worker is back after
    #: :attr:`worker_restart_ms`.
    worker_crash_rate: float = 0.0
    worker_restart_ms: float = 5000.0

    def __post_init__(self) -> None:
        for name in ("screenshot_failure_rate", "event_drop_rate",
                     "event_duplicate_rate", "event_storm_rate",
                     "overlay_rejection_rate", "detector_failure_rate",
                     "detector_spike_rate", "worker_stall_rate",
                     "worker_crash_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.screenshot_min_interval_ms < 0:
            raise ValueError("screenshot_min_interval_ms cannot be negative")
        if self.event_storm_size < 1:
            raise ValueError("event_storm_size must be >= 1")
        if self.detector_spike_ms < 0 or self.detector_base_ms < 0:
            raise ValueError("detector latencies cannot be negative")
        if self.worker_stall_ms < 0 or self.worker_restart_ms < 0:
            raise ValueError("worker delays cannot be negative")

    @property
    def is_null(self) -> bool:
        """True when this plan injects nothing at all."""
        return (
            self.screenshot_failure_rate == 0.0
            and self.screenshot_min_interval_ms == 0.0
            and self.event_drop_rate == 0.0
            and self.event_duplicate_rate == 0.0
            and self.event_storm_rate == 0.0
            and self.overlay_rejection_rate == 0.0
            and self.detector_failure_rate == 0.0
            and self.detector_spike_rate == 0.0
            and self.worker_stall_rate == 0.0
            and self.worker_crash_rate == 0.0
        )


#: The no-op plan: a FaultyDevice built with it behaves bit-identically
#: to a plain Device (no RNG draws, no counters, no exceptions).
NULL_PLAN = FaultPlan()


class FaultInjector:
    """Draws one device's injection decisions from a dedicated stream.

    The injector owns its own ``default_rng(plan.seed)`` so chaos never
    perturbs the device RNG (rendering noise, Monkey taps) — a plan
    with all rates at zero leaves every other random stream untouched.
    Decisions that cannot fire (rate 0) draw nothing, which keeps the
    null plan free of even dead RNG consumption.
    """

    COUNTER_KEYS = (
        "screenshots_throttled", "screenshots_failed", "events_dropped",
        "events_duplicated", "event_storms", "overlays_rejected",
        "detector_crashes", "latency_spikes", "worker_stalls",
        "worker_crashes",
    )

    def __init__(self, plan: FaultPlan, clock: SimulatedClock):
        self.plan = plan
        self.clock = clock
        self.rng = np.random.default_rng(plan.seed)
        self.counts: Dict[str, int] = {k: 0 for k in self.COUNTER_KEYS}
        self._last_shot_ms: Optional[float] = None

    def _hit(self, rate: float) -> bool:
        return rate > 0.0 and float(self.rng.random()) < rate

    # -- screenshots ----------------------------------------------------

    def check_screenshot_throttle(self) -> None:
        """Enforce the OS capture interval; fast-fails before any work."""
        interval = self.plan.screenshot_min_interval_ms
        if interval <= 0:
            return
        now = self.clock.now_ms
        if (self._last_shot_ms is not None
                and now - self._last_shot_ms < interval):
            self.counts["screenshots_throttled"] += 1
            raise ScreenshotThrottledError(
                f"takeScreenshot throttled: {now - self._last_shot_ms:.0f}ms "
                f"since previous capture (minimum {interval:.0f}ms)")
        self._last_shot_ms = now

    def check_screenshot_failure(self) -> None:
        """Maybe lose the capture *after* the work was done."""
        if self._hit(self.plan.screenshot_failure_rate):
            self.counts["screenshots_failed"] += 1
            raise ScreenshotFailedError("injected screenshot capture failure")

    # -- events ---------------------------------------------------------

    def event_copies(self) -> int:
        """How many times to deliver the next event (0 = dropped)."""
        plan = self.plan
        if self._hit(plan.event_drop_rate):
            self.counts["events_dropped"] += 1
            return 0
        if self._hit(plan.event_storm_rate):
            self.counts["event_storms"] += 1
            return plan.event_storm_size
        if self._hit(plan.event_duplicate_rate):
            self.counts["events_duplicated"] += 1
            return 2
        return 1

    # -- overlays -------------------------------------------------------

    def check_overlay(self) -> None:
        if self._hit(self.plan.overlay_rejection_rate):
            self.counts["overlays_rejected"] += 1
            raise OverlayRejectedError(
                "overlay mount rejected (SYSTEM_ALERT_WINDOW revoked)")

    # -- detector -------------------------------------------------------

    def check_detector(self) -> None:
        if self._hit(self.plan.detector_failure_rate):
            self.counts["detector_crashes"] += 1
            raise DetectorCrashError("injected detector crash")

    def detector_latency_ms(self) -> float:
        """Simulated duration of one inference (base, or base + spike)."""
        if self._hit(self.plan.detector_spike_rate):
            self.counts["latency_spikes"] += 1
            return self.plan.detector_base_ms + self.plan.detector_spike_ms
        return self.plan.detector_base_ms

    # -- daemon workers -------------------------------------------------

    def worker_batch_fault(self) -> Tuple[str, float]:
        """Fault decision for one coalesced inference batch.

        Drawn by the daemon scheduler at batch-formation time, BEFORE
        any session in the batch executes, so a crashed batch can be
        re-enqueued without having touched any telemetry.  Returns
        ``(kind, delay_ms)``:

        - ``("crash", worker_restart_ms)`` — the worker died; the batch
          never ran and the worker slot is unavailable for the delay;
        - ``("stall", worker_stall_ms)`` — the batch runs, but finishes
          late by the delay (CPU starvation / GC pause);
        - ``("ok", 0.0)`` — no fault.

        The crash draw happens before the stall draw — a fixed,
        documented order so fault sequences are reproducible whatever
        combination of rates a plan sets.  Both rates at zero draw
        nothing (null plans stay bit-inert).
        """
        if self._hit(self.plan.worker_crash_rate):
            self.counts["worker_crashes"] += 1
            return "crash", self.plan.worker_restart_ms
        if self._hit(self.plan.worker_stall_rate):
            self.counts["worker_stalls"] += 1
            return "stall", self.plan.worker_stall_ms
        return "ok", 0.0


class FaultyDevice(Device):
    """A :class:`Device` whose event dispatch and capture path misbehave
    according to a :class:`FaultPlan`.

    The accessibility surface discovers the injector through the
    ``faults`` attribute (``getattr(device, "faults", None)``), so every
    other Device consumer is untouched.
    """

    def __init__(self, plan: Optional[FaultPlan] = None, **kwargs):
        super().__init__(**kwargs)
        self.faults = FaultInjector(plan or NULL_PLAN, self.clock)

    def _dispatch(self, event) -> None:
        for _ in range(self.faults.event_copies()):
            super()._dispatch(event)


class FaultyDetector:
    """Wraps any pipeline ``Detector`` with injected crashes and latency.

    The simulated inference duration of the most recent call is exposed
    as :attr:`last_detect_ms`, which the pipeline's watchdog deadline
    (see :mod:`repro.core.pipeline`) compares against its per-screen
    budget — deterministic latency, no wall clock involved.
    """

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector
        self.last_detect_ms: float = 0.0
        self.calls = 0

    def detect_screen(self, screen_image, refine: bool = True,
                      conf_threshold: Optional[float] = None):
        self.calls += 1
        self.injector.check_detector()
        self.last_detect_ms = self.injector.detector_latency_ms()
        try:
            return self.inner.detect_screen(
                screen_image, refine=refine, conf_threshold=conf_threshold)
        except TypeError:  # RCNN-style detectors take only the image
            return self.inner.detect_screen(screen_image)
