"""Load profiles from the places they live.

``repro profile`` (and ``--diff``) accepts any of:

- a **run directory** — ``profile.json`` if merged, else
  ``shard-*.profile.json`` parts folded in sorted-name order, else the
  raw ``trace.jsonl`` / ``shard-*.trace.jsonl`` spans folded on the
  spot (with per-session dropped-span counts out of the metrics lines);
- a **profile.json** file (or any JSON file with an embedded
  :data:`~repro.profiling.profile.PROFILE_KEY` block, e.g. a
  ``BENCH_*.json`` baseline);
- a **span JSONL** file (``trace.jsonl`` dumps from ``repro trace``).

Every fold path sorts its inputs (file names, session indices) before
merging, so the loaded profile is byte-identical no matter how the
directory listing enumerated shard parts — the same order-canonical
contract as the ops dashboard loader.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Optional, Tuple

from repro.android.device import DeviceProfile
from repro.profiling.fold import dropped_from_metrics, profile_from_spans
from repro.profiling.profile import PROFILE_KEY, Profile


class ProfileSourceError(ValueError):
    """The profile source is missing, unreadable, or not a profile."""


def _load_json(path: str) -> Mapping[str, object]:
    try:
        with open(path) as fp:
            payload = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        raise ProfileSourceError(f"cannot read {path}: {exc}")
    if not isinstance(payload, Mapping):
        raise ProfileSourceError(f"{path}: expected a JSON object")
    return payload


def _profile_from_payload(path: str,
                          payload: Mapping[str, object]) -> Profile:
    if "frames" in payload:
        source: object = payload
    elif PROFILE_KEY in payload:
        source = payload[PROFILE_KEY]
    else:
        raise ProfileSourceError(
            f"{path}: neither a profile document nor a payload with a "
            f"{PROFILE_KEY!r} block")
    try:
        return Profile.from_dict(source)  # type: ignore[arg-type]
    except (ValueError, TypeError, AttributeError) as exc:
        raise ProfileSourceError(f"{path}: malformed profile ({exc})")


def _read_jsonl(path: str) -> List[Mapping[str, object]]:
    records: List[Mapping[str, object]] = []
    try:
        with open(path) as fp:
            for lineno, line in enumerate(fp, 1):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ProfileSourceError(
                        f"{path}:{lineno}: malformed JSONL ({exc})")
                if not isinstance(record, dict):
                    raise ProfileSourceError(
                        f"{path}:{lineno}: expected an object per line")
                records.append(record)
    except OSError as exc:
        raise ProfileSourceError(f"cannot read {path}: {exc}")
    return records


def _fold_span_records(records: List[Mapping[str, object]],
                       dropped: Optional[Dict[int, int]] = None,
                       device_profile: Optional[DeviceProfile] = None
                       ) -> Profile:
    """Group span lines by global session index and fold each session."""
    by_session: Dict[int, List[Mapping[str, object]]] = {}
    for record in records:
        session = int(record.get("session", 0))  # type: ignore[arg-type]
        span = {k: v for k, v in record.items() if k != "session"}
        by_session.setdefault(session, []).append(span)
    out = Profile()
    for session in sorted(by_session):
        out.merge(profile_from_spans(
            by_session[session], profile=device_profile,
            dropped_spans=(dropped or {}).get(session, 0)))
    return out


def _load_dir(run_dir: str,
              device_profile: Optional[DeviceProfile]) -> Profile:
    try:
        listing = sorted(os.listdir(run_dir))
    except OSError as exc:
        raise ProfileSourceError(f"cannot list {run_dir}: {exc}")

    merged = [n for n in listing if n == "profile.json"]
    parts = [n for n in listing if n.startswith("shard-")
             and n.endswith(".profile.json")]
    if merged or parts:
        out = Profile()
        for name in merged + parts:
            path = os.path.join(run_dir, name)
            out.merge(_profile_from_payload(path, _load_json(path)))
        return out

    trace_parts = [n for n in listing
                   if n == "trace.jsonl" or (n.startswith("shard-")
                                             and n.endswith(".trace.jsonl"))]
    if not trace_parts:
        raise ProfileSourceError(
            f"no profile or trace artifacts in {run_dir}")
    records: List[Mapping[str, object]] = []
    for name in trace_parts:
        records.extend(_read_jsonl(os.path.join(run_dir, name)))
    dropped: Dict[int, int] = {}
    for name in listing:
        if name == "metrics.jsonl" or (name.startswith("shard-")
                                       and name.endswith(".metrics.jsonl")):
            for record in _read_jsonl(os.path.join(run_dir, name)):
                session = int(record.get("session", 0))  # type: ignore[arg-type]
                metrics = record.get("metrics", {})
                if isinstance(metrics, Mapping):
                    dropped[session] = dropped_from_metrics(metrics)
    return _fold_span_records(records, dropped, device_profile)


def load_profile(source: str,
                 device_profile: Optional[DeviceProfile] = None) -> Profile:
    """Load a Profile from a run directory, JSON document, or span JSONL."""
    if os.path.isdir(source):
        return _load_dir(source, device_profile)
    if not os.path.exists(source):
        raise ProfileSourceError(f"no such file or directory: {source}")
    if source.endswith(".jsonl"):
        return _fold_span_records(_read_jsonl(source),
                                  device_profile=device_profile)
    return _profile_from_payload(source, _load_json(source))


__all__ = ["ProfileSourceError", "load_profile"]
