"""``repro profile`` — fold, render, and diff deterministic profiles.

- ``repro profile RUN``              summary + top-N hottest frames
- ``repro profile RUN --fold``       folded stacks on stdout (flamegraph
  input; nothing else touches stdout)
- ``repro profile RUN --json OUT``   write canonical ``profile.json``
- ``repro profile --diff BASE FRESH``  ranked attribution report;
  exits 1 when the profiles differ (regress-style), 0 when identical

``RUN``/``BASE``/``FRESH`` accept a run directory, a ``profile.json``,
a ``BENCH_*.json`` with an embedded profile block, or a span JSONL
dump.  Exit codes mirror ``repro regress``: 0 = ok/identical,
1 = profiles differ (``--diff`` only), 2 = usage or unreadable source.
Completeness warnings (dropped/orphan spans) go to stderr so ``--fold``
output stays byte-clean for tooling.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from repro.profiling.diff import diff_profiles, report_lines
from repro.profiling.io import ProfileSourceError, load_profile
from repro.profiling.profile import Profile


def _warn_completeness(tag: str, profile: Profile) -> None:
    if profile.dropped_spans:
        print(f"profile: warning: {tag}: {profile.dropped_spans} span(s) "
              "dropped by the tracer ring buffer — totals undercount",
              file=sys.stderr)
    if profile.orphan_spans:
        print(f"profile: warning: {tag}: {profile.orphan_spans} orphan "
              "span(s) re-rooted (parent evicted before export)",
              file=sys.stderr)


def _run_diff(base_src: str, fresh_src: str, top: int) -> int:
    try:
        base = load_profile(base_src)
        fresh = load_profile(fresh_src)
    except ProfileSourceError as exc:
        print(f"profile: {exc}", file=sys.stderr)
        return 2
    _warn_completeness(base_src, base)
    _warn_completeness(fresh_src, fresh)
    diff = diff_profiles(base, fresh)
    for line in report_lines(diff, top_n=top):
        print(line)
    return 0 if diff.empty else 1


def run_profile(source: Optional[str] = None,
                diff: Optional[Sequence[str]] = None,
                fold: bool = False, top: int = 15,
                json_out: Optional[str] = None) -> int:
    if diff is not None:
        return _run_diff(diff[0], diff[1], top)
    if source is None:
        print("profile: a SOURCE (or --diff BASE FRESH) is required",
              file=sys.stderr)
        return 2
    try:
        profile = load_profile(source)
    except ProfileSourceError as exc:
        print(f"profile: {exc}", file=sys.stderr)
        return 2
    _warn_completeness(source, profile)
    if json_out is not None:
        try:
            with open(json_out, "w") as fp:
                fp.write(profile.to_json())
        except OSError as exc:
            print(f"profile: cannot write {json_out}: {exc}",
                  file=sys.stderr)
            return 2
    if fold:
        sys.stdout.write(profile.folded_text())
        return 0
    print(f"profile: {profile.sessions} session(s), "
          f"{len(profile.frames)} frame(s), "
          f"{profile.total_cpu_us / 1000.0:.3f} ms attributed CPU")
    shown = profile.top(top)
    if shown:
        print(f"top {len(shown)} frame(s) by attributed CPU:")
        total_macs = profile.total_macs
        for stack, stats in shown:
            share = (f"  mac_share={stats.macs / total_macs:.3f}"
                     if stats.macs and total_macs else "")
            print(f"  {stats.cpu_us / 1000.0:10.3f} ms  "
                  f"x{stats.count:<6d}{share}  {stack}")
    return 0


__all__ = ["run_profile"]
