"""Differential profiles: rank where the milliseconds went.

:func:`diff_profiles` compares two :class:`Profile`\\ s frame by frame
and keeps only frames whose state actually differs — so
``diff(A, A)`` is empty by construction, which the property tests pin.
Each surviving frame becomes a :class:`FrameDelta` with absolute and
relative CPU deltas plus its new/vanished/changed status, and the
report ranks them by absolute delta (ties by stack), so the top entry
*is* the attribution: "this run is slower because this path grew".

The same engine serves three surfaces: ``repro profile --diff A B``,
``repro regress --explain`` (run vs the profile embedded in the BENCH
baseline), and the ``/api/flame/diff`` dashboard route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.profiling.profile import Profile, split_key, stack_key


@dataclass(frozen=True)
class FrameDelta:
    """One frame's contribution to the difference between two runs."""

    stack: str
    status: str  # "new" | "vanished" | "changed"
    base_cpu_us: int
    fresh_cpu_us: int
    delta_cpu_us: int
    base_count: int
    fresh_count: int
    base_macs: int
    fresh_macs: int

    @property
    def rel(self) -> Optional[float]:
        """Relative CPU delta vs the baseline (None for new frames)."""
        if self.base_cpu_us == 0:
            return None
        return self.delta_cpu_us / self.base_cpu_us

    def to_dict(self) -> Dict[str, object]:
        return {
            "stack": self.stack,
            "status": self.status,
            "base_cpu_us": self.base_cpu_us,
            "fresh_cpu_us": self.fresh_cpu_us,
            "delta_cpu_us": self.delta_cpu_us,
            "rel": self.rel,
            "base_count": self.base_count,
            "fresh_count": self.fresh_count,
            "base_macs": self.base_macs,
            "fresh_macs": self.fresh_macs,
        }


@dataclass(frozen=True)
class ProfileDiff:
    """All differing frames, ranked most-regressed first."""

    frames: Tuple[FrameDelta, ...]
    base_total_cpu_us: int
    fresh_total_cpu_us: int
    base_sessions: int
    fresh_sessions: int
    base_dropped_spans: int
    fresh_dropped_spans: int

    @property
    def empty(self) -> bool:
        return not self.frames

    @property
    def delta_cpu_us(self) -> int:
        return self.fresh_total_cpu_us - self.base_total_cpu_us

    def top(self, n: int) -> Tuple[FrameDelta, ...]:
        return self.frames[:n]

    def to_dict(self) -> Dict[str, object]:
        return {
            "base_total_cpu_us": self.base_total_cpu_us,
            "fresh_total_cpu_us": self.fresh_total_cpu_us,
            "delta_cpu_us": self.delta_cpu_us,
            "base_sessions": self.base_sessions,
            "fresh_sessions": self.fresh_sessions,
            "base_dropped_spans": self.base_dropped_spans,
            "fresh_dropped_spans": self.fresh_dropped_spans,
            "frames": [frame.to_dict() for frame in self.frames],
        }


def diff_profiles(base: Profile, fresh: Profile) -> ProfileDiff:
    """Frame-by-frame diff; identical profiles produce zero frames."""
    deltas: List[FrameDelta] = []
    stacks = sorted(set(base.frames) | set(fresh.frames))
    for stack in stacks:
        b = base.frames.get(stack)
        f = fresh.frames.get(stack)
        if b is not None and f is not None and \
                (b.count, b.cpu_us, b.macs) == (f.count, f.cpu_us, f.macs):
            continue
        if b is None:
            status = "new"
        elif f is None:
            status = "vanished"
        else:
            status = "changed"
        deltas.append(FrameDelta(
            stack=stack_key(stack),
            status=status,
            base_cpu_us=0 if b is None else b.cpu_us,
            fresh_cpu_us=0 if f is None else f.cpu_us,
            delta_cpu_us=(0 if f is None else f.cpu_us)
                         - (0 if b is None else b.cpu_us),
            base_count=0 if b is None else b.count,
            fresh_count=0 if f is None else f.count,
            base_macs=0 if b is None else b.macs,
            fresh_macs=0 if f is None else f.macs,
        ))
    deltas.sort(key=lambda d: (-abs(d.delta_cpu_us), split_key(d.stack)))
    return ProfileDiff(
        frames=tuple(deltas),
        base_total_cpu_us=base.total_cpu_us,
        fresh_total_cpu_us=fresh.total_cpu_us,
        base_sessions=base.sessions,
        fresh_sessions=fresh.sessions,
        base_dropped_spans=base.dropped_spans,
        fresh_dropped_spans=fresh.dropped_spans,
    )


def _fmt_rel(rel: Optional[float]) -> str:
    return "   n/a" if rel is None else f"{rel:+6.1%}"


def report_lines(diff: ProfileDiff, top_n: int = 15) -> List[str]:
    """The human attribution report (one line per ranked frame)."""
    lines = [
        f"profile delta: {diff.delta_cpu_us / 1000.0:+.3f} ms total "
        f"({diff.base_total_cpu_us / 1000.0:.3f} -> "
        f"{diff.fresh_total_cpu_us / 1000.0:.3f} ms, "
        f"{diff.base_sessions} -> {diff.fresh_sessions} session(s))",
    ]
    if diff.base_dropped_spans or diff.fresh_dropped_spans:
        lines.append(
            f"warning: dropped spans (base={diff.base_dropped_spans}, "
            f"fresh={diff.fresh_dropped_spans}) — totals undercount")
    if diff.empty:
        lines.append("no differing frames")
        return lines
    shown = diff.top(top_n)
    lines.append(f"top {len(shown)} of {len(diff.frames)} differing "
                 "frame(s) by |delta|:")
    for delta in shown:
        lines.append(
            f"  {delta.delta_cpu_us / 1000.0:+10.3f} ms  "
            f"{_fmt_rel(delta.rel)}  {delta.status:8s}  {delta.stack}")
    return lines


__all__ = [
    "FrameDelta",
    "ProfileDiff",
    "diff_profiles",
    "report_lines",
]
