"""Canonical stack-keyed CPU profiles with an exact merge algebra.

A :class:`Profile` aggregates span-attributed cost-model CPU by *stack
path* — the chain of span names from the session root down to the
charged span, e.g. ``session;event;analyze;inference`` — plus the
PlanProfiler's per-step MAC attribution one level below the inference
span (``...;inference;conv3/gemm``).  Frame state is integral on
purpose: CPU is kept in integer **microseconds** and counts/MACs are
ints, so :meth:`Profile.merge` is exactly associative and commutative
(the same trick :class:`repro.core.telemetry.QuantileSketch` uses) and
the serialized profile is byte-identical for any shard order, merge
tree, or worker count.

Serialization is a versioned JSON document (``profile.json``) plus a
folded-stacks text rendering (``stack;path value`` lines, sorted) that
standard flamegraph tooling consumes directly.

Completeness is part of the profile, not a side channel: a profile
carries the number of sessions folded into it, the tracer's dropped
span count (ring-buffer evictions — see
:data:`repro.core.observability.DROPPED_SPANS_COUNTER`) and the number
of orphan spans (spans whose parent was evicted before export).  A
profile with drops is still mergeable and diffable, but consumers can
see that its totals undercount.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

#: Schema version stamped on every serialized profile.
PROFILE_VERSION = 1

#: Separator between stack segments in serialized frame keys and folded
#: lines.  Span names and plan-step labels must not contain it.
STACK_SEP = ";"

#: Key under which benchmark payloads (``BENCH_*.json``) embed their
#: baseline profile.  ``repro regress`` pops it before the value diff
#: (like the provenance manifest) and feeds it to ``--explain``.
PROFILE_KEY = "profile"


@dataclass
class FrameStats:
    """Aggregated state of one stack frame (all-integer on purpose)."""

    count: int = 0
    cpu_us: int = 0
    macs: int = 0

    def add(self, other: "FrameStats") -> None:
        self.count += other.count
        self.cpu_us += other.cpu_us
        self.macs += other.macs


def stack_key(stack: Sequence[str]) -> str:
    """Serialize a stack tuple to its canonical ``a;b;c`` key."""
    return STACK_SEP.join(stack)


def split_key(key: str) -> Tuple[str, ...]:
    return tuple(key.split(STACK_SEP))


class Profile:
    """A mergeable, serializable stack-keyed CPU profile."""

    def __init__(self) -> None:
        self.frames: Dict[Tuple[str, ...], FrameStats] = {}
        self.sessions = 0
        self.dropped_spans = 0
        self.orphan_spans = 0

    # -- building --------------------------------------------------------

    def observe(self, stack: Sequence[str], cpu_us: int = 0,
                count: int = 1, macs: int = 0) -> None:
        """Fold one charge into the frame at ``stack``.

        ``cpu_us`` is integer microseconds — callers round exactly once
        at observation time, so merge order can never re-round.
        """
        if not stack:
            raise ValueError("a frame needs at least one stack segment")
        for segment in stack:
            if not segment or STACK_SEP in segment:
                raise ValueError(
                    f"bad stack segment {segment!r} (empty or contains "
                    f"{STACK_SEP!r})")
        frame = self.frames.get(tuple(stack))
        if frame is None:
            frame = self.frames[tuple(stack)] = FrameStats()
        frame.count += int(count)
        frame.cpu_us += int(cpu_us)
        frame.macs += int(macs)

    def merge(self, other: "Profile") -> "Profile":
        """Fold ``other`` in; exactly associative and commutative.

        All state is integral, so any merge tree over the same parts
        produces bit-identical state — the property tests assert it.
        """
        for stack in sorted(other.frames):
            frame = self.frames.get(stack)
            if frame is None:
                frame = self.frames[stack] = FrameStats()
            frame.add(other.frames[stack])
        self.sessions += other.sessions
        self.dropped_spans += other.dropped_spans
        self.orphan_spans += other.orphan_spans
        return self

    # -- reading ---------------------------------------------------------

    @property
    def total_cpu_us(self) -> int:
        return sum(stats.cpu_us for _, stats in sorted(self.frames.items()))

    @property
    def total_macs(self) -> int:
        return sum(stats.macs for _, stats in sorted(self.frames.items()))

    def top(self, n: int) -> List[Tuple[str, FrameStats]]:
        """The ``n`` hottest frames by attributed CPU (ties by stack)."""
        ranked = sorted(self.frames.items(),
                        key=lambda item: (-item[1].cpu_us, item[0]))
        return [(stack_key(stack), stats) for stack, stats in ranked[:n]]

    def mac_share(self, stack: Sequence[str]) -> float:
        total = self.total_macs
        if total == 0:
            return 0.0
        frame = self.frames.get(tuple(stack))
        return 0.0 if frame is None else frame.macs / total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Profile):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dump; frame keys are the canonical ``a;b;c`` form."""
        frames = {}
        for stack in sorted(self.frames):
            stats = self.frames[stack]
            frames[stack_key(stack)] = {
                "count": stats.count,
                "cpu_us": stats.cpu_us,
                "macs": stats.macs,
            }
        return {
            "version": PROFILE_VERSION,
            "sessions": self.sessions,
            "dropped_spans": self.dropped_spans,
            "orphan_spans": self.orphan_spans,
            "frames": frames,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Profile":
        version = payload.get("version")
        if version != PROFILE_VERSION:
            raise ValueError(
                f"unsupported profile version {version!r} "
                f"(expected {PROFILE_VERSION})")
        frames = payload.get("frames")
        if not isinstance(frames, Mapping):
            raise ValueError("profile payload has no 'frames' mapping")
        out = cls()
        out.sessions = int(payload.get("sessions", 0))  # type: ignore[arg-type]
        out.dropped_spans = int(payload.get("dropped_spans", 0))  # type: ignore[arg-type]
        out.orphan_spans = int(payload.get("orphan_spans", 0))  # type: ignore[arg-type]
        for key in sorted(frames):
            stats = frames[key]
            out.observe(split_key(str(key)),
                        cpu_us=int(stats.get("cpu_us", 0)),
                        count=int(stats.get("count", 0)),
                        macs=int(stats.get("macs", 0)))
        return out

    def to_json(self) -> str:
        """The canonical ``profile.json`` text (sorted, indented, LF)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def folded_lines(self) -> Iterator[str]:
        """Sorted ``stack;path cpu_us`` lines — flamegraph.pl input."""
        for stack in sorted(self.frames):
            yield f"{stack_key(stack)} {self.frames[stack].cpu_us}"

    def folded_text(self) -> str:
        return "".join(line + "\n" for line in self.folded_lines())


__all__ = [
    "PROFILE_VERSION",
    "PROFILE_KEY",
    "STACK_SEP",
    "FrameStats",
    "Profile",
    "stack_key",
    "split_key",
]
