"""Fold exported span dumps into :class:`~repro.profiling.profile.Profile`\\ s.

The tracer already attributes every cost-model charge to exactly one
span (innermost-open wins; children never roll up into parents), so a
span dump *is* a profile — it just isn't stack-keyed yet.  This module
walks each span's parent chain to build its stack path, converts the
span's attributed CPU to integer microseconds (rounded exactly once,
at fold time), and expands the PlanProfiler's ``plan_ops`` attribute on
inference spans into per-step child frames so the flame view reaches
down to individual kernel steps (``...;inference;conv3/gemm``).

Truncation is first-class: a ring-buffer-evicted parent makes its
surviving children *orphans* — they are rooted at the nearest surviving
ancestor and counted in :attr:`Profile.orphan_spans`, and the tracer's
drop counter rides along as :attr:`Profile.dropped_spans`, so a merged
profile always says how complete it is.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.android.device import DeviceProfile
from repro.core.observability import DROPPED_SPANS_COUNTER, op_cpu_ms
from repro.profiling.profile import Profile, STACK_SEP

#: Span attribute carrying the PlanProfiler per-step MAC attribution
#: (written by the pipeline on inference spans).
PLAN_OPS_ATTR = "plan_ops"


def _us(cpu_ms: float) -> int:
    """Milliseconds -> integer microseconds, rounded exactly once."""
    return int(round(cpu_ms * 1000.0))


def _segment(name: str) -> str:
    """A span/step name made safe for the ``;``-separated stack key."""
    return name.replace(STACK_SEP, "_") or "unnamed"


def dropped_from_metrics(snapshot: Mapping[str, object]) -> int:
    """The tracer's dropped-span count out of a registry snapshot."""
    counters = snapshot.get("counters", {})
    if not isinstance(counters, Mapping):
        return 0
    return int(counters.get(DROPPED_SPANS_COUNTER, 0))  # type: ignore[arg-type]


def profile_from_spans(
    spans: Iterable[Mapping[str, object]],
    profile: Optional[DeviceProfile] = None,
    dropped_spans: int = 0,
) -> Profile:
    """Fold one session's exported span dump into a Profile.

    ``dropped_spans`` is the tracer's eviction count for this dump
    (callers read it from the session's metrics snapshot via
    :func:`dropped_from_metrics`); it is carried, not inferred.  Spans
    whose parent chain breaks (parent evicted before export) are rooted
    at the nearest surviving ancestor and counted as orphans.
    """
    profile = profile or DeviceProfile()
    costs = op_cpu_ms(profile)
    out = Profile()
    out.sessions = 1
    out.dropped_spans = int(dropped_spans)

    records: List[Mapping[str, object]] = list(spans)
    by_id: Dict[int, Mapping[str, object]] = {
        int(span["span_id"]): span for span in records}  # type: ignore[arg-type]
    stacks: Dict[int, Tuple[str, ...]] = {}
    orphans: Dict[int, bool] = {}

    def resolve(span_id: int) -> Tuple[str, ...]:
        cached = stacks.get(span_id)
        if cached is not None:
            return cached
        span = by_id[span_id]
        parent = span.get("parent_id")
        if parent is None:
            stack: Tuple[str, ...] = (_segment(str(span["name"])),)
            orphans[span_id] = False
        elif int(parent) in by_id:  # type: ignore[arg-type]
            stack = resolve(int(parent)) + (_segment(str(span["name"])),)  # type: ignore[arg-type]
            orphans[span_id] = False
        else:
            # Parent evicted by the ring buffer: root here and say so.
            stack = (_segment(str(span["name"])),)
            orphans[span_id] = True
        stacks[span_id] = stack
        return stack

    for span in records:
        span_id = int(span["span_id"])  # type: ignore[arg-type]
        stack = resolve(span_id)
        if orphans[span_id]:
            out.orphan_spans += 1
        span_us = _us(sum(
            int(n) * costs[op]
            for op, n in span.get("ops", {}).items()))  # type: ignore[union-attr]
        attributes = span.get("attributes", {})
        plan_ops = (attributes.get(PLAN_OPS_ATTR)
                    if isinstance(attributes, Mapping) else None)
        if isinstance(plan_ops, (list, tuple)) and plan_ops:
            steps_us = 0
            for step in plan_ops:
                step_us = _us(float(step.get("cpu_ms", 0.0)))  # type: ignore[union-attr]
                out.observe(stack + (_segment(str(step.get("step"))),),  # type: ignore[union-attr]
                            cpu_us=step_us, count=1,
                            macs=int(step.get("macs", 0)))  # type: ignore[union-attr]
                steps_us += step_us
            # The span's own frame keeps whatever the per-step rounding
            # left over, so subtree totals still match the span's CPU.
            out.observe(stack, cpu_us=max(0, span_us - steps_us), count=1)
        else:
            out.observe(stack, cpu_us=span_us, count=1)
    return out


def profile_from_result(result, profile: Optional[DeviceProfile] = None
                        ) -> Profile:
    """Fold one :class:`SessionResult` (spans + metrics) into a Profile."""
    metrics = result.metrics if isinstance(result.metrics, Mapping) else {}
    return profile_from_spans(
        result.spans or (), profile=profile,
        dropped_spans=dropped_from_metrics(metrics))


def profile_from_results(results, profile: Optional[DeviceProfile] = None
                         ) -> Profile:
    """Fold a whole fleet's results; order-free by the merge algebra."""
    out = Profile()
    for result in results:
        out.merge(profile_from_result(result, profile=profile))
    return out


__all__ = [
    "PLAN_OPS_ATTR",
    "dropped_from_metrics",
    "profile_from_spans",
    "profile_from_result",
    "profile_from_results",
]
