"""Deterministic profiling: folded flame profiles + differential runs.

See DESIGN.md §5j.  The subsystem folds exported span dumps (and the
PlanProfiler's per-step MAC attribution) into canonical stack-keyed
:class:`Profile`\\ s whose merge is exactly associative — shard parts
fold to byte-identical ``profile.json`` for any worker count — and
diffs two profiles into a ranked attribution report (``repro profile
--diff``, ``repro regress --explain``, ``/api/flame/diff``).
"""

from repro.profiling.cli import run_profile
from repro.profiling.diff import (
    FrameDelta,
    ProfileDiff,
    diff_profiles,
    report_lines,
)
from repro.profiling.fold import (
    PLAN_OPS_ATTR,
    dropped_from_metrics,
    profile_from_result,
    profile_from_results,
    profile_from_spans,
)
from repro.profiling.io import ProfileSourceError, load_profile
from repro.profiling.profile import (
    PROFILE_KEY,
    PROFILE_VERSION,
    STACK_SEP,
    FrameStats,
    Profile,
    split_key,
    stack_key,
)

__all__ = [
    "PROFILE_KEY",
    "PROFILE_VERSION",
    "STACK_SEP",
    "PLAN_OPS_ATTR",
    "FrameStats",
    "Profile",
    "FrameDelta",
    "ProfileDiff",
    "ProfileSourceError",
    "diff_profiles",
    "report_lines",
    "dropped_from_metrics",
    "load_profile",
    "profile_from_result",
    "profile_from_results",
    "profile_from_spans",
    "run_profile",
    "split_key",
    "stack_key",
]
