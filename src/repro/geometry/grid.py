"""Detector grid geometry.

One-stage detectors (our TinyYOLO, mirroring the paper's YOLOv5) divide
the input image into an ``S x S`` grid; each cell predicts objectness,
class scores, and a box parameterized relative to the cell.  ``GridSpec``
owns the mapping both ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.geometry.rect import Rect


@dataclass(frozen=True)
class GridSpec:
    """Grid layout of a one-stage detector head.

    ``image_w``/``image_h`` are the detector input dimensions;
    ``cells_x``/``cells_y`` the grid resolution.  Box regression uses the
    YOLO parameterization: the box center is expressed as a fractional
    offset within its cell, width/height as fractions of the whole image.
    """

    image_w: int
    image_h: int
    cells_x: int
    cells_y: int

    def __post_init__(self) -> None:
        if self.cells_x <= 0 or self.cells_y <= 0:
            raise ValueError("grid must have at least one cell per axis")
        if self.image_w <= 0 or self.image_h <= 0:
            raise ValueError("image dimensions must be positive")

    @property
    def cell_w(self) -> float:
        return self.image_w / self.cells_x

    @property
    def cell_h(self) -> float:
        return self.image_h / self.cells_y

    def cell_of(self, cx: float, cy: float) -> Tuple[int, int]:
        """The (col, row) of the cell containing image point ``(cx, cy)``.

        Points on the far right/bottom edge belong to the last cell.
        """
        col = min(int(cx / self.cell_w), self.cells_x - 1)
        row = min(int(cy / self.cell_h), self.cells_y - 1)
        return max(0, col), max(0, row)

    def encode(self, rect: Rect) -> Tuple[int, int, np.ndarray]:
        """Encode a box as (col, row, [tx, ty, tw, th]) training targets.

        ``tx``/``ty`` are the center's fractional position within its
        cell in [0, 1); ``tw``/``th`` are sqrt-scaled fractions of the
        image size (the sqrt tames the loss gradient on large boxes, as
        in YOLOv1..v5).
        """
        cx, cy = rect.center
        col, row = self.cell_of(cx, cy)
        tx = cx / self.cell_w - col
        ty = cy / self.cell_h - row
        tw = np.sqrt(min(1.0, rect.w / self.image_w))
        th = np.sqrt(min(1.0, rect.h / self.image_h))
        return col, row, np.array([tx, ty, tw, th], dtype=np.float64)

    def decode(self, col: int, row: int, t: np.ndarray) -> Rect:
        """Inverse of :meth:`encode`."""
        tx, ty, tw, th = (float(v) for v in t)
        cx = (col + tx) * self.cell_w
        cy = (row + ty) * self.cell_h
        w = max(0.0, tw) ** 2 * self.image_w
        h = max(0.0, th) ** 2 * self.image_h
        return Rect.from_center(cx, cy, w, h)

    def scale_to(self, rect: Rect, target_w: int, target_h: int) -> Rect:
        """Map a rect from detector-input space back to screen space."""
        return rect.scaled(target_w / self.image_w, target_h / self.image_h)
