"""Greedy non-maximum suppression over scored, classed boxes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.geometry.iou import iou
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class ScoredBox:
    """A detector output: a box with a class label and a confidence."""

    rect: Rect
    label: str
    score: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"score must be within [0, 1], got {self.score}")


def non_max_suppression(
    boxes: Sequence[ScoredBox],
    iou_threshold: float = 0.45,
    class_agnostic: bool = False,
) -> List[ScoredBox]:
    """Keep locally-maximal boxes, dropping overlapping lower-scored ones.

    Standard greedy NMS: boxes are visited in descending score order; a
    box is kept unless it overlaps an already-kept box (of the same class
    unless ``class_agnostic``) with IoU above ``iou_threshold``.
    """
    ordered = sorted(boxes, key=lambda b: b.score, reverse=True)
    kept: List[ScoredBox] = []
    for candidate in ordered:
        suppressed = False
        for winner in kept:
            if not class_agnostic and winner.label != candidate.label:
                continue
            if iou(winner.rect, candidate.rect) > iou_threshold:
                suppressed = True
                break
        if not suppressed:
            kept.append(candidate)
    return kept
