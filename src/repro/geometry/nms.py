"""Greedy non-maximum suppression over scored, classed boxes.

Two implementations of the same algorithm live here: a per-box
reference loop and a vectorized numpy path that the public entry point
uses for larger candidate sets.  Both share one arithmetic contract —
every pairwise IoU is evaluated in float64, from ``float()``-converted
rect fields, with an identical operation order:

    iw    = min(a.right, b.right) - max(a.left, b.left)
    ih    = min(a.bottom, b.bottom) - max(a.top, b.top)
    inter = iw * ih            (0 unless both extents are positive)
    union = (area_a + area_b) - inter
    iou   = inter / union      (0 when union <= 0)

IEEE-754 makes each of those ops deterministic, so mirroring the order
elementwise makes the vectorized path *bit-identical* to the loop —
the same boxes survive, in the same order, for any input (the
equivalence tests assert this on seeded clustered box sets).  The
general :func:`repro.geometry.iou.iou` helper is not used here: its
result dtype follows the rect fields (often float32 from the grid
decoder), which no batched formulation could reproduce exactly for
mixed-precision inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.geometry.rect import Rect

#: Candidate-set size at which the vectorized path takes over; below
#: this the loop's lower constant factor wins.
VECTORIZE_MIN_BOXES = 8


@dataclass(frozen=True)
class ScoredBox:
    """A detector output: a box with a class label and a confidence."""

    rect: Rect
    label: str
    score: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"score must be within [0, 1], got {self.score}")


def _iou64(a: Rect, b: Rect) -> float:
    """Pairwise IoU under the shared float64 contract (see module doc)."""
    ax, ay, aw, ah = float(a.x), float(a.y), float(a.w), float(a.h)
    bx, by, bw, bh = float(b.x), float(b.y), float(b.w), float(b.h)
    iw = min(ax + aw, bx + bw) - max(ax, bx)
    ih = min(ay + ah, by + bh) - max(ay, by)
    inter = iw * ih if (iw > 0.0 and ih > 0.0) else 0.0
    union = (aw * ah + bw * bh) - inter
    return inter / union if union > 0.0 else 0.0


def non_max_suppression_loop(
    boxes: Sequence[ScoredBox],
    iou_threshold: float = 0.45,
    class_agnostic: bool = False,
) -> List[ScoredBox]:
    """Reference per-box greedy NMS (always the Python loop).

    Boxes are visited in descending score order (stable sort: ties keep
    input order); a box is kept unless it overlaps an already-kept box
    (of the same class unless ``class_agnostic``) with IoU above
    ``iou_threshold``.
    """
    ordered = sorted(boxes, key=lambda b: b.score, reverse=True)
    kept: List[ScoredBox] = []
    for candidate in ordered:
        suppressed = False
        for winner in kept:
            if not class_agnostic and winner.label != candidate.label:
                continue
            if _iou64(winner.rect, candidate.rect) > iou_threshold:
                suppressed = True
                break
        if not suppressed:
            kept.append(candidate)
    return kept


def _non_max_suppression_vec(
    ordered: List[ScoredBox],
    iou_threshold: float,
    class_agnostic: bool,
) -> List[ScoredBox]:
    """Vectorized greedy NMS over a score-ordered candidate list.

    Equivalent formulation of the reference loop: when a box is kept it
    immediately suppresses every still-alive lower-scored overlapper,
    so a box is alive at its own turn exactly when no kept box overlaps
    it — the loop's keep condition.  All pair IoUs follow the shared
    float64 contract, elementwise in the same op order as
    :func:`_iou64`, hence identical bits and identical survivors.
    """
    n = len(ordered)
    x = np.array([float(b.rect.x) for b in ordered], dtype=np.float64)
    y = np.array([float(b.rect.y) for b in ordered], dtype=np.float64)
    w = np.array([float(b.rect.w) for b in ordered], dtype=np.float64)
    h = np.array([float(b.rect.h) for b in ordered], dtype=np.float64)
    right = x + w
    bottom = y + h
    area = w * h
    labels = np.array([b.label for b in ordered])
    alive = np.ones(n, dtype=bool)
    kept: List[ScoredBox] = []
    for i in range(n):
        if not alive[i]:
            continue
        kept.append(ordered[i])
        rest = alive.copy()
        rest[:i + 1] = False
        if not class_agnostic:
            rest &= labels == labels[i]
        if not rest.any():
            continue
        iw = np.minimum(right[i], right[rest]) - np.maximum(x[i], x[rest])
        ih = np.minimum(bottom[i], bottom[rest]) - np.maximum(y[i], y[rest])
        inter = np.where((iw > 0.0) & (ih > 0.0), iw * ih, 0.0)
        union = (area[i] + area[rest]) - inter
        iou = np.where(union > 0.0, inter / union, 0.0)
        dead = np.zeros(n, dtype=bool)
        dead[rest] = iou > iou_threshold
        alive &= ~dead
    return kept


def non_max_suppression(
    boxes: Sequence[ScoredBox],
    iou_threshold: float = 0.45,
    class_agnostic: bool = False,
) -> List[ScoredBox]:
    """Keep locally-maximal boxes, dropping overlapping lower-scored ones.

    Standard greedy NMS: boxes are visited in descending score order; a
    box is kept unless it overlaps an already-kept box (of the same class
    unless ``class_agnostic``) with IoU above ``iou_threshold``.  Large
    candidate sets dispatch to the vectorized path — bit-identical to
    the reference loop by the shared float64 contract (module doc).
    """
    if len(boxes) < VECTORIZE_MIN_BOXES:
        return non_max_suppression_loop(boxes, iou_threshold, class_agnostic)
    ordered = sorted(boxes, key=lambda b: b.score, reverse=True)
    return _non_max_suppression_vec(ordered, iou_threshold, class_agnostic)
