"""Axis-aligned rectangles and coordinate offsets.

``Rect`` is the unit of currency across the reproduction: view bounds in
the simulated Android substrate, ground-truth annotations in the dataset
generator, predicted boxes in the detectors, and decoration views in the
DARPA core are all ``Rect`` instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple


@dataclass(frozen=True)
class Offset:
    """A screen-to-window translation, in pixels.

    DARPA's decoration calibration (paper Section IV-D) measures the
    offset of the app window relative to the physical screen by placing
    an invisible anchor view at window coordinate ``(0, 0)`` and reading
    its on-screen location.  That measurement is exactly an ``Offset``.
    """

    x: float = 0.0
    y: float = 0.0

    def __add__(self, other: "Offset") -> "Offset":
        return Offset(self.x + other.x, self.y + other.y)

    def __neg__(self) -> "Offset":
        return Offset(-self.x, -self.y)

    def is_zero(self) -> bool:
        return self.x == 0 and self.y == 0


@dataclass(frozen=True)
class Rect:
    """An immutable axis-aligned rectangle ``(x, y, w, h)``.

    ``x``/``y`` locate the top-left corner; ``w``/``h`` must be
    non-negative.  Degenerate (zero-area) rectangles are permitted — they
    behave as empty for intersection purposes.
    """

    x: float
    y: float
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"Rect dimensions must be non-negative, got {self}")

    # -- constructors -------------------------------------------------

    @classmethod
    def from_corners(cls, x0: float, y0: float, x1: float, y1: float) -> "Rect":
        """Build from two corners; the corners may be given in any order."""
        left, right = min(x0, x1), max(x0, x1)
        top, bottom = min(y0, y1), max(y0, y1)
        return cls(left, top, right - left, bottom - top)

    @classmethod
    def from_center(cls, cx: float, cy: float, w: float, h: float) -> "Rect":
        return cls(cx - w / 2.0, cy - h / 2.0, w, h)

    # -- derived coordinates ------------------------------------------

    @property
    def left(self) -> float:
        return self.x

    @property
    def top(self) -> float:
        return self.y

    @property
    def right(self) -> float:
        return self.x + self.w

    @property
    def bottom(self) -> float:
        return self.y + self.h

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.w / 2.0, self.y + self.h / 2.0)

    @property
    def area(self) -> float:
        return self.w * self.h

    def is_empty(self) -> bool:
        return self.w == 0 or self.h == 0

    # -- predicates ----------------------------------------------------

    def contains_point(self, px: float, py: float) -> bool:
        """True when ``(px, py)`` falls inside (or on the edge of) the rect.

        The right/bottom edges are inclusive so that a 1x1 button at
        integer coordinates is clickable at its own coordinate.
        """
        return self.left <= px <= self.right and self.top <= py <= self.bottom

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.left <= other.left
            and self.top <= other.top
            and self.right >= other.right
            and self.bottom >= other.bottom
        )

    def intersects(self, other: "Rect") -> bool:
        return not self.intersection(other).is_empty()

    # -- set algebra ----------------------------------------------------

    def intersection(self, other: "Rect") -> "Rect":
        """The overlapping region, or a zero-area rect when disjoint."""
        left = max(self.left, other.left)
        top = max(self.top, other.top)
        right = min(self.right, other.right)
        bottom = min(self.bottom, other.bottom)
        if right <= left or bottom <= top:
            return Rect(left if right > left else self.x, top if bottom > top else self.y, 0.0, 0.0)
        return Rect(left, top, right - left, bottom - top)

    def union_bounds(self, other: "Rect") -> "Rect":
        """The tightest rect containing both operands."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return Rect.from_corners(
            min(self.left, other.left),
            min(self.top, other.top),
            max(self.right, other.right),
            max(self.bottom, other.bottom),
        )

    # -- transforms ------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.w, self.h)

    def offset_by(self, offset: Offset) -> "Rect":
        return self.translated(offset.x, offset.y)

    def scaled(self, sx: float, sy: Optional[float] = None) -> "Rect":
        """Scale about the origin (useful for resolution changes)."""
        if sy is None:
            sy = sx
        return Rect(self.x * sx, self.y * sy, self.w * sx, self.h * sy)

    def inflated(self, margin: float) -> "Rect":
        """Grow (or shrink, for negative margin) uniformly about the center.

        Shrinking below zero size clamps to a zero-area rect at the
        center rather than raising.
        """
        new_w = max(0.0, self.w + 2 * margin)
        new_h = max(0.0, self.h + 2 * margin)
        cx, cy = self.center
        return Rect.from_center(cx, cy, new_w, new_h)

    def clipped_to(self, bounds: "Rect") -> "Rect":
        return self.intersection(bounds)

    def rounded(self) -> "Rect":
        """Snap to the integer pixel grid (round-half-away behaviour of
        ``round`` is fine here; detectors only need stable snapping)."""
        left = int(round(self.left))
        top = int(round(self.top))
        right = int(round(self.right))
        bottom = int(round(self.bottom))
        return Rect(left, top, max(0, right - left), max(0, bottom - top))

    # -- interop -----------------------------------------------------------

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.x, self.y, self.w, self.h)

    def as_xyxy(self) -> Tuple[float, float, float, float]:
        return (self.left, self.top, self.right, self.bottom)

    def as_coco(self) -> Tuple[float, float, float, float]:
        """COCO annotations use ``[x, y, width, height]`` — same as ours."""
        return self.as_tuple()

    def __iter__(self) -> Iterator[float]:
        return iter(self.as_tuple())

    # -- distances ----------------------------------------------------------

    def center_distance(self, other: "Rect") -> float:
        (ax, ay), (bx, by) = self.center, other.center
        return math.hypot(ax - bx, ay - by)
