"""Intersection-over-Union and box matching.

The paper evaluates detection with IoU at a strict 0.9 threshold
(Section VI-B): a prediction is a true positive only when it overlaps a
ground-truth box of the same class with IoU > 0.9.  ``match_boxes``
implements the standard greedy one-to-one matching used to turn box sets
into TP/FP/FN counts.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.rect import Rect


def iou(a: Rect, b: Rect) -> float:
    """IoU of two rectangles: ``I / (A + B - I)``; 0.0 when both empty."""
    inter = a.intersection(b).area
    union = a.area + b.area - inter
    if union <= 0:
        return 0.0
    return inter / union


def pairwise_iou(preds: Sequence[Rect], truths: Sequence[Rect]) -> np.ndarray:
    """Vectorized IoU matrix of shape ``(len(preds), len(truths))``."""
    if not preds or not truths:
        return np.zeros((len(preds), len(truths)))
    p = np.array([r.as_xyxy() for r in preds], dtype=float)
    t = np.array([r.as_xyxy() for r in truths], dtype=float)
    # Broadcast corners: p is (P, 1, 4), t is (1, T, 4).
    px0, py0, px1, py1 = (p[:, None, i] for i in range(4))
    tx0, ty0, tx1, ty1 = (t[None, :, i] for i in range(4))
    iw = np.clip(np.minimum(px1, tx1) - np.maximum(px0, tx0), 0.0, None)
    ih = np.clip(np.minimum(py1, ty1) - np.maximum(py0, ty0), 0.0, None)
    inter = iw * ih
    area_p = (px1 - px0) * (py1 - py0)
    area_t = (tx1 - tx0) * (ty1 - ty0)
    union = area_p + area_t - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(union > 0, inter / union, 0.0)
    return out


def match_boxes(
    preds: Sequence[Rect],
    truths: Sequence[Rect],
    threshold: float,
) -> Tuple[List[Tuple[int, int]], List[int], List[int]]:
    """Greedy one-to-one matching of predictions to ground truths.

    Predictions are assumed pre-sorted by descending confidence.  Each
    prediction claims its highest-IoU unmatched truth if that IoU exceeds
    ``threshold``.

    Returns ``(matches, unmatched_pred_idx, unmatched_truth_idx)`` where
    ``matches`` is a list of ``(pred_idx, truth_idx)`` pairs.
    """
    matrix = pairwise_iou(preds, truths)
    matches: List[Tuple[int, int]] = []
    used_truths: set = set()
    for pi in range(len(preds)):
        best_ti = -1
        best_iou = threshold
        for ti in range(len(truths)):
            if ti in used_truths:
                continue
            if matrix[pi, ti] > best_iou:
                best_iou = matrix[pi, ti]
                best_ti = ti
        if best_ti >= 0:
            matches.append((pi, best_ti))
            used_truths.add(best_ti)
    unmatched_preds = [pi for pi in range(len(preds)) if pi not in {m[0] for m in matches}]
    unmatched_truths = [ti for ti in range(len(truths)) if ti not in used_truths]
    return matches, unmatched_preds, unmatched_truths
