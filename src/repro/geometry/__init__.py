"""Geometry kernel shared by every subsystem.

The whole reproduction uses one coordinate convention: the origin is the
top-left corner of the screen, ``x`` grows rightwards, ``y`` grows
downwards, and all quantities are logical pixels.  A rectangle is stored
as ``(x, y, w, h)``.

Public API
----------
``Rect``
    Immutable axis-aligned rectangle with the usual set algebra.
``iou``, ``pairwise_iou``
    Intersection-over-Union between rectangles (the paper's detection
    metric uses IoU at a 0.9 threshold).
``non_max_suppression``
    Greedy NMS over scored boxes, as used by one-stage detectors.
``GridSpec``
    Mapping between image space and a detector's grid cells.
``Offset``
    Screen-to-window coordinate offsets (status-bar calibration).
"""

from repro.geometry.rect import Rect, Offset
from repro.geometry.iou import iou, pairwise_iou, match_boxes
from repro.geometry.nms import ScoredBox, non_max_suppression
from repro.geometry.grid import GridSpec

__all__ = [
    "Rect",
    "Offset",
    "iou",
    "pairwise_iou",
    "match_boxes",
    "ScoredBox",
    "non_max_suppression",
    "GridSpec",
]
