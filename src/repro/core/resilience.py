"""Resilience primitives for the DARPA serving path.

An always-on accessibility service cannot crash because one screenshot
failed: millions of supervised sessions mean every low-probability OS
fault happens constantly somewhere in the fleet.  This module provides
the three mechanisms the pipeline threads around its fallible
dependencies (see :mod:`repro.core.pipeline`):

- :class:`RetryPolicy` — exponential backoff with deterministic jitter
  for transient screenshot failures, scheduled on the *simulated* clock
  so retried runs stay reproducible;
- :class:`CircuitBreaker` — a classic CLOSED → OPEN → HALF_OPEN state
  machine around the CNN detector: after ``failure_threshold``
  consecutive failures the breaker opens and the pipeline degrades to
  the cheap FraudDroid heuristic; after ``cooldown_ms`` it half-opens
  and lets one probe inference decide whether to close again;
- the per-screen watchdog deadline lives in the pipeline itself (it
  needs the analysis context), but its failure signal feeds the breaker
  here.

Everything is plain state + the simulated clock: no threads, no wall
time, no hidden nondeterminism.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from repro.android.clock import SimulatedClock


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded, seeded jitter.

    ``max_attempts`` counts every try including the first; a policy of
    3 means one initial attempt plus at most two retries.
    """

    max_attempts: int = 3
    base_delay_ms: float = 50.0
    multiplier: float = 2.0
    max_delay_ms: float = 1000.0
    #: Uniform jitter added on top of the raw backoff, as a fraction of
    #: it — decorrelates retry bursts across a fleet without breaking
    #: determinism (the caller supplies the seeded RNG).
    jitter_frac: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValueError("delays cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be in [0, 1]")

    def delay_ms(self, attempt: int, rng=None) -> float:
        """Backoff scheduled after the ``attempt``-th failed try (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_delay_ms * self.multiplier ** (attempt - 1),
                  self.max_delay_ms)
        if rng is not None and self.jitter_frac > 0.0:
            raw *= 1.0 + self.jitter_frac * float(rng.random())
        return raw


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Signature of a breaker transition listener: ``(event, from_state,
#: to_state)``.  Events: ``opened``, ``half_opened``, ``closed``,
#: ``probe_success``, ``probe_failure``.
BreakerListener = Callable[[str, BreakerState, BreakerState], None]


class CircuitBreaker:
    """Consecutive-failure circuit breaker on the simulated clock.

    CLOSED: calls pass through; ``failure_threshold`` consecutive
    failures trip it OPEN.  OPEN: :meth:`allow` is False (callers take
    their fallback path) until ``cooldown_ms`` elapses on the clock,
    after which the breaker reads HALF_OPEN.  HALF_OPEN: one probe call
    is allowed; success closes the breaker, failure re-opens it for
    another full cooldown.

    Every state transition — and the outcome of each half-open probe —
    is reported to the optional ``listener``, which the pipeline wires
    to ``darpa.resilience.*`` registry counters and tracer events so
    breaker flaps are visible in exported metrics, not just the final
    fallback count.  On a fault-free run no transition ever fires, so
    the listener (and the counters behind it) stay untouched.
    """

    def __init__(self, clock: SimulatedClock, failure_threshold: int = 3,
                 cooldown_ms: float = 5000.0,
                 listener: Optional[BreakerListener] = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_ms < 0:
            raise ValueError("cooldown cannot be negative")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self.listener = listener
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at_ms: Optional[float] = None
        #: Total CLOSED/HALF_OPEN -> OPEN transitions over the run.
        self.opens = 0

    def _notify(self, event: str, src: BreakerState,
                dst: BreakerState) -> None:
        if self.listener is not None:
            self.listener(event, src, dst)

    @property
    def state(self) -> BreakerState:
        """Current state; lazily performs the OPEN -> HALF_OPEN timeout."""
        if (self._state is BreakerState.OPEN
                and self._opened_at_ms is not None
                and self.clock.now_ms - self._opened_at_ms >= self.cooldown_ms):
            self._state = BreakerState.HALF_OPEN
            self._notify("half_opened", BreakerState.OPEN,
                         BreakerState.HALF_OPEN)
        return self._state

    def allow(self) -> bool:
        """May the protected call run now?  (HALF_OPEN allows the probe.)"""
        return self.state is not BreakerState.OPEN

    def record_success(self) -> None:
        prev = self.state
        self._consecutive_failures = 0
        self._state = BreakerState.CLOSED
        self._opened_at_ms = None
        if prev is BreakerState.HALF_OPEN:
            self._notify("probe_success", prev, BreakerState.CLOSED)
        if prev is not BreakerState.CLOSED:
            self._notify("closed", prev, BreakerState.CLOSED)

    def record_failure(self) -> bool:
        """Count one failure; returns True when it tripped the breaker."""
        state = self.state
        self._consecutive_failures += 1
        if (state is BreakerState.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold):
            self._state = BreakerState.OPEN
            self._opened_at_ms = self.clock.now_ms
            self._consecutive_failures = 0
            self.opens += 1
            if state is BreakerState.HALF_OPEN:
                self._notify("probe_failure", state, BreakerState.OPEN)
            self._notify("opened", state, BreakerState.OPEN)
            return True
        return False
