"""Security and privacy design of DARPA (paper Sections II-C and IV-E).

DARPA sees every pixel the user sees, so the paper hardens it three
ways, each modeled (and therefore testable) here:

- a **minimal manifest**: no Internet, no external storage, no
  self-update — the app cannot exfiltrate what it captures;
- a **screenshot policy**: captures live only in app-internal storage
  and are rinsed immediately after the CV model runs (the
  ``analyzed_screenshot`` context manager guarantees the rinse even on
  detector exceptions);
- **consent gating**: the service refuses to start before the user has
  accepted the privacy policy.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator

from repro.android.accessibility import AccessibilityService, Screenshot


class ConsentError(RuntimeError):
    """Raised when the pipeline runs without user consent."""


class ManifestViolation(RuntimeError):
    """Raised when a capability outside the manifest is requested."""


@dataclass(frozen=True)
class Manifest:
    """The permission set an app ships with."""

    permissions: FrozenSet[str]

    def require(self, permission: str) -> None:
        if permission not in self.permissions:
            raise ManifestViolation(
                f"{permission} is not declared; DARPA's manifest is minimal by design"
            )

    def declares_internet(self) -> bool:
        return "android.permission.INTERNET" in self.permissions


#: DARPA's actual manifest: accessibility binding plus overlay drawing.
#: Deliberately absent: INTERNET, WRITE_EXTERNAL_STORAGE,
#: REQUEST_INSTALL_PACKAGES (no self-update path).
DARPA_MANIFEST = Manifest(
    permissions=frozenset(
        {
            "android.permission.BIND_ACCESSIBILITY_SERVICE",
            "android.permission.SYSTEM_ALERT_WINDOW",
        }
    )
)

PRIVACY_POLICY = (
    "DARPA captures screenshots of the foreground app solely to detect "
    "asymmetric dark UI patterns on this device. Screenshots are stored "
    "only in app-internal memory and destroyed immediately after each "
    "analysis. Nothing is transmitted: the app declares no network "
    "permission. You may revoke accessibility access at any time."
)


@dataclass
class ScreenshotPolicy:
    """Enforces consent and the capture-analyze-rinse lifecycle."""

    manifest: Manifest = field(default_factory=lambda: DARPA_MANIFEST)
    consent_given: bool = False
    captures: int = 0
    rinses: int = 0

    def give_consent(self) -> str:
        """Record user consent; returns the policy text shown to them."""
        self.consent_given = True
        return PRIVACY_POLICY

    def check_startup(self) -> None:
        if not self.consent_given:
            raise ConsentError("user consent required before first run")
        if self.manifest.declares_internet():
            raise ManifestViolation(
                "DARPA must not declare INTERNET: screenshots could leak"
            )

    @contextmanager
    def analyzed_screenshot(
        self, service: AccessibilityService, stub: bool = False
    ) -> Iterator[Screenshot]:
        """Capture, yield for analysis, and ALWAYS rinse.

        The rinse runs even when the detector raises, so no code path
        leaves pixel data alive after analysis.
        """
        if not self.consent_given:
            raise ConsentError("screenshot capture without consent")
        shot = service.take_screenshot(stub=stub)
        self.captures += 1
        try:
            yield shot
        finally:
            shot.rinse()
            self.rinses += 1

    @property
    def outstanding(self) -> int:
        """Screenshots captured but not yet rinsed (must trend to 0)."""
        return self.captures - self.rinses
