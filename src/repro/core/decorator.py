"""Run-time view decoration with coordinate calibration (Section IV-D).

The detector reports option boxes in *screen* coordinates; overlay
views added through ``WindowManager.addView`` are positioned in the
overlay window's coordinate space, which shares the foreground app's
insets.  Using screen coordinates directly therefore misplaces the
decoration by the status-bar height whenever the app is not full-screen
(paper Figure 4a).  DARPA measures that offset with an invisible anchor
view at window ``(0, 0)`` and subtracts it — the paper's Figure 6 code,
reproduced here as :meth:`ViewDecorator.decorate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.geometry.nms import ScoredBox
from repro.geometry.rect import Offset, Rect
from repro.android.accessibility import AccessibilityService
from repro.android.device import PerfOp
from repro.android.faults import OverlayRejectedError
from repro.android.view import View
from repro.android.window import LayoutParams
from repro.core.config import DecorationStyle


@dataclass
class AppliedDecoration:
    """Bookkeeping for one mounted decoration overlay."""

    view: View
    detection: ScoredBox


class ViewDecorator:
    """Mounts, tracks and removes decoration overlays."""

    def __init__(self, service: AccessibilityService,
                 style: Optional[DecorationStyle] = None,
                 calibrate: bool = True):
        self.service = service
        self.style = style or DecorationStyle()
        #: The Fig-4 toggle: disabling calibration reproduces the
        #: misplaced-decoration failure mode for tests/demos.
        self.calibrate = calibrate
        self._applied: List[AppliedDecoration] = []
        #: Overlay mounts the WindowManager refused (permission revoked
        #: mid-run); drained by the pipeline via :meth:`take_rejections`.
        self.rejections = 0

    # -- calibration (the anchor-view trick) -----------------------------

    def measure_offset(self) -> Offset:
        if not self.calibrate:
            return Offset(0, 0)
        return self.service.measure_window_offset()

    # -- decoration -----------------------------------------------------------

    def decorate(self, detections: Sequence[ScoredBox]) -> List[AppliedDecoration]:
        """Highlight each detection with a high-contrast stroke overlay.

        Mirrors the paper's ``decorate(aui, offset_x, offset_y)``: the
        overlay's layout position is the detection's screen position
        minus the measured window offset.
        """
        try:
            offset = self.measure_offset()
        except OverlayRejectedError:
            # No anchor view means no calibration: skip this round
            # rather than draw misplaced decorations (paper Fig. 4a).
            self.rejections += 1
            return []
        applied: List[AppliedDecoration] = []
        for det in detections:
            if det.label == "AGO" and not self.style.decorate_ago:
                continue
            color = (self.style.upo_color if det.label == "UPO"
                     else self.style.ago_color)
            box = det.rect.inflated(self.style.margin)
            params = LayoutParams(
                x=box.x - offset.x,
                y=box.y - offset.y,
                width=box.w,
                height=box.h,
            )
            view = View(
                bounds=Rect(params.x, params.y, params.width, params.height),
                border_color=color,
                border_width=self.style.stroke_width,
            )
            try:
                self.service.add_overlay(view, params)
            except OverlayRejectedError:
                # Per-detection, so one refused mount neither aborts the
                # rest nor leaks already-mounted views from tracking.
                self.rejections += 1
                continue
            self.service.device.perf.record(PerfOp.DECORATION)
            applied.append(AppliedDecoration(view=view, detection=det))
        self._applied.extend(applied)
        return applied

    def take_rejections(self) -> int:
        """Drain and return the rejected-mount count since last drained."""
        count, self.rejections = self.rejections, 0
        return count

    def remove_all(self) -> int:
        """Unmount every decoration (done before each new screenshot)."""
        count = 0
        for deco in self._applied:
            if self.service.remove_overlay(deco.view):
                count += 1
        self._applied = []
        return count

    @property
    def active(self) -> List[AppliedDecoration]:
        return list(self._applied)

    # -- auto-bypass -----------------------------------------------------------

    def bypass(self, detections: Sequence[ScoredBox]) -> Optional[View]:
        """Auto-click the most confident UPO (the alternative option of
        Section IV-D); returns the clicked view, if any."""
        upos = sorted((d for d in detections if d.label == "UPO"),
                      key=lambda d: d.score, reverse=True)
        for det in upos:
            cx, cy = det.rect.center
            hit = self.service.dispatch_click(cx, cy)
            if hit is not None:
                return hit
        return None
