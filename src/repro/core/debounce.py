"""The cut-off time (``ct``) debouncer (paper Section IV-B).

Accessibility events arrive far too often to analyze each one (the
paper measures ~32/min on a shopping app just from browsing), and the
event payload never says whether a screen is an AUI.  DARPA's answer:
only analyze a screen once no further UI-update event has arrived for
``ct`` milliseconds — AUIs need dwell time to work on the user, so a
settled screen is both cheaper and more likely to matter.

``CutoffDebouncer`` implements that quiescence timer on the simulated
clock.  Every UI-update event restarts the timer; when it expires, the
registered callback fires exactly once for that settled state.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.android.clock import SimulatedClock
from repro.android.events import AccessibilityEvent


class CutoffDebouncer:
    """Fires ``on_settled`` after ``ct_ms`` of event silence."""

    def __init__(
        self,
        clock: SimulatedClock,
        ct_ms: float,
        on_settled: Callable[[AccessibilityEvent], None],
    ):
        if ct_ms < 0:
            raise ValueError("ct must be non-negative")
        self.clock = clock
        self.ct_ms = ct_ms
        self.on_settled = on_settled
        self._timer: Optional[int] = None
        self._last_event: Optional[AccessibilityEvent] = None
        self.events_seen = 0
        self.settled_count = 0

    def feed(self, event: AccessibilityEvent) -> None:
        """Offer one accessibility event to the debouncer.

        Non-UI-update events (touch bookkeeping etc.) are counted but
        do not restart the quiescence window — they don't repaint.
        """
        self.events_seen += 1
        if not event.is_ui_update():
            return
        self._last_event = event
        if self._timer is not None:
            self.clock.cancel(self._timer)
        # ct == 0 still goes through the clock (a zero-delay timer fires
        # on the next advance, at the same timestamp): firing inline
        # would run the settled callback synchronously inside event
        # delivery, and a callback that emits or feeds events would
        # re-enter feed() and recurse without bound.
        self._timer = self.clock.schedule(self.ct_ms, self._fire)

    def _fire(self) -> None:
        self._timer = None
        event, self._last_event = self._last_event, None
        if event is not None:
            self.settled_count += 1
            self.on_settled(event)

    def cancel_pending(self) -> bool:
        """Drop any armed timer (used on service shutdown)."""
        if self._timer is not None:
            self.clock.cancel(self._timer)
            self._timer = None
            self._last_event = None
            return True
        return False

    @property
    def pending(self) -> bool:
        return self._timer is not None
