"""DARPA's runtime core (paper Sections IV and V).

``DarpaService`` is the end-to-end pipeline:

1. register for all 23 accessibility event types;
2. debounce UI updates with the cut-off time ``ct``
   (:mod:`repro.core.debounce`) — only screens that stay quiet for
   ``ct`` milliseconds are analyzed;
3. take a screenshot, run the CV detector, rinse the screenshot
   (:mod:`repro.core.security`);
4. calibrate screen→window coordinates with an invisible anchor view
   and decorate the detected options — or auto-click the UPO
   (:mod:`repro.core.decorator`).
"""

from repro.core.config import DarpaConfig, DecorationStyle
from repro.core.debounce import CutoffDebouncer
from repro.core.decorator import ViewDecorator
from repro.core.observability import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    PlanProfiler,
    Span,
    Tracer,
    ops_from_spans,
    report_from_spans,
    session_root,
    stage_cpu_ms,
)
from repro.core.resilience import BreakerState, CircuitBreaker, RetryPolicy
from repro.core.security import (
    DARPA_MANIFEST,
    ConsentError,
    Manifest,
    ScreenshotPolicy,
)
from repro.core.pipeline import DarpaService, DarpaStats
from repro.core.screencache import ScreenFingerprintCache

# Imported last: the daemon composes the pipeline above and lazily
# imports the bench runners (which themselves import this package).
from repro.core.daemon import (
    CoalescingCoordinator,
    DaemonConfig,
    DaemonReport,
    DarpaDaemon,
    JournalError,
    LaneConfig,
    RejectionRecord,
    TokenBucket,
    serve_fleet,
)

__all__ = [
    "DarpaConfig",
    "DecorationStyle",
    "CutoffDebouncer",
    "ViewDecorator",
    "BreakerState",
    "CircuitBreaker",
    "RetryPolicy",
    "DARPA_MANIFEST",
    "ConsentError",
    "Manifest",
    "ScreenshotPolicy",
    "DarpaService",
    "DarpaStats",
    "ScreenFingerprintCache",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "PlanProfiler",
    "Span",
    "Tracer",
    "ops_from_spans",
    "report_from_spans",
    "session_root",
    "stage_cpu_ms",
    "CoalescingCoordinator",
    "DaemonConfig",
    "DaemonReport",
    "DarpaDaemon",
    "JournalError",
    "LaneConfig",
    "RejectionRecord",
    "TokenBucket",
    "serve_fleet",
]
