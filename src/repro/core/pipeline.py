"""``DarpaService`` — the assembled runtime (paper Figure 5).

Life-cycle per settled screen:

    events -> ct debounce -> remove old decorations -> take screenshot
    -> CV detection -> rinse screenshot -> calibrate -> decorate
    (or auto-bypass the UPO)

The service is detector-agnostic: anything exposing
``detect_screen(image, refine=..., conf_threshold=...) -> [ScoredBox]``
plugs in, which is how the benchmarks swap the server model, the ported
model, and test fakes through one pipeline.

The serving path is resilient by construction (see
:mod:`repro.core.resilience` and :mod:`repro.android.faults`):

- transient screenshot failures are retried on the simulated clock with
  exponential backoff + seeded jitter (a newer settled screen cancels a
  pending retry — the old frame no longer matters);
- the detector runs behind a circuit breaker; while it is open, the
  pipeline degrades to the FraudDroid metadata heuristic
  (:class:`repro.baselines.frauddroid.FraudDroidScreenDetector`);
- a per-screen watchdog deadline abandons analyses whose (simulated)
  inference overran its budget instead of stalling the event loop;
- rejected overlay mounts are absorbed per decoration.

With no faults injected, none of these paths run: the stats, records
and perf counts are bit-identical to the resilience-free pipeline,
which ``benchmarks/bench_chaos.py`` asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.geometry.nms import ScoredBox
from repro.android.accessibility import AccessibilityService
from repro.android.device import Device, PerfOp
from repro.android.events import AccessibilityEvent, TYPES_ALL_MASK
from repro.android.faults import ScreenshotFailedError
from repro.baselines.frauddroid import FraudDroidScreenDetector
from repro.core.config import DarpaConfig
from repro.core.debounce import CutoffDebouncer
from repro.core.decorator import ViewDecorator
from repro.core.observability import (
    NULL_TRACER,
    MetricsRegistry,
    PlanProfiler,
    Tracer,
)
from repro.core.resilience import BreakerState, CircuitBreaker, RetryPolicy
from repro.core.screencache import ScreenFingerprintCache
from repro.core.security import ScreenshotPolicy

#: Gauge encoding of the detector breaker state.
_BREAKER_GAUGE = {BreakerState.CLOSED: 0, BreakerState.HALF_OPEN: 1,
                  BreakerState.OPEN: 2}


class Detector(Protocol):
    """Anything that can find AUI options on a screenshot."""

    def detect_screen(self, screen_image: np.ndarray, refine: bool = True,
                      conf_threshold: Optional[float] = None
                      ) -> List[ScoredBox]: ...


@dataclass
class AnalysisRecord:
    """One settled-screen analysis."""

    timestamp_ms: float
    package: str
    detections: Sequence[ScoredBox]
    flag_threshold: float = 0.5
    #: True when the detections came from the degraded heuristic path
    #: (detector breaker open or inference crashed), not the CNN.
    degraded: bool = False

    @property
    def flagged_aui(self) -> bool:
        """Screen-level verdict: a confident UPO was found.

        The paper counts "screenshots that have UPOs"; requiring the
        flagging detection to clear a higher confidence bar than the
        box-reporting threshold suppresses benign-close false flags
        while true AUI UPOs (which the model is very sure about) pass.
        """
        return any(d.label == "UPO" and d.score >= self.flag_threshold
                   for d in self.detections)


#: Every DarpaStats counter, in declaration order.  The registry names
#: are ``darpa.pipeline.<name>``; the attribute view keeps the historic
#: field names so call sites (and their ``+=``) are unchanged.
STAT_COUNTERS: Tuple[str, ...] = (
    "events_seen",
    "screens_analyzed",
    "auis_flagged",
    "decorations_drawn",
    "bypass_clicks",
    # Settled screens answered from the fingerprint cache (no CNN run)
    # vs. screens that went through the detector.
    "cache_hits",
    "cache_misses",
    # -- resilience counters (all zero on a fault-free run) -------------
    # takeScreenshot calls that raised (throttled or failed).
    "screenshot_failures",
    # Backoff retries scheduled after a failed capture.
    "retries",
    # Detector inferences that raised.
    "detector_failures",
    # CLOSED/HALF_OPEN -> OPEN transitions of the detector breaker.
    "breaker_opens",
    # Analyses answered by the FraudDroid heuristic instead of the CNN.
    "fallback_detections",
    # Analyses abandoned by the per-screen watchdog deadline.
    "deadline_skips",
    # Decoration overlay mounts the WindowManager refused.
    "overlay_rejections",
)

#: Breaker transition events exported as ``darpa.resilience.<name>``
#: registry counters: every CLOSED/OPEN/HALF_OPEN edge plus the outcome
#: of each half-open probe.  Pre-created (so they appear, zero-valued,
#: in every snapshot) and all zero on a fault-free run.
RESILIENCE_COUNTERS: Tuple[str, ...] = (
    # CLOSED/HALF_OPEN -> OPEN (same edges DarpaStats.breaker_opens
    # counts; duplicated here so the resilience namespace is complete).
    "breaker_opened",
    # OPEN -> HALF_OPEN cooldown expiries (a probe is now allowed).
    "breaker_half_opened",
    # HALF_OPEN/OPEN -> CLOSED recoveries.
    "breaker_closed",
    # Half-open probe inferences that succeeded (breaker re-closed).
    "probe_successes",
    # Half-open probe inferences that failed (breaker re-opened).
    "probe_failures",
)

#: CircuitBreaker listener event -> resilience counter name.
_BREAKER_EVENT_COUNTER = {
    "opened": "breaker_opened",
    "half_opened": "breaker_half_opened",
    "closed": "breaker_closed",
    "probe_success": "probe_successes",
    "probe_failure": "probe_failures",
}


class DarpaStats:
    """Counters the evaluation section reads off a run.

    Historically an ad-hoc dataclass of int fields; now a thin
    compatibility view over a :class:`MetricsRegistry` — each attribute
    in :data:`STAT_COUNTERS` reads and writes the registry counter
    ``darpa.pipeline.<name>``, so ``stats.retries += 1`` and the
    registry's ``snapshot()`` always agree.  ``records`` stays a plain
    list of :class:`AnalysisRecord`.

    Counters are **never reset implicitly** — not by
    ``DarpaService.stop()``/``start()`` cycles — only by an explicit
    :meth:`reset` (see ``DarpaService.reset_stats``).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.records: List[AnalysisRecord] = []
        # Pre-create every counter so snapshot key order is stable and
        # zero-valued counters still appear in exports.
        for name in STAT_COUNTERS:
            self.registry.counter(f"darpa.pipeline.{name}")

    def snapshot(self) -> dict:
        """Counter values keyed by the historic field names."""
        return {name: getattr(self, name) for name in STAT_COUNTERS}

    def reset(self) -> None:
        """Zero every counter and drop the analysis records."""
        for name in STAT_COUNTERS:
            self.registry.counter(f"darpa.pipeline.{name}").reset()
        self.records = []

    def __eq__(self, other: object) -> bool:
        # Value equality over counters + records, matching the historic
        # dataclass semantics the parity tests rely on.
        if not isinstance(other, DarpaStats):
            return NotImplemented
        return (self.snapshot() == other.snapshot()
                and self.records == other.records)

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in self.snapshot().items() if v}
        return f"DarpaStats({nonzero}, records={len(self.records)})"


def _stat_property(name: str) -> property:
    full = f"darpa.pipeline.{name}"

    def fget(self: DarpaStats) -> int:
        return self.registry.counter(full).value

    def fset(self: DarpaStats, value: int) -> None:
        self.registry.counter(full).value = value

    return property(fget, fset, doc=f"Compatibility view of {full!r}.")


for _name in STAT_COUNTERS:
    setattr(DarpaStats, _name, _stat_property(_name))
del _name


def _find_inference_plan(detector: object) -> Optional[object]:
    """Walk a detector's wrapper chain to its compiled InferencePlan.

    The serving stack nests detectors (``FaultyDetector.inner`` →
    ``MobilePort.model`` → ``TinyYolo``); the first object exposing an
    ``inference_plan()`` wins.  Returns None for plan-less detectors
    (oracles, test fakes, the metadata heuristic), for which profiling
    is simply skipped.
    """
    obj = detector
    for _ in range(4):
        plan_fn = getattr(obj, "inference_plan", None)
        if callable(plan_fn):
            return plan_fn()
        for attr in ("inner", "model"):
            nxt = getattr(obj, attr, None)
            if nxt is not None and nxt is not obj:
                obj = nxt
                break
        else:
            return None
    return None


class DarpaService:
    """The deployable unit: one device, one detector, one config."""

    def __init__(
        self,
        device: Device,
        detector: Detector,
        config: Optional[DarpaConfig] = None,
        policy: Optional[ScreenshotPolicy] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.device = device
        self.detector = detector
        self.config = config or DarpaConfig()
        self.policy = policy or ScreenshotPolicy()
        self.service = AccessibilityService(device, event_mask=TYPES_ALL_MASK)
        self.decorator = ViewDecorator(self.service, style=self.config.style)
        self.debouncer = CutoffDebouncer(
            device.clock, self.config.ct_ms, self._on_settled
        )
        self.stats = DarpaStats()
        # Tracing is opt-in and bit-inert when off: the NULL_TRACER
        # records nothing and the pipeline draws no extra randomness or
        # perf charges either way.  A real tracer without its own
        # registry adopts the stats registry, so stage histograms and
        # the DarpaStats counters share one export.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled and self.tracer.registry is None:
            self.tracer.attach_registry(self.stats.registry)
        self._plan_profiler: Optional[PlanProfiler] = None
        self._traced_plan = None
        # The fingerprint cache only makes sense over real pixels:
        # stubbed runs capture 1x1 placeholder frames that would all
        # collide on one key and replay wrong detections.
        self._screen_cache: Optional[ScreenFingerprintCache] = None
        if self.config.screen_cache_size > 0 and not self.config.stub_screenshots:
            self._screen_cache = ScreenFingerprintCache(
                capacity=self.config.screen_cache_size)
        # Resilience state: retry scheduling, the detector breaker, and
        # the degraded-mode heuristic.  All of it is inert until a
        # dependency actually fails.
        self.retry_policy = RetryPolicy(
            max_attempts=self.config.retry_max_attempts,
            base_delay_ms=self.config.retry_base_delay_ms,
            max_delay_ms=self.config.retry_max_delay_ms,
            jitter_frac=self.config.retry_jitter_frac,
        )
        self.breaker = CircuitBreaker(
            device.clock,
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_ms=self.config.breaker_cooldown_ms,
            listener=self._on_breaker_transition,
        )
        # Pre-create the transition counters so they export zero-valued
        # (stable snapshot keys) instead of appearing on first flap.
        for _cname in RESILIENCE_COUNTERS:
            self.stats.registry.counter(f"darpa.resilience.{_cname}")
        self._fallback: Optional[FraudDroidScreenDetector] = None
        if self.config.fallback_to_heuristic:
            self._fallback = FraudDroidScreenDetector(device)
        self._retry_rng = np.random.default_rng(self.config.resilience_seed)
        self._retry_timer: Optional[int] = None
        self._running = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Consent check, event registration, component residency.

        Stats are cumulative across ``stop()``/``start()`` cycles —
        restarting never implicitly zeroes a counter.  Call
        :meth:`reset_stats` for an explicit fresh measurement window.
        """
        self.policy.check_startup()
        self.service.on_event = self._on_event
        if self.tracer.enabled:
            self.service.tracer = self.tracer
            self.tracer.observe_perf(self.device.perf)
        self.service.connect()
        perf = self.device.perf
        perf.enable_component("monitoring")
        perf.enable_component("detection")
        perf.enable_component("decoration")
        self._running = True

    def stop(self) -> None:
        self._cancel_retry()
        self.debouncer.cancel_pending()
        self.decorator.remove_all()
        self.service.disconnect()
        self._running = False

    def reset_stats(self, reset_perf: bool = False) -> None:
        """Zero the run counters (and optionally the device perf meter).

        This is the only way counters reset: lifecycle transitions never
        do it implicitly, so overlapping measurement windows can't
        silently lose or double-count work.  ``reset_perf=True`` also
        resets the device's cost-model meter and the fingerprint-cache
        hit/miss tallies, aligning every measurement surface on one
        zero point.
        """
        self.stats.reset()
        if reset_perf:
            self.device.perf.reset()
            if self._screen_cache is not None:
                self._screen_cache.hits = 0
                self._screen_cache.misses = 0

    @property
    def running(self) -> bool:
        return self._running

    @property
    def screen_cache(self) -> Optional[ScreenFingerprintCache]:
        """The fingerprint cache, or None when disabled."""
        return self._screen_cache

    @property
    def fallback_detector(self) -> Optional[FraudDroidScreenDetector]:
        """The degraded-mode heuristic, or None when disabled."""
        return self._fallback

    # -- event flow -----------------------------------------------------------

    def _on_event(self, event: AccessibilityEvent) -> None:
        if not self._running:
            return
        self.stats.events_seen += 1
        self.debouncer.feed(event)

    def _on_settled(self, event: AccessibilityEvent) -> None:
        if event.package == self.service.package:
            return  # our own overlays; never analyze ourselves
        if event.package in self.config.trusted_packages:
            return
        # The settle wait is only known in hindsight: it began at the
        # last UI event and ended just now, when the quiescence timer
        # fired — recorded retroactively as a closed `debounce` span.
        self.tracer.emit(
            "debounce", start_ms=event.timestamp_ms,
            end_ms=self.device.clock.now_ms, package=event.package)
        # A newly settled screen supersedes any retry still pending for
        # the previous one — that frame is gone.
        self._cancel_retry()
        self._analyze(event, attempt=1)

    # -- retry scheduling -----------------------------------------------

    def _cancel_retry(self) -> None:
        if self._retry_timer is not None:
            self.device.clock.cancel(self._retry_timer)
            self._retry_timer = None

    def _schedule_retry(self, event: AccessibilityEvent, attempt: int) -> None:
        delay = self.retry_policy.delay_ms(attempt, self._retry_rng)
        self.stats.retries += 1

        def fire() -> None:
            self._retry_timer = None
            if not self._running:
                return
            self._analyze(event, attempt + 1)

        self._retry_timer = self.device.clock.schedule(delay, fire)

    # -- analysis -------------------------------------------------------

    def _analyze(self, event: AccessibilityEvent, attempt: int) -> None:
        tracer = self.tracer
        with tracer.span("analyze", package=event.package,
                         attempt=attempt) as a_span:
            self._analyze_traced(event, attempt, a_span)
        self._update_gauges()

    def _analyze_traced(self, event: AccessibilityEvent, attempt: int,
                        a_span) -> None:
        tracer = self.tracer
        # Remove previous decorations BEFORE the screenshot, so the
        # model never sees (and re-detects) our own overlays.
        self.decorator.remove_all()
        try:
            # Enter the capture-analyze-rinse context by hand so the
            # `screenshot` span brackets only the capture: the policy's
            # rinse guarantee is preserved by the finally below.
            shot_cm = self.policy.analyzed_screenshot(
                self.service, stub=self.config.stub_screenshots)
            with tracer.span("screenshot", attempt=attempt):
                shot = shot_cm.__enter__()
        except ScreenshotFailedError:
            # Transient capture failure (including OS throttling):
            # back off and retry on the clock instead of losing the
            # screen — unless the budget is exhausted.
            self.stats.screenshot_failures += 1
            retrying = attempt < self.retry_policy.max_attempts
            tracer.annotate(a_span, outcome="screenshot_failed",
                            retry_scheduled=retrying)
            if retrying:
                self._schedule_retry(event, attempt)
            return
        try:
            outcome = self._detect(shot)
        finally:
            shot_cm.__exit__(None, None, None)
        if outcome is None:
            tracer.annotate(a_span, outcome="deadline_abandoned")
            return  # watchdog abandoned the analysis
        detections, degraded = outcome
        record = AnalysisRecord(
            timestamp_ms=self.device.clock.now_ms,
            package=event.package,
            detections=detections,
            flag_threshold=self.config.flag_threshold,
            degraded=degraded,
        )
        self.stats.records.append(record)
        self.stats.screens_analyzed += 1
        if record.flagged_aui:
            self.stats.auis_flagged += 1
        tracer.annotate(a_span, outcome="ok", degraded=degraded,
                        detections=len(detections),
                        flagged=record.flagged_aui)
        if detections and self.config.decorate:
            with tracer.span("decorate",
                             detections=len(detections)) as d_span:
                if self.config.auto_bypass:
                    clicked = self.decorator.bypass(detections)
                    if clicked is not None:
                        self.stats.bypass_clicks += 1
                        tracer.annotate(d_span, bypassed=True)
                        return
                applied = self.decorator.decorate(detections)
                self.stats.decorations_drawn += len(applied)
                rejected = self.decorator.take_rejections()
                self.stats.overlay_rejections += rejected
                tracer.annotate(d_span, applied=len(applied),
                                rejected=rejected)

    def _on_breaker_transition(self, event: str, src: BreakerState,
                               dst: BreakerState) -> None:
        """Breaker listener: count the edge and mark it on the trace.

        Each transition increments its ``darpa.resilience.*`` counter
        (visible in ``repro metrics`` exports and consumable by the SLO
        engine) and emits a zero-duration ``breaker_transition`` span at
        the transition instant, so trace timelines show exactly when the
        detector was quarantined or rehabilitated.  Fault-free runs
        never transition, keeping this path bit-inert.
        """
        self.stats.registry.counter(
            f"darpa.resilience.{_BREAKER_EVENT_COUNTER[event]}").inc()
        now = self.device.clock.now_ms
        self.tracer.emit("breaker_transition", start_ms=now, end_ms=now,
                         event=event, from_state=src.value,
                         to_state=dst.value)

    def _update_gauges(self) -> None:
        registry = self.stats.registry
        registry.gauge("darpa.breaker.state").set(
            _BREAKER_GAUGE[self.breaker.state])
        if self._screen_cache is not None:
            registry.gauge("darpa.cache.entries").set(
                len(self._screen_cache))

    def _detect(self, shot) -> Optional[Tuple[Sequence[ScoredBox], bool]]:
        """Cache probe, breaker-guarded inference, degraded fallback.

        Returns ``(detections, degraded)`` or None when the watchdog
        abandoned the analysis.
        """
        tracer = self.tracer
        key: Optional[bytes] = None
        if self.config.force_degraded:
            # The daemon's load-shedding path: skip both the cache and
            # the CNN and answer from the heuristic.  The cache is
            # skipped too — degraded results are never cached, and a
            # hit here would make shed outcomes depend on whatever CNN
            # traffic happened to run earlier.
            tracer.set_attribute("forced_degraded", True)
        else:
            if self._screen_cache is not None:
                # Probe before the CNN: fingerprinting + lookup is ~2
                # CPU-ms against 100 for an inference (Table VII).
                with tracer.span("cache_probe") as c_span:
                    key = self._screen_cache.fingerprint(shot.pixels)
                    self.device.perf.record(PerfOp.CACHE_PROBE)
                    cached = self._screen_cache.get(key)
                    tracer.annotate(c_span, fingerprint=key.hex()[:16],
                                    hit=cached is not None)
                if cached is not None:
                    self.stats.cache_hits += 1
                    tracer.set_attribute("cache_hit", True)
                    return cached, False
                self.stats.cache_misses += 1
            if self.breaker.allow():
                with tracer.span(
                        "inference",
                        breaker_state=self.breaker.state.value) as i_span:
                    profiler = self._attach_profiler()
                    try:
                        try:
                            detections = self.detector.detect_screen(
                                shot.pixels,
                                refine=self.config.refine_boxes,
                                conf_threshold=self.config.conf_threshold,
                            )
                        finally:
                            self._detach_profiler()
                    except Exception:
                        # Any detector exception is a breaker failure;
                        # fall through to the degraded path for THIS
                        # screen too.
                        self.stats.detector_failures += 1
                        self._breaker_failure()
                        tracer.annotate(i_span, crashed=True)
                    else:
                        self.device.perf.record(PerfOp.INFERENCE)
                        elapsed = float(
                            getattr(self.detector, "last_detect_ms", 0.0)
                            or 0.0)
                        tracer.annotate(i_span, elapsed_ms=elapsed)
                        if profiler is not None and profiler.steps:
                            tracer.annotate(
                                i_span, plan_ops=profiler.attribute(
                                    self.device.perf.profile.inference_cpu_ms))
                        if (self.config.deadline_ms
                                and elapsed > self.config.deadline_ms):
                            # Over budget: by the time this inference
                            # "finished" the screen has likely moved on
                            # — abandon it rather than decorate a stale
                            # frame, and treat the overrun as a failure
                            # signal for the breaker.
                            self.stats.deadline_skips += 1
                            self._breaker_failure()
                            tracer.annotate(i_span, deadline_exceeded=True)
                            return None
                        self.breaker.record_success()
                        if self._screen_cache is not None:
                            self._screen_cache.put(key, detections)
                        return detections, False
            else:
                tracer.set_attribute("breaker_open", True)
        # Breaker open (or the inference just crashed): degrade to the
        # metadata heuristic.  Degraded results are never cached — the
        # cache must not replay heuristic verdicts after recovery.
        if self._fallback is not None:
            with tracer.span("fallback") as f_span:
                detections = self._fallback.detect_screen(
                    shot.pixels,
                    refine=self.config.refine_boxes,
                    conf_threshold=self.config.conf_threshold,
                )
                self.device.perf.record(PerfOp.FALLBACK_INFERENCE)
                self.stats.fallback_detections += 1
                tracer.annotate(f_span,
                                nodes=self._fallback.last_node_count,
                                detections=len(detections))
            return detections, True
        return (), True

    # -- plan profiling -------------------------------------------------

    def _attach_profiler(self) -> Optional[PlanProfiler]:
        """Hook the detector's compiled :class:`InferencePlan` for one
        traced inference; returns the profiler, or None when tracing is
        off or the detector exposes no plan (e.g. test fakes, oracles,
        the metadata heuristic)."""
        if not self.tracer.enabled:
            return None
        plan = _find_inference_plan(self.detector)
        if plan is None:
            return None
        if self._plan_profiler is None:
            self._plan_profiler = PlanProfiler()
        plan.profiler = self._plan_profiler
        self._traced_plan = plan
        return self._plan_profiler

    def _detach_profiler(self) -> None:
        if self._traced_plan is not None:
            self._traced_plan.profiler = None
            self._traced_plan = None

    def _breaker_failure(self) -> None:
        if self.breaker.record_failure():
            self.stats.breaker_opens += 1
