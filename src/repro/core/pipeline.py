"""``DarpaService`` — the assembled runtime (paper Figure 5).

Life-cycle per settled screen:

    events -> ct debounce -> remove old decorations -> take screenshot
    -> CV detection -> rinse screenshot -> calibrate -> decorate
    (or auto-bypass the UPO)

The service is detector-agnostic: anything exposing
``detect_screen(image, refine=..., conf_threshold=...) -> [ScoredBox]``
plugs in, which is how the benchmarks swap the server model, the ported
model, and test fakes through one pipeline.

The serving path is resilient by construction (see
:mod:`repro.core.resilience` and :mod:`repro.android.faults`):

- transient screenshot failures are retried on the simulated clock with
  exponential backoff + seeded jitter (a newer settled screen cancels a
  pending retry — the old frame no longer matters);
- the detector runs behind a circuit breaker; while it is open, the
  pipeline degrades to the FraudDroid metadata heuristic
  (:class:`repro.baselines.frauddroid.FraudDroidScreenDetector`);
- a per-screen watchdog deadline abandons analyses whose (simulated)
  inference overran its budget instead of stalling the event loop;
- rejected overlay mounts are absorbed per decoration.

With no faults injected, none of these paths run: the stats, records
and perf counts are bit-identical to the resilience-free pipeline,
which ``benchmarks/bench_chaos.py`` asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.geometry.nms import ScoredBox
from repro.android.accessibility import AccessibilityService
from repro.android.device import Device, PerfOp
from repro.android.events import AccessibilityEvent, TYPES_ALL_MASK
from repro.android.faults import ScreenshotFailedError
from repro.baselines.frauddroid import FraudDroidScreenDetector
from repro.core.config import DarpaConfig
from repro.core.debounce import CutoffDebouncer
from repro.core.decorator import ViewDecorator
from repro.core.resilience import CircuitBreaker, RetryPolicy
from repro.core.screencache import ScreenFingerprintCache
from repro.core.security import ScreenshotPolicy


class Detector(Protocol):
    """Anything that can find AUI options on a screenshot."""

    def detect_screen(self, screen_image: np.ndarray, refine: bool = True,
                      conf_threshold: Optional[float] = None
                      ) -> List[ScoredBox]: ...


@dataclass
class AnalysisRecord:
    """One settled-screen analysis."""

    timestamp_ms: float
    package: str
    detections: Sequence[ScoredBox]
    flag_threshold: float = 0.5
    #: True when the detections came from the degraded heuristic path
    #: (detector breaker open or inference crashed), not the CNN.
    degraded: bool = False

    @property
    def flagged_aui(self) -> bool:
        """Screen-level verdict: a confident UPO was found.

        The paper counts "screenshots that have UPOs"; requiring the
        flagging detection to clear a higher confidence bar than the
        box-reporting threshold suppresses benign-close false flags
        while true AUI UPOs (which the model is very sure about) pass.
        """
        return any(d.label == "UPO" and d.score >= self.flag_threshold
                   for d in self.detections)


@dataclass
class DarpaStats:
    """Counters the evaluation section reads off a run."""

    events_seen: int = 0
    screens_analyzed: int = 0
    auis_flagged: int = 0
    decorations_drawn: int = 0
    bypass_clicks: int = 0
    #: Settled screens answered from the fingerprint cache (no CNN run)
    #: vs. screens that went through the detector.
    cache_hits: int = 0
    cache_misses: int = 0
    # -- resilience counters (all zero on a fault-free run) -------------
    #: ``takeScreenshot`` calls that raised (throttled or failed).
    screenshot_failures: int = 0
    #: Backoff retries scheduled after a failed capture.
    retries: int = 0
    #: Detector inferences that raised.
    detector_failures: int = 0
    #: CLOSED/HALF_OPEN -> OPEN transitions of the detector breaker.
    breaker_opens: int = 0
    #: Analyses answered by the FraudDroid heuristic instead of the CNN.
    fallback_detections: int = 0
    #: Analyses abandoned by the per-screen watchdog deadline.
    deadline_skips: int = 0
    #: Decoration overlay mounts the WindowManager refused.
    overlay_rejections: int = 0
    records: List[AnalysisRecord] = field(default_factory=list)


class DarpaService:
    """The deployable unit: one device, one detector, one config."""

    def __init__(
        self,
        device: Device,
        detector: Detector,
        config: Optional[DarpaConfig] = None,
        policy: Optional[ScreenshotPolicy] = None,
    ):
        self.device = device
        self.detector = detector
        self.config = config or DarpaConfig()
        self.policy = policy or ScreenshotPolicy()
        self.service = AccessibilityService(device, event_mask=TYPES_ALL_MASK)
        self.decorator = ViewDecorator(self.service, style=self.config.style)
        self.debouncer = CutoffDebouncer(
            device.clock, self.config.ct_ms, self._on_settled
        )
        self.stats = DarpaStats()
        # The fingerprint cache only makes sense over real pixels:
        # stubbed runs capture 1x1 placeholder frames that would all
        # collide on one key and replay wrong detections.
        self._screen_cache: Optional[ScreenFingerprintCache] = None
        if self.config.screen_cache_size > 0 and not self.config.stub_screenshots:
            self._screen_cache = ScreenFingerprintCache(
                capacity=self.config.screen_cache_size)
        # Resilience state: retry scheduling, the detector breaker, and
        # the degraded-mode heuristic.  All of it is inert until a
        # dependency actually fails.
        self.retry_policy = RetryPolicy(
            max_attempts=self.config.retry_max_attempts,
            base_delay_ms=self.config.retry_base_delay_ms,
            max_delay_ms=self.config.retry_max_delay_ms,
            jitter_frac=self.config.retry_jitter_frac,
        )
        self.breaker = CircuitBreaker(
            device.clock,
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_ms=self.config.breaker_cooldown_ms,
        )
        self._fallback: Optional[FraudDroidScreenDetector] = None
        if self.config.fallback_to_heuristic:
            self._fallback = FraudDroidScreenDetector(device)
        self._retry_rng = np.random.default_rng(self.config.resilience_seed)
        self._retry_timer: Optional[int] = None
        self._running = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Consent check, event registration, component residency."""
        self.policy.check_startup()
        self.service.on_event = self._on_event
        self.service.connect()
        perf = self.device.perf
        perf.enable_component("monitoring")
        perf.enable_component("detection")
        perf.enable_component("decoration")
        self._running = True

    def stop(self) -> None:
        self._cancel_retry()
        self.debouncer.cancel_pending()
        self.decorator.remove_all()
        self.service.disconnect()
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    @property
    def screen_cache(self) -> Optional[ScreenFingerprintCache]:
        """The fingerprint cache, or None when disabled."""
        return self._screen_cache

    @property
    def fallback_detector(self) -> Optional[FraudDroidScreenDetector]:
        """The degraded-mode heuristic, or None when disabled."""
        return self._fallback

    # -- event flow -----------------------------------------------------------

    def _on_event(self, event: AccessibilityEvent) -> None:
        if not self._running:
            return
        self.stats.events_seen += 1
        self.debouncer.feed(event)

    def _on_settled(self, event: AccessibilityEvent) -> None:
        if event.package == self.service.package:
            return  # our own overlays; never analyze ourselves
        if event.package in self.config.trusted_packages:
            return
        # A newly settled screen supersedes any retry still pending for
        # the previous one — that frame is gone.
        self._cancel_retry()
        self._analyze(event, attempt=1)

    # -- retry scheduling -----------------------------------------------

    def _cancel_retry(self) -> None:
        if self._retry_timer is not None:
            self.device.clock.cancel(self._retry_timer)
            self._retry_timer = None

    def _schedule_retry(self, event: AccessibilityEvent, attempt: int) -> None:
        delay = self.retry_policy.delay_ms(attempt, self._retry_rng)
        self.stats.retries += 1

        def fire() -> None:
            self._retry_timer = None
            if not self._running:
                return
            self._analyze(event, attempt + 1)

        self._retry_timer = self.device.clock.schedule(delay, fire)

    # -- analysis -------------------------------------------------------

    def _analyze(self, event: AccessibilityEvent, attempt: int) -> None:
        # Remove previous decorations BEFORE the screenshot, so the
        # model never sees (and re-detects) our own overlays.
        self.decorator.remove_all()
        try:
            with self.policy.analyzed_screenshot(
                    self.service, stub=self.config.stub_screenshots) as shot:
                outcome = self._detect(shot)
        except ScreenshotFailedError:
            # Transient capture failure (including OS throttling):
            # back off and retry on the clock instead of losing the
            # screen — unless the budget is exhausted.
            self.stats.screenshot_failures += 1
            if attempt < self.retry_policy.max_attempts:
                self._schedule_retry(event, attempt)
            return
        if outcome is None:
            return  # watchdog abandoned the analysis
        detections, degraded = outcome
        record = AnalysisRecord(
            timestamp_ms=self.device.clock.now_ms,
            package=event.package,
            detections=detections,
            flag_threshold=self.config.flag_threshold,
            degraded=degraded,
        )
        self.stats.records.append(record)
        self.stats.screens_analyzed += 1
        if record.flagged_aui:
            self.stats.auis_flagged += 1
        if detections and self.config.decorate:
            if self.config.auto_bypass:
                clicked = self.decorator.bypass(detections)
                if clicked is not None:
                    self.stats.bypass_clicks += 1
                    return
            applied = self.decorator.decorate(detections)
            self.stats.decorations_drawn += len(applied)
            self.stats.overlay_rejections += self.decorator.take_rejections()

    def _detect(self, shot) -> Optional[Tuple[Sequence[ScoredBox], bool]]:
        """Cache probe, breaker-guarded inference, degraded fallback.

        Returns ``(detections, degraded)`` or None when the watchdog
        abandoned the analysis.
        """
        key: Optional[bytes] = None
        if self._screen_cache is not None:
            # Probe before the CNN: fingerprinting + lookup is ~2
            # CPU-ms against 100 for an inference (Table VII).
            key = self._screen_cache.fingerprint(shot.pixels)
            self.device.perf.record(PerfOp.CACHE_PROBE)
            cached = self._screen_cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached, False
            self.stats.cache_misses += 1
        if self.breaker.allow():
            try:
                detections = self.detector.detect_screen(
                    shot.pixels,
                    refine=self.config.refine_boxes,
                    conf_threshold=self.config.conf_threshold,
                )
            except Exception:
                # Any detector exception is a breaker failure; fall
                # through to the degraded path for THIS screen too.
                self.stats.detector_failures += 1
                self._breaker_failure()
            else:
                self.device.perf.record(PerfOp.INFERENCE)
                elapsed = float(
                    getattr(self.detector, "last_detect_ms", 0.0) or 0.0)
                if self.config.deadline_ms and elapsed > self.config.deadline_ms:
                    # Over budget: by the time this inference "finished"
                    # the screen has likely moved on — abandon it rather
                    # than decorate a stale frame, and treat the overrun
                    # as a failure signal for the breaker.
                    self.stats.deadline_skips += 1
                    self._breaker_failure()
                    return None
                self.breaker.record_success()
                if self._screen_cache is not None:
                    self._screen_cache.put(key, detections)
                return detections, False
        # Breaker open (or the inference just crashed): degrade to the
        # metadata heuristic.  Degraded results are never cached — the
        # cache must not replay heuristic verdicts after recovery.
        if self._fallback is not None:
            detections = self._fallback.detect_screen(
                shot.pixels,
                refine=self.config.refine_boxes,
                conf_threshold=self.config.conf_threshold,
            )
            self.device.perf.record(PerfOp.FALLBACK_INFERENCE)
            self.stats.fallback_detections += 1
            return detections, True
        return (), True

    def _breaker_failure(self) -> None:
        if self.breaker.record_failure():
            self.stats.breaker_opens += 1
