"""``DarpaService`` — the assembled runtime (paper Figure 5).

Life-cycle per settled screen:

    events -> ct debounce -> remove old decorations -> take screenshot
    -> CV detection -> rinse screenshot -> calibrate -> decorate
    (or auto-bypass the UPO)

The service is detector-agnostic: anything exposing
``detect_screen(image, refine=..., conf_threshold=...) -> [ScoredBox]``
plugs in, which is how the benchmarks swap the server model, the ported
model, and test fakes through one pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.geometry.nms import ScoredBox
from repro.android.accessibility import AccessibilityService
from repro.android.device import Device, PerfOp
from repro.android.events import AccessibilityEvent, TYPES_ALL_MASK
from repro.core.config import DarpaConfig
from repro.core.debounce import CutoffDebouncer
from repro.core.decorator import ViewDecorator
from repro.core.screencache import ScreenFingerprintCache
from repro.core.security import ScreenshotPolicy


class Detector(Protocol):
    """Anything that can find AUI options on a screenshot."""

    def detect_screen(self, screen_image: np.ndarray, refine: bool = True,
                      conf_threshold: Optional[float] = None
                      ) -> List[ScoredBox]: ...


@dataclass
class AnalysisRecord:
    """One settled-screen analysis."""

    timestamp_ms: float
    package: str
    detections: List[ScoredBox]
    flag_threshold: float = 0.5

    @property
    def flagged_aui(self) -> bool:
        """Screen-level verdict: a confident UPO was found.

        The paper counts "screenshots that have UPOs"; requiring the
        flagging detection to clear a higher confidence bar than the
        box-reporting threshold suppresses benign-close false flags
        while true AUI UPOs (which the model is very sure about) pass.
        """
        return any(d.label == "UPO" and d.score >= self.flag_threshold
                   for d in self.detections)


@dataclass
class DarpaStats:
    """Counters the evaluation section reads off a run."""

    events_seen: int = 0
    screens_analyzed: int = 0
    auis_flagged: int = 0
    decorations_drawn: int = 0
    bypass_clicks: int = 0
    #: Settled screens answered from the fingerprint cache (no CNN run)
    #: vs. screens that went through the detector.
    cache_hits: int = 0
    cache_misses: int = 0
    records: List[AnalysisRecord] = field(default_factory=list)


class DarpaService:
    """The deployable unit: one device, one detector, one config."""

    def __init__(
        self,
        device: Device,
        detector: Detector,
        config: Optional[DarpaConfig] = None,
        policy: Optional[ScreenshotPolicy] = None,
    ):
        self.device = device
        self.detector = detector
        self.config = config or DarpaConfig()
        self.policy = policy or ScreenshotPolicy()
        self.service = AccessibilityService(device, event_mask=TYPES_ALL_MASK)
        self.decorator = ViewDecorator(self.service, style=self.config.style)
        self.debouncer = CutoffDebouncer(
            device.clock, self.config.ct_ms, self._on_settled
        )
        self.stats = DarpaStats()
        # The fingerprint cache only makes sense over real pixels:
        # stubbed runs capture 1x1 placeholder frames that would all
        # collide on one key and replay wrong detections.
        self._screen_cache: Optional[ScreenFingerprintCache] = None
        if self.config.screen_cache_size > 0 and not self.config.stub_screenshots:
            self._screen_cache = ScreenFingerprintCache(
                capacity=self.config.screen_cache_size)
        self._running = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Consent check, event registration, component residency."""
        self.policy.check_startup()
        self.service.on_event = self._on_event
        self.service.connect()
        perf = self.device.perf
        perf.enable_component("monitoring")
        perf.enable_component("detection")
        perf.enable_component("decoration")
        self._running = True

    def stop(self) -> None:
        self.debouncer.cancel_pending()
        self.decorator.remove_all()
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    @property
    def screen_cache(self) -> Optional[ScreenFingerprintCache]:
        """The fingerprint cache, or None when disabled."""
        return self._screen_cache

    # -- event flow -----------------------------------------------------------

    def _on_event(self, event: AccessibilityEvent) -> None:
        if not self._running:
            return
        self.stats.events_seen += 1
        self.debouncer.feed(event)

    def _on_settled(self, event: AccessibilityEvent) -> None:
        if event.package == self.service.package:
            return  # our own overlays; never analyze ourselves
        if event.package in self.config.trusted_packages:
            return
        # Remove previous decorations BEFORE the screenshot, so the
        # model never sees (and re-detects) our own overlays.
        self.decorator.remove_all()
        with self.policy.analyzed_screenshot(
                self.service, stub=self.config.stub_screenshots) as shot:
            detections = None
            key = None
            if self._screen_cache is not None:
                # Probe before the CNN: fingerprinting + lookup is ~2
                # CPU-ms against 100 for an inference (Table VII).
                key = self._screen_cache.fingerprint(shot.pixels)
                self.device.perf.record(PerfOp.CACHE_PROBE)
                detections = self._screen_cache.get(key)
            if detections is None:
                if self._screen_cache is not None:
                    self.stats.cache_misses += 1
                detections = self.detector.detect_screen(
                    shot.pixels,
                    refine=self.config.refine_boxes,
                    conf_threshold=self.config.conf_threshold,
                )
                self.device.perf.record(PerfOp.INFERENCE)
                if self._screen_cache is not None:
                    self._screen_cache.put(key, detections)
            else:
                self.stats.cache_hits += 1
        record = AnalysisRecord(
            timestamp_ms=self.device.clock.now_ms,
            package=event.package,
            detections=detections,
            flag_threshold=self.config.flag_threshold,
        )
        self.stats.records.append(record)
        self.stats.screens_analyzed += 1
        if record.flagged_aui:
            self.stats.auis_flagged += 1
        if detections and self.config.decorate:
            if self.config.auto_bypass:
                clicked = self.decorator.bypass(detections)
                if clicked is not None:
                    self.stats.bypass_clicks += 1
                    return
            applied = self.decorator.decorate(detections)
            self.stats.decorations_drawn += len(applied)
