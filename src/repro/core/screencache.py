"""Screen-fingerprint detection cache (serving-path optimization).

Mobile UI streams are massively repetitive: the same settled screen
re-appears every time a dialog is dismissed and re-opened, a tab is
revisited, or a scroll returns to its anchor.  Running the full CNN on
each recurrence wastes the costliest operation in DARPA's budget
(Table VII charges 100 CPU-ms per inference vs 30 per screenshot).

:class:`ScreenFingerprintCache` memoizes detector outputs behind a
perceptual fingerprint of the settled screenshot:

* the frame is average-pooled onto a small grid (16x16 by default),
  per channel, which is invariant to imperceptible pixel noise but
  sensitive to any real layout change — a moved button shifts cell
  means by whole color steps;
* cell means are quantized to a few intensity levels and the resulting
  byte string is the cache key;
* entries live in an LRU of bounded capacity, so a long session cannot
  grow memory without bound (the eviction order is recency-of-use, the
  access pattern screens actually exhibit).

The cache is consulted by :class:`repro.core.pipeline.DarpaService`
before the detector; a hit replays the stored detections and skips the
CNN entirely, charging only a cheap ``CACHE_PROBE`` op to the device
cost model (see :mod:`repro.android.device`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.geometry.nms import ScoredBox


class ScreenFingerprintCache:
    """An LRU of detector outputs keyed by perceptual screen hash."""

    def __init__(self, capacity: int = 64, grid: int = 16,
                 levels: int = 32):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if grid < 1:
            raise ValueError("fingerprint grid must be >= 1")
        if not 2 <= levels <= 256:
            raise ValueError("quantization levels must be in [2, 256]")
        self.capacity = capacity
        self.grid = grid
        self.levels = levels
        self.hits = 0
        self.misses = 0
        # Entries are tuples of frozen ScoredBoxes: handing out the
        # stored sequence by reference is safe because neither the tuple
        # nor its boxes can be mutated — a caller can't poison a future
        # hit, and hits don't pay a per-lookup copy.
        self._entries: "OrderedDict[bytes, Tuple[ScoredBox, ...]]" = OrderedDict()

    # -- fingerprinting --------------------------------------------------

    def fingerprint(self, pixels: np.ndarray) -> bytes:
        """Perceptual hash of one (H, W) or (H, W, C) screenshot."""
        raw = np.asarray(pixels)
        arr = raw.astype(np.float64)
        if np.issubdtype(raw.dtype, np.integer):
            arr /= 255.0  # normalize 8-bit rasters to the [0, 1] range
        if arr.ndim == 2:
            arr = arr[:, :, None]
        if arr.ndim != 3:
            raise ValueError(f"expected (H, W[, C]) pixels, got {arr.shape}")
        h, w, _ = arr.shape
        gy = min(self.grid, h)
        gx = min(self.grid, w)
        # Average-pool onto the (gy, gx) grid with near-equal cells.
        ys = np.linspace(0, h, gy + 1).astype(np.int64)
        xs = np.linspace(0, w, gx + 1).astype(np.int64)
        # Row/column prefix sums make each cell mean O(1).
        integral = arr.cumsum(axis=0).cumsum(axis=1)
        padded = np.zeros((h + 1, w + 1, arr.shape[2]))
        padded[1:, 1:] = integral
        sums = (padded[ys[1:], :, :][:, xs[1:], :]
                - padded[ys[1:], :, :][:, xs[:-1], :]
                - padded[ys[:-1], :, :][:, xs[1:], :]
                + padded[ys[:-1], :, :][:, xs[:-1], :])
        areas = ((ys[1:] - ys[:-1])[:, None]
                 * (xs[1:] - xs[:-1])[None, :]).astype(np.float64)
        means = sums / areas[:, :, None]
        # Quantize to `levels` steps over the [0, 1] intensity range,
        # rounding to the *nearest* step rather than flooring: flat UI
        # regions produce cell means that sit exactly on step multiples
        # (palette colors are simple fractions), and floor quantization
        # would let per-screenshot sensor noise flip those cells across
        # a bucket boundary.  Round-to-nearest puts them at bucket
        # centers, a half-step away from the nearest boundary.
        quantized = np.clip(np.floor(means * self.levels + 0.5), 0,
                            self.levels - 1).astype(np.uint8)
        return quantized.tobytes()

    # -- LRU -------------------------------------------------------------

    def get(self, key: bytes) -> Optional[Tuple[ScoredBox, ...]]:
        """Return the cached detections for ``key``, counting the probe."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: bytes, detections: Sequence[ScoredBox]) -> None:
        # Defensive copy into an immutable tuple: the caller keeps no
        # handle that could mutate this entry under future hits.
        self._entries[key] = tuple(detections)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def lookup(self, pixels: np.ndarray) -> Optional[Tuple[ScoredBox, ...]]:
        """Fingerprint + get in one call (convenience for tests)."""
        return self.get(self.fingerprint(pixels))

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
