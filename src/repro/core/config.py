"""DARPA runtime configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.imaging.color import Color, PALETTE


@dataclass(frozen=True)
class DecorationStyle:
    """Visual style of decoration overlays.

    Defaults follow the paper: high-contrast strokes, green for the
    user-preferred option, red for the app-guided one, with a margin so
    the stroke rings the option instead of covering it.  Users may
    customize shape and color (Section IV-D).
    """

    upo_color: Color = field(default_factory=lambda: PALETTE["green"])
    ago_color: Color = field(default_factory=lambda: PALETTE["red"])
    stroke_width: int = 3
    margin: float = 4.0
    decorate_ago: bool = True


@dataclass(frozen=True)
class DarpaConfig:
    """End-to-end pipeline settings."""

    #: Cut-off time: a screen must stay quiet this long to be analyzed.
    #: 200 ms is the paper's optimum (Section VI-E) — and, it notes,
    #: roughly human reaction time.
    ct_ms: float = 200.0
    #: Detector confidence threshold at decode time.
    conf_threshold: float = 0.45
    #: Higher confidence bar for the screen-level "this is an AUI"
    #: verdict (decorations still draw every detection above
    #: ``conf_threshold``; only the flag/bypass decision uses this).
    flag_threshold: float = 0.85
    #: Run classical box refinement on detections.
    refine_boxes: bool = True
    #: Draw decoration overlays (off = detect-and-log only, used by the
    #: overhead decomposition of Table VII).
    decorate: bool = True
    #: Auto-click the UPO instead of (only) decorating it.
    auto_bypass: bool = False
    #: Only analyze packages outside this allowlist (empty = analyze
    #: everything).  Mirrors the paper's "selectively running DARPA on
    #: less-trusted apps" overhead reduction.
    trusted_packages: tuple = ()
    #: Simulation accelerator: skip rasterizing screenshots (detectors
    #: that never read pixels, e.g. ground-truth oracles in the ct
    #: sweeps).  All perf accounting is unaffected.
    stub_screenshots: bool = False
    #: Entry capacity of the screen-fingerprint detection cache
    #: (:mod:`repro.core.screencache`); 0 disables caching.  The cache
    #: is also bypassed under ``stub_screenshots`` — stub frames carry
    #: no pixels to fingerprint.
    screen_cache_size: int = 64

    # -- resilience (see repro.core.resilience) -------------------------
    #: Attempts per settled screen when ``takeScreenshot`` fails
    #: transiently (1 = no retries).  Retries are scheduled on the
    #: simulated clock with exponential backoff + seeded jitter.
    retry_max_attempts: int = 3
    retry_base_delay_ms: float = 50.0
    retry_max_delay_ms: float = 1000.0
    retry_jitter_frac: float = 0.25
    #: Consecutive detector failures (crashes or blown deadlines) that
    #: open the circuit breaker, degrading detection to the FraudDroid
    #: heuristic until the cooldown's half-open probe succeeds.
    breaker_failure_threshold: int = 3
    breaker_cooldown_ms: float = 5000.0
    #: Degrade to the metadata heuristic while the breaker is open (off
    #: = analyses during an outage report no detections).
    fallback_to_heuristic: bool = True
    #: Per-screen watchdog budget for one inference, in simulated ms; an
    #: analysis whose detector reports a longer ``last_detect_ms`` is
    #: abandoned (counted as ``deadline_skips``).  0 disables.
    deadline_ms: float = 0.0
    #: Seed of the retry-jitter stream (independent of the device RNG).
    resilience_seed: int = 0
    #: Serve every analysis from the FraudDroid heuristic, skipping the
    #: cache and the CNN entirely.  This is the daemon's load-shedding
    #: lever (:mod:`repro.core.daemon`): a session whose screens cannot
    #: make the reaction budget through the inference queue degrades
    #: instead of being dropped.  Requires ``fallback_to_heuristic``.
    force_degraded: bool = False

    style: DecorationStyle = field(default_factory=DecorationStyle)

    def __post_init__(self) -> None:
        if self.ct_ms < 0:
            raise ValueError("ct must be non-negative")
        if not 0.0 < self.conf_threshold < 1.0:
            raise ValueError("confidence threshold must be in (0, 1)")
        if self.screen_cache_size < 0:
            raise ValueError("screen cache size must be non-negative")
        if self.retry_max_attempts < 1:
            raise ValueError("retry_max_attempts must be >= 1")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown_ms < 0:
            raise ValueError("breaker cooldown must be non-negative")
        if self.deadline_ms < 0:
            raise ValueError("deadline must be non-negative")
        if self.force_degraded and not self.fallback_to_heuristic:
            raise ValueError(
                "force_degraded requires fallback_to_heuristic")
