"""DARPA runtime configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.imaging.color import Color, PALETTE


@dataclass(frozen=True)
class DecorationStyle:
    """Visual style of decoration overlays.

    Defaults follow the paper: high-contrast strokes, green for the
    user-preferred option, red for the app-guided one, with a margin so
    the stroke rings the option instead of covering it.  Users may
    customize shape and color (Section IV-D).
    """

    upo_color: Color = field(default_factory=lambda: PALETTE["green"])
    ago_color: Color = field(default_factory=lambda: PALETTE["red"])
    stroke_width: int = 3
    margin: float = 4.0
    decorate_ago: bool = True


@dataclass(frozen=True)
class DarpaConfig:
    """End-to-end pipeline settings."""

    #: Cut-off time: a screen must stay quiet this long to be analyzed.
    #: 200 ms is the paper's optimum (Section VI-E) — and, it notes,
    #: roughly human reaction time.
    ct_ms: float = 200.0
    #: Detector confidence threshold at decode time.
    conf_threshold: float = 0.45
    #: Higher confidence bar for the screen-level "this is an AUI"
    #: verdict (decorations still draw every detection above
    #: ``conf_threshold``; only the flag/bypass decision uses this).
    flag_threshold: float = 0.85
    #: Run classical box refinement on detections.
    refine_boxes: bool = True
    #: Draw decoration overlays (off = detect-and-log only, used by the
    #: overhead decomposition of Table VII).
    decorate: bool = True
    #: Auto-click the UPO instead of (only) decorating it.
    auto_bypass: bool = False
    #: Only analyze packages outside this allowlist (empty = analyze
    #: everything).  Mirrors the paper's "selectively running DARPA on
    #: less-trusted apps" overhead reduction.
    trusted_packages: tuple = ()
    #: Simulation accelerator: skip rasterizing screenshots (detectors
    #: that never read pixels, e.g. ground-truth oracles in the ct
    #: sweeps).  All perf accounting is unaffected.
    stub_screenshots: bool = False
    #: Entry capacity of the screen-fingerprint detection cache
    #: (:mod:`repro.core.screencache`); 0 disables caching.  The cache
    #: is also bypassed under ``stub_screenshots`` — stub frames carry
    #: no pixels to fingerprint.
    screen_cache_size: int = 64
    style: DecorationStyle = field(default_factory=DecorationStyle)

    def __post_init__(self) -> None:
        if self.ct_ms < 0:
            raise ValueError("ct must be non-negative")
        if not 0.0 < self.conf_threshold < 1.0:
            raise ValueError("confidence threshold must be in (0, 1)")
        if self.screen_cache_size < 0:
            raise ValueError("screen cache size must be non-negative")
