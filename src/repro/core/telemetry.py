"""Fleet telemetry: mergeable quantile sketches, SLOs, exporters.

PR 3's observability layer records *per-session* spans and metrics;
this module is the layer on top that a fleet deployment actually
watches — tail latency, health objectives, and alerting — built so
that every number is **deterministic and exactly mergeable**:

- :class:`QuantileSketch` is a DDSketch-style fixed log-bucket sketch.
  Bucket indices are pure functions of the value, counts are integers,
  and the running sum is kept in integer microseconds, so ``merge`` is
  exactly associative and commutative: fleet-wide p50/p95/p99 are
  byte-identical for any shard count or merge order.  Buckets carry
  *exemplars* — the (session, span_id) of one observation — linking a
  hot tail bucket back to the span dump that produced it;
- :class:`SessionTelemetry` derives one session's latency sketches
  (reaction / debounce / screenshot / inference) and health counters
  purely from its exported spans + metrics snapshot.  Reaction time is
  the modelled end-to-end figure the paper argues about: wall time from
  the last UI event (debounce start) to the analysis verdict, plus the
  cost-model CPU attributed to the analysis subtree;
- :class:`FleetTelemetry` merges session telemetries (or shard-level
  part snapshots) and exports Prometheus text exposition and a
  versioned JSON snapshot;
- :class:`SloEngine` evaluates declarative :class:`SloSpec` objectives
  ("p95 reaction <= ct + inference budget", "decoration success >=
  99.9%", "fallback share <= 1%", ...) over sliding session windows
  with multi-window burn-rate alerting.  Alerts are plain, reproducible
  records: the same seeded fleet produces the same alert list whether
  it ran sequentially or sharded.

Nothing here touches the serving path: telemetry is derived after the
fact from artifacts tracing already produces, so runs with telemetry
disabled are bit-identical to runs without this module loaded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.android.device import DeviceProfile
from repro.core.observability import op_cpu_ms

#: Default relative accuracy of the log buckets (DDSketch alpha).
DEFAULT_ALPHA = 0.01

#: Sketch names, one per monitored latency stage.
REACTION_SKETCH = "darpa.latency.reaction_ms"
DEBOUNCE_SKETCH = "darpa.latency.debounce_ms"
SCREENSHOT_SKETCH = "darpa.latency.screenshot_ms"
INFERENCE_SKETCH = "darpa.latency.inference_ms"
STAGE_SKETCHES: Tuple[str, ...] = (
    REACTION_SKETCH, DEBOUNCE_SKETCH, SCREENSHOT_SKETCH, INFERENCE_SKETCH)

#: Slack on top of ``ct + screenshot + inference`` that the reaction
#: SLO tolerates: cache probes, decoration drawing, a benign retry.
REACTION_SLACK_MS = 25.0

#: Snapshot schema version (bumped on any incompatible field change).
TELEMETRY_VERSION = 1


def _exemplar_key(exemplar: Mapping[str, object]) -> Tuple[int, int]:
    return (int(exemplar.get("session", 0)), int(exemplar.get("span_id", 0)))


class QuantileSketch:
    """A deterministic, exactly-mergeable log-bucket quantile sketch.

    Bucket ``i`` covers ``(gamma**(i-1), gamma**i]`` with
    ``gamma = (1 + alpha) / (1 - alpha)``; zeros get their own count.
    All mutable state is integral (counts, and the value sum in
    microseconds), so merging never re-associates float additions —
    ``merge`` is associative, commutative, and idempotent on empty
    sketches, and two snapshots built through different merge trees are
    byte-identical.

    Each non-empty bucket optionally keeps one *exemplar* (a dict with
    ``session``/``span_id``/... fields); merges keep the exemplar with
    the smallest ``(session, span_id)``, which is order-invariant.
    """

    __slots__ = ("alpha", "_gamma", "_log_gamma", "zero_count", "counts",
                 "count", "sum_micros", "min", "max", "exemplars")

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = float(alpha)
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self._gamma)
        self.zero_count = 0
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.sum_micros = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.exemplars: Dict[int, Dict[str, object]] = {}

    # -- recording -------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """The bucket covering a strictly positive value."""
        if value <= 0.0:
            raise ValueError("bucket_index needs a positive value")
        return int(math.ceil(math.log(value) / self._log_gamma))

    def observe(self, value: float,
                exemplar: Optional[Dict[str, object]] = None) -> None:
        v = float(value)
        if v < 0.0:
            raise ValueError("latencies cannot be negative")
        self.count += 1
        self.sum_micros += int(round(v * 1000.0))
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        if v == 0.0:
            self.zero_count += 1
            return
        idx = self.bucket_index(v)
        self.counts[idx] = self.counts.get(idx, 0) + 1
        if exemplar is not None:
            kept = self.exemplars.get(idx)
            if kept is None or _exemplar_key(exemplar) < _exemplar_key(kept):
                self.exemplars[idx] = dict(exemplar)

    # -- queries ---------------------------------------------------------

    @property
    def sum(self) -> float:
        return self.sum_micros / 1000.0

    def bucket_value(self, index: int) -> float:
        """Deterministic representative value of a bucket (its midpoint
        under the relative-error guarantee)."""
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """The q-quantile estimate (within ``alpha`` relative error)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, int(math.ceil(q * self.count)))
        if rank <= self.zero_count:
            return 0.0
        seen = self.zero_count
        for idx in sorted(self.counts):
            seen += self.counts[idx]
            if seen >= rank:
                return self.bucket_value(idx)
        return self.bucket_value(max(self.counts))

    def count_le(self, threshold: float) -> int:
        """Observations at or below ``threshold`` (bucket-granular, so
        the answer is identical however the sketch was merged)."""
        if threshold < 0.0:
            return 0
        total = self.zero_count
        if threshold > 0.0:
            limit = self.bucket_index(threshold)
            total += sum(n for idx, n in self.counts.items() if idx <= limit)
        return total

    def hottest_exemplar(self) -> Optional[Dict[str, object]]:
        """The exemplar of the highest occupied bucket, if any."""
        for idx in sorted(self.exemplars, reverse=True):
            return dict(self.exemplars[idx])
        return None

    # -- merging ---------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (in place); returns self."""
        if other.alpha != self.alpha:
            raise ValueError("cannot merge sketches with different alpha")
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum_micros += other.sum_micros
        for idx, n in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + n
        for idx, exemplar in other.exemplars.items():
            kept = self.exemplars.get(idx)
            if kept is None or _exemplar_key(exemplar) < _exemplar_key(kept):
                self.exemplars[idx] = dict(exemplar)
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min,
                                                              other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max,
                                                              other.max)
        return self

    # -- (de)serialization ----------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "alpha": self.alpha,
            "zero_count": self.zero_count,
            "count": self.count,
            "sum_micros": self.sum_micros,
            "min": self.min,
            "max": self.max,
            "buckets": {str(idx): self.counts[idx]
                        for idx in sorted(self.counts)},
            "exemplars": {str(idx): self.exemplars[idx]
                          for idx in sorted(self.exemplars)},
        }

    @classmethod
    def from_snapshot(cls, snap: Mapping[str, object]) -> "QuantileSketch":
        sketch = cls(alpha=float(snap["alpha"]))  # type: ignore[arg-type]
        sketch.zero_count = int(snap["zero_count"])  # type: ignore[arg-type]
        sketch.count = int(snap["count"])  # type: ignore[arg-type]
        sketch.sum_micros = int(snap["sum_micros"])  # type: ignore[arg-type]
        sketch.min = None if snap["min"] is None else float(snap["min"])  # type: ignore[arg-type]
        sketch.max = None if snap["max"] is None else float(snap["max"])  # type: ignore[arg-type]
        sketch.counts = {int(k): int(v)
                         for k, v in snap["buckets"].items()}  # type: ignore[union-attr]
        sketch.exemplars = {int(k): dict(v)
                            for k, v in snap["exemplars"].items()}  # type: ignore[union-attr]
        return sketch


# ---------------------------------------------------------------------------
# Session-level telemetry (derived from span dumps)
# ---------------------------------------------------------------------------

def _span_cpu(span: Mapping[str, object], costs: Mapping[str, float]) -> float:
    return sum(int(n) * costs[op]
               for op, n in span.get("ops", {}).items())  # type: ignore[union-attr]


def sketches_from_spans(
    spans: Sequence[Mapping[str, object]],
    profile: Optional[DeviceProfile] = None,
    session: int = 0,
    alpha: float = DEFAULT_ALPHA,
) -> Dict[str, QuantileSketch]:
    """Per-stage latency sketches of one session's span dump.

    - ``debounce``: wall duration of each settle window (= ct);
    - ``screenshot`` / ``inference``: cost-model CPU attributed to each
      successful capture / CNN forward;
    - ``reaction``: for each analysis that produced a verdict
      (``outcome == "ok"``), wall time since the settle window opened
      (the last UI event — so backoff retries are included) plus the
      attributed CPU of the whole analyze subtree.

    Exemplars carry ``(session, span_id, trace_id)`` so a hot bucket
    points straight back into the span JSONL.
    """
    profile = profile or DeviceProfile()
    costs = op_cpu_ms(profile)
    sketches = {name: QuantileSketch(alpha=alpha) for name in STAGE_SKETCHES}

    children: Dict[int, List[Mapping[str, object]]] = {}
    for span in spans:
        parent = span["parent_id"]
        if parent is not None:
            children.setdefault(int(parent), []).append(span)  # type: ignore[arg-type]

    def subtree_cpu(span: Mapping[str, object]) -> float:
        total = _span_cpu(span, costs)
        stack = [int(span["span_id"])]  # type: ignore[arg-type]
        while stack:
            for child in children.get(stack.pop(), []):
                total += _span_cpu(child, costs)
                stack.append(int(child["span_id"]))  # type: ignore[arg-type]
        return total

    def exemplar(span: Mapping[str, object]) -> Dict[str, object]:
        return {"session": session, "span_id": int(span["span_id"]),  # type: ignore[arg-type]
                "trace_id": str(span["trace_id"])}

    pending_debounce: Optional[Mapping[str, object]] = None
    for span in spans:  # finish order: children close before parents
        name = span["name"]
        if name == "debounce":
            sketches[DEBOUNCE_SKETCH].observe(
                float(span["end_ms"]) - float(span["start_ms"]),  # type: ignore[arg-type]
                exemplar=exemplar(span))
            pending_debounce = span
        elif name == "screenshot" and span.get("ops"):
            sketches[SCREENSHOT_SKETCH].observe(_span_cpu(span, costs),
                                                exemplar=exemplar(span))
        elif name == "inference" and span.get("ops"):
            sketches[INFERENCE_SKETCH].observe(_span_cpu(span, costs),
                                               exemplar=exemplar(span))
        elif (name == "analyze"
              and span.get("attributes", {}).get("outcome") == "ok"):  # type: ignore[union-attr]
            start = (float(pending_debounce["start_ms"])  # type: ignore[arg-type]
                     if pending_debounce is not None
                     else float(span["start_ms"]))  # type: ignore[arg-type]
            reaction = (float(span["end_ms"]) - start) + subtree_cpu(span)  # type: ignore[arg-type]
            sketches[REACTION_SKETCH].observe(reaction,
                                              exemplar=exemplar(span))
    return sketches


#: Health counters a session contributes to fleet telemetry, in the
#: historic short names (see ``repro.core.pipeline.STAT_COUNTERS``).
TELEMETRY_COUNTERS: Tuple[str, ...] = (
    "screens_analyzed",
    "decorations_drawn",
    "overlay_rejections",
    "fallback_detections",
    "screenshot_failures",
    "retries",
    "detector_failures",
    "breaker_opens",
    "deadline_skips",
    # Breaker transition counters, read from the ``darpa.resilience.*``
    # namespace (see ``repro.core.pipeline.RESILIENCE_COUNTERS``).
    "breaker_opened",
    "breaker_half_opened",
    "breaker_closed",
    "probe_successes",
    "probe_failures",
)

_PIPELINE_PREFIX = "darpa.pipeline."
_RESILIENCE_PREFIX = "darpa.resilience."

#: Telemetry counters that live under ``darpa.resilience.`` instead of
#: ``darpa.pipeline.`` in registry snapshots and Prometheus exports.
RESILIENCE_TELEMETRY_COUNTERS: frozenset = frozenset((
    "breaker_opened", "breaker_half_opened", "breaker_closed",
    "probe_successes", "probe_failures"))


def _counter_namespace(name: str) -> str:
    return (_RESILIENCE_PREFIX if name in RESILIENCE_TELEMETRY_COUNTERS
            else _PIPELINE_PREFIX)


@dataclass
class SessionTelemetry:
    """One session's contribution to fleet telemetry."""

    session: int
    sketches: Dict[str, QuantileSketch]
    counters: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_result(cls, session: int, result,
                    profile: Optional[DeviceProfile] = None,
                    alpha: float = DEFAULT_ALPHA) -> "SessionTelemetry":
        """Derive telemetry from a traced :class:`SessionResult`."""
        if result.spans is None:
            raise ValueError(
                "telemetry needs a traced session (run with trace=True)")
        counters: Dict[str, int] = {name: 0 for name in TELEMETRY_COUNTERS}
        for name in TELEMETRY_COUNTERS:
            value = result.metrics.get("counters", {}).get(
                _counter_namespace(name) + name)
            if value is not None:
                counters[name] = int(value)
        return cls(session=session,
                   sketches=sketches_from_spans(result.spans, profile=profile,
                                                session=session, alpha=alpha),
                   counters=counters)


def session_telemetries(
    results: Sequence,
    profile: Optional[DeviceProfile] = None,
    start_index: int = 0,
    alpha: float = DEFAULT_ALPHA,
) -> List[SessionTelemetry]:
    """Per-session telemetry for a traced fleet, in fleet order."""
    return [SessionTelemetry.from_result(start_index + i, r, profile=profile,
                                         alpha=alpha)
            for i, r in enumerate(results)]


# ---------------------------------------------------------------------------
# Fleet-level telemetry (mergeable across shards)
# ---------------------------------------------------------------------------

class FleetTelemetry:
    """Merged sketches + counters for a whole fleet (or one shard).

    ``merge`` has the same algebra as the sketches it contains, so
    shard-level telemetries fold into the fleet-level one in any order
    with byte-identical snapshots.
    """

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        self.alpha = float(alpha)
        self.sessions = 0
        self.sketches: Dict[str, QuantileSketch] = {
            name: QuantileSketch(alpha=alpha) for name in STAGE_SKETCHES}
        self.counters: Dict[str, int] = {
            name: 0 for name in TELEMETRY_COUNTERS}

    def observe_session(self, telemetry: SessionTelemetry) -> None:
        self.sessions += 1
        for name, sketch in telemetry.sketches.items():
            if name not in self.sketches:
                self.sketches[name] = QuantileSketch(alpha=self.alpha)
            self.sketches[name].merge(sketch)
        for name, value in telemetry.counters.items():
            self.counters[name] = self.counters.get(name, 0) + int(value)

    @classmethod
    def from_sessions(cls, telemetries: Iterable[SessionTelemetry],
                      alpha: float = DEFAULT_ALPHA) -> "FleetTelemetry":
        fleet = cls(alpha=alpha)
        for telemetry in telemetries:
            fleet.observe_session(telemetry)
        return fleet

    @classmethod
    def from_results(cls, results: Sequence,
                     profile: Optional[DeviceProfile] = None,
                     start_index: int = 0,
                     alpha: float = DEFAULT_ALPHA) -> "FleetTelemetry":
        return cls.from_sessions(
            session_telemetries(results, profile=profile,
                                start_index=start_index, alpha=alpha),
            alpha=alpha)

    def merge(self, other: "FleetTelemetry") -> "FleetTelemetry":
        if other.alpha != self.alpha:
            raise ValueError("cannot merge telemetry with different alpha")
        self.sessions += other.sessions
        for name, sketch in other.sketches.items():
            if name not in self.sketches:
                self.sketches[name] = QuantileSketch(alpha=self.alpha)
            self.sketches[name].merge(sketch)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + int(value)
        return self

    def quantiles(self, qs: Sequence[float] = (0.5, 0.95, 0.99)
                  ) -> Dict[str, Dict[str, float]]:
        """p50/p95/p99 (by default) per sketch, for reports."""
        return {
            name: {f"p{round(q * 100)}": sketch.quantile(q) for q in qs}
            for name, sketch in sorted(self.sketches.items())
        }

    # -- (de)serialization ----------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Versioned JSON-ready snapshot (the ``telemetry.json`` schema)."""
        return {
            "version": TELEMETRY_VERSION,
            "alpha": self.alpha,
            "sessions": self.sessions,
            "counters": {name: self.counters[name]
                         for name in sorted(self.counters)},
            "sketches": {name: self.sketches[name].snapshot()
                         for name in sorted(self.sketches)},
        }

    @classmethod
    def from_snapshot(cls, snap: Mapping[str, object]) -> "FleetTelemetry":
        version = int(snap.get("version", 0))  # type: ignore[arg-type]
        if version != TELEMETRY_VERSION:
            raise ValueError(
                f"unsupported telemetry snapshot version {version}")
        fleet = cls(alpha=float(snap["alpha"]))  # type: ignore[arg-type]
        fleet.sessions = int(snap["sessions"])  # type: ignore[arg-type]
        fleet.counters = {str(k): int(v)
                          for k, v in snap["counters"].items()}  # type: ignore[union-attr]
        fleet.sketches = {
            str(name): QuantileSketch.from_snapshot(s)
            for name, s in snap["sketches"].items()}  # type: ignore[union-attr]
        return fleet

    # -- Prometheus exposition ------------------------------------------

    def prometheus_lines(self) -> List[str]:
        """Text exposition: sketches as summaries, counters as totals."""
        lines: List[str] = []
        for name in sorted(self.sketches):
            sketch = self.sketches[name]
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} summary")
            for q in (0.5, 0.95, 0.99):
                lines.append(
                    f'{metric}{{quantile="{q}"}} {_prom_float(sketch.quantile(q))}')
            lines.append(f"{metric}_sum {_prom_float(sketch.sum)}")
            lines.append(f"{metric}_count {sketch.count}")
        for name in sorted(self.counters):
            metric = _prom_name(_counter_namespace(name) + name) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {self.counters[name]}")
        lines.append("# TYPE darpa_fleet_sessions gauge")
        lines.append(f"darpa_fleet_sessions {self.sessions}")
        return lines

    def to_prometheus(self) -> str:
        return "\n".join(self.prometheus_lines()) + "\n"


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_float(value: float) -> str:
    return repr(float(value))


# ---------------------------------------------------------------------------
# Registry snapshot helpers (metrics.jsonl -> one merged exposition)
# ---------------------------------------------------------------------------

def merge_registry_snapshots(
    snapshots: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Fold per-session :class:`MetricsRegistry` snapshots into one.

    Counters and histogram tallies add; gauges are last-write-wins in
    the given order (feed snapshots in global session order).  Histogram
    ``sum`` totals are folded with :func:`math.fsum`, which is exactly
    rounded and therefore permutation-invariant — shard merge order
    cannot skew the merged float by even an ulp.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    hist_sums: Dict[str, List[float]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():  # type: ignore[union-attr]
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in snap.get("gauges", {}).items():  # type: ignore[union-attr]
            gauges[name] = float(value)
        for name, hist in snap.get("histograms", {}).items():  # type: ignore[union-attr]
            hist_sums.setdefault(name, []).append(float(hist["sum"]))
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "buckets": list(hist["buckets"]),
                    "bucket_counts": list(hist["bucket_counts"]),
                    "count": int(hist["count"]),
                    "sum": 0.0,
                }
                continue
            if list(hist["buckets"]) != merged["buckets"]:
                raise ValueError(
                    f"histogram {name!r} has mismatched buckets across "
                    "snapshots")
            merged["bucket_counts"] = [
                a + b for a, b in zip(merged["bucket_counts"],
                                      hist["bucket_counts"])]
            merged["count"] = int(merged["count"]) + int(hist["count"])
    for name, values in hist_sums.items():
        histograms[name]["sum"] = math.fsum(values)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def registry_prometheus_lines(
        snapshot: Mapping[str, object]) -> List[str]:
    """Prometheus text exposition of a registry snapshot."""
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):  # type: ignore[union-attr]
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]}")  # type: ignore[index]
    for name in sorted(snapshot.get("gauges", {})):  # type: ignore[union-attr]
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_float(snapshot['gauges'][name])}")  # type: ignore[index]
    for name in sorted(snapshot.get("histograms", {})):  # type: ignore[union-attr]
        hist = snapshot["histograms"][name]  # type: ignore[index]
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["bucket_counts"]):
            cumulative += int(count)
            lines.append(
                f'{metric}_bucket{{le="{_prom_float(bound)}"}} {cumulative}')
        cumulative += int(hist["bucket_counts"][-1])
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_prom_float(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")
    return lines


# ---------------------------------------------------------------------------
# SLOs and burn-rate alerting
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BurnPolicy:
    """One multi-window burn-rate alerting rule.

    Fires when the error-budget burn rate over BOTH the fast and the
    slow sliding window (measured in sessions) reaches
    ``burn_threshold``.  The classic pairing: a tight window with a
    high threshold pages on fast burn; a wide window with a low
    threshold tickets on slow, sustained burn.
    """

    severity: str
    fast_window: int
    slow_window: int
    burn_threshold: float


DEFAULT_POLICIES: Tuple[BurnPolicy, ...] = (
    BurnPolicy(severity="page", fast_window=5, slow_window=15,
               burn_threshold=8.0),
    BurnPolicy(severity="ticket", fast_window=15, slow_window=30,
               burn_threshold=2.0),
)


@dataclass(frozen=True)
class SloSpec:
    """A declarative objective over fleet telemetry.

    ``kind == "quantile"``: the good fraction is the share of ``sketch``
    observations at or below ``threshold_ms`` (so ``objective=0.95``
    states "p95 <= threshold").  ``kind == "ratio"``: the good fraction
    is ``1 - bad/total`` where ``bad`` is one counter and ``total`` the
    sum of ``total_counters``.
    """

    name: str
    objective: float
    kind: str
    sketch: str = ""
    threshold_ms: float = 0.0
    bad_counter: str = ""
    total_counters: Tuple[str, ...] = ()
    policies: Tuple[BurnPolicy, ...] = DEFAULT_POLICIES

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.kind not in ("quantile", "ratio"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")

    def tally(self, telemetry: SessionTelemetry) -> Tuple[int, int]:
        """(bad, total) events this session contributes."""
        if self.kind == "quantile":
            sketch = telemetry.sketches.get(self.sketch)
            if sketch is None or sketch.count == 0:
                return 0, 0
            return sketch.count - sketch.count_le(self.threshold_ms), \
                sketch.count
        total = sum(telemetry.counters.get(name, 0)
                    for name in self.total_counters)
        bad = telemetry.counters.get(self.bad_counter, 0)
        return bad, total


def default_slos(ct_ms: float = 200.0,
                 profile: Optional[DeviceProfile] = None,
                 ) -> Tuple[SloSpec, ...]:
    """The stock objectives of a DARPA fleet at cut-off ``ct_ms``.

    The reaction budget is the paper's deployability argument in SLO
    form: a settled screen must be analyzed within the debounce cut-off
    plus the screenshot + inference cost model (with a small slack for
    cache probes / decoration drawing).
    """
    profile = profile or DeviceProfile()
    reaction_budget_ms = (ct_ms + profile.screenshot_cpu_ms
                          + profile.inference_cpu_ms + REACTION_SLACK_MS)
    return (
        SloSpec(name="reaction_p95", objective=0.95, kind="quantile",
                sketch=REACTION_SKETCH, threshold_ms=reaction_budget_ms),
        SloSpec(name="decoration_success", objective=0.999, kind="ratio",
                bad_counter="overlay_rejections",
                total_counters=("decorations_drawn", "overlay_rejections")),
        SloSpec(name="fallback_share", objective=0.99, kind="ratio",
                bad_counter="fallback_detections",
                total_counters=("screens_analyzed",)),
        SloSpec(name="capture_success", objective=0.95, kind="ratio",
                bad_counter="screenshot_failures",
                total_counters=("screens_analyzed", "screenshot_failures")),
        SloSpec(name="watchdog_aborts", objective=0.99, kind="ratio",
                bad_counter="deadline_skips",
                total_counters=("screens_analyzed", "deadline_skips")),
        # Breaker flap health: failed half-open probes mean the detector
        # keeps getting quarantined and re-quarantined.  Normalized per
        # analyzed screen, so the burn-rate windows read "what share of
        # recent traffic ran during a failed recovery attempt".
        SloSpec(name="breaker_recovery", objective=0.99, kind="ratio",
                bad_counter="probe_failures",
                total_counters=("screens_analyzed",)),
    )


@dataclass(frozen=True)
class Alert:
    """One deterministic burn-rate alert record."""

    slo: str
    severity: str
    session_index: int
    sim_time_ms: float
    fast_burn: float
    slow_burn: float
    fast_window: int
    slow_window: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "slo": self.slo,
            "severity": self.severity,
            "session_index": self.session_index,
            "sim_time_ms": self.sim_time_ms,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
        }


@dataclass
class SloResult:
    """Evaluation of one SLO over a whole fleet."""

    spec: SloSpec
    bad: int
    total: int
    alerts: List[Alert]

    @property
    def compliance(self) -> float:
        return 1.0 if self.total == 0 else 1.0 - self.bad / self.total

    @property
    def burn_rate(self) -> float:
        budget = 1.0 - self.spec.objective
        if self.total == 0:
            return 0.0
        return (self.bad / self.total) / budget

    @property
    def met(self) -> bool:
        return self.compliance >= self.spec.objective

    def to_dict(self) -> Dict[str, object]:
        return {
            "slo": self.spec.name,
            "objective": self.spec.objective,
            "bad": self.bad,
            "total": self.total,
            "compliance": self.compliance,
            "burn_rate": self.burn_rate,
            "met": self.met,
            "alerts": [a.to_dict() for a in self.alerts],
        }


@dataclass
class SloReport:
    """All SLO results for one fleet run."""

    results: List[SloResult]

    @property
    def alerts(self) -> List[Alert]:
        out = [a for r in self.results for a in r.alerts]
        out.sort(key=lambda a: (a.session_index, a.slo, a.severity))
        return out

    @property
    def all_met(self) -> bool:
        return all(r.met for r in self.results)

    def to_dict(self) -> Dict[str, object]:
        return {"slos": [r.to_dict() for r in self.results],
                "alerts": [a.to_dict() for a in self.alerts],
                "all_met": self.all_met}


class SloEngine:
    """Evaluates SLO specs over a fleet's per-session telemetry series.

    The series is consumed in global session order; every window
    arithmetic is integer counting over that order, so the report (and
    each alert record) is identical for sequential and sharded runs of
    the same seed.  An alert fires on the False->True transition of its
    policy's condition and re-arms once the condition clears.
    """

    def __init__(self, slos: Sequence[SloSpec] = ()):
        self.slos: Tuple[SloSpec, ...] = tuple(slos) or default_slos()

    @staticmethod
    def _window_burn(bad_prefix: List[int], total_prefix: List[int],
                     index: int, window: int, budget: float) -> float:
        lo = max(0, index + 1 - window)
        bad = bad_prefix[index + 1] - bad_prefix[lo]
        total = total_prefix[index + 1] - total_prefix[lo]
        if total == 0:
            return 0.0
        return (bad / total) / budget

    def evaluate(self, series: Sequence[SessionTelemetry],
                 session_ms: float = 60_000.0) -> SloReport:
        results: List[SloResult] = []
        for spec in self.slos:
            tallies = [spec.tally(t) for t in series]
            bad_prefix, total_prefix = [0], [0]
            for bad, total in tallies:
                bad_prefix.append(bad_prefix[-1] + bad)
                total_prefix.append(total_prefix[-1] + total)
            budget = 1.0 - spec.objective
            alerts: List[Alert] = []
            for policy in spec.policies:
                firing = False
                for i in range(len(series)):
                    fast = self._window_burn(bad_prefix, total_prefix, i,
                                             policy.fast_window, budget)
                    slow = self._window_burn(bad_prefix, total_prefix, i,
                                             policy.slow_window, budget)
                    condition = (fast >= policy.burn_threshold
                                 and slow >= policy.burn_threshold)
                    if condition and not firing:
                        alerts.append(Alert(
                            slo=spec.name, severity=policy.severity,
                            session_index=series[i].session,
                            sim_time_ms=(i + 1) * session_ms,
                            fast_burn=fast, slow_burn=slow,
                            fast_window=policy.fast_window,
                            slow_window=policy.slow_window))
                    firing = condition
            alerts.sort(key=lambda a: (a.session_index, a.severity))
            results.append(SloResult(spec=spec, bad=bad_prefix[-1],
                                     total=total_prefix[-1], alerts=alerts))
        return SloReport(results=results)
