"""Observability for the DARPA serving path: tracing, metrics, profiling.

The paper's evaluation is built on *per-stage* timing (Tables VII/VIII
decompose overhead by component; Figure 8 trades debounce settle time
against coverage), but the pipeline historically exposed only coarse
end-of-run counters.  This module adds the missing middle layer — all
of it on the simulated clock, with zero new dependencies and zero
effect on any measured number:

- :class:`Tracer` emits nested :class:`Span`\\ s
  (``session → event → debounce → screenshot → cache_probe →
  inference|fallback → decorate``) carrying attributes such as the
  screen fingerprint, cache hit/miss, retry attempt and breaker state.
  Finished spans land in a bounded in-memory ring buffer and export as
  deterministic JSONL;
- :class:`MetricsRegistry` provides named counters, gauges and
  fixed-bucket latency histograms.  The pipeline's ``DarpaStats`` is a
  thin compatibility view over one of these registries;
- :class:`PlanProfiler` hooks :class:`repro.vision.nn.infer.InferencePlan`
  execution, attributing per-step cost-model charges (MAC-weighted
  shares of the inference CPU budget) to the enclosing span;
- :func:`report_from_spans` rebuilds a :class:`~repro.android.device.PerfReport`
  purely from exported spans.  Because every cost-model charge is
  attributed to exactly one span, the rebuilt report is **bit-identical**
  to the device meter's — which the benchmarks and the differential
  tests assert.

Determinism rules: span ids are sequential per tracer, timestamps come
from the :class:`~repro.android.clock.SimulatedClock`, no RNG is ever
consulted, and JSONL lines are serialized with sorted keys — two runs
of the same seeded session produce byte-identical trace files.
Tracing off (the default) is bit-inert: the ``NULL_TRACER`` singleton
records nothing and the pipeline takes no extra RNG draws or perf
charges either way.
"""

from __future__ import annotations

import json
import math
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Deque,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.android.clock import SimulatedClock
from repro.android.device import DeviceProfile, PerfMeter, PerfOp, PerfReport

# ---------------------------------------------------------------------------
# Metric naming scheme (see DESIGN.md "Observability"):
#
#   darpa.pipeline.<counter>       — the DarpaStats compatibility counters
#   darpa.stage.<stage>.count      — completed spans per stage
#   darpa.stage.<stage>.cpu_ms     — histogram of per-span attributed cost
#   darpa.breaker.state            — gauge: 0 closed / 1 half-open / 2 open
#   darpa.cache.entries            — gauge: live fingerprint-cache entries
# ---------------------------------------------------------------------------

#: Fixed upper bounds (ms) of the per-stage latency histograms.  Chosen
#: around the cost model's scale: probes ~2ms, screenshots ~30ms,
#: inferences ~100ms, retried analyses a few hundred.
STAGE_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)

#: Counter bumped whenever the tracer ring buffer evicts a finished
#: span.  Silent drops would corrupt span-derived totals, so the drop
#: count itself must be observable (and is surfaced by ``repro trace``).
DROPPED_SPANS_COUNTER = "darpa.trace.dropped_spans"

#: Step label :meth:`PlanProfiler.attribute` folds zero-MAC steps (and
#: the floating-point residual of the weighted shares) into, so the
#: per-step costs sum to the attributed total exactly.
OVERHEAD_STEP = "overhead"


def op_cpu_ms(profile: DeviceProfile) -> Dict[str, float]:
    """CPU-ms charged per unit of each billable operation."""
    return {
        PerfOp.EVENT_DELIVERED.value: profile.event_cpu_ms,
        PerfOp.SCREENSHOT.value: profile.screenshot_cpu_ms,
        PerfOp.INFERENCE.value: profile.inference_cpu_ms,
        PerfOp.FALLBACK_INFERENCE.value: profile.fallback_cpu_ms,
        PerfOp.CACHE_PROBE.value: profile.cache_probe_cpu_ms,
        PerfOp.DECORATION.value: profile.decoration_cpu_ms,
        PerfOp.APP_FRAME.value: 0.0,
    }


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class Counter:
    """A monotonic-by-convention named counter.

    ``value`` is settable so the ``DarpaStats`` compatibility view can
    expose counters as plain read/write attributes (``stats.retries += 1``
    keeps working); new code should prefer :meth:`inc`.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """A fixed-bucket histogram (cumulative counts are derivable).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``;
    the final slot counts overflow.  ``sum``/``count`` track totals so
    mean latency needs no bucket arithmetic — and so the property tests
    can assert ``count`` equals the matching stage counter and ``sum``
    equals the span-attributed cost, exactly.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "sum")

    def __init__(self, name: str, buckets: Sequence[float] = STAGE_BUCKETS_MS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be ascending and non-empty")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.sum += v
        for i, bound in enumerate(self.buckets):
            if v <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0


class MetricsRegistry:
    """A named home for counters, gauges and histograms.

    Instruments are created on first touch and live for the registry's
    lifetime; iteration order is creation order, so snapshots of two
    identical runs are byte-identical when serialized with sorted keys.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str,
                  buckets: Sequence[float] = STAGE_BUCKETS_MS) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, buckets)
        elif tuple(float(b) for b in buckets) != inst.buckets:
            raise ValueError(
                f"histogram {name!r} already registered with different buckets")
        return inst

    @property
    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict, JSON-ready dump of every instrument."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {
                n: {"buckets": list(h.buckets),
                    "bucket_counts": list(h.bucket_counts),
                    "count": h.count, "sum": h.sum}
                for n, h in self._histograms.items()
            },
        }

    def reset(self) -> None:
        for c in self._counters.values():
            c.reset()
        for g in self._gauges.values():
            g.reset()
        for h in self._histograms.values():
            h.reset()


# ---------------------------------------------------------------------------
# Spans + Tracer
# ---------------------------------------------------------------------------

@dataclass
class Span:
    """One named, timed region of a traced run.

    ``ops`` holds the cost-model charges attributed while this span was
    the innermost open one (children do NOT roll up into parents, so
    summing ``ops`` across all spans of a trace reproduces the device
    meter's totals exactly once).
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    trace_id: str
    start_ms: float
    end_ms: Optional[float] = None
    attributes: Dict[str, object] = field(default_factory=dict)
    ops: Dict[str, int] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end_ms is not None

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_ms - self.start_ms

    def charge(self, op: PerfOp, n: int) -> None:
        key = op.value
        self.ops[key] = self.ops.get(key, 0) + n

    def cpu_ms(self, profile: DeviceProfile) -> float:
        """Cost-model CPU attributed directly to this span (not children)."""
        costs = op_cpu_ms(profile)
        return sum(n * costs[op] for op, n in self.ops.items())

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "attributes": dict(self.attributes),
            "ops": dict(self.ops),
        }


class NullTracer:
    """The do-nothing tracer: every hook is inert, every export empty.

    The pipeline calls the tracer unconditionally; when tracing is off
    this singleton absorbs the calls without allocating spans, touching
    the registry, or observing the perf meter — which is what keeps the
    disabled mode bit-inert (and nearly free).
    """

    enabled = False
    registry: Optional[MetricsRegistry] = None

    _NULL_SPAN = Span(name="null", span_id=0, parent_id=None,
                      trace_id="null", start_ms=0.0, end_ms=0.0)

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        yield self._NULL_SPAN

    def start_span(self, name: str, **attributes: object) -> Span:
        return self._NULL_SPAN

    def end_span(self, span: Span, **attributes: object) -> None:
        pass

    def emit(self, name: str, start_ms: float, end_ms: float,
             **attributes: object) -> Optional[Span]:
        return None

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def annotate(self, span: Span, **attributes: object) -> None:
        pass

    def attach_registry(self, registry: MetricsRegistry) -> None:
        pass

    def observe_perf(self, meter: PerfMeter) -> None:
        pass

    def export(self) -> List[Dict[str, object]]:
        return []


#: Shared inert tracer — safe because it holds no state.
NULL_TRACER = NullTracer()


class Tracer:
    """Emits nested spans on the simulated clock.

    Finished spans are kept in a ring buffer of ``capacity`` (old spans
    fall off first; counters and histograms keep counting regardless)
    and can be exported as dicts or JSONL.  When a
    :class:`MetricsRegistry` is attached, closing a span bumps
    ``darpa.stage.<name>.count`` and observes the span's attributed
    cost in ``darpa.stage.<name>.cpu_ms``.

    Attach to a device's :class:`~repro.android.device.PerfMeter` with
    :meth:`observe_perf`: every subsequent cost-model charge is
    attributed to the innermost open span (charges with no open span
    accumulate in :attr:`orphan_ops`, which a healthy wiring keeps
    empty), and component residency/reset events are mirrored so
    :func:`report_from_spans` can rebuild the meter's report exactly.
    """

    enabled = True

    def __init__(self, clock: SimulatedClock, trace_id: str = "trace",
                 registry: Optional[MetricsRegistry] = None,
                 capacity: int = 65536):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.clock = clock
        self.trace_id = trace_id
        self.registry = registry
        if registry is not None:
            registry.counter(DROPPED_SPANS_COUNTER)
        self.capacity = capacity
        self.finished: Deque[Span] = deque(maxlen=capacity)
        #: Finished spans the ring buffer evicted (observability of the
        #: observer: silent truncation would corrupt span-derived totals).
        self.dropped = 0
        self.orphan_ops: Dict[str, int] = {}
        self.components: List[str] = []
        self._stack: List[Span] = []
        self._seq = 0
        self._profile: Optional[DeviceProfile] = None

    # -- span lifecycle -------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @property
    def open_spans(self) -> List[Span]:
        return list(self._stack)

    def start_span(self, name: str, **attributes: object) -> Span:
        self._seq += 1
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=self._seq,
            parent_id=parent.span_id if parent is not None else None,
            trace_id=self.trace_id,
            start_ms=self.clock.now_ms,
            attributes=dict(attributes),
        )
        self._stack.append(span)
        return span

    def end_span(self, span: Span, **attributes: object) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ValueError(
                f"span {span.name!r} is not the innermost open span")
        self._stack.pop()
        span.attributes.update(attributes)
        span.end_ms = self.clock.now_ms
        self._finish(span)

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        span = self.start_span(name, **attributes)
        try:
            yield span
        finally:
            self.end_span(span)

    def emit(self, name: str, start_ms: float, end_ms: float,
             **attributes: object) -> Span:
        """Record an already-elapsed region as a closed span.

        Used for stages whose start is only known in hindsight — e.g.
        the debounce settle window, which begins at the last UI event
        and ends ``ct`` ms later when the quiescence timer fires.
        """
        if end_ms < start_ms:
            raise ValueError("span cannot end before it starts")
        self._seq += 1
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=self._seq,
            parent_id=parent.span_id if parent is not None else None,
            trace_id=self.trace_id,
            start_ms=start_ms,
            end_ms=end_ms,
            attributes=dict(attributes),
        )
        self._finish(span)
        return span

    def set_attribute(self, key: str, value: object) -> None:
        """Attach ``key=value`` to the innermost open span."""
        if self._stack:
            self._stack[-1].attributes[key] = value

    def annotate(self, span: Span, **attributes: object) -> None:
        """Attach attributes to a specific span (open or closed).

        Call sites use this instead of mutating the span directly so
        the same code is inert under :data:`NULL_TRACER` (whose spans
        are a shared singleton that must never accumulate state).
        """
        span.attributes.update(attributes)

    def attach_registry(self, registry: MetricsRegistry) -> None:
        """Adopt ``registry`` and pre-create the drop counter, so a
        healthy (drop-free) trace still exports the counter at zero."""
        self.registry = registry
        registry.counter(DROPPED_SPANS_COUNTER)

    def _finish(self, span: Span) -> None:
        if len(self.finished) == self.capacity:
            self.dropped += 1
            if self.registry is not None:
                self.registry.counter(DROPPED_SPANS_COUNTER).inc()
        self.finished.append(span)
        if self.registry is not None:
            self.registry.counter(f"darpa.stage.{span.name}.count").inc()
            cpu = (span.cpu_ms(self._profile)
                   if self._profile is not None else 0.0)
            self.registry.histogram(
                f"darpa.stage.{span.name}.cpu_ms").observe(cpu)

    # -- perf attribution -----------------------------------------------

    def observe_perf(self, meter: PerfMeter) -> None:
        """Mirror every cost-model charge of ``meter`` into spans."""
        self._profile = meter.profile
        meter.set_observers(
            on_record=self._on_perf_record,
            on_component=self._on_perf_component,
            on_reset=self._on_perf_reset,
        )

    def _on_perf_record(self, op: PerfOp, n: int) -> None:
        if self._stack:
            self._stack[-1].charge(op, n)
        else:
            self.orphan_ops[op.value] = self.orphan_ops.get(op.value, 0) + n

    def _on_perf_component(self, name: str) -> None:
        if name not in self.components:
            self.components.append(name)

    def _on_perf_reset(self) -> None:
        # The meter forgot everything; drop our attributions with it so
        # span-derived totals keep matching the meter bit-for-bit.
        for span in self.finished:
            span.ops.clear()
        for span in self._stack:
            span.ops.clear()
        self.orphan_ops.clear()
        self.components.clear()

    # -- export ----------------------------------------------------------

    def export(self) -> List[Dict[str, object]]:
        """Finished spans, in finish order, as JSON-ready dicts.

        The session root span (if any is still open when callers export
        mid-run) is excluded — export after closing every span.
        """
        return [span.to_dict() for span in self.finished]

    def jsonl_lines(self) -> Iterator[str]:
        for span in self.finished:
            yield json.dumps(span.to_dict(), sort_keys=True)

    def write_jsonl(self, fp: IO[str]) -> int:
        """Append one line per finished span; returns the line count."""
        n = 0
        for line in self.jsonl_lines():
            fp.write(line + "\n")
            n += 1
        return n


# ---------------------------------------------------------------------------
# Plan profiling
# ---------------------------------------------------------------------------

class PlanProfiler:
    """Per-step profile of one :class:`InferencePlan` forward.

    The plan calls :meth:`start_forward` once per ``forward`` and
    :meth:`record_step` per executed step with the step's estimated
    multiply-accumulate count.  :meth:`attribute` then splits a total
    cost-model charge (the flat ``inference_cpu_ms``) across the steps
    proportionally to their MACs, giving the enclosing span a per-op
    cost breakdown without the cost model itself changing.
    """

    def __init__(self) -> None:
        self.steps: List[Tuple[str, int]] = []
        self.forwards = 0

    def start_forward(self, batch: int) -> None:
        self.forwards += 1
        self.steps = []

    def record_step(self, label: str, macs: int) -> None:
        self.steps.append((label, int(macs)))

    @property
    def total_macs(self) -> int:
        return sum(m for _, m in self.steps)

    def attribute(self, total_cpu_ms: float) -> List[Dict[str, object]]:
        """MAC-weighted shares of ``total_cpu_ms`` per executed step.

        Steps with zero MACs (reshape/concat/copy plumbing) carry no
        weight of their own; they fold into one trailing ``overhead``
        entry that also absorbs the floating-point residual of the
        weighted shares — so the returned costs sum to ``total_cpu_ms``
        **exactly** (``math.fsum`` of the shares plus the residual is
        the total by construction), and no executed step silently
        vanishes from the attribution.
        """
        total = self.total_macs
        out: List[Dict[str, object]] = []
        zero_mac_steps = 0
        for label, macs in self.steps:
            if macs == 0:
                zero_mac_steps += 1
                continue
            out.append({"step": label, "macs": macs,
                        "cpu_ms": total_cpu_ms * (macs / total)})
        residual = total_cpu_ms - math.fsum(
            float(entry["cpu_ms"]) for entry in out)  # type: ignore[arg-type]
        if zero_mac_steps or residual != 0.0:
            out.append({"step": OVERHEAD_STEP, "macs": 0,
                        "cpu_ms": residual})
        return out


# ---------------------------------------------------------------------------
# Span-derived reporting
# ---------------------------------------------------------------------------

def ops_from_spans(spans: Iterable[Dict[str, object]]) -> Dict[str, int]:
    """Total cost-model charges across a span dump (each charge counted
    exactly once, because ops never roll up into parents)."""
    totals: Dict[str, int] = {}
    for span in spans:
        for op, n in span.get("ops", {}).items():  # type: ignore[union-attr]
            totals[op] = totals.get(op, 0) + int(n)
    return totals


def stage_cpu_ms(spans: Iterable[Dict[str, object]],
                 profile: Optional[DeviceProfile] = None) -> Dict[str, float]:
    """Per-stage attributed cost-model CPU, keyed by span name.

    On a **truncated** dump (ring-buffer evictions mid-session) this is
    a partial total: evicted spans take their attributed ops with them,
    so each stage's CPU covers only the surviving spans — it never
    over-counts, and the tracer's ``dropped`` counter says how many
    spans are missing.  ``tests/core`` pins this behavior.
    """
    profile = profile or DeviceProfile()
    costs = op_cpu_ms(profile)
    out: Dict[str, float] = {}
    for span in spans:
        cpu = sum(int(n) * costs[op]
                  for op, n in span.get("ops", {}).items())  # type: ignore[union-attr]
        name = str(span["name"])
        out[name] = out.get(name, 0.0) + cpu
    return out


def session_root(spans: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """The (unique) parentless ``session`` span of a session dump."""
    roots = [s for s in spans
             if s["name"] == "session" and s["parent_id"] is None]
    if len(roots) != 1:
        raise ValueError(f"expected exactly one session root, got {len(roots)}")
    return roots[0]


def report_from_spans(
    spans: Sequence[Dict[str, object]],
    duration_ms: Optional[float] = None,
    profile: Optional[DeviceProfile] = None,
) -> PerfReport:
    """Rebuild a :class:`PerfReport` purely from an exported span dump.

    Replays the span-attributed op totals and the root span's component
    residency through a fresh :class:`PerfMeter`, so the arithmetic is
    the meter's own — when the attribution is complete (no dropped
    spans, no orphan charges) the result is bit-identical to the report
    the device produced during the run.  ``duration_ms`` defaults to
    the session root span's duration.

    On a **truncated** dump the rebuild is a defined partial report,
    not an error: evicted spans' ops are simply absent, so every cost
    figure is ``<=`` the device meter's (never above).  The session
    root span always survives a mid-session truncation — it closes
    last, and the ring evicts oldest-first — so the duration (and the
    baseline share of the report) stays exact; only op-derived overhead
    undercounts.  A dump truncated so hard the root itself was evicted
    raises ``ValueError`` from :func:`session_root`.  ``tests/core``
    pins this contract.
    """
    root = session_root(spans)
    if duration_ms is None:
        if root["end_ms"] is None:
            raise ValueError("session root span was never closed")
        duration_ms = float(root["end_ms"]) - float(root["start_ms"])  # type: ignore[arg-type]
    meter = PerfMeter(profile or DeviceProfile())
    for name in root.get("attributes", {}).get("components", ()):  # type: ignore[union-attr]
        meter.enable_component(str(name))
    for op, n in ops_from_spans(spans).items():
        meter.record(PerfOp(op), n)
    return meter.report(duration_ms)
