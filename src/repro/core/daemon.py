"""``DarpaDaemon`` — a deterministic async serving daemon for fleets.

Every layer so far serves ONE session at a time: ``DarpaService`` is a
per-session callback object, and the fleet runners replay sessions
back-to-back (or in shard processes).  This module refactors that into
the long-running service the ROADMAP's "async serving daemon" arc asks
for: a discrete-event scheduler on the simulated clock
(:class:`repro.android.clock.SimulatedClock`) multiplexing many device
sessions through shared batched-inference workers, with the full
robustness surface an always-on fleet needs:

- **admission control** — a :class:`TokenBucket` (integer micro-token
  state, no float accumulation) gates arrivals; rejected sessions get
  typed :class:`RejectionRecord` entries (``rate_limited``,
  ``queue_full``, ``drained``) instead of silent drops;
- **bounded priority lanes** — per-lane FIFO queues with hard capacity
  (:class:`LaneConfig`); the interactive lane is served strictly before
  background replays.  Backpressure is propagated to the session as
  *deferred screenshot capture*: an admitted session waits in its lane
  and its deferral is recorded (``deferred_ms``) rather than the
  session being dropped;
- **deadline-aware load shedding** — a session whose queue wait exceeds
  ``shed_deadline_ms`` is not dropped: it runs **degraded**, straight
  through the FraudDroid heuristic (``DarpaConfig.force_degraded``),
  so the user still gets decorations-by-metadata on time;
- **graceful drain** — after ``drain_at_ms`` the daemon stops accepting
  (typed ``drained`` rejections), flushes every in-flight batch, and
  emits a versioned ``drain.json`` manifest;
- **crash-safe checkpoint/resume** — each completed session is written
  as one idempotent artifact part file set plus one line in a versioned
  ``journal.jsonl``.  A killed run (``max_batches`` simulates the kill)
  resumes with ``resume=True``: the schedule is *replayed* — scheduling
  decisions are a pure function of (config, arrival schedule, fault
  seed) and never depend on execution results — and journaled sessions
  are skipped, so the finished artifacts are byte-identical to an
  uninterrupted run;
- **cross-batch request coalescing** — the sessions of one scheduler
  batch run in lockstep coordinator threads
  (:class:`CoalescingCoordinator`): whenever several sessions have an
  inference pending at the same round, their screenshots are folded
  into ONE ``detect_screens`` call — one ``InferencePlan`` forward
  (optionally a ``ParallelPlanExecutor`` one), which PR 6 guarantees is
  bit-identical to the per-image path.

**Determinism argument.**  Scheduling (fleet time) and execution
(session time) are two separate clocks.  The daemon's clock decides
*when* and *in what state* (normal vs degraded) each global session
index runs; the session itself replays on its own device clock with
every random stream keyed to the global index (``monkey_seed = 1000 +
index``), exactly as the sequential runner does.  Because scheduling
decisions never read execution results, and every tie on the fleet
clock is broken by timer-schedule order, the outcome assignment is a
pure function of the configuration — independent of worker count,
thread interleaving, or how many times the run was killed and resumed.
When nothing is shed or degraded (offered load within capacity, zero
faults), every session executes exactly the sequential call, so the
merged ``trace.jsonl``/``metrics.jsonl``/``telemetry.json`` are
byte-identical to :func:`repro.bench.parallel.run_darpa_over_fleet_parallel`.
Scheduling records live in a separate ``daemon.json`` precisely so the
telemetry artifacts stay comparable.

Worker faults (seeded stall/crash mid-batch, satellite of the fault
plan) are drawn ONCE per formed batch, *before* any session in it
executes: a crashed batch is re-enqueued at the head of its lane
without having touched any telemetry, so nothing is double-counted.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.android.clock import SimulatedClock
from repro.android.faults import FaultInjector, FaultPlan

#: Schema version of ``journal.jsonl`` (header line).
JOURNAL_VERSION = 1
#: Schema version of ``daemon.json`` and ``drain.json``.
DAEMON_ARTIFACT_VERSION = 1

#: Seed offset of the daemon's worker-fault stream.  Prime, and
#: distinct from the per-session offset (``7919 * (monkey_seed + 1)``
#: in :func:`repro.bench.experiments.run_darpa_session`), so worker
#: faults never correlate with any session's injected faults.
WORKER_FAULT_SEED_OFFSET = 104729

#: Hard ceiling on formed batches per offered session — a crash-looping
#: fault plan (worker_crash_rate ~ 1.0) must fail loudly, not livelock.
_MAX_BATCH_FACTOR = 1000


class JournalError(ValueError):
    """The resume journal is missing, corrupt, or from another run."""


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

class TokenBucket:
    """A token bucket on the simulated clock with integer state.

    Tokens are kept in integer micro-tokens and refilled lazily from
    the elapsed simulated time, so the bucket never accumulates float
    error and two replays of the same schedule make identical
    admit/reject decisions.
    """

    SCALE = 1_000_000  # micro-tokens per token

    def __init__(self, rate_per_s: float, burst: int, clock: SimulatedClock):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.clock = clock
        #: Micro-tokens granted per simulated millisecond.
        self.rate_micro_per_ms = int(round(rate_per_s * self.SCALE / 1000.0))
        self.capacity_micro = int(burst) * self.SCALE
        self.tokens_micro = self.capacity_micro  # starts full
        self._last_ms = clock.now_ms

    def _refill(self) -> None:
        now = self.clock.now_ms
        elapsed = now - self._last_ms
        if elapsed > 0:
            grant = int(round(elapsed * self.rate_micro_per_ms))
            self.tokens_micro = min(self.capacity_micro,
                                    self.tokens_micro + grant)
            self._last_ms = now

    @property
    def tokens(self) -> float:
        """Current whole-token balance (refilled to now)."""
        self._refill()
        return self.tokens_micro / self.SCALE

    def try_take(self) -> bool:
        """Take one token if available; never blocks."""
        self._refill()
        if self.tokens_micro >= self.SCALE:
            self.tokens_micro -= self.SCALE
            return True
        return False


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LaneConfig:
    """One bounded priority lane.  Tuple order in
    :attr:`DaemonConfig.lanes` IS the priority order."""

    name: str
    capacity: int = 256

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("lane name cannot be empty")
        if self.capacity < 1:
            raise ValueError("lane capacity must be >= 1")


#: The stock lane pair: interactive screens before background replays.
DEFAULT_LANES: Tuple[LaneConfig, ...] = (
    LaneConfig("interactive", capacity=256),
    LaneConfig("background", capacity=256),
)


@dataclass(frozen=True)
class DaemonConfig:
    """The daemon's scheduling policy, all in simulated fleet time."""

    #: Session ``i`` arrives at ``i * inter_arrival_ms`` — the offered
    #: load knob the bench sweeps.
    inter_arrival_ms: float = 120.0
    #: Token-bucket admission: sustained sessions/second and burst size.
    admission_rate_per_s: float = 50.0
    admission_burst: int = 16
    #: Priority lanes, highest priority first.
    lanes: Tuple[LaneConfig, ...] = DEFAULT_LANES
    #: Every Nth offered session is a background replay (routed to the
    #: ``background`` lane); 0 routes everything interactive.
    background_every: int = 0
    #: Shared batched-inference workers and the largest coalesced batch.
    workers: int = 2
    batch_max: int = 4
    #: Simulated service time of one coalesced batch.
    batch_service_ms: float = 250.0
    #: Queue wait beyond which a session is served degraded (FraudDroid
    #: fallback) instead of through the CNN queue; 0 disables shedding.
    shed_deadline_ms: float = 2000.0

    def __post_init__(self) -> None:
        if self.inter_arrival_ms < 0:
            raise ValueError("inter_arrival_ms cannot be negative")
        if self.admission_rate_per_s <= 0:
            raise ValueError("admission_rate_per_s must be positive")
        if self.admission_burst < 1:
            raise ValueError("admission_burst must be >= 1")
        if not self.lanes:
            raise ValueError("need at least one lane")
        names = [lane.name for lane in self.lanes]
        if len(set(names)) != len(names):
            raise ValueError("lane names must be unique")
        if self.background_every < 0:
            raise ValueError("background_every cannot be negative")
        if self.background_every and "background" not in names:
            raise ValueError("background_every needs a 'background' lane")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.batch_service_ms < 0:
            raise ValueError("batch_service_ms cannot be negative")
        if self.shed_deadline_ms < 0:
            raise ValueError("shed_deadline_ms cannot be negative")

    def lane_of(self, index: int) -> str:
        """Deterministic lane routing of global session ``index``."""
        if (self.background_every
                and index % self.background_every == self.background_every - 1):
            return "background"
        return self.lanes[0].name

    def to_dict(self) -> Dict[str, object]:
        return {
            "inter_arrival_ms": self.inter_arrival_ms,
            "admission_rate_per_s": self.admission_rate_per_s,
            "admission_burst": self.admission_burst,
            "lanes": [{"name": lane.name, "capacity": lane.capacity}
                      for lane in self.lanes],
            "background_every": self.background_every,
            "workers": self.workers,
            "batch_max": self.batch_max,
            "batch_service_ms": self.batch_service_ms,
            "shed_deadline_ms": self.shed_deadline_ms,
        }


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------

#: Typed admission-rejection kinds.
REJECTION_KINDS = ("rate_limited", "queue_full", "drained")

#: Terminal outcomes of an offered session.  Every offered session ends
#: in exactly one of these (the proptest trichotomy invariant).
OUTCOMES = ("decorated", "degraded", "shed")


@dataclass(frozen=True)
class RejectionRecord:
    """One typed admission rejection (the session's outcome is shed)."""

    index: int
    at_ms: float
    lane: str
    kind: str

    def to_dict(self) -> Dict[str, object]:
        return {"index": self.index, "at_ms": self.at_ms,
                "lane": self.lane, "kind": self.kind}


@dataclass
class SessionSchedule:
    """Fleet-time scheduling trace of one offered session."""

    index: int
    lane: str
    arrival_ms: float
    outcome: str = ""            # one of OUTCOMES once terminal
    start_ms: Optional[float] = None
    finish_ms: Optional[float] = None
    batch_id: Optional[int] = None

    @property
    def deferred_ms(self) -> float:
        """Backpressure surfaced to the session: how long its screen
        capture was deferred in the lane before a worker took it."""
        if self.start_ms is None:
            return 0.0
        return self.start_ms - self.arrival_ms

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index, "lane": self.lane,
            "arrival_ms": self.arrival_ms, "outcome": self.outcome,
            "start_ms": self.start_ms, "finish_ms": self.finish_ms,
            "deferred_ms": self.deferred_ms, "batch_id": self.batch_id,
        }


@dataclass
class BatchRecord:
    """One formed batch: who ran, on which worker, with which fault."""

    batch_id: int
    worker: int
    lane: str
    formed_ms: float
    indices: List[int]
    fault: str = "ok"            # ok | stall | crash
    fault_delay_ms: float = 0.0
    finish_ms: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "batch_id": self.batch_id, "worker": self.worker,
            "lane": self.lane, "formed_ms": self.formed_ms,
            "indices": list(self.indices), "fault": self.fault,
            "fault_delay_ms": self.fault_delay_ms,
            "finish_ms": self.finish_ms,
        }


@dataclass
class DaemonReport:
    """What one ``run()`` did, for callers and the bench."""

    completed: bool
    killed: bool
    drained_early: bool
    sim_end_ms: float
    counters: Dict[str, int]
    outcomes: Dict[int, str]
    schedules: List[SessionSchedule]
    rejections: List[RejectionRecord]
    batches: List[BatchRecord]
    coalesced_occupancies: List[int] = field(default_factory=list)
    results: Dict[int, object] = field(default_factory=dict)
    resumed_indices: Tuple[int, ...] = ()

    @property
    def shed_rate(self) -> float:
        offered = self.counters.get("offered", 0)
        return (self.counters.get("shed", 0) / offered) if offered else 0.0

    @property
    def mean_batch_occupancy(self) -> float:
        sizes = [len(b.indices) for b in self.batches if b.fault != "crash"]
        return (sum(sizes) / len(sizes)) if sizes else 0.0


# ---------------------------------------------------------------------------
# Cross-batch request coalescing
# ---------------------------------------------------------------------------

class _Slot:
    """Lockstep state of one session thread."""

    __slots__ = ("resume", "yielded", "request", "response", "done",
                 "error", "result")

    def __init__(self):
        self.resume = threading.Event()
        self.yielded = threading.Event()
        self.request: Optional[Tuple] = None
        self.response = None
        self.done = False
        self.error: Optional[BaseException] = None
        self.result = None


class _CoalescingProxy:
    """Per-session detector facade: ``detect_screen`` parks the request
    with the coordinator and blocks until the folded batch answer."""

    def __init__(self, slot: _Slot):
        self._slot = slot

    def detect_screen(self, screen_image, refine: bool = True,
                      conf_threshold: Optional[float] = None):
        slot = self._slot
        slot.request = (screen_image, refine, conf_threshold)
        slot.yielded.set()
        slot.resume.wait()
        slot.resume.clear()
        response = slot.response
        slot.response = None
        return response


class CoalescingCoordinator:
    """Runs a batch of session jobs in strict-lockstep threads, folding
    concurrently-pending inferences into single ``detect_screens`` calls.

    Exactly one thread runs at any instant: the coordinator steps the
    sessions round-robin in batch order, each step running one session
    until its next inference request (or completion).  When the round
    ends, all pending screenshots go through ONE shared
    ``detector.detect_screens`` call — one plan forward — and the
    per-image results are handed back in slot order.  The strict
    handoff makes the interleaving a deterministic function of the
    batch, and the PR 6 guarantee (``detect_screens`` bit-identical to
    per-image ``detect_screen``) makes every session's result
    bit-identical to running it alone.
    """

    def __init__(self, detector):
        if not hasattr(detector, "detect_screens"):
            raise TypeError("coalescing needs a detect_screens detector")
        self.detector = detector
        #: Sessions folded per coalesced inference round, in order.
        self.occupancies: List[int] = []

    def run_batch(self, jobs: Sequence) -> List[object]:
        """``jobs[i]`` is a callable ``(proxy) -> result``; returns the
        results in job order."""
        slots = [_Slot() for _ in jobs]
        threads = []
        for slot, job in zip(slots, jobs):
            thread = threading.Thread(
                target=self._session_body, args=(slot, job), daemon=True)
            threads.append(thread)
            thread.start()
        live = list(range(len(jobs)))
        while live:
            pending: List[int] = []
            for i in list(live):
                slot = slots[i]
                slot.resume.set()
                slot.yielded.wait()
                slot.yielded.clear()
                if slot.done:
                    live.remove(i)
                else:
                    pending.append(i)
            if pending:
                self._serve_round(slots, pending)
        for thread in threads:
            thread.join()
        for slot in slots:
            if slot.error is not None:
                raise slot.error
        return [slot.result for slot in slots]

    @staticmethod
    def _session_body(slot: _Slot, job) -> None:
        slot.resume.wait()
        slot.resume.clear()
        try:
            slot.result = job(_CoalescingProxy(slot))
        except Exception as exc:  # surfaced by run_batch
            slot.error = exc
        finally:
            slot.done = True
            slot.yielded.set()

    def _serve_round(self, slots: Sequence[_Slot],
                     pending: Sequence[int]) -> None:
        requests = [slots[i].request for i in pending]
        images = [req[0] for req in requests]
        refine, conf = requests[0][1], requests[0][2]
        if any((req[1], req[2]) != (refine, conf) for req in requests):
            raise ValueError(
                "cannot coalesce inferences with mismatched refine/"
                "conf_threshold settings")
        batched = self.detector.detect_screens(
            images, refine=refine, conf_threshold=conf)
        self.occupancies.append(len(pending))
        for i, detections in zip(pending, batched):
            slots[i].request = None
            slots[i].response = detections
            # The thread is resumed by the next round's step.


# ---------------------------------------------------------------------------
# The daemon
# ---------------------------------------------------------------------------

@dataclass
class _Worker:
    """One shared batched-inference worker slot."""

    worker_id: int
    busy: bool = False


class DarpaDaemon:
    """Long-running fleet server: admission, lanes, batches, resume.

    ``sessions`` is the fleet (global index = list position); execution
    of an admitted session is exactly the sequential runner's call
    (:func:`repro.bench.experiments.run_darpa_session` with
    ``monkey_seed = 1000 + index``), so any session's artifacts are
    independent of every scheduling decision except its own outcome.
    """

    def __init__(
        self,
        sessions: Sequence,
        detector,
        config: Optional[DaemonConfig] = None,
        ct_ms: float = 200.0,
        mode: str = "full",
        conf_threshold: Optional[float] = None,
        frauddroid=None,
        fault_plan: Optional[FaultPlan] = None,
        darpa_kwargs: Optional[Dict] = None,
        out_dir: Optional[str] = None,
        trace: bool = False,
        keep_results: bool = True,
        coalesce: Optional[bool] = None,
    ):
        from repro.bench.experiments import DEFAULT_CONF_THRESHOLD

        self.sessions = list(sessions)
        self.detector = detector
        self.config = config or DaemonConfig()
        self.ct_ms = ct_ms
        self.mode = mode
        self.conf_threshold = (DEFAULT_CONF_THRESHOLD
                               if conf_threshold is None else conf_threshold)
        self.frauddroid = frauddroid
        self.fault_plan = fault_plan
        self.darpa_kwargs = dict(darpa_kwargs or {})
        self.out_dir = out_dir
        self.trace = trace or out_dir is not None
        self.keep_results = keep_results
        if coalesce is None:
            coalesce = (not isinstance(detector, str)
                        and hasattr(detector, "detect_screens")
                        and mode in ("detect", "full"))
        self.coalesce = bool(coalesce)

    # -- fingerprinting -------------------------------------------------

    def fingerprint(self) -> str:
        """Digest tying a journal to one exact run configuration."""
        from repro.bench.provenance import config_hash

        plan = None
        if self.fault_plan is not None:
            plan = {name: getattr(self.fault_plan, name)
                    for name in sorted(self.fault_plan.__dataclass_fields__)}
        return config_hash({
            "daemon": self.config.to_dict(),
            "ct_ms": self.ct_ms,
            "mode": self.mode,
            "conf_threshold": self.conf_threshold,
            "n_sessions": len(self.sessions),
            "fault_plan": plan,
            "darpa_kwargs": dict(sorted(self.darpa_kwargs.items())),
            "trace": self.trace,
        })

    def _session_fault_plan(self) -> Optional[FaultPlan]:
        """The fault plan as the *sessions* see it: worker stall/crash
        rates are daemon-level and stripped before the plan travels into
        :func:`run_darpa_session` — a worker-only plan must be
        bit-inert inside every session (a null session plan means no
        ``FaultyDetector`` wrapper, hence unchanged traces)."""
        if self.fault_plan is None:
            return None
        session_plan = replace(self.fault_plan,
                               worker_stall_rate=0.0, worker_crash_rate=0.0)
        return None if session_plan.is_null else session_plan

    # -- journal --------------------------------------------------------

    def _journal_path(self) -> str:
        assert self.out_dir is not None
        return os.path.join(self.out_dir, "journal.jsonl")

    def _read_journal(self) -> Tuple[int, ...]:
        """Completed global indices of the killed run being resumed."""
        path = self._journal_path()
        if not os.path.exists(path):
            raise JournalError(f"no journal to resume at {path}")
        with open(path) as fp:
            lines = [line for line in fp.read().splitlines() if line]
        if not lines:
            raise JournalError(f"empty journal at {path}")
        header = json.loads(lines[0])
        if header.get("kind") != "darpa-daemon-journal":
            raise JournalError("not a daemon journal")
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal version {header.get('version')} != "
                f"{JOURNAL_VERSION}")
        if header.get("fingerprint") != self.fingerprint():
            raise JournalError(
                "journal was written by a different run configuration")
        done = sorted({int(json.loads(line)["index"]) for line in lines[1:]})
        return tuple(done)

    def _start_journal(self) -> None:
        with open(self._journal_path(), "w") as fp:
            fp.write(json.dumps({
                "kind": "darpa-daemon-journal",
                "version": JOURNAL_VERSION,
                "fingerprint": self.fingerprint(),
                "n_sessions": len(self.sessions),
            }, sort_keys=True) + "\n")

    def _journal_completed(self, index: int) -> None:
        # One line per completed session, appended AFTER its part files
        # are on disk: a kill between the two leaves an orphan part that
        # the resume simply overwrites (idempotent), never a journal
        # entry without artifacts.
        with open(self._journal_path(), "a") as fp:
            fp.write(json.dumps({"index": index}) + "\n")
            fp.flush()

    def _reset_out_dir(self) -> None:
        assert self.out_dir is not None
        os.makedirs(self.out_dir, exist_ok=True)
        stale = ("journal.jsonl", "daemon.json", "drain.json", "trace.jsonl",
                 "metrics.jsonl", "telemetry.json", "telemetry.prom",
                 "profile.json")
        for name in sorted(os.listdir(self.out_dir)):
            if name in stale or name.startswith("shard-"):
                os.remove(os.path.join(self.out_dir, name))

    # -- the run --------------------------------------------------------

    def run(self, resume: bool = False, drain_at_ms: Optional[float] = None,
            max_batches: Optional[int] = None) -> DaemonReport:
        """Serve the whole fleet; returns the scheduling report.

        ``drain_at_ms`` starts a graceful drain at that fleet time:
        later arrivals are rejected (``drained``), in-flight batches
        flush, and a ``drain.json`` manifest is emitted.

        ``max_batches`` kills the daemon after that many *completed*
        batches — mid-run, without merging artifacts — which is how the
        bench and CI simulate a crash.  ``resume=True`` picks a killed
        run back up from its journal; the finished artifacts are
        byte-identical to a never-killed run.
        """
        config = self.config
        completed_before: Tuple[int, ...] = ()
        if self.out_dir is not None:
            if resume:
                completed_before = self._read_journal()
            else:
                self._reset_out_dir()
                self._start_journal()
        elif resume:
            raise JournalError("resume requires out_dir")
        skip = set(completed_before)

        clock = SimulatedClock()
        bucket = TokenBucket(config.admission_rate_per_s,
                             config.admission_burst, clock)
        lanes: Dict[str, Deque[SessionSchedule]] = {
            lane.name: deque() for lane in config.lanes}
        capacity = {lane.name: lane.capacity for lane in config.lanes}
        workers = [_Worker(i) for i in range(config.workers)]
        injector: Optional[FaultInjector] = None
        if self.fault_plan is not None and not self.fault_plan.is_null:
            worker_plan = replace(
                self.fault_plan,
                seed=self.fault_plan.seed + WORKER_FAULT_SEED_OFFSET)
            injector = FaultInjector(worker_plan, clock)

        schedules: Dict[int, SessionSchedule] = {}
        rejections: List[RejectionRecord] = []
        batches: List[BatchRecord] = []
        occupancies: List[int] = []
        results: Dict[int, object] = {}
        counters: Dict[str, int] = {
            "offered": 0, "admitted": 0, "completed": 0,
            "decorated": 0, "degraded": 0, "shed": 0,
            "shed_rate_limited": 0, "shed_queue_full": 0, "shed_drained": 0,
            "batches_formed": 0, "batches_completed": 0,
            "worker_crashes": 0, "worker_stalls": 0,
            "coalesced_rounds": 0, "coalesced_requests": 0,
            "deferred_sessions": 0,
        }
        state = {"draining": False, "stopped": False, "batch_seq": 0,
                 "completed_batches": 0, "drained_early": False}
        event_times: List[float] = []

        def at(delay_ms: float, callback) -> None:
            heapq.heappush(event_times, clock.now_ms + delay_ms)
            clock.schedule(delay_ms, callback)

        def reject(index: int, lane: str, kind: str) -> None:
            entry = schedules[index]
            entry.outcome = "shed"
            rejections.append(RejectionRecord(
                index=index, at_ms=clock.now_ms, lane=lane, kind=kind))
            counters["shed"] += 1
            counters[f"shed_{kind}"] += 1

        def arrive(index: int) -> None:
            counters["offered"] += 1
            lane = config.lane_of(index)
            entry = SessionSchedule(index=index, lane=lane,
                                    arrival_ms=clock.now_ms)
            schedules[index] = entry
            if state["draining"]:
                reject(index, lane, "drained")
                return
            if len(lanes[lane]) >= capacity[lane]:
                reject(index, lane, "queue_full")
                return
            if not bucket.try_take():
                reject(index, lane, "rate_limited")
                return
            counters["admitted"] += 1
            lanes[lane].append(entry)
            dispatch()

        def free_worker() -> Optional[_Worker]:
            for worker in workers:
                if not worker.busy:
                    return worker
            return None

        def next_lane() -> Optional[str]:
            for lane in config.lanes:       # declaration order = priority
                if lanes[lane.name]:
                    return lane.name
            return None

        def dispatch() -> None:
            while True:
                worker = free_worker()
                lane = next_lane()
                if worker is None or lane is None:
                    return
                if (counters["batches_formed"]
                        >= _MAX_BATCH_FACTOR * max(1, len(self.sessions))):
                    raise RuntimeError(
                        "batch formation runaway (crash-looping fault plan?)")
                batch_entries: List[SessionSchedule] = []
                while lanes[lane] and len(batch_entries) < config.batch_max:
                    batch_entries.append(lanes[lane].popleft())
                state["batch_seq"] += 1
                record = BatchRecord(
                    batch_id=state["batch_seq"], worker=worker.worker_id,
                    lane=lane, formed_ms=clock.now_ms,
                    indices=[e.index for e in batch_entries])
                batches.append(record)
                counters["batches_formed"] += 1
                fault, delay = ("ok", 0.0)
                if injector is not None:
                    fault, delay = injector.worker_batch_fault()
                record.fault, record.fault_delay_ms = fault, delay
                worker.busy = True
                if fault == "crash":
                    # The batch never ran: put its sessions back at the
                    # head of the lane in their original order (FIFO is
                    # preserved) and bring the worker back after the
                    # restart delay.  No telemetry was touched, so
                    # nothing can be double-counted.
                    counters["worker_crashes"] += 1
                    lanes[lane].extendleft(reversed(batch_entries))
                    at(delay, lambda w=worker: restart(w))
                    continue
                if fault == "stall":
                    counters["worker_stalls"] += 1
                service_ms = config.batch_service_ms + delay
                at(service_ms,
                   lambda e=batch_entries, r=record, w=worker:
                   complete(e, r, w))

        def restart(worker: _Worker) -> None:
            worker.busy = False
            dispatch()

        def complete(batch_entries: List[SessionSchedule],
                     record: BatchRecord, worker: _Worker) -> None:
            if state["stopped"]:
                return
            record.finish_ms = clock.now_ms
            for entry in batch_entries:
                entry.start_ms = record.formed_ms
                entry.finish_ms = clock.now_ms
                entry.batch_id = record.batch_id
                degraded = bool(
                    config.shed_deadline_ms
                    and entry.deferred_ms > config.shed_deadline_ms)
                entry.outcome = "degraded" if degraded else "decorated"
                counters[entry.outcome] += 1
                if entry.deferred_ms > 0:
                    counters["deferred_sessions"] += 1
            self._execute_batch(batch_entries, skip, results,
                                counters, occupancies)
            counters["completed"] += len(batch_entries)
            counters["batches_completed"] += 1
            state["completed_batches"] += 1
            if (max_batches is not None
                    and state["completed_batches"] >= max_batches):
                state["stopped"] = True     # simulated kill -9
                return
            worker.busy = False
            dispatch()

        def start_drain() -> None:
            state["draining"] = True
            state["drained_early"] = True

        if drain_at_ms is not None:
            # Scheduled before the arrivals so a same-instant arrival is
            # already refused (timer ties break by schedule order).
            at(drain_at_ms, start_drain)
        for index in range(len(self.sessions)):
            at(index * config.inter_arrival_ms, lambda i=index: arrive(i))

        # The discrete-event loop: hop to the next scheduled instant and
        # let the clock fire everything due there.  A "killed" daemon
        # simply stops hopping — pending timers die with the process.
        while event_times and not state["stopped"]:
            t = heapq.heappop(event_times)
            if t > clock.now_ms:
                clock.advance(t - clock.now_ms)
            else:
                clock.advance(0.0)

        killed = bool(state["stopped"])
        ordered = [schedules[i] for i in sorted(schedules)]
        report = DaemonReport(
            completed=not killed,
            killed=killed,
            drained_early=bool(state["drained_early"]),
            sim_end_ms=clock.now_ms,
            counters=counters,
            outcomes={e.index: e.outcome for e in ordered if e.outcome},
            schedules=ordered,
            rejections=rejections,
            batches=batches,
            coalesced_occupancies=occupancies,
            results=results,
            resumed_indices=completed_before,
        )
        if not killed:
            self._check_terminal(report)
        if self.out_dir is not None and not killed:
            self._write_artifacts(report)
        return report

    @staticmethod
    def _check_terminal(report: DaemonReport) -> None:
        """Liveness: a finished run left no session without an outcome."""
        hung = [e.index for e in report.schedules
                if e.outcome not in OUTCOMES]
        if hung:
            raise RuntimeError(f"sessions without terminal outcome: {hung}")

    # -- execution ------------------------------------------------------

    def _execute_batch(self, batch_entries: Sequence[SessionSchedule],
                       skip: set, results: Dict[int, object],
                       counters: Dict[str, int],
                       occupancies: List[int]) -> None:
        """Run a completed batch's sessions and checkpoint each one.

        Journaled sessions of a resumed run are skipped — their part
        files already exist; everything about *scheduling* was already
        re-decided identically by the replay, so skipping execution is
        the only difference between a resumed and an uninterrupted run.
        """
        from repro.bench.experiments import run_darpa_session
        from repro.bench.parallel import write_session_part

        todo = [entry for entry in batch_entries if entry.index not in skip]
        session_plan = self._session_fault_plan()

        def session_kwargs(entry: SessionSchedule) -> Dict:
            kwargs = dict(self.darpa_kwargs)
            if entry.outcome == "degraded":
                kwargs["force_degraded"] = True
                kwargs.setdefault("fallback_to_heuristic", True)
            return kwargs

        executed: List[Tuple[SessionSchedule, object]] = []
        if self.coalesce and len(todo) > 1:
            coordinator = CoalescingCoordinator(self.detector)

            def make_job(entry: SessionSchedule):
                def job(proxy):
                    return run_darpa_session(
                        self.sessions[entry.index], proxy, ct_ms=self.ct_ms,
                        mode=self.mode, monkey_seed=1000 + entry.index,
                        frauddroid=self.frauddroid,
                        conf_threshold=self.conf_threshold,
                        fault_plan=session_plan,
                        darpa_kwargs=session_kwargs(entry),
                        trace=self.trace)
                return job

            outputs = coordinator.run_batch([make_job(e) for e in todo])
            counters["coalesced_rounds"] += len(coordinator.occupancies)
            counters["coalesced_requests"] += sum(coordinator.occupancies)
            occupancies.extend(coordinator.occupancies)
            executed = list(zip(todo, outputs))
        else:
            for entry in todo:
                result = run_darpa_session(
                    self.sessions[entry.index], self.detector,
                    ct_ms=self.ct_ms, mode=self.mode,
                    monkey_seed=1000 + entry.index,
                    frauddroid=self.frauddroid,
                    conf_threshold=self.conf_threshold,
                    fault_plan=session_plan,
                    darpa_kwargs=session_kwargs(entry),
                    trace=self.trace)
                executed.append((entry, result))

        executed.sort(key=lambda item: item[0].index)
        for entry, result in executed:
            if self.out_dir is not None:
                write_session_part(self.out_dir, entry.index, result)
                self._journal_completed(entry.index)
            if self.keep_results:
                results[entry.index] = result

    # -- artifacts ------------------------------------------------------

    def _write_artifacts(self, report: DaemonReport) -> None:
        """daemon.json + drain.json, then the merged fleet artifacts.

        Scheduling records go to ``daemon.json``, NEVER into
        ``telemetry.json`` — the telemetry artifacts must stay
        byte-comparable to the sequential runner's.
        """
        from repro.bench.parallel import merge_trace_artifacts

        assert self.out_dir is not None
        daemon_payload = {
            "version": DAEMON_ARTIFACT_VERSION,
            "fingerprint": self.fingerprint(),
            "config": self.config.to_dict(),
            "counters": dict(sorted(report.counters.items())),
            "shed_rate": report.shed_rate,
            "mean_batch_occupancy": report.mean_batch_occupancy,
            "coalesced_occupancies": list(report.coalesced_occupancies),
            "sessions": [e.to_dict() for e in report.schedules],
            "rejections": [r.to_dict() for r in report.rejections],
            "batches": [b.to_dict() for b in report.batches],
        }
        with open(os.path.join(self.out_dir, "daemon.json"), "w") as fp:
            json.dump(daemon_payload, fp, sort_keys=True, indent=2)
            fp.write("\n")
        drain_payload = {
            "version": DAEMON_ARTIFACT_VERSION,
            "fingerprint": self.fingerprint(),
            "drained_at_ms": report.sim_end_ms,
            "forced": report.drained_early,
            "offered": report.counters["offered"],
            "completed": report.counters["completed"],
            "shed": report.counters["shed"],
            "queues_flushed": True,
        }
        with open(os.path.join(self.out_dir, "drain.json"), "w") as fp:
            json.dump(drain_payload, fp, sort_keys=True, indent=2)
            fp.write("\n")
        if self.trace and report.counters["completed"]:
            merge_trace_artifacts(self.out_dir)


def serve_fleet(sessions: Sequence, detector, **kwargs) -> DaemonReport:
    """One-call convenience wrapper: build a daemon and run it.

    Keyword arguments split between the :class:`DarpaDaemon`
    constructor and :meth:`DarpaDaemon.run` (``resume``,
    ``drain_at_ms``, ``max_batches``).
    """
    run_keys = ("resume", "drain_at_ms", "max_batches")
    run_kwargs = {key: kwargs.pop(key) for key in run_keys if key in kwargs}
    daemon = DarpaDaemon(sessions, detector, **kwargs)
    return daemon.run(**run_kwargs)


__all__ = [
    "JOURNAL_VERSION",
    "DAEMON_ARTIFACT_VERSION",
    "JournalError",
    "TokenBucket",
    "LaneConfig",
    "DEFAULT_LANES",
    "DaemonConfig",
    "REJECTION_KINDS",
    "OUTCOMES",
    "RejectionRecord",
    "SessionSchedule",
    "BatchRecord",
    "DaemonReport",
    "CoalescingCoordinator",
    "DarpaDaemon",
    "serve_fleet",
]
