"""Parallel fleet execution for the runtime benchmarks.

A fleet run (Tables VI-VIII, Figure 8) is embarrassingly parallel: each
session owns its device, clock, app and service, and every source of
randomness is keyed off the session's *global* index
(``monkey_seed = 1000 + index``), never off worker identity or
scheduling order.  That makes the parallel runner a drop-in for
:func:`repro.bench.experiments.run_darpa_over_fleet`: the merged result
list is deterministic and identical to the sequential one for any
worker or shard count, which the determinism tests assert.

Sessions are dealt into ``n_shards`` index shards; each worker process
replays its shard sequentially and ships back ``(index, result)``
pairs, which the parent reassembles in fleet order.  Workers are forked
where the platform allows it (the memoized corpus and model are then
inherited copy-on-write instead of re-pickled).
"""

from __future__ import annotations

import json
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.bench.experiments import (
    DEFAULT_CONF_THRESHOLD,
    FleetSession,
    SessionResult,
    run_darpa_over_fleet,
    run_darpa_session,
)


def _write_session_artifacts(trace_fp, metrics_fp, index: int,
                             result: SessionResult) -> None:
    """One session's spans + metrics snapshot as sorted-key JSONL.

    Every line carries the *global* session index, so merged files are
    self-describing and line order is auditable.
    """
    for span in result.spans or ():
        trace_fp.write(json.dumps({"session": index, **span},
                                  sort_keys=True) + "\n")
    metrics_fp.write(json.dumps({"session": index, "metrics": result.metrics},
                                sort_keys=True) + "\n")


def _write_shard_artifacts(trace_dir: str,
                           results: List[Tuple[int, SessionResult]]) -> None:
    """Write one shard's trace/metrics/telemetry/profile part files,
    named by the shard's first global index (shards are contiguous, so
    lexicographic part order IS global session order)."""
    from repro.core.telemetry import FleetTelemetry, SessionTelemetry
    from repro.profiling import Profile, profile_from_result

    lo = results[0][0]
    trace_path = os.path.join(trace_dir, f"shard-{lo:06d}.trace.jsonl")
    metrics_path = os.path.join(trace_dir, f"shard-{lo:06d}.metrics.jsonl")
    with open(trace_path, "w") as tfp, open(metrics_path, "w") as mfp:
        for index, result in results:
            _write_session_artifacts(tfp, mfp, index, result)
    # Shard-level telemetry: per-session latency sketches + counters,
    # merged across the shard.  The parent folds the shard snapshots
    # together — the sketch algebra makes the fleet-level snapshot
    # byte-identical for any shard count or merge order.
    shard = FleetTelemetry()
    for index, result in results:
        shard.observe_session(SessionTelemetry.from_result(index, result))
    telemetry_path = os.path.join(trace_dir, f"shard-{lo:06d}.telemetry.json")
    with open(telemetry_path, "w") as fp:
        json.dump(shard.snapshot(), fp, sort_keys=True, indent=2)
        fp.write("\n")
    # Shard-level stack profile: same merge-algebra contract as the
    # sketches (all-integer state), so the fleet profile.json is
    # byte-identical for any shard count too.
    shard_profile = Profile()
    for index, result in results:
        shard_profile.merge(profile_from_result(result))
    profile_path = os.path.join(trace_dir, f"shard-{lo:06d}.profile.json")
    with open(profile_path, "w") as fp:
        fp.write(shard_profile.to_json())


def write_session_part(trace_dir: str, index: int,
                       result: SessionResult) -> None:
    """Write ONE session's artifacts as a standalone part file set.

    A single-session part is just a one-session shard
    (``shard-<index>.{trace,metrics}.jsonl`` + ``.telemetry.json``), so
    :func:`merge_trace_artifacts` folds any mix of multi-session shards
    and single-session parts into the same merged bytes — the sketch
    algebra is exactly associative and part names sort in global session
    order either way.  The daemon (:mod:`repro.core.daemon`) uses this
    for crash-safe checkpointing: each completed session becomes one
    idempotent part file set plus one journal line.
    """
    _write_shard_artifacts(trace_dir, [(index, result)])


def merge_trace_artifacts(trace_dir: str) -> Tuple[str, str]:
    """Merge shard part files into the fleet-level artifacts.

    ``shard-*.{trace,metrics}.jsonl`` parts are concatenated in sorted
    filename order — global session order, since shards are contiguous
    index ranges named by their first index — into ``trace.jsonl`` +
    ``metrics.jsonl``; ``shard-*.telemetry.json`` parts are folded with
    :meth:`FleetTelemetry.merge` into ``telemetry.json`` (the versioned
    snapshot) and ``telemetry.prom`` (Prometheus text exposition);
    ``shard-*.profile.json`` parts are folded with
    :meth:`repro.profiling.Profile.merge` into ``profile.json``.
    Parts are removed afterwards.  Every merged byte is identical for
    any worker/shard count, which the artifact tests assert.
    """
    from repro.core.telemetry import FleetTelemetry
    from repro.profiling import Profile

    out_paths = []
    for kind in ("trace", "metrics"):
        parts = sorted(
            name for name in os.listdir(trace_dir)
            if name.startswith("shard-") and name.endswith(f".{kind}.jsonl"))
        out_path = os.path.join(trace_dir, f"{kind}.jsonl")
        with open(out_path, "w") as out_fp:
            for name in parts:
                part_path = os.path.join(trace_dir, name)
                with open(part_path) as fp:
                    out_fp.write(fp.read())
                os.remove(part_path)
        out_paths.append(out_path)

    fleet = FleetTelemetry()
    telemetry_parts = sorted(
        name for name in os.listdir(trace_dir)
        if name.startswith("shard-") and name.endswith(".telemetry.json"))
    for name in telemetry_parts:
        part_path = os.path.join(trace_dir, name)
        with open(part_path) as fp:
            fleet.merge(FleetTelemetry.from_snapshot(json.load(fp)))
        os.remove(part_path)
    with open(os.path.join(trace_dir, "telemetry.json"), "w") as fp:
        json.dump(fleet.snapshot(), fp, sort_keys=True, indent=2)
        fp.write("\n")
    with open(os.path.join(trace_dir, "telemetry.prom"), "w") as fp:
        fp.write(fleet.to_prometheus())

    fleet_profile = Profile()
    profile_parts = sorted(
        name for name in os.listdir(trace_dir)
        if name.startswith("shard-") and name.endswith(".profile.json"))
    for name in profile_parts:
        part_path = os.path.join(trace_dir, name)
        with open(part_path) as fp:
            fleet_profile.merge(Profile.from_dict(json.load(fp)))
        os.remove(part_path)
    with open(os.path.join(trace_dir, "profile.json"), "w") as fp:
        fp.write(fleet_profile.to_json())
    return out_paths[0], out_paths[1]


def _run_shard(payload) -> List[Tuple[int, SessionResult]]:
    """Worker entry: replay one shard of (global index, session) pairs."""
    (indices, sessions, detector, ct_ms, mode, frauddroid, conf,
     fault_plan, darpa_kwargs, trace, trace_dir) = payload
    out: List[Tuple[int, SessionResult]] = []
    for index, session in zip(indices, sessions):
        result = run_darpa_session(
            session, detector, ct_ms=ct_ms, mode=mode,
            monkey_seed=1000 + index, frauddroid=frauddroid,
            conf_threshold=conf, fault_plan=fault_plan,
            darpa_kwargs=darpa_kwargs, trace=trace,
        )
        out.append((index, result))
    if trace_dir is not None and out:
        _write_shard_artifacts(trace_dir, out)
    return out


def _pool_context():
    """Prefer fork (cheap, copy-on-write memos); fall back to default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def run_darpa_over_fleet_parallel(
    sessions: Sequence[FleetSession],
    detector,
    ct_ms: float = 200.0,
    mode: str = "full",
    frauddroid=None,
    conf_threshold: float = DEFAULT_CONF_THRESHOLD,
    n_workers: Optional[int] = None,
    n_shards: Optional[int] = None,
    fault_plan=None,
    darpa_kwargs=None,
    trace: bool = False,
    trace_dir: Optional[str] = None,
) -> List[SessionResult]:
    """Run a fleet across worker processes; results in fleet order.

    ``n_workers`` defaults to the machine's core count (capped by the
    fleet size); ``n_shards`` defaults to ``n_workers``.  With one
    worker (or a one-session fleet) the sequential runner is called
    inline — no pool, no pickling.  ``fault_plan``/``darpa_kwargs``
    forward to :func:`run_darpa_session`; fault seeds travel with the
    global index, so chaos runs are shard-invariant too.

    ``trace=True`` traces every session (results carry spans/metrics).
    ``trace_dir`` (implies tracing) additionally writes per-shard
    ``shard-<first-index>.{trace,metrics}.jsonl`` +
    ``shard-<first-index>.{telemetry,profile}.json`` part files and
    merges them into ``trace.jsonl``, ``metrics.jsonl``,
    ``telemetry.json``, ``telemetry.prom`` and ``profile.json`` by
    global session index — byte-identical for any worker/shard count.
    """
    if trace_dir is not None:
        trace = True
        os.makedirs(trace_dir, exist_ok=True)
    n = len(sessions)
    if n_workers is None:
        n_workers = min(n, os.cpu_count() or 1)
    n_workers = max(1, min(n_workers, n)) if n else 1
    if n_workers <= 1 or n <= 1:
        results = run_darpa_over_fleet(
            sessions, detector, ct_ms=ct_ms, mode=mode,
            frauddroid=frauddroid, conf_threshold=conf_threshold,
            fault_plan=fault_plan, darpa_kwargs=darpa_kwargs, trace=trace)
        if trace_dir is not None and results:
            # Same shard-then-merge path as the pool, with one shard:
            # the merged bytes must not depend on how the fleet ran.
            _write_shard_artifacts(trace_dir, list(enumerate(results)))
            merge_trace_artifacts(trace_dir)
        return results
    if n_shards is None:
        n_shards = n_workers
    n_shards = max(1, min(n_shards, n))

    # Contiguous index shards.  The split is cosmetic for determinism —
    # seeds travel with the global index — but contiguity keeps each
    # worker's wall-clock profile close to the sequential runner's.
    bounds = [round(i * n / n_shards) for i in range(n_shards + 1)]
    payloads = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if lo == hi:
            continue
        indices = list(range(lo, hi))
        payloads.append((indices, list(sessions[lo:hi]), detector, ct_ms,
                         mode, frauddroid, conf_threshold, fault_plan,
                         darpa_kwargs, trace, trace_dir))

    merged: List[Optional[SessionResult]] = [None] * n
    with ProcessPoolExecutor(max_workers=n_workers,
                             mp_context=_pool_context()) as pool:
        for shard in pool.map(_run_shard, payloads):
            for index, result in shard:
                merged[index] = result
    assert all(r is not None for r in merged), "lost a session result"
    if trace_dir is not None:
        merge_trace_artifacts(trace_dir)
    return merged  # type: ignore[return-value]
