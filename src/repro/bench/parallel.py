"""Parallel fleet execution for the runtime benchmarks.

A fleet run (Tables VI-VIII, Figure 8) is embarrassingly parallel: each
session owns its device, clock, app and service, and every source of
randomness is keyed off the session's *global* index
(``monkey_seed = 1000 + index``), never off worker identity or
scheduling order.  That makes the parallel runner a drop-in for
:func:`repro.bench.experiments.run_darpa_over_fleet`: the merged result
list is deterministic and identical to the sequential one for any
worker or shard count, which the determinism tests assert.

Sessions are dealt into ``n_shards`` index shards; each worker process
replays its shard sequentially and ships back ``(index, result)``
pairs, which the parent reassembles in fleet order.  Workers are forked
where the platform allows it (the memoized corpus and model are then
inherited copy-on-write instead of re-pickled).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.bench.experiments import (
    DEFAULT_CONF_THRESHOLD,
    FleetSession,
    SessionResult,
    run_darpa_over_fleet,
    run_darpa_session,
)


def _run_shard(payload) -> List[Tuple[int, SessionResult]]:
    """Worker entry: replay one shard of (global index, session) pairs."""
    (indices, sessions, detector, ct_ms, mode, frauddroid, conf,
     fault_plan, darpa_kwargs) = payload
    out: List[Tuple[int, SessionResult]] = []
    for index, session in zip(indices, sessions):
        result = run_darpa_session(
            session, detector, ct_ms=ct_ms, mode=mode,
            monkey_seed=1000 + index, frauddroid=frauddroid,
            conf_threshold=conf, fault_plan=fault_plan,
            darpa_kwargs=darpa_kwargs,
        )
        out.append((index, result))
    return out


def _pool_context():
    """Prefer fork (cheap, copy-on-write memos); fall back to default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def run_darpa_over_fleet_parallel(
    sessions: Sequence[FleetSession],
    detector,
    ct_ms: float = 200.0,
    mode: str = "full",
    frauddroid=None,
    conf_threshold: float = DEFAULT_CONF_THRESHOLD,
    n_workers: Optional[int] = None,
    n_shards: Optional[int] = None,
    fault_plan=None,
    darpa_kwargs=None,
) -> List[SessionResult]:
    """Run a fleet across worker processes; results in fleet order.

    ``n_workers`` defaults to the machine's core count (capped by the
    fleet size); ``n_shards`` defaults to ``n_workers``.  With one
    worker (or a one-session fleet) the sequential runner is called
    inline — no pool, no pickling.  ``fault_plan``/``darpa_kwargs``
    forward to :func:`run_darpa_session`; fault seeds travel with the
    global index, so chaos runs are shard-invariant too.
    """
    n = len(sessions)
    if n_workers is None:
        n_workers = min(n, os.cpu_count() or 1)
    n_workers = max(1, min(n_workers, n)) if n else 1
    if n_workers <= 1 or n <= 1:
        return run_darpa_over_fleet(
            sessions, detector, ct_ms=ct_ms, mode=mode,
            frauddroid=frauddroid, conf_threshold=conf_threshold,
            fault_plan=fault_plan, darpa_kwargs=darpa_kwargs)
    if n_shards is None:
        n_shards = n_workers
    n_shards = max(1, min(n_shards, n))

    # Contiguous index shards.  The split is cosmetic for determinism —
    # seeds travel with the global index — but contiguity keeps each
    # worker's wall-clock profile close to the sequential runner's.
    bounds = [round(i * n / n_shards) for i in range(n_shards + 1)]
    payloads = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if lo == hi:
            continue
        indices = list(range(lo, hi))
        payloads.append((indices, list(sessions[lo:hi]), detector, ct_ms,
                         mode, frauddroid, conf_threshold, fault_plan,
                         darpa_kwargs))

    merged: List[Optional[SessionResult]] = [None] * n
    with ProcessPoolExecutor(max_workers=n_workers,
                             mp_context=_pool_context()) as pool:
        for shard in pool.map(_run_shard, payloads):
            for index, result in shard:
                merged[index] = result
    assert all(r is not None for r in merged), "lost a session result"
    return merged  # type: ignore[return-value]
