"""ASCII line charts for figure-style benchmark output.

Figure 8 is a figure, not a table; the benchmark that regenerates it
prints its two trendlines (events evaluated, AUIs identified vs ct) as
a monospace chart so the shape is visible directly in the log.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def ascii_line_chart(
    series: Dict[str, Sequence[float]],
    x_labels: Sequence[object],
    height: int = 12,
    width_per_point: int = 10,
    title: str = "",
) -> str:
    """Render one or more aligned series as an ASCII chart.

    Each series is scaled to its own [min, max] so trends remain
    readable when magnitudes differ (the chart is about *shape*); the
    right margin legend shows each series' marker and value range.
    """
    if not series:
        raise ValueError("need at least one series")
    n = len(x_labels)
    for name, values in series.items():
        if len(values) != n:
            raise ValueError(f"series {name!r} has {len(values)} points, "
                             f"x axis has {n}")
    if height < 3:
        raise ValueError("height must be at least 3")

    markers = "*o+x#@"
    grid = [[" " for _ in range(n * width_per_point)] for _ in range(height)]

    def row_of(value: float, lo: float, hi: float) -> int:
        if hi <= lo:
            return height // 2
        frac = (value - lo) / (hi - lo)
        return int(round((height - 1) * (1.0 - frac)))

    legend: List[str] = []
    for si, (name, values) in enumerate(series.items()):
        lo, hi = min(values), max(values)
        marker = markers[si % len(markers)]
        legend.append(f"  {marker} {name} [{lo:g} .. {hi:g}]")
        last: Tuple[int, int] = (-1, -1)
        for i, value in enumerate(values):
            col = i * width_per_point + width_per_point // 2
            row = row_of(value, lo, hi)
            grid[row][col] = marker
            # Connect consecutive points with a sparse line.
            if last != (-1, -1):
                lr, lc = last
                steps = max(abs(col - lc), 1)
                for s in range(1, steps):
                    cc = lc + (col - lc) * s // steps
                    rr = lr + (row - lr) * s // steps
                    if grid[rr][cc] == " ":
                        grid[rr][cc] = "."
            last = (row, col)

    lines = []
    if title:
        lines.append(title)
    for row in grid:
        lines.append("|" + "".join(row))
    axis = "+" + "-" * (n * width_per_point)
    lines.append(axis)
    label_line = " "
    for x in x_labels:
        label_line += str(x).center(width_per_point)
    lines.append(label_line)
    lines.extend(legend)
    return "\n".join(lines)
