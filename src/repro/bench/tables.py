"""Plain-text table rendering for benchmark output.

Benchmarks print the same rows the paper's tables report, alongside the
published values, so a reader can eyeball the reproduction directly in
the benchmark log.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Monospace-aligned table with a separator under the header."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                title: Optional[str] = None) -> None:
    text = "\n" + format_table(headers, rows, title=title) + "\n"
    # Flush inside the capture-disabled window: stdout is block-buffered
    # against pipes, and a late flush would land in the captured fd.
    print(text, flush=True)
    # Benchmarks are usually run under pytest, whose default output
    # capture would swallow the regenerated tables; mirror them to the
    # real stdout so ``pytest benchmarks/ --benchmark-only | tee ...``
    # logs every table without requiring -s.
    if sys.stdout is not sys.__stdout__:
        try:
            sys.__stdout__.write(text + "\n")
            sys.__stdout__.flush()
        # Best-effort mirror only: a closed/redirected real stdout must
        # never fail the benchmark that is being logged.
        except (OSError, ValueError, AttributeError):  # darpalint: disable=DL005
            pass


def echo(text: str) -> None:
    """Print a line, mirrored past pytest capture (see print_table)."""
    print(text, flush=True)
    if sys.stdout is not sys.__stdout__:
        try:
            sys.__stdout__.write(text + "\n")
            sys.__stdout__.flush()
        # Best-effort mirror only (same contract as print_table).
        except (OSError, ValueError, AttributeError):  # darpalint: disable=DL005
            pass


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
