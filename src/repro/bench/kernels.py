"""Kernel benchmark: TinyYolo forward across execution modes.

One runner shared by ``python -m repro bench kernels`` and the pytest
benchmark suite, so the committed ``BENCH_kernels.json`` and the CI
regression gate always measure the same thing.  Modes:

- ``float_per_image``  — fp32, one GEMM per image (the bit-stable
  default the serving path ships with);
- ``float_tiled``      — fp32, images grouped into cache-sized tiles
  (the fast opt-in; see ``DeployConfig.gemm``);
- ``int8_tiled``       — calibrated int8 emulation over the tiled
  executor (exact integer accumulation);
- ``multicore_tiled_wN`` — the tiled plan fanned out over N worker
  processes via :class:`repro.vision.nn.parallel.ParallelPlanExecutor`.

Timings are best-of-``rounds`` wall milliseconds (one warmup call per
mode/batch) through :mod:`repro.wallclock` — the one sanctioned clock.
The model is the seeded *untrained* TinyYolo: forward cost is
weight-independent, and skipping training keeps the benchmark cheap
enough for CI.  Accuracy claims (the Table-IV-style int8 delta) live in
the pytest benchmarks against a trained model, not here.

The payload is stamped with a provenance manifest
(:mod:`repro.bench.provenance`); ``repro regress`` refuses to compare
payloads from different benchmark configurations.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.bench.provenance import build_manifest
from repro.wallclock import monotonic_ms

#: Historical batch-32 reference from the pre-kernel serving path
#: (BENCH_kernels.json as of the observability PR).  A constant, not a
#: measurement: it anchors ``speedup_vs_baseline_batch32`` so the
#: headline number survives payload regeneration on faster machines.
BASELINE_MS_BATCH32 = 73.195

CORPUS_VERSION = "synthetic-uniform-v1"
SEED_BASE = 0


def _best_of_ms(fn, rounds: int) -> float:
    """Best-of-N wall milliseconds with one untimed warmup call."""
    fn()
    best = float("inf")
    for _ in range(rounds):
        t0 = monotonic_ms()
        fn()
        best = min(best, monotonic_ms() - t0)
    return best


def _mode_plans(quant: str, workers: Sequence[int]):
    """Yield ``(mode_name, DeployConfig)`` for the requested sweep."""
    from repro.vision.nn import DeployConfig

    if quant not in ("fp32", "int8", "both"):
        raise ValueError(f"unknown quant sweep {quant!r}")
    modes = [("float_per_image", DeployConfig())]
    modes.append(("float_tiled", DeployConfig(gemm="tiled")))
    if quant in ("int8", "both"):
        modes.append(("int8_tiled",
                      DeployConfig(precision="int8", gemm="tiled")))
    for n in workers:
        modes.append((f"multicore_tiled_w{n}",
                      DeployConfig(gemm="tiled", workers=int(n))))
    return modes


def run_kernel_bench(
    batch_sizes: Tuple[int, ...] = (1, 8, 32),
    rounds: int = 9,
    quant: str = "both",
    workers: Sequence[int] = (2,),
    seed: int = SEED_BASE,
    out_path: Optional[str] = None,
) -> Dict:
    """Time every execution mode, return (and optionally write) the payload."""
    from repro.vision import TinyYolo, YoloConfig

    config = YoloConfig()
    rng = np.random.default_rng(seed)
    max_batch = max(batch_sizes)
    # RGB input tensors at the detector's native resolution.
    x = rng.random((max_batch, 3, config.input_h, config.input_w),
                   dtype=np.float32)
    bench_config = {
        "batch_sizes": list(batch_sizes),
        "rounds": int(rounds),
        "quant": quant,
        "workers": [int(n) for n in workers],
        "input_shape": list(x.shape[1:]),
        "seed": int(seed),
    }

    modes: Dict[str, Dict] = {}
    for name, deploy in _mode_plans(quant, workers):
        model = TinyYolo(config, seed=seed, deploy=deploy)
        plan = model.inference_plan()
        timings = {}
        for n in batch_sizes:
            xb = x[:n]
            timings[str(n)] = round(_best_of_ms(lambda: plan.forward(xb),
                                                rounds), 3)
        plan.close()
        modes[name] = {"forward_ms": timings}

    top = str(max(batch_sizes))
    ref = modes["float_per_image"]["forward_ms"][top]
    for name, record in modes.items():
        record["speedup_vs_per_image"] = round(
            ref / record["forward_ms"][top], 3)
    payload = {
        "manifest": build_manifest(CORPUS_VERSION, seed, bench_config),
        "kernel": "tiny_yolo_forward",
        "input_shape": list(x.shape[1:]),
        "batch_sizes": list(batch_sizes),
        "modes": modes,
    }
    if 32 in batch_sizes:
        best_ms = min(record["forward_ms"]["32"] for record in modes.values())
        payload["baseline_ms_batch32"] = BASELINE_MS_BATCH32
        payload["speedup_vs_baseline_batch32"] = round(
            BASELINE_MS_BATCH32 / best_ms, 3)
    if out_path:
        with open(out_path, "w") as fp:
            json.dump(payload, fp, indent=2, sort_keys=True)
            fp.write("\n")
    return payload


__all__ = ["BASELINE_MS_BATCH32", "CORPUS_VERSION", "SEED_BASE",
           "run_kernel_bench"]
