"""Benchmark regression gate: diff fresh output against a baseline.

The committed ``BENCH_*.json`` files at the repo root are the
benchmark trajectory — until now nothing watched it.  This module
compares a freshly generated benchmark payload against its committed
baseline within **explicit tolerances** and exits non-zero on any
drift, so CI fails when a change regresses a measured number (or
silently changes the payload schema).

Rules are matched by fnmatch pattern over the slash-joined path of
each leaf (e.g. ``rows/0/cpu_pct``); the first matching rule wins and
unmatched numeric leaves must be **exactly** equal.  Drift in either
direction fails: an unexplained improvement is as suspicious as a
regression when the workload is seeded and deterministic.

Usage::

    python -m repro.bench.regress --baseline BENCH_slo.json \
        --fresh /tmp/fresh/BENCH_slo.json [--rule 'rows/*/cpu_pct=rel:0.1']

Payloads carrying a :data:`repro.bench.provenance.MANIFEST_KEY` block
are compared manifest-first: when the two manifests describe different
experiments (corpus version, seed base, config hash — ``git_sha`` is
exempt) the diff is refused outright, because tolerances are
meaningless across experiments.  ``--ignore-manifest`` overrides the
refusal; the manifest block itself is always excluded from the
value diff.

Payloads may also embed a deterministic stack profile under
:data:`repro.profiling.PROFILE_KEY` (``benchmarks/bench_slo.py`` does).
Like the manifest it is **always** excluded from the value diff; with
``--explain``, a failing gate additionally diffs the two profiles and
prints the ranked per-frame attribution report (which stage/kernel
step ate the milliseconds) to stderr.  ``--explain-out FILE`` writes
the same attribution as JSON — CI uploads it as the failure artifact.
``--explain`` never changes the exit code: attribution is a
diagnostic, the gate is the gate.

Exit codes: 0 = within tolerance, 1 = regression detected,
2 = usage error (missing/unreadable file, malformed rule),
3 = provenance manifest mismatch (payloads are not comparable).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.provenance import MANIFEST_KEY, manifest_mismatches
from repro.profiling import PROFILE_KEY, Profile, diff_profiles, report_lines

#: Tolerance classes for a leaf value: ``rel`` is a fraction of the
#: baseline magnitude, ``abs_tol`` an absolute slack; a value passes
#: when within ``max(abs_tol, rel * |baseline|)`` of the baseline.
@dataclass(frozen=True)
class Rule:
    pattern: str
    rel: float = 0.0
    abs_tol: float = 0.0

    def allows(self, baseline: float, fresh: float) -> bool:
        return abs(fresh - baseline) <= max(self.abs_tol,
                                            self.rel * abs(baseline))


#: Default tolerances for the committed benchmark payloads.  Counters,
#: flags and alert records are exact; modelled averages get a small
#: relative band (they shift only when the cost model or workload
#: does); wall-clock micro-bench timings are inherently noisy.
DEFAULT_RULES: Tuple[Rule, ...] = (
    Rule("*cpu_pct*", rel=0.02),
    Rule("*power_mw*", rel=0.02),
    Rule("*memory_mb*", rel=0.02),
    Rule("*recall*", abs_tol=0.02),
    Rule("*quantiles*", rel=0.05),
    Rule("*compliance*", abs_tol=0.02),
    Rule("*burn_rate*", rel=0.25),
    Rule("*forward_ms*", rel=0.6),
    Rule("*speedup*", rel=0.5),
)


@dataclass(frozen=True)
class Violation:
    path: str
    reason: str
    baseline: object = None
    fresh: object = None

    def __str__(self) -> str:
        detail = ""
        if self.baseline is not None or self.fresh is not None:
            detail = f" (baseline={self.baseline!r}, fresh={self.fresh!r})"
        return f"{self.path or '<root>'}: {self.reason}{detail}"


def _rule_for(path: str, rules: Sequence[Rule]) -> Optional[Rule]:
    for rule in rules:
        if fnmatchcase(path, rule.pattern):
            return rule
    return None


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare(baseline: object, fresh: object,
            rules: Sequence[Rule] = DEFAULT_RULES,
            path: str = "") -> List[Violation]:
    """Structural diff with per-leaf tolerances; returns violations."""
    if isinstance(baseline, dict) and isinstance(fresh, dict):
        out: List[Violation] = []
        for key in sorted(baseline):
            child = f"{path}/{key}" if path else str(key)
            if key not in fresh:
                out.append(Violation(child, "missing from fresh payload",
                                     baseline=baseline[key]))
                continue
            out.extend(compare(baseline[key], fresh[key], rules, child))
        for key in sorted(set(fresh) - set(baseline)):
            child = f"{path}/{key}" if path else str(key)
            out.append(Violation(child, "not in baseline (schema drift)",
                                 fresh=fresh[key]))
        return out
    if isinstance(baseline, list) and isinstance(fresh, list):
        if len(baseline) != len(fresh):
            return [Violation(path, "length changed",
                              baseline=len(baseline), fresh=len(fresh))]
        out = []
        for i, (b, f) in enumerate(zip(baseline, fresh)):
            out.extend(compare(b, f, rules, f"{path}/{i}" if path else str(i)))
        return out
    if _is_number(baseline) and _is_number(fresh):
        rule = _rule_for(path, rules)
        if rule is None:
            if baseline != fresh:
                return [Violation(path, "exact-match value drifted",
                                  baseline=baseline, fresh=fresh)]
            return []
        if not rule.allows(float(baseline), float(fresh)):
            allowed = max(rule.abs_tol, rule.rel * abs(float(baseline)))
            return [Violation(
                path, f"outside tolerance +/-{allowed:g} "
                      f"(rule {rule.pattern!r})",
                baseline=baseline, fresh=fresh)]
        return []
    if type(baseline) is not type(fresh):
        return [Violation(path, "type changed",
                          baseline=type(baseline).__name__,
                          fresh=type(fresh).__name__)]
    if baseline != fresh:
        return [Violation(path, "value changed",
                          baseline=baseline, fresh=fresh)]
    return []


def parse_rule(text: str) -> Rule:
    """Parse ``PATTERN=rel:0.1`` / ``PATTERN=abs:2.5`` CLI rules."""
    try:
        pattern, spec = text.split("=", 1)
        kind, raw = spec.split(":", 1)
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad rule {text!r}; expected PATTERN=rel:F or PATTERN=abs:F")
    if kind == "rel":
        return Rule(pattern, rel=value)
    if kind == "abs":
        return Rule(pattern, abs_tol=value)
    raise argparse.ArgumentTypeError(
        f"bad rule kind {kind!r}; expected 'rel' or 'abs'")


def _load(path: str) -> Dict:
    with open(path) as fp:
        return json.load(fp)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench.regress",
        description="Fail when fresh benchmark output drifts from its "
                    "committed baseline beyond explicit tolerances.",
    )
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json baseline")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated benchmark payload")
    parser.add_argument("--rule", action="append", type=parse_rule,
                        default=[], metavar="PATTERN=rel:F|abs:F",
                        help="extra tolerance rule (checked before the "
                             "defaults; repeatable)")
    parser.add_argument("--ignore-manifest", action="store_true",
                        help="diff the values even when the provenance "
                             "manifests disagree (exit 3 otherwise)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-violation listing")
    parser.add_argument("--explain", action="store_true",
                        help="on failure, diff the embedded profiles and "
                             "print the ranked per-frame attribution")
    parser.add_argument("--explain-out", metavar="FILE", default=None,
                        help="write the failure attribution as JSON "
                             "(implies --explain)")
    parser.add_argument("--explain-top", type=int, default=15,
                        metavar="N", help="frames to print with --explain")
    return parser


def _parse_profile(tag: str, payload: object) -> Optional[Profile]:
    """A popped profile block as a Profile, or None (with a note)."""
    if payload is None:
        return None
    try:
        return Profile.from_dict(payload)  # type: ignore[arg-type]
    except (ValueError, TypeError, AttributeError) as exc:
        print(f"regress: ignoring malformed profile block in {tag}: {exc}",
              file=sys.stderr)
        return None


def _explain(baseline_profile: Optional[Profile],
             fresh_profile: Optional[Profile],
             violations: Sequence[Violation],
             top: int, out_path: Optional[str]) -> None:
    """Print (and optionally write) the failure attribution report."""
    if baseline_profile is None or fresh_profile is None:
        missing = [tag for tag, prof in (("baseline", baseline_profile),
                                         ("fresh", fresh_profile))
                   if prof is None]
        print(f"regress: --explain: no profile block in "
              f"{' and '.join(missing)} payload(s); cannot attribute",
              file=sys.stderr)
        attribution = None
    else:
        diff = diff_profiles(baseline_profile, fresh_profile)
        print("regress: attribution (embedded profile diff):",
              file=sys.stderr)
        for line in report_lines(diff, top_n=top):
            print(f"  {line}", file=sys.stderr)
        attribution = diff.to_dict()
    if out_path is not None:
        try:
            with open(out_path, "w") as fp:
                json.dump({"violations": [str(v) for v in violations],
                           "attribution": attribution},
                          fp, sort_keys=True, indent=2)
                fp.write("\n")
        except OSError as exc:
            print(f"regress: cannot write --explain-out {out_path}: {exc}",
                  file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        baseline = _load(args.baseline)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"regress: cannot read baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2
    try:
        fresh = _load(args.fresh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"regress: cannot read fresh payload {args.fresh}: {exc}",
              file=sys.stderr)
        return 2
    # Profile blocks ride along for --explain but are never part of the
    # value diff (same contract as the manifest): the gate judges the
    # measured numbers, the profile explains them.
    baseline_profile = baseline.pop(PROFILE_KEY, None)
    fresh_profile = fresh.pop(PROFILE_KEY, None)
    # Manifest gate first: numbers from different experiments are not
    # comparable, no matter how tolerant the rules.
    baseline_manifest = baseline.pop(MANIFEST_KEY, None)
    fresh_manifest = fresh.pop(MANIFEST_KEY, None)
    mismatches = manifest_mismatches(baseline_manifest, fresh_manifest)
    if mismatches and not args.ignore_manifest:
        print(f"regress: provenance mismatch between {args.baseline} and "
              f"{args.fresh}; refusing to compare:", file=sys.stderr)
        for mismatch in mismatches:
            print(f"  {mismatch}", file=sys.stderr)
        print("  (pass --ignore-manifest to diff anyway)", file=sys.stderr)
        return 3
    rules = tuple(args.rule) + DEFAULT_RULES
    violations = compare(baseline, fresh, rules)
    if violations:
        if not args.quiet:
            print(f"regress: {len(violations)} regression(s) against "
                  f"{args.baseline}:", file=sys.stderr)
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
        if args.explain or args.explain_out is not None:
            _explain(_parse_profile(args.baseline, baseline_profile),
                     _parse_profile(args.fresh, fresh_profile),
                     violations, args.explain_top, args.explain_out)
        return 1
    print(f"regress: {args.fresh} matches {args.baseline} within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
