"""Shared infrastructure for the benchmark harness.

Each benchmark under ``benchmarks/`` regenerates one table or figure of
the paper.  The expensive artifacts they share — the rendered corpus
splits and the trained detector — are built once and cached on disk
(:mod:`repro.bench.cache`), so the full suite runs end-to-end without
retraining per table.  :mod:`repro.bench.tables` renders aligned text
tables next to the paper's published values;
:mod:`repro.bench.experiments` holds the experiment drivers the
benchmarks and examples call.
"""

from repro.bench.cache import BenchCache, default_cache
from repro.bench.tables import format_table, print_table
from repro.bench.experiments import (
    STORM_DARPA_KWARGS,
    build_runtime_fleet,
    evaluate_detector,
    get_corpus_and_splits,
    get_test_dataset,
    get_trained_model,
    run_darpa_over_fleet,
    run_darpa_session,
    storm_fault_plan,
)
from repro.bench.kernels import BASELINE_MS_BATCH32, run_kernel_bench
from repro.bench.parallel import (
    merge_trace_artifacts,
    run_darpa_over_fleet_parallel,
    write_session_part,
)
from repro.bench.provenance import build_manifest, manifest_mismatches

__all__ = [
    "BenchCache",
    "default_cache",
    "format_table",
    "print_table",
    "STORM_DARPA_KWARGS",
    "storm_fault_plan",
    "build_runtime_fleet",
    "evaluate_detector",
    "get_corpus_and_splits",
    "get_test_dataset",
    "get_trained_model",
    "run_darpa_over_fleet",
    "run_darpa_session",
    "merge_trace_artifacts",
    "run_darpa_over_fleet_parallel",
    "write_session_part",
    "BASELINE_MS_BATCH32",
    "run_kernel_bench",
    "build_manifest",
    "manifest_mismatches",
]
