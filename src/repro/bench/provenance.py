"""Provenance manifests for committed benchmark payloads.

A ``BENCH_*.json`` number is only comparable to another run of the
*same experiment*: same corpus generation, same seed base, same
benchmark configuration.  Every benchmark writer stamps its payload
with a ``manifest`` block recording exactly that:

- ``corpus_version`` — version tag of the seeded corpus/workload the
  benchmark ran against;
- ``seed_base`` — base RNG seed the run derived its streams from;
- ``config_hash`` — digest of the benchmark configuration mapping
  (tolerances, batch sizes, worker counts, ...);
- ``git_sha`` — the tree the numbers were measured on (recorded for
  forensics, **excluded** from comparison: every CI run has a new SHA);
- ``manifest_version`` — schema version of this block itself.

``repro regress`` refuses to diff two payloads whose manifests
disagree (distinct exit code 3) — a red "regression" between runs of
different experiments is noise, and a green one is worse.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from typing import Dict, List, Mapping, Optional

#: Key under which the manifest block lives in a benchmark payload.
MANIFEST_KEY = "manifest"

#: Schema version of the manifest block.
MANIFEST_VERSION = 1

#: Manifest fields that never participate in comparison.
_COMPARE_EXCLUDED = ("git_sha",)


def config_hash(config: Mapping) -> str:
    """Deterministic short digest of a benchmark configuration mapping."""
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def git_sha() -> str:
    """Current tree SHA: ``DARPA_GIT_SHA`` env override, then git,
    then ``"unknown"`` (payloads must be writable outside a checkout)."""
    override = os.environ.get("DARPA_GIT_SHA")
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def build_manifest(corpus_version: str, seed_base: int,
                   config: Mapping) -> Dict[str, object]:
    """Assemble the manifest block a benchmark writer embeds."""
    return {
        "manifest_version": MANIFEST_VERSION,
        "corpus_version": corpus_version,
        "seed_base": int(seed_base),
        "config_hash": config_hash(config),
        "git_sha": git_sha(),
    }


def manifest_mismatches(baseline: Optional[Mapping],
                        fresh: Optional[Mapping]) -> List[str]:
    """Fields on which two manifests disagree (empty = comparable).

    Both-absent is comparable (legacy payloads predating manifests);
    one-sided presence is a mismatch.  ``git_sha`` never participates.
    """
    if baseline is None and fresh is None:
        return []
    if baseline is None or fresh is None:
        side = "baseline" if baseline is None else "fresh"
        return [f"{MANIFEST_KEY} missing from {side} payload"]
    out: List[str] = []
    keys = sorted(set(baseline) | set(fresh))
    for key in keys:
        if key in _COMPARE_EXCLUDED:
            continue
        b, f = baseline.get(key), fresh.get(key)
        if b != f:
            out.append(f"{key}: baseline={b!r}, fresh={f!r}")
    return out


__all__ = [
    "MANIFEST_KEY",
    "MANIFEST_VERSION",
    "build_manifest",
    "config_hash",
    "git_sha",
    "manifest_mismatches",
]
