"""Disk caching for expensive benchmark artifacts.

Trained detector states are cached as ``.npz`` files keyed by a
configuration fingerprint, so the first benchmark invocation trains
once and every later table reuses the model.  The cache lives in
``.bench_cache/`` at the repository root (or ``$REPRO_CACHE_DIR``).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np


class BenchCache:
    """A tiny content-addressed ``.npz`` store."""

    def __init__(self, root: Optional[Path] = None):
        if root is None:
            env = os.environ.get("REPRO_CACHE_DIR")
            root = Path(env) if env else Path(__file__).resolve().parents[3] / ".bench_cache"
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def fingerprint(config: Dict) -> str:
        blob = json.dumps(config, sort_keys=True, default=str).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def _path(self, name: str, config: Dict) -> Path:
        return self.root / f"{name}-{self.fingerprint(config)}.npz"

    def has(self, name: str, config: Dict) -> bool:
        return self._path(name, config).exists()

    def load(self, name: str, config: Dict) -> Dict[str, np.ndarray]:
        path = self._path(name, config)
        with np.load(path, allow_pickle=False) as data:
            return {k: data[k] for k in data.files}

    def store(self, name: str, config: Dict,
              arrays: Dict[str, np.ndarray]) -> Path:
        path = self._path(name, config)
        tmp = path.with_suffix(".tmp.npz")
        np.savez(tmp, **arrays)
        tmp.replace(path)
        return path

    def get_or_build(
        self,
        name: str,
        config: Dict,
        builder: Callable[[], Dict[str, np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        """Load the cached artifact or build + persist it."""
        if self.has(name, config):
            return self.load(name, config)
        arrays = builder()
        self.store(name, config, arrays)
        return arrays


_default: Optional[BenchCache] = None


def default_cache() -> BenchCache:
    global _default
    if _default is None:
        _default = BenchCache()
    return _default
