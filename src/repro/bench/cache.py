"""Disk caching for expensive benchmark artifacts.

Trained detector states are cached as ``.npz`` files keyed by a
configuration fingerprint, so the first benchmark invocation trains
once and every later table reuses the model.  The cache lives in
``.bench_cache/`` at the repository root (or ``$REPRO_CACHE_DIR``).
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
import zipfile
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np


class BenchCache:
    """A tiny content-addressed ``.npz`` store."""

    def __init__(self, root: Optional[Path] = None):
        if root is None:
            env = os.environ.get("REPRO_CACHE_DIR")
            root = Path(env) if env else Path(__file__).resolve().parents[3] / ".bench_cache"
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def fingerprint(config: Dict) -> str:
        blob = json.dumps(config, sort_keys=True, default=str).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def _path(self, name: str, config: Dict) -> Path:
        return self.root / f"{name}-{self.fingerprint(config)}.npz"

    def has(self, name: str, config: Dict) -> bool:
        return self._path(name, config).exists()

    def load(self, name: str, config: Dict) -> Dict[str, np.ndarray]:
        path = self._path(name, config)
        with np.load(path, allow_pickle=False) as data:
            return {k: data[k] for k in data.files}

    def store(self, name: str, config: Dict,
              arrays: Dict[str, np.ndarray]) -> Path:
        """Atomically persist ``arrays`` under the config fingerprint.

        Safe under concurrent writers (e.g. the parallel fleet runner's
        workers warming the same artifact): each writer stages to its
        own uniquely-named temp file in the cache directory and then
        atomically renames over the target, so readers only ever see a
        complete ``.npz`` and the last finished writer wins.
        """
        path = self._path(name, config)
        tmp = path.with_suffix(f".tmp-{os.getpid()}-{uuid.uuid4().hex}.npz")
        try:
            np.savez(tmp, **arrays)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return path

    def get_or_build(
        self,
        name: str,
        config: Dict,
        builder: Callable[[], Dict[str, np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        """Load the cached artifact or build + persist it.

        An artifact that exists but cannot be read back (truncated or
        corrupt archive) is treated as a miss and rebuilt in place —
        a stale half-written file must never poison every later run.
        """
        if self.has(name, config):
            try:
                return self.load(name, config)
            # Corrupt/truncated artifact == cache miss by design: the
            # rebuild below is the recovery, nothing is being hidden.
            except (OSError, ValueError, zipfile.BadZipFile):  # darpalint: disable=DL005
                pass  # fall through and rebuild
        arrays = builder()
        self.store(name, config, arrays)
        return arrays


_default: Optional[BenchCache] = None


def default_cache() -> BenchCache:
    global _default
    if _default is None:
        _default = BenchCache()
    return _default
