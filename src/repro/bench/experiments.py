"""Experiment drivers shared by the benchmark suite and examples.

Three layers:

- **Artifacts** — corpus/splits/datasets/trained models, memoized in
  process and (for the model) cached on disk;
- **Static evaluation** — run a detector over a rendered split and
  score it at the paper's IoU=0.9 protocol (Tables III-V);
- **Runtime fleets** — simulated 100-app sessions driven through
  ``DarpaService`` for the end-to-end comparisons and overhead studies
  (Tables VI-VIII, Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.android.apps import AppSpec, ScreenState, SimulatedApp, UiStep, UiTimeline
from repro.android.adb import dump_view_hierarchy
from repro.android.device import Device, PerfOp, PerfReport
from repro.android.faults import (
    FaultPlan,
    FaultyDetector,
    FaultyDevice,
    ScreenshotFailedError,
)
from repro.android.monkey import Monkey
from repro.android.resources import ResourceIdPolicy
from repro.core import DarpaConfig, DarpaService, ScreenshotPolicy
from repro.core.observability import Tracer
from repro.datagen import build_corpus, build_non_aui_screen, build_aui_screen, split_corpus
from repro.datagen.corpus import Corpus
from repro.vision import (
    DetectionEvaluator,
    EvalResult,
    TinyYolo,
    YoloConfig,
    YoloTrainer,
    build_detection_dataset,
)
from repro.vision.dataset import DetectionDataset
from repro.bench.cache import default_cache

#: Default training budget for cached benchmark models.
DEFAULT_EPOCHS = 110
DEFAULT_CONF_THRESHOLD = 0.3

_corpus_memo: Dict[int, Tuple[Corpus, Dict[str, list]]] = {}
_dataset_memo: Dict[Tuple, DetectionDataset] = {}
_model_memo: Dict[Tuple, TinyYolo] = {}


def get_corpus_and_splits(seed: int = 0):
    """The corpus and its Table II splits (memoized per seed)."""
    if seed not in _corpus_memo:
        corpus = build_corpus(seed=seed)
        _corpus_memo[seed] = (corpus, split_corpus(corpus, seed=seed))
    return _corpus_memo[seed]


def get_dataset(split: str, masked: bool = False, seed: int = 0,
                keep_screen_images: bool = False) -> DetectionDataset:
    key = (split, masked, seed, keep_screen_images)
    if key not in _dataset_memo:
        _, splits = get_corpus_and_splits(seed)
        _dataset_memo[key] = build_detection_dataset(
            splits[split], masked=masked,
            keep_screen_images=keep_screen_images,
        )
    return _dataset_memo[key]


def get_test_dataset(masked: bool = False, seed: int = 0) -> DetectionDataset:
    return get_dataset("test", masked=masked, seed=seed,
                       keep_screen_images=True)


def get_trained_model(
    masked: bool = False,
    epochs: int = DEFAULT_EPOCHS,
    seed: int = 0,
    verbose: bool = False,
) -> TinyYolo:
    """The benchmark detector, trained once and cached on disk."""
    key = (masked, epochs, seed)
    if key in _model_memo:
        return _model_memo[key]
    config = YoloConfig()
    cache_key = {
        "masked": masked, "epochs": epochs, "seed": seed,
        "channels": config.channels, "input": (config.input_w, config.input_h),
        "lambda_upo": config.lambda_upo, "v": 2,
    }
    model = TinyYolo(config, seed=seed)
    cache = default_cache()

    def _train() -> Dict[str, np.ndarray]:
        train = get_dataset("train", masked=masked, seed=seed)
        trainer = YoloTrainer(model, lr=2e-3, batch_size=16, seed=seed)
        trainer.fit(train, epochs=epochs, verbose=verbose)
        return model.state_dict()

    state = cache.get_or_build("yolo", cache_key, _train)
    model.load_state_dict(state)
    _model_memo[key] = model
    return model


def evaluate_detector(
    detector,
    dataset: DetectionDataset,
    conf_threshold: float = DEFAULT_CONF_THRESHOLD,
    refine: bool = True,
    iou_threshold: float = 0.9,
    batch_size: int = 32,
) -> EvalResult:
    """Paper protocol: per-class P/R/F1 at IoU 0.9 over a split."""
    if dataset.screen_images is None:
        raise ValueError("evaluation needs keep_screen_images=True")
    evaluator = DetectionEvaluator(iou_threshold=iou_threshold)
    if hasattr(detector, "detect_screens"):
        # Batched serving path: chunks of screenshots go through one
        # plan forward each (see repro.vision.nn.infer); results are
        # bit-identical to the per-image loop below.
        for start in range(0, len(dataset), batch_size):
            images = dataset.screen_images[start:start + batch_size]
            for offset, dets in enumerate(detector.detect_screens(
                    images, refine=refine, conf_threshold=conf_threshold)):
                evaluator.add_image(dets, dataset.screen_labels[start + offset])
        return evaluator.result()
    for i in range(len(dataset)):
        if hasattr(detector, "detect_screen"):
            try:
                dets = detector.detect_screen(
                    dataset.screen_images[i], refine=refine,
                    conf_threshold=conf_threshold,
                )
            except TypeError:  # RCNN detectors take only the image
                dets = detector.detect_screen(dataset.screen_images[i])
        else:
            raise TypeError(f"{detector!r} has no detect_screen")
        evaluator.add_image(dets, dataset.screen_labels[i])
    return evaluator.result()


# ---------------------------------------------------------------------------
# Runtime fleets
# ---------------------------------------------------------------------------

@dataclass
class FleetSession:
    """One app's scripted 60-second session plus its ground truth."""

    spec: AppSpec
    aui_screens: List[ScreenState]        # AUI screens with >= 1 UPO
    non_aui_screens: List[ScreenState]


def _burst_pause_offsets(rng: np.random.Generator,
                         slot_ms: float) -> List[float]:
    """Event offsets of an animated screen: bursts of rapid ticks
    separated by a per-screen pause.

    Real carousel/countdown UIs animate in bursts; whether a debouncer
    with cut-off ``ct`` ever captures such a screen depends on whether
    the pause exceeds ``ct`` — which is exactly the coverage-vs-ct
    trade-off Figure 8 sweeps.  The pause is drawn once per screen so
    screens with a short pause are *never* captured at large ct.
    """
    tick = float(rng.uniform(55, 190))
    pause = float(rng.uniform(60, 700))
    offsets: List[float] = []
    t = tick
    horizon = slot_ms - 20.0  # animate until the screen is replaced
    while t < horizon:
        burst_len = int(rng.integers(6, 14))
        for _ in range(burst_len):
            if t >= horizon:
                break
            offsets.append(t)
            t += tick
        t += pause
    return offsets


def _session_timeline(
    screens: List[Tuple[ScreenState, bool]],
    rng: np.random.Generator,
    duration_ms: float,
) -> UiTimeline:
    """Spread screens over the session with realistic event noise.

    Most screens emit a few settle-down ticks and go quiet; a minority
    animate in burst-pause rhythm for their whole display, which is what
    the ct sweep (Fig 8 / Table VIII) trades against.
    """
    n = len(screens)
    slot = duration_ms / n
    starts = [0.0]
    for _ in range(n - 1):
        starts.append(starts[-1] + slot * float(rng.uniform(0.85, 1.15)))
    steps: List[UiStep] = []
    for i, (state, animated) in enumerate(screens):
        at = starts[i]
        horizon = (starts[i + 1] if i + 1 < n else duration_ms) - at
        if animated:
            # Animated screens tick until they are replaced — their last
            # pre-switch gap is just another pause, so a screen whose
            # pause is below ct is never captured at that ct.
            offsets = _burst_pause_offsets(rng, horizon)
            steps.append(UiStep(at_ms=at, screen=state,
                                update_offsets=offsets))
        else:
            minor = int(rng.integers(0, 4))
            spacing = float(rng.uniform(40, 120))
            steps.append(UiStep(at_ms=at, screen=state, minor_updates=minor,
                                minor_spacing_ms=spacing))
    return UiTimeline(steps)


def build_runtime_fleet(
    n_apps: int = 100,
    seed: int = 0,
    duration_ms: float = 60_000.0,
    animated_frac: float = 0.28,
) -> List[FleetSession]:
    """Scripted sessions matching the Table VI workload: 100 apps run
    for one minute each, showing a mix of ordinary screens, benign
    dialogs and AUI interstitials."""
    corpus, _ = get_corpus_and_splits(seed)
    rng = np.random.default_rng(seed + 31)
    sample_pool = [s for s in corpus.samples if s.spec.n_upo > 0]
    sessions: List[FleetSession] = []
    for i in range(n_apps):
        app_profile = corpus.apps[i % len(corpus.apps)]
        n_aui = int(rng.integers(2, 4))       # ~2.4 AUI screens per app
        n_plain = int(rng.integers(2, 4))
        # Benign close-button dialogs are the FP bait; they are a real
        # but minority share of everyday screens.
        n_benign = int(rng.random() < 0.45)
        auis: List[ScreenState] = []
        for _ in range(n_aui):
            sample = sample_pool[int(rng.integers(0, len(sample_pool)))]
            auis.append(build_aui_screen(sample.spec,
                                         package=app_profile.package,
                                         id_policy=app_profile.id_policy))
        negatives: List[ScreenState] = []
        for k in range(n_plain + n_benign):
            negatives.append(build_non_aui_screen(
                rng, benign_close=k >= n_plain,
                package=app_profile.package,
                id_policy=app_profile.id_policy,
                fullscreen=bool(rng.integers(0, 2)),
            ))
        screens = ([(s, rng.random() < animated_frac) for s in auis]
                   + [(s, rng.random() < animated_frac) for s in negatives])
        rng.shuffle(screens)
        timeline = _session_timeline(screens, rng, duration_ms)
        sessions.append(FleetSession(
            spec=AppSpec(package=app_profile.package, timeline=timeline,
                         id_policy=app_profile.id_policy,
                         category=app_profile.category),
            aui_screens=auis,
            non_aui_screens=negatives,
        ))
    return sessions


@dataclass
class SessionResult:
    """Outcome of one DARPA-supervised session."""

    package: str
    perf: PerfReport
    events_total: int
    screens_analyzed: int
    screen_verdicts: List[Tuple[bool, bool]]  # (labeled_aui, flagged)
    frauddroid_verdicts: List[Tuple[bool, bool]] = field(default_factory=list)
    auis_shown: int = 0
    auis_flagged: int = 0
    #: DarpaStats resilience counters (screenshot_failures, retries,
    #: breaker_opens, fallback_detections, deadline_skips, ...).
    resilience: Dict[str, int] = field(default_factory=dict)
    #: FaultInjector counters — what the chaos plan actually injected.
    injected: Dict[str, int] = field(default_factory=dict)
    #: Exported spans (JSON-ready dicts) when the session ran with
    #: ``trace=True``; None otherwise.  The root ``session`` span plus
    #: every nested stage — :func:`repro.core.observability.report_from_spans`
    #: rebuilds :attr:`perf` from these bit-for-bit.
    spans: Optional[List[Dict]] = None
    #: MetricsRegistry snapshot (counters/gauges/histograms) of a traced
    #: run; empty when tracing was off or the mode had no service.
    metrics: Dict = field(default_factory=dict)


#: DarpaConfig overrides that make the storm plan's detector faults
#: reachable: a hair-trigger breaker and a watchdog budget the injected
#: latency spikes overrun.
STORM_DARPA_KWARGS: Dict[str, float] = {
    "breaker_failure_threshold": 2,
    "deadline_ms": 250.0,
}


def storm_fault_plan(seed: int = 0) -> FaultPlan:
    """The canonical "storm" chaos plan for SLO smoke runs.

    Heavy enough that every default SLO's failure mode is reachable —
    capture failures and throttling burn the capture/reaction budgets,
    overlay rejections burn decoration success, detector crashes and
    latency spikes burn the fallback and watchdog budgets.  Pair with
    :data:`STORM_DARPA_KWARGS`.  Fully seeded: the same storm replays
    identically under any worker or shard count.
    """
    return FaultPlan(
        seed=seed,
        screenshot_failure_rate=0.3,
        screenshot_min_interval_ms=150.0,
        event_drop_rate=0.1,
        event_duplicate_rate=0.1,
        event_storm_rate=0.05,
        overlay_rejection_rate=0.25,
        detector_failure_rate=0.15,
        detector_spike_rate=0.3,
    )


class _NullDetector:
    """Detector stand-in for the monitoring-only overhead mode."""

    def detect_screen(self, screen_image, refine=True, conf_threshold=None):
        return []


class OracleDetector:
    """Answers from the foreground screen's ground-truth labels.

    Used by the ct-sweep experiments (Table VIII / Figure 8), which
    measure what the *debouncer* loses — model accuracy is a separate,
    already-measured axis (Table III) and would only blur the sweep.
    """

    def __init__(self, device: Device, app: SimulatedApp):
        self.device = device
        self.app = app

    def detect_screen(self, screen_image, refine=True, conf_threshold=None):
        from repro.geometry.nms import ScoredBox
        state = self.app.current
        if state is None or not state.is_aui:
            return []
        top = self.device.window_manager.top_app_window()
        out = []
        for role, rect in state.label_boxes:
            box = rect.offset_by(top.offset) if top is not None else rect
            out.append(ScoredBox(rect=box, label=role, score=0.99))
        return out


def run_darpa_session(
    session: FleetSession,
    detector,
    ct_ms: float = 200.0,
    mode: str = "full",
    duration_ms: float = 60_000.0,
    monkey_seed: Optional[int] = None,
    frauddroid=None,
    conf_threshold: float = DEFAULT_CONF_THRESHOLD,
    fault_plan: Optional[FaultPlan] = None,
    darpa_kwargs: Optional[Dict] = None,
    trace: bool = False,
) -> SessionResult:
    """Replay one session under a DARPA configuration.

    ``mode`` decomposes overhead as Table VII does: ``baseline`` (no
    DARPA), ``monitor`` (events + screenshots only), ``detect``
    (+model), ``full`` (+decoration).

    ``fault_plan`` runs the session on a :class:`FaultyDevice`; the
    per-session injector is re-seeded off the global fleet index (via
    ``monkey_seed``) so chaos runs stay deterministic under any worker
    or shard count.  ``darpa_kwargs`` forwards extra
    :class:`DarpaConfig` fields (e.g. ``deadline_ms``,
    ``breaker_failure_threshold``) to the service.

    ``trace=True`` runs the whole session under a
    :class:`~repro.core.observability.Tracer`: the result carries the
    exported spans and a metrics snapshot, and every cost-model charge
    is attributed to exactly one span — with tracing off the run is
    bit-identical, just unobserved.
    """
    if mode not in ("baseline", "monitor", "detect", "full"):
        raise ValueError(f"unknown mode {mode!r}")
    if fault_plan is not None:
        session_plan = replace(
            fault_plan, seed=fault_plan.seed + 7919 * ((monkey_seed or 0) + 1))
        device: Device = FaultyDevice(plan=session_plan, seed=monkey_seed or 0)
    else:
        device = Device(seed=monkey_seed or 0)
    tracer: Optional[Tracer] = None
    if trace:
        # Observe the meter before anything records: even the baseline
        # mode (no service) attributes its charges to the session root.
        tracer = Tracer(device.clock, trace_id=f"session-{monkey_seed or 0}")
        tracer.observe_perf(device.perf)
    app = SimulatedApp(device, session.spec)
    stub_screens = False
    if detector == "oracle":
        detector = OracleDetector(device, app)
        # The oracle never reads pixels; skip rasterization (identical
        # perf accounting, ~10x faster sweeps).
        stub_screens = True

    frauddroid_hits: List[Tuple[ScreenState, bool]] = []
    service: Optional[DarpaService] = None
    if mode != "baseline":
        active_detector = detector if mode in ("detect", "full") else _NullDetector()
        if fault_plan is not None and not fault_plan.is_null:
            active_detector = FaultyDetector(active_detector, device.faults)
        config = DarpaConfig(ct_ms=ct_ms, conf_threshold=conf_threshold,
                             decorate=(mode == "full"),
                             stub_screenshots=stub_screens or mode == "monitor",
                             **(darpa_kwargs or {}))
        service = DarpaService(device, active_detector, config=config,
                               policy=ScreenshotPolicy(consent_given=True),
                               tracer=tracer)
        service.start()
        if mode == "monitor":
            # Monitoring only: collect settled screenshots, never run
            # the model.  Replace the settled handler so no inference is
            # billed, and rebuild component residency accordingly.
            def monitor_only(event, _service=service):
                if event.package == _service.service.package:
                    return
                try:
                    with _service.policy.analyzed_screenshot(
                            _service.service, stub=True):
                        pass
                except ScreenshotFailedError:
                    _service.stats.screenshot_failures += 1
                    return
                _service.stats.screens_analyzed += 1

            service.debouncer.on_settled = monitor_only
            device.perf.reset()
            device.perf.enable_component("monitoring")
        elif mode == "detect":
            device.perf.reset()
            device.perf.enable_component("monitoring")
            device.perf.enable_component("detection")

    if frauddroid is not None and service is not None:
        original = service._on_settled

        def settled_with_frauddroid(event):
            state = app.current
            if state is not None:
                nodes = dump_view_hierarchy(device.window_manager,
                                            package=session.spec.package)
                flagged = frauddroid.screen_is_aui(nodes)
                frauddroid_hits.append((state, flagged))
            original(event)

        service.debouncer.on_settled = settled_with_frauddroid

    root_span = None
    if tracer is not None:
        root_span = tracer.start_span("session", package=session.spec.package,
                                      mode=mode, ct_ms=ct_ms)
    app.launch()
    if monkey_seed is not None:
        Monkey(device, seed=monkey_seed, taps_per_second=1.0).schedule_run(duration_ms)
    # Stop exactly at the session end: a screen that was still animating
    # when the minute ran out must not get a free post-session capture.
    device.clock.advance(duration_ms)
    app.finish()
    if tracer is not None:
        # Component residency rides on the root span so
        # report_from_spans can replay the meter's memory charges.
        tracer.end_span(root_span, components=sorted(tracer.components),
                        duration_ms=duration_ms)

    # Per-screen verdicts: a shown screen is flagged when any analysis
    # during its display found a UPO.
    verdicts: List[Tuple[bool, bool]] = []
    records = service.stats.records if service is not None else []
    for shown in app.shown_log:
        hits = [r for r in records
                if shown.start_ms <= r.timestamp_ms <= shown.end_ms + 1.0]
        flagged = any(r.flagged_aui for r in hits)
        labeled = shown.screen.is_aui and bool(shown.screen.boxes_of("UPO"))
        verdicts.append((labeled, flagged))

    # FraudDroid verdicts are aggregated per shown screen too (a screen
    # analyzed several times is flagged when any analysis flagged it),
    # so both detectors are scored on the same screenshot population.
    fd_verdicts: List[Tuple[bool, bool]] = []
    if frauddroid is not None:
        fd_by_screen: Dict[int, bool] = {}
        for state, flagged in frauddroid_hits:
            key = id(state)
            fd_by_screen[key] = fd_by_screen.get(key, False) or flagged
        for shown in app.shown_log:
            key = id(shown.screen)
            if key not in fd_by_screen:
                continue  # never settled -> never judged by either side
            labeled = shown.screen.is_aui and bool(shown.screen.boxes_of("UPO"))
            fd_verdicts.append((labeled, fd_by_screen[key]))

    resilience: Dict[str, int] = {}
    if service is not None:
        stats = service.stats
        resilience = {
            "screenshot_failures": stats.screenshot_failures,
            "retries": stats.retries,
            "detector_failures": stats.detector_failures,
            "breaker_opens": stats.breaker_opens,
            "fallback_detections": stats.fallback_detections,
            "deadline_skips": stats.deadline_skips,
            "overlay_rejections": stats.overlay_rejections,
        }
    injected: Dict[str, int] = {}
    faults = getattr(device, "faults", None)
    if faults is not None:
        injected = dict(faults.counts)

    spans: Optional[List[Dict]] = None
    metrics: Dict = {}
    if tracer is not None:
        spans = tracer.export()
        if tracer.registry is not None:
            metrics = tracer.registry.snapshot()

    return SessionResult(
        package=session.spec.package,
        perf=device.perf.report(duration_ms),
        events_total=len(device.event_log),
        screens_analyzed=(service.stats.screens_analyzed if service else 0),
        screen_verdicts=verdicts,
        frauddroid_verdicts=fd_verdicts,
        auis_shown=sum(1 for labeled, _ in verdicts if labeled),
        auis_flagged=sum(1 for labeled, f in verdicts if labeled and f),
        resilience=resilience,
        injected=injected,
        spans=spans,
        metrics=metrics,
    )


def run_darpa_over_fleet(
    sessions: Sequence[FleetSession],
    detector,
    ct_ms: float = 200.0,
    mode: str = "full",
    frauddroid=None,
    conf_threshold: float = DEFAULT_CONF_THRESHOLD,
    fault_plan: Optional[FaultPlan] = None,
    darpa_kwargs: Optional[Dict] = None,
    trace: bool = False,
) -> List[SessionResult]:
    return [
        run_darpa_session(s, detector, ct_ms=ct_ms, mode=mode,
                          monkey_seed=1000 + i, frauddroid=frauddroid,
                          conf_threshold=conf_threshold,
                          fault_plan=fault_plan, darpa_kwargs=darpa_kwargs,
                          trace=trace)
        for i, s in enumerate(sessions)
    ]
