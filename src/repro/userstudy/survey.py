"""The survey instrument (paper Section III-B).

Three parts: perceptions of AUI (Q1-Q2), quantitative accessibility
ratings for the options on three example AUIs (Q3-Q5) plus context
questions (Q6-Q8), and expected countermeasures (Q9-Q12); demographics
close the survey.  Responses are validated against each question's
domain, and the paper's anti-robot quality gate (completion time >= 90
seconds) is enforced at ingestion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple, Union

Answer = Union[str, int, float, Tuple[float, float]]


class QuestionKind(Enum):
    CHOICE = "choice"           # one option from a list
    RATING = "rating"           # integer 1..10
    PAIR_RATING = "pair_rating"  # (AGO rating, UPO rating), each 1..10


@dataclass(frozen=True)
class Question:
    qid: str
    text: str
    kind: QuestionKind
    options: Tuple[str, ...] = ()

    def validate(self, answer: Answer) -> None:
        if self.kind is QuestionKind.CHOICE:
            if answer not in self.options:
                raise ValueError(f"{self.qid}: {answer!r} not in {self.options}")
        elif self.kind is QuestionKind.RATING:
            if not (isinstance(answer, (int, float)) and 1 <= answer <= 10):
                raise ValueError(f"{self.qid}: rating must be 1..10, got {answer!r}")
        elif self.kind is QuestionKind.PAIR_RATING:
            ok = (isinstance(answer, tuple) and len(answer) == 2
                  and all(1 <= a <= 10 for a in answer))
            if not ok:
                raise ValueError(f"{self.qid}: expected (ago, upo) 1..10 pair")


#: The instrument, one entry per paper question.
_QUESTIONS: Tuple[Question, ...] = (
    Question("Q1", "Do the two example UIs feel misleading and likely to "
                   "cause unintended clicks?", QuestionKind.CHOICE,
             ("yes", "no")),
    Question("Q2", "How often do you click unintended UI options in daily "
                   "app use?", QuestionKind.CHOICE,
             ("often", "occasionally", "never")),
    Question("Q3", "Rate the accessibility of the options on example AUI 1.",
             QuestionKind.PAIR_RATING),
    Question("Q4", "Rate the accessibility of the options on example AUI 2.",
             QuestionKind.PAIR_RATING),
    Question("Q5", "Rate the accessibility of the options on example AUI 3.",
             QuestionKind.PAIR_RATING),
    Question("Q6", "Which scenario most often causes your unintended "
                   "clicks?", QuestionKind.CHOICE,
             ("splash ads", "in-app promotions", "floating windows",
              "app upgrades", "other")),
    Question("Q7", "How do you feel when an unintended click happens?",
             QuestionKind.CHOICE,
             ("bothered, want to exit quickly", "indifferent", "curious")),
    Question("Q8", "Compared with apps from other countries, apps in China "
                   "show...", QuestionKind.CHOICE,
             ("more AUIs", "about the same", "fewer AUIs",
              "never used foreign apps")),
    Question("Q9", "How important is the user-preferred option relative to "
                   "the app-guided one?", QuestionKind.CHOICE,
             ("more important", "equally important", "less important")),
    Question("Q10", "Rate the need for a tool that improves accessibility "
                    "against AUIs.", QuestionKind.RATING),
    Question("Q11", "Should the mobile OS make UI options more accessible?",
             QuestionKind.CHOICE, ("yes", "no")),
    Question("Q12", "Which countermeasure would you prefer?",
             QuestionKind.CHOICE,
             ("highlight the options", "auto-skip the UI", "block the app",
              "no action")),
)


@dataclass(frozen=True)
class Demographics:
    """Q13-Q14 plus gender; no personally identifiable information."""

    gender: str           # "male" | "female"
    age_range: str        # "18-35" | "under-18" | "36-50" | "50+"
    education: str        # "bachelor+" | "other"


@dataclass
class Response:
    """One participant's validated submission."""

    answers: Dict[str, Answer]
    demographics: Demographics
    completion_seconds: float

    def rating_pairs(self) -> List[Tuple[float, float]]:
        return [self.answers[q] for q in ("Q3", "Q4", "Q5")]  # type: ignore[misc]


class SurveyInstrument:
    """Validates and collects responses, applying the quality gate."""

    #: The paper's anti-robot threshold.
    MIN_COMPLETION_SECONDS = 90.0

    def __init__(self, questions: Sequence[Question] = _QUESTIONS):
        self.questions = tuple(questions)
        self._by_id = {q.qid: q for q in self.questions}
        self.responses: List[Response] = []
        self.rejected: int = 0

    def question(self, qid: str) -> Question:
        return self._by_id[qid]

    def submit(self, response: Response) -> bool:
        """Validate and ingest; returns False when quality-gated out."""
        missing = [q.qid for q in self.questions if q.qid not in response.answers]
        if missing:
            raise ValueError(f"missing answers for {missing}")
        for qid, answer in response.answers.items():
            self._by_id[qid].validate(answer)
        if response.completion_seconds < self.MIN_COMPLETION_SECONDS:
            self.rejected += 1
            return False
        self.responses.append(response)
        return True

    @property
    def n_valid(self) -> int:
        return len(self.responses)


SURVEY = SurveyInstrument()
