"""The user study (paper Section III-B).

The study itself involved 165 human participants on Wenjuanxing; humans
are the one substrate we cannot implement.  What *is* reproducible is
everything around them, and that is what this package provides:

- :mod:`repro.userstudy.survey` — the 12-question instrument plus
  demographics, as typed data structures with response validation and
  the paper's quality gate (the 90-second completion threshold);
- :mod:`repro.userstudy.population` — a simulated respondent population
  whose response model is calibrated to the paper's published
  aggregates (the only synthetic element, clearly labeled);
- :mod:`repro.userstudy.analysis` — the analysis pipeline that turns a
  response set into Findings 1-3 and the summary statistics of
  Section III-B.
"""

from repro.userstudy.survey import (
    Demographics,
    Question,
    QuestionKind,
    Response,
    SURVEY,
    SurveyInstrument,
)
from repro.userstudy.population import PopulationModel, simulate_responses
from repro.userstudy.analysis import StudyFindings, analyze_responses, subgroup_findings

__all__ = [
    "Demographics",
    "Question",
    "QuestionKind",
    "Response",
    "SURVEY",
    "SurveyInstrument",
    "PopulationModel",
    "simulate_responses",
    "StudyFindings",
    "analyze_responses",
    "subgroup_findings",
]
