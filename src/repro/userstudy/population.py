"""A simulated respondent population.

THE ONE SYNTHETIC PIECE of the user-study reproduction: 165 respondents
whose marginal answer distributions are calibrated, quota-style, to the
aggregates the paper publishes (Section III-B).  Count-valued aggregates
are matched exactly; mean ratings are matched to within rounding by
integer rating multisets constructed to hit the published means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.userstudy.survey import Demographics, Response

N_PARTICIPANTS = 165


@dataclass(frozen=True)
class PopulationModel:
    """Published aggregates the simulated population must reproduce."""

    n: int = N_PARTICIPANTS
    n_male: int = 74                  # vs 91 female
    frac_age_18_35: float = 0.764
    frac_bachelor: float = 0.939
    q1_yes: int = 156                 # 94.5% find the examples misleading
    q2_often: int = 127
    q2_occasionally: int = 34
    q2_never: int = 4
    ago_mean: float = 7.49            # Q3-Q5 average accessibility ratings
    upo_mean: float = 4.38
    q7_bothered: int = 137            # 83.0% bothered, want to exit
    q8_foreign_app_users: int = 112
    q8_more_in_china: int = 86        # of the foreign-app users
    q9_upo_at_least_equal: int = 120  # 72.7%
    q10_mean: float = 7.64            # demand for a countermeasure
    q10_nine_plus: int = 48
    q12_highlight_majority: float = 0.55  # >50% prefer highlighting


def _quota_flags(n: int, n_true: int, rng: np.random.Generator) -> List[bool]:
    flags = [True] * n_true + [False] * (n - n_true)
    rng.shuffle(flags)
    return flags


def _ratings_with_mean(n: int, target_mean: float, rng: np.random.Generator,
                       lo: int = 1, hi: int = 10) -> List[int]:
    """An integer rating multiset whose mean hits ``target_mean`` to
    within 1/(2n), built by greedy adjustment of a random draw."""
    target_sum = round(target_mean * n)
    vals = rng.integers(lo, hi + 1, size=n).astype(int)
    # Greedy repair: nudge random entries until the sum matches.
    while vals.sum() != target_sum:
        i = int(rng.integers(0, n))
        if vals.sum() < target_sum and vals[i] < hi:
            vals[i] += 1
        elif vals.sum() > target_sum and vals[i] > lo:
            vals[i] -= 1
    return [int(v) for v in vals]


def _ratings_with_mean_and_tail(
    n: int, target_mean: float, n_high: int, rng: np.random.Generator
) -> List[int]:
    """Ratings hitting both a mean and an exact count of 9-or-above."""
    high = [int(rng.integers(9, 11)) for _ in range(n_high)]
    remaining_sum = round(target_mean * n) - sum(high)
    low_n = n - n_high
    low = _ratings_with_mean(low_n, remaining_sum / low_n, rng, lo=1, hi=8)
    vals = high + low
    rng.shuffle(vals)
    return vals


def simulate_responses(
    seed: int = 0, model: PopulationModel = PopulationModel()
) -> List[Response]:
    """Deal out ``model.n`` responses matching every published count."""
    rng = np.random.default_rng(seed)
    n = model.n

    male = _quota_flags(n, model.n_male, rng)
    young = _quota_flags(n, round(model.frac_age_18_35 * n), rng)
    degree = _quota_flags(n, round(model.frac_bachelor * n), rng)

    q1 = _quota_flags(n, model.q1_yes, rng)
    q2_vals = (["often"] * model.q2_often
               + ["occasionally"] * model.q2_occasionally
               + ["never"] * model.q2_never)
    rng.shuffle(q2_vals)

    # Three AGO/UPO rating pairs per person: 3n ratings per option kind.
    ago_ratings = _ratings_with_mean(3 * n, model.ago_mean, rng)
    upo_ratings = _ratings_with_mean(3 * n, model.upo_mean, rng)

    q7 = _quota_flags(n, model.q7_bothered, rng)
    foreign = _quota_flags(n, model.q8_foreign_app_users, rng)
    more_cn = _quota_flags(model.q8_foreign_app_users, model.q8_more_in_china, rng)
    q9 = _quota_flags(n, model.q9_upo_at_least_equal, rng)
    q10 = _ratings_with_mean_and_tail(n, model.q10_mean, model.q10_nine_plus, rng)
    q12_highlight = _quota_flags(n, round(model.q12_highlight_majority * n), rng)

    responses: List[Response] = []
    foreign_idx = 0
    for i in range(n):
        if foreign[i]:
            q8 = "more AUIs" if more_cn[foreign_idx] else "about the same"
            foreign_idx += 1
        else:
            q8 = "never used foreign apps"
        answers = {
            "Q1": "yes" if q1[i] else "no",
            "Q2": q2_vals[i],
            "Q3": (float(ago_ratings[3 * i]), float(upo_ratings[3 * i])),
            "Q4": (float(ago_ratings[3 * i + 1]), float(upo_ratings[3 * i + 1])),
            "Q5": (float(ago_ratings[3 * i + 2]), float(upo_ratings[3 * i + 2])),
            "Q6": str(rng.choice(["splash ads", "in-app promotions",
                                  "floating windows", "app upgrades"],
                                 p=[0.45, 0.25, 0.2, 0.1])),
            "Q7": ("bothered, want to exit quickly" if q7[i]
                   else str(rng.choice(["indifferent", "curious"]))),
            "Q8": q8,
            "Q9": ("equally important" if q9[i] and bool(rng.integers(0, 2))
                   else "more important" if q9[i] else "less important"),
            "Q10": q10[i],
            "Q11": "yes" if q10[i] >= 5 else str(rng.choice(["yes", "no"])),
            "Q12": ("highlight the options" if q12_highlight[i]
                    else str(rng.choice(["auto-skip the UI", "block the app",
                                         "no action"], p=[0.6, 0.2, 0.2]))),
        }
        demo = Demographics(
            gender="male" if male[i] else "female",
            age_range="18-35" if young[i] else str(rng.choice(["36-50", "50+"])),
            education="bachelor+" if degree[i] else "other",
        )
        responses.append(Response(
            answers=answers,
            demographics=demo,
            # All real respondents passed the 90s gate in the paper.
            completion_seconds=float(rng.uniform(95, 600)),
        ))
    return responses
