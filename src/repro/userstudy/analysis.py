"""Analysis of survey responses → Findings 1-3 (Section III-B)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.userstudy.survey import Response


@dataclass
class StudyFindings:
    """The quantitative backbone of Section III-B."""

    n: int
    frac_misleading: float          # Q1 "yes"
    frac_often_misclick: float      # Q2 "often"
    frac_occasional_misclick: float
    frac_never_misclick: float
    ago_mean_rating: float          # Q3-Q5
    upo_mean_rating: float
    frac_bothered: float            # Q7
    frac_more_auis_in_china: float  # Q8, among foreign-app users
    n_foreign_app_users: int
    frac_upo_at_least_equal: float  # Q9
    demand_mean_rating: float       # Q10
    n_demand_nine_plus: int
    frac_prefer_highlight: float    # Q12
    frac_bachelor: float
    frac_age_18_35: float

    # -- the paper's three findings, as predicates --------------------

    @property
    def finding1_auis_misleading(self) -> bool:
        """Users strongly agree AUIs are misleading."""
        return self.frac_misleading > 0.9

    @property
    def finding2_negative_usability_impact(self) -> bool:
        """AUI brings negative usability impact (esp. apps in China)."""
        return (self.frac_often_misclick > 0.7
                and self.frac_bothered > 0.8
                and self.frac_more_auis_in_china > 0.7)

    @property
    def finding3_users_expect_solutions(self) -> bool:
        """Users expect practical accessibility countermeasures."""
        return self.demand_mean_rating > 7.0 and self.frac_prefer_highlight > 0.5

    @property
    def accessibility_gap(self) -> float:
        """AGO vs UPO mean rating gap — the asymmetry, quantified."""
        return self.ago_mean_rating - self.upo_mean_rating

    def as_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "frac_misleading": self.frac_misleading,
            "frac_often_misclick": self.frac_often_misclick,
            "ago_mean_rating": self.ago_mean_rating,
            "upo_mean_rating": self.upo_mean_rating,
            "frac_bothered": self.frac_bothered,
            "frac_more_auis_in_china": self.frac_more_auis_in_china,
            "frac_upo_at_least_equal": self.frac_upo_at_least_equal,
            "demand_mean_rating": self.demand_mean_rating,
            "frac_prefer_highlight": self.frac_prefer_highlight,
        }


def subgroup_findings(
    responses: Sequence[Response],
) -> Dict[str, StudyFindings]:
    """Findings per demographic subgroup.

    The paper flags its sample as young and highly educated, arguing the
    real-world need is understated.  Splitting the analysis by
    demographics makes that argument inspectable: compare the demand
    rating of the bachelor+/18-35 majority against the rest.
    """
    groups: Dict[str, List[Response]] = {
        "all": list(responses),
        "age 18-35": [r for r in responses
                      if r.demographics.age_range == "18-35"],
        "age other": [r for r in responses
                      if r.demographics.age_range != "18-35"],
        "bachelor+": [r for r in responses
                      if r.demographics.education == "bachelor+"],
        "no degree": [r for r in responses
                      if r.demographics.education != "bachelor+"],
        "male": [r for r in responses if r.demographics.gender == "male"],
        "female": [r for r in responses if r.demographics.gender == "female"],
    }
    return {name: analyze_responses(members)
            for name, members in groups.items() if members}


def analyze_responses(responses: Sequence[Response]) -> StudyFindings:
    """Reduce a validated response set to the Section III-B statistics."""
    if not responses:
        raise ValueError("no responses to analyze")
    n = len(responses)

    def frac(pred) -> float:
        return sum(1 for r in responses if pred(r)) / n

    ago_ratings: List[float] = []
    upo_ratings: List[float] = []
    for r in responses:
        for ago, upo in r.rating_pairs():
            ago_ratings.append(ago)
            upo_ratings.append(upo)

    foreign_users = [r for r in responses
                     if r.answers["Q8"] != "never used foreign apps"]
    more_cn = sum(1 for r in foreign_users if r.answers["Q8"] == "more AUIs")

    q10 = [float(r.answers["Q10"]) for r in responses]

    return StudyFindings(
        n=n,
        frac_misleading=frac(lambda r: r.answers["Q1"] == "yes"),
        frac_often_misclick=frac(lambda r: r.answers["Q2"] == "often"),
        frac_occasional_misclick=frac(lambda r: r.answers["Q2"] == "occasionally"),
        frac_never_misclick=frac(lambda r: r.answers["Q2"] == "never"),
        ago_mean_rating=float(np.mean(ago_ratings)),
        upo_mean_rating=float(np.mean(upo_ratings)),
        frac_bothered=frac(
            lambda r: r.answers["Q7"] == "bothered, want to exit quickly"),
        frac_more_auis_in_china=(more_cn / len(foreign_users)
                                 if foreign_users else 0.0),
        n_foreign_app_users=len(foreign_users),
        frac_upo_at_least_equal=frac(
            lambda r: r.answers["Q9"] in ("more important", "equally important")),
        demand_mean_rating=float(np.mean(q10)),
        n_demand_nine_plus=sum(1 for v in q10 if v >= 9),
        frac_prefer_highlight=frac(
            lambda r: r.answers["Q12"] == "highlight the options"),
        frac_bachelor=frac(lambda r: r.demographics.education == "bachelor+"),
        frac_age_18_35=frac(lambda r: r.demographics.age_range == "18-35"),
    )
