"""repro — reproduction of DARPA (DSN 2023).

DARPA detects *Asymmetric Dark UI* (AUI) patterns on Android at run time
with a one-stage CV detector and mitigates them by decorating the
User-Preferred Option (UPO) with a high-contrast overlay.

Top-level layout:

- :mod:`repro.geometry` — rectangles, IoU, NMS, detector grids.
- :mod:`repro.imaging` — NumPy raster canvas, color/contrast math.
- :mod:`repro.android` — simulated Android substrate (views, windows,
  accessibility service, apps, Monkey, device cost model).
- :mod:`repro.datagen` — synthetic AUI corpus generator (Tables I/II).
- :mod:`repro.vision` — pure-NumPy NN library, TinyYOLO one-stage
  detector, RCNN-style baselines, ncnn-like porting, metrics.
- :mod:`repro.baselines` — FraudDroid-like heuristic detector.
- :mod:`repro.core` — the DARPA runtime service (debounce → screenshot
  → detect → calibrate → decorate).
- :mod:`repro.userstudy` — survey instrument + simulated respondents.
- :mod:`repro.bench` — experiment harness shared by benchmarks.
"""

__version__ = "1.0.0"
