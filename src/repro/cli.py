"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``dataset``   — corpus statistics (Tables I/II, layout patterns)
- ``train``     — train a detector, report test metrics, save weights
- ``evaluate``  — evaluate a saved detector on the test split
- ``simulate``  — run DARPA over a simulated app fleet (Table VI style)
- ``serve``     — run the fleet through the serving daemon (admission
  control, priority lanes, load shedding, drain, crash-safe resume)
- ``trace``     — trace one session, dump span JSONL + stage summary
- ``metrics``   — run a traced fleet, emit Prometheus text exposition
- ``slo``       — evaluate fleet SLOs + burn-rate alerts (CI smoke)
- ``top``       — terminal latency/health summary of a fleet or trace
- ``dash``      — live ops dashboard (HTTP/SSE) over a run directory
- ``bench``     — run a benchmark suite (``kernels``: forward-pass modes)
- ``regress``   — gate fresh benchmark output against a baseline
  (``--explain`` prints the profile attribution on failure)
- ``profile``   — fold span dumps into a deterministic flame profile,
  or diff two profiles into a ranked attribution report
- ``lint``      — darpalint static analysis (determinism rules DL001-8)
- ``flow``      — darpaflow interprocedural nondeterminism taint
  analysis (DF001-7, full source→sink hop traces, baseline gating)
- ``survey``    — user-study findings (Section III-B)

Error-path exit codes follow ``repro regress``: commands that read or
write artifact files exit 2 with the reason on stderr when a path is
missing or unreadable (``trace``, ``metrics``, ``dash``); argparse
exits 2 on usage errors, as usual.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.datagen import build_corpus, split_corpus
    from repro.datagen.splits import split_summary

    corpus = build_corpus(seed=args.seed)
    print(f"D_app: {len(corpus.apps)} apps; D_aui: {len(corpus.samples)} "
          f"AUI screenshots; negatives: {len(corpus.negatives)}")
    print("\nTable I — AUI types:")
    for aui_type, count in sorted(corpus.type_distribution().items(),
                                  key=lambda kv: -kv[1]):
        print(f"  {aui_type.value:<32} {count:>5} "
              f"({count / len(corpus.samples):.1%})")
    ago, upo = corpus.box_totals()
    print(f"\nBoxes: AGO={ago} UPO={upo}")
    stats = corpus.layout_statistics()
    print(f"Layout: central AGO {stats['ago_central']:.1%}, "
          f"corner UPO {stats['upo_corner']:.1%}, "
          f"first-party {stats['first_party']:.1%}")
    print("\nTable II — splits:")
    for name, row in split_summary(split_corpus(corpus, seed=args.seed)).items():
        print(f"  {name:<6} shots={row[0]:>4} AGO={row[1]:>4} UPO={row[2]:>4}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.datagen import build_corpus, split_corpus
    from repro.vision import (TinyYolo, YoloConfig, YoloTrainer,
                              build_detection_dataset)

    corpus = build_corpus(seed=args.seed)
    splits = split_corpus(corpus, seed=args.seed)
    train_samples = splits["train"][:args.limit] if args.limit else splits["train"]
    print(f"Rendering {len(train_samples)} training screens...")
    train = build_detection_dataset(train_samples)
    model = TinyYolo(YoloConfig(), seed=args.seed)
    trainer = YoloTrainer(model, lr=args.lr, batch_size=args.batch_size,
                          seed=args.seed)
    from repro.wallclock import Stopwatch
    watch = Stopwatch()
    for epoch in range(args.epochs):
        loss = trainer.train_epoch(train)
        if (epoch + 1) % max(1, args.epochs // 10) == 0:
            print(f"  epoch {epoch + 1}/{args.epochs} loss={loss:.4f} "
                  f"({watch.elapsed_s():.0f}s)")
    np.savez(args.output, **model.state_dict())
    print(f"Saved model state to {args.output}")
    if not args.no_eval:
        return _evaluate_model(model, splits, args.threshold)
    return 0


def _load_model(path: str):
    from repro.vision import TinyYolo, YoloConfig
    model = TinyYolo(YoloConfig(), seed=0)
    model.load_state_dict(dict(np.load(path)))
    return model


def _evaluate_model(model, splits, threshold: float) -> int:
    from repro.vision import DetectionEvaluator, build_detection_dataset

    print("Rendering the test split...")
    test = build_detection_dataset(splits["test"], keep_screen_images=True)
    evaluator = DetectionEvaluator(iou_threshold=0.9)
    for i in range(len(test)):
        dets = model.detect_screen(test.screen_images[i],
                                   conf_threshold=threshold)
        evaluator.add_image(dets, test.screen_labels[i])
    result = evaluator.result()
    print(f"{'class':<6} {'P':>7} {'R':>7} {'F1':>7}")
    for name in ("AGO", "UPO", "All"):
        p, r, f = result.row(name)
        print(f"{name:<6} {p:>7.3f} {r:>7.3f} {f:>7.3f}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.datagen import build_corpus, split_corpus

    model = _load_model(args.model)
    if args.port:
        from repro.vision import PortConfig, port_model
        model = port_model(model, PortConfig(quantization=args.port))
        print(f"Evaluating the {args.port}-ported model...")
    corpus = build_corpus(seed=args.seed)
    splits = split_corpus(corpus, seed=args.seed)
    return _evaluate_model(model, splits, args.threshold)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.bench import build_runtime_fleet, run_darpa_over_fleet
    from repro.vision.metrics import ScreenConfusion

    detector = "oracle" if args.model is None else _load_model(args.model)
    if args.model is None:
        print("No --model given; using the ground-truth oracle detector.")
    sessions = build_runtime_fleet(n_apps=args.apps, seed=args.seed)
    print(f"Replaying {args.apps} one-minute sessions at ct={args.ct}ms...")
    results = run_darpa_over_fleet(sessions, detector, ct_ms=args.ct,
                                   mode="full")
    confusion = ScreenConfusion()
    for res in results:
        for labeled, flagged in res.screen_verdicts:
            confusion.add_screen(labeled, flagged)
    cpu = float(np.mean([r.perf.cpu_pct for r in results]))
    fps = float(np.mean([r.perf.fps for r in results]))
    mw = float(np.mean([r.perf.power_mw for r in results]))
    print(f"screens analyzed: {sum(r.screens_analyzed for r in results)}")
    print(f"AUI screens: caught {confusion.tp}, missed {confusion.fn}; "
          f"false flags {confusion.fp} of {confusion.fp + confusion.tn} "
          f"non-AUI screens")
    print(f"avg perf: {cpu:.1f}% CPU, {fps:.0f} fps, {mw:.0f} mW")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.android.faults import FaultPlan
    from repro.bench import build_runtime_fleet
    from repro.core.daemon import DaemonConfig, DarpaDaemon, JournalError

    detector = "oracle" if args.model is None else _load_model(args.model)
    if args.model is None:
        print("No --model given; using the ground-truth oracle detector.")
    sessions = build_runtime_fleet(n_apps=args.apps, seed=args.seed)
    config = DaemonConfig(
        inter_arrival_ms=args.inter_arrival,
        admission_rate_per_s=args.rate,
        admission_burst=args.burst,
        workers=args.workers,
        batch_max=args.batch_max,
        batch_service_ms=args.service_ms,
        shed_deadline_ms=args.shed_deadline,
        background_every=args.background_every,
    )
    fault_plan = None
    if args.worker_crash_rate or args.worker_stall_rate:
        fault_plan = FaultPlan(seed=args.seed,
                               worker_crash_rate=args.worker_crash_rate,
                               worker_stall_rate=args.worker_stall_rate)
    daemon = DarpaDaemon(sessions, detector, config=config, ct_ms=args.ct,
                         mode="full", fault_plan=fault_plan,
                         out_dir=args.out, keep_results=False)
    verb = "Resuming" if args.resume else "Serving"
    print(f"{verb} {args.apps} sessions through the daemon "
          f"({config.workers} workers, batch<={config.batch_max}, "
          f"{config.admission_rate_per_s:g}/s admission)...")
    try:
        report = daemon.run(resume=args.resume, drain_at_ms=args.drain_at,
                            max_batches=args.max_batches)
    except JournalError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1
    c = report.counters
    print(f"offered {c['offered']}  admitted {c['admitted']}  "
          f"completed {c['completed']}")
    print(f"outcomes: decorated {c['decorated']}  degraded {c['degraded']}  "
          f"shed {c['shed']} (rate_limited {c['shed_rate_limited']}, "
          f"queue_full {c['shed_queue_full']}, drained {c['shed_drained']})")
    print(f"batches: {c['batches_completed']} completed of "
          f"{c['batches_formed']} formed "
          f"(mean occupancy {report.mean_batch_occupancy:.2f}); "
          f"worker crashes {c['worker_crashes']}, stalls {c['worker_stalls']}")
    if c["coalesced_rounds"]:
        print(f"coalesced {c['coalesced_requests']} inferences into "
              f"{c['coalesced_rounds']} shared batch calls")
    if report.killed:
        print(f"killed after {args.max_batches} batch(es) — resume with "
              f"--resume --out {args.out}")
    elif args.out:
        print(f"artifacts in {args.out} (daemon.json, drain.json, "
              f"telemetry.json, trace.jsonl)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.bench import build_runtime_fleet, run_darpa_session
    from repro.core.observability import (
        report_from_spans,
        session_root,
        stage_cpu_ms,
    )

    if args.model is None:
        detector = "oracle"
        print("No --model given; using the ground-truth oracle detector.")
    else:
        try:
            detector = _load_model(args.model)
        except OSError as exc:
            print(f"trace: cannot read model {args.model}: {exc}",
                  file=sys.stderr)
            return 2
    # Open the span dump before replaying anything: an unwritable
    # artifact path must fail fast (exit 2, as `repro regress` does for
    # unreadable inputs), not after a full traced session.
    try:
        out_fp = open(args.output, "w")
    except OSError as exc:
        print(f"trace: cannot write trace {args.output}: {exc}",
              file=sys.stderr)
        return 2
    sessions = build_runtime_fleet(n_apps=max(1, args.session + 1),
                                   seed=args.seed)
    session = sessions[args.session]
    print(f"Tracing session {args.session} ({session.spec.package}) "
          f"at ct={args.ct}ms...")
    result = run_darpa_session(session, detector, ct_ms=args.ct, mode="full",
                               monkey_seed=1000 + args.session, trace=True)
    with out_fp as fp:
        for span in result.spans:
            fp.write(json.dumps(span, sort_keys=True) + "\n")
    print(f"Wrote {len(result.spans)} spans to {args.output}")

    root = session_root(result.spans)
    by_stage: dict = {}
    for span in result.spans:
        name = span["name"]
        count, dur = by_stage.get(name, (0, 0.0))
        by_stage[name] = (count + 1, dur + (span["end_ms"] - span["start_ms"]))
    cpu = stage_cpu_ms(result.spans)
    print(f"\n{'stage':<12} {'spans':>6} {'wall ms':>10} {'cpu ms':>10}")
    for name in sorted(by_stage):
        count, dur = by_stage[name]
        print(f"{name:<12} {count:>6} {dur:>10.1f} {cpu.get(name, 0.0):>10.1f}")
    rebuilt = report_from_spans(result.spans)
    assert rebuilt == result.perf, "span-derived report diverged"
    dropped = result.metrics.get("counters", {}).get(
        "darpa.trace.dropped_spans", 0)
    print(f"\nsession: {root['end_ms'] - root['start_ms']:.0f} ms, "
          f"{result.screens_analyzed} screens analyzed, "
          f"{dropped} spans dropped by the ring buffer")
    if dropped:
        print("WARNING: the trace is incomplete — raise the tracer "
              "capacity to keep span-derived totals exact.")
    print(f"span-derived perf (bit-equal to the meter): "
          f"{rebuilt.cpu_pct:.1f}% CPU, {rebuilt.fps:.0f} fps, "
          f"{rebuilt.power_mw:.0f} mW")
    return 0


# ---------------------------------------------------------------------------
# Fleet telemetry commands
# ---------------------------------------------------------------------------

def _run_telemetry_fleet(args: argparse.Namespace):
    """Run a traced oracle fleet and derive its telemetry.

    Returns ``(results, telemetries, fleet)`` where ``telemetries`` is
    the per-session series (for the SLO engine) and ``fleet`` the
    merged :class:`FleetTelemetry`.
    """
    from repro.bench import (
        STORM_DARPA_KWARGS,
        build_runtime_fleet,
        storm_fault_plan,
    )
    from repro.bench.parallel import run_darpa_over_fleet_parallel
    from repro.core.telemetry import FleetTelemetry, session_telemetries

    sessions = build_runtime_fleet(n_apps=args.apps, seed=args.seed)
    fault_plan = storm_fault_plan(seed=args.seed) if args.storm else None
    darpa_kwargs = STORM_DARPA_KWARGS if args.storm else None
    label = "storm" if args.storm else "zero-fault"
    print(f"Replaying {args.apps} one-minute sessions at ct={args.ct}ms "
          f"({label}, oracle detector)...")
    results = run_darpa_over_fleet_parallel(
        sessions, "oracle", ct_ms=args.ct, mode="full",
        n_workers=args.workers, fault_plan=fault_plan,
        darpa_kwargs=darpa_kwargs, trace=True)
    telemetries = session_telemetries(results)
    return results, telemetries, FleetTelemetry.from_sessions(telemetries)


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.core.telemetry import (
        merge_registry_snapshots,
        registry_prometheus_lines,
    )

    out_fp = None
    if args.output:
        # Fail fast on an unwritable exposition path (exit 2, mirroring
        # `repro regress`) instead of discovering it after the fleet ran.
        try:
            out_fp = open(args.output, "w")
        except OSError as exc:
            print(f"metrics: cannot write exposition {args.output}: {exc}",
                  file=sys.stderr)
            return 2
    results, _, fleet = _run_telemetry_fleet(args)
    lines = fleet.prometheus_lines()
    merged = merge_registry_snapshots([r.metrics for r in results])
    lines += registry_prometheus_lines(merged)
    text = "\n".join(lines) + "\n"
    if out_fp is not None:
        with out_fp as fp:
            fp.write(text)
        print(f"Wrote {len(lines)} exposition lines to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    import json

    from repro.core.telemetry import SloEngine, default_slos

    _, telemetries, fleet = _run_telemetry_fleet(args)
    engine = SloEngine(default_slos(ct_ms=args.ct))
    report = engine.evaluate(telemetries)

    print(f"\n{'SLO':<20} {'objective':>9} {'compliance':>10} "
          f"{'burn':>8} {'bad/total':>12} {'status':>8}")
    for res in report.results:
        print(f"{res.spec.name:<20} {res.spec.objective:>9.3f} "
              f"{res.compliance:>10.4f} {res.burn_rate:>8.2f} "
              f"{res.bad:>5}/{res.total:<6} "
              f"{'OK' if res.met else 'VIOLATED':>8}")
    if report.alerts:
        print(f"\n{len(report.alerts)} burn-rate alert(s):")
        for alert in report.alerts:
            print(f"  [{alert.severity}] {alert.slo} at session "
                  f"{alert.session_index} (t={alert.sim_time_ms / 1000:.0f}s): "
                  f"burn {alert.fast_burn:.1f}x/{alert.slow_burn:.1f}x over "
                  f"{alert.fast_window}/{alert.slow_window} sessions")
    else:
        print("\nno burn-rate alerts")
    if args.json:
        with open(args.json, "w") as fp:
            json.dump(report.to_dict(), fp, sort_keys=True, indent=2)
            fp.write("\n")
        print(f"Wrote SLO report to {args.json}")
    if args.fail_on_alert and report.alerts:
        return 1
    return 0


def _load_trace_telemetry(path: str):
    """Fleet telemetry from a span JSONL file (single-session ``repro
    trace`` output or a merged fleet ``trace.jsonl``)."""
    import json

    from repro.core.telemetry import FleetTelemetry, sketches_from_spans

    by_session: dict = {}
    with open(path) as fp:
        for lineno, line in enumerate(fp, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: malformed JSONL ({exc})")
            if not isinstance(record, dict) or "name" not in record:
                raise ValueError(f"{path}:{lineno}: not a span record")
            session = int(record.pop("session", 0))
            by_session.setdefault(session, []).append(record)
    fleet = FleetTelemetry()
    fleet.sessions = len(by_session)
    for session in sorted(by_session):
        for name, sketch in sketches_from_spans(
                by_session[session], session=session).items():
            fleet.sketches[name].merge(sketch)
    return fleet


def _cmd_top(args: argparse.Namespace) -> int:
    if args.trace is not None:
        try:
            fleet = _load_trace_telemetry(args.trace)
        except OSError as exc:
            print(f"top: cannot read trace {args.trace}: {exc}",
                  file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"top: {exc}", file=sys.stderr)
            return 1
        source = args.trace
    else:
        _, _, fleet = _run_telemetry_fleet(args)
        source = f"{args.apps}-session fleet"

    print(f"\ndarpa top — {source} ({fleet.sessions} session(s))")
    print(f"{'stage (ms)':<28} {'count':>7} {'p50':>9} {'p95':>9} "
          f"{'p99':>9} {'max':>9}")
    for name in sorted(fleet.sketches):
        sketch = fleet.sketches[name]
        stage = name.split(".")[-1].replace("_ms", "")
        top = sketch.max if sketch.max is not None else 0.0
        print(f"{stage:<28} {sketch.count:>7} {sketch.quantile(0.5):>9.1f} "
              f"{sketch.quantile(0.95):>9.1f} {sketch.quantile(0.99):>9.1f} "
              f"{top:>9.1f}")
    nonzero = {k: v for k, v in sorted(fleet.counters.items()) if v}
    if nonzero:
        print("\ncounters: " + "  ".join(f"{k}={v}"
                                         for k, v in nonzero.items()))
    from repro.core.telemetry import REACTION_SKETCH
    exemplar = fleet.sketches[REACTION_SKETCH].hottest_exemplar()
    if exemplar is not None:
        print(f"slowest reactions: session {exemplar['session']} "
              f"span {exemplar['span_id']} ({exemplar['trace_id']})")
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    from repro.ops.cli import run_dash

    return run_dash(args.dir, ct_ms=args.ct, host=args.host, port=args.port,
                    once=args.once)


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    if args.suite != "kernels":  # argparse choices already guard this
        print(f"bench: unknown suite {args.suite!r}", file=sys.stderr)
        return 2
    from repro.bench.kernels import run_kernel_bench

    workers = [args.workers] if args.workers else []
    payload = run_kernel_bench(
        batch_sizes=tuple(args.batch), rounds=args.rounds,
        quant=args.quant, workers=workers or (2,),
        seed=args.seed, out_path=args.out)
    top = str(max(args.batch))
    print(f"{'mode':<24} {'batch-' + top + ' ms':>12} {'vs per-image':>13}")
    for name, record in payload["modes"].items():
        print(f"{name:<24} {record['forward_ms'][top]:>12.3f} "
              f"{record['speedup_vs_per_image']:>12.2f}x")
    if "baseline_ms_batch32" in payload:
        print(f"\nbest batch-32 vs {payload['baseline_ms_batch32']:.1f} ms "
              f"historical baseline: "
              f"{payload['speedup_vs_baseline_batch32']:.2f}x")
    if args.out:
        print(f"Wrote {args.out}")
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    from repro.bench.regress import main as regress_main

    argv = ["--baseline", args.baseline, "--fresh", args.fresh]
    for rule in args.rule or []:
        argv += ["--rule", rule]
    if args.ignore_manifest:
        argv.append("--ignore-manifest")
    if args.explain:
        argv.append("--explain")
    if args.explain_out is not None:
        argv += ["--explain-out", args.explain_out]
    return regress_main(argv)


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.profiling.cli import run_profile

    return run_profile(source=args.source, diff=args.diff, fold=args.fold,
                       top=args.top, json_out=args.json)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as lint_main

    argv: List[str] = list(args.paths)
    argv += ["--format", args.format]
    if args.rules:
        argv += ["--rules", args.rules]
    if args.list_rules:
        argv.append("--list-rules")
    if args.config:
        argv += ["--config", args.config]
    if args.no_config:
        argv.append("--no-config")
    if args.output:
        argv += ["--output", args.output]
    return lint_main(argv)


def _cmd_flow(args: argparse.Namespace) -> int:
    from repro.analysis.flow.cli import main as flow_main

    argv: List[str] = list(args.paths)
    argv += ["--format", args.format]
    if args.config:
        argv += ["--config", args.config]
    if args.no_config:
        argv.append("--no-config")
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.output:
        argv += ["--output", args.output]
    return flow_main(argv)


def _cmd_survey(args: argparse.Namespace) -> int:
    del args
    from examples.user_study_report import main as report
    report()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DARPA (DSN 2023) reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("dataset", help="corpus statistics")

    p_train = sub.add_parser("train", help="train a detector")
    p_train.add_argument("--epochs", type=int, default=80)
    p_train.add_argument("--lr", type=float, default=2e-3)
    p_train.add_argument("--batch-size", type=int, default=16)
    p_train.add_argument("--limit", type=int, default=0,
                         help="cap training samples (0 = all)")
    p_train.add_argument("--threshold", type=float, default=0.4)
    p_train.add_argument("--output", default="darpa_model.npz")
    p_train.add_argument("--no-eval", action="store_true")

    p_eval = sub.add_parser("evaluate", help="evaluate a saved model")
    p_eval.add_argument("model")
    p_eval.add_argument("--threshold", type=float, default=0.4)
    p_eval.add_argument("--port", choices=("none", "fp16", "int8"),
                        default=None, help="evaluate a ported variant")

    p_sim = sub.add_parser("simulate", help="run DARPA over a fleet")
    p_sim.add_argument("--apps", type=int, default=20)
    p_sim.add_argument("--ct", type=float, default=200.0)
    p_sim.add_argument("--model", default=None,
                       help="saved model (.npz); omit for the oracle")

    p_serve = sub.add_parser(
        "serve", help="run the fleet through the serving daemon")
    p_serve.add_argument("--apps", type=int, default=8)
    p_serve.add_argument("--ct", type=float, default=200.0)
    p_serve.add_argument("--model", default=None,
                         help="saved model (.npz); omit for the oracle")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="shared batched-inference workers")
    p_serve.add_argument("--batch-max", type=int, default=4,
                         help="largest coalesced batch")
    p_serve.add_argument("--rate", type=float, default=50.0,
                         help="admission token rate, sessions/second")
    p_serve.add_argument("--burst", type=int, default=16,
                         help="admission token-bucket burst")
    p_serve.add_argument("--inter-arrival", type=float, default=120.0,
                         help="offered load: ms between session arrivals")
    p_serve.add_argument("--service-ms", type=float, default=250.0,
                         help="simulated service time per batch")
    p_serve.add_argument("--shed-deadline", type=float, default=2000.0,
                         help="queue wait before a session degrades to the "
                              "FraudDroid fallback (0 = never)")
    p_serve.add_argument("--background-every", type=int, default=0,
                         help="route every Nth session to the background "
                              "lane (0 = all interactive)")
    p_serve.add_argument("--worker-crash-rate", type=float, default=0.0,
                         help="seeded mid-batch worker crash probability")
    p_serve.add_argument("--worker-stall-rate", type=float, default=0.0,
                         help="seeded mid-batch worker stall probability")
    p_serve.add_argument("--out", default=None,
                         help="artifact directory (journal, daemon.json, "
                              "drain.json, merged telemetry)")
    p_serve.add_argument("--resume", action="store_true",
                         help="resume a killed run from its journal")
    p_serve.add_argument("--drain-at", type=float, default=None,
                         help="start a graceful drain at this fleet ms")
    p_serve.add_argument("--max-batches", type=int, default=None,
                         help="kill the daemon after N batches (crash "
                              "simulation; pair with --resume later)")

    p_trace = sub.add_parser("trace", help="trace one session to JSONL")
    p_trace.add_argument("--session", type=int, default=0,
                         help="fleet index of the session to trace")
    p_trace.add_argument("--ct", type=float, default=200.0)
    p_trace.add_argument("--model", default=None,
                         help="saved model (.npz); omit for the oracle")
    p_trace.add_argument("--output", default="trace.jsonl")

    def add_fleet_options(p):
        p.add_argument("--apps", type=int, default=8)
        p.add_argument("--ct", type=float, default=200.0)
        p.add_argument("--workers", type=int, default=None,
                       help="fleet worker processes (default: cores)")
        p.add_argument("--storm", action="store_true",
                       help="inject the canonical storm fault plan")

    p_metrics = sub.add_parser(
        "metrics", help="run a traced fleet, emit Prometheus exposition")
    add_fleet_options(p_metrics)
    p_metrics.add_argument("--output", default=None,
                           help="write the exposition here instead of stdout")

    p_slo = sub.add_parser(
        "slo", help="evaluate fleet SLOs and burn-rate alerts")
    add_fleet_options(p_slo)
    p_slo.add_argument("--json", default=None,
                       help="also write the SLO report as JSON")
    p_slo.add_argument("--fail-on-alert", action="store_true",
                       help="exit 1 when any burn-rate alert fired")

    p_top = sub.add_parser(
        "top", help="terminal latency/health summary (fleet or trace file)")
    add_fleet_options(p_top)
    p_top.add_argument("--trace", default=None,
                       help="summarize an existing span JSONL instead of "
                            "running a fleet")

    p_dash = sub.add_parser(
        "dash", help="live ops dashboard over a run's artifacts")
    p_dash.add_argument("--dir", required=True,
                        help="run directory (telemetry.json or shard "
                             "parts, trace JSONL, daemon.json, ...)")
    p_dash.add_argument("--ct", type=float, default=200.0,
                        help="debounce cut-off the run used (sets the "
                             "reaction budget on the overview)")
    p_dash.add_argument("--host", default="127.0.0.1")
    p_dash.add_argument("--port", type=int, default=8765)
    p_dash.add_argument("--once", default=None, metavar="OUTDIR",
                        help="dump every /api route to OUTDIR and exit "
                             "(golden-response generation / CI diff)")

    p_bench = sub.add_parser(
        "bench", help="run a benchmark suite and emit its payload")
    p_bench.add_argument("suite", choices=("kernels",),
                         help="benchmark suite to run")
    p_bench.add_argument("--quant", choices=("fp32", "int8", "both"),
                         default="both",
                         help="precision sweep (default: both)")
    p_bench.add_argument("--workers", type=int, default=None,
                         help="worker count for the multicore mode "
                              "(default: 2)")
    p_bench.add_argument("--batch", type=int, nargs="+", default=[1, 8, 32],
                         help="batch sizes to time (default: 1 8 32)")
    p_bench.add_argument("--rounds", type=int, default=9,
                         help="timing rounds per mode (best-of)")
    p_bench.add_argument("--out", default=None,
                         help="write the manifest-stamped payload here")

    p_regress = sub.add_parser(
        "regress", help="gate fresh benchmark output against a baseline")
    p_regress.add_argument("--baseline", required=True)
    p_regress.add_argument("--fresh", required=True)
    p_regress.add_argument("--rule", action="append", default=[],
                           metavar="PATTERN=rel:F|abs:F")
    p_regress.add_argument("--ignore-manifest", action="store_true",
                           help="diff values even on provenance mismatch")
    p_regress.add_argument("--explain", action="store_true",
                           help="on failure, print the ranked per-frame "
                                "attribution from the embedded profiles")
    p_regress.add_argument("--explain-out", default=None, metavar="FILE",
                           help="write the failure attribution as JSON "
                                "(implies --explain)")

    p_profile = sub.add_parser(
        "profile", help="fold span dumps into a flame profile, or diff two")
    p_profile.add_argument("source", nargs="?", default=None,
                           help="run directory, profile.json, BENCH_*.json "
                                "with a profile block, or span JSONL")
    p_profile.add_argument("--diff", nargs=2, default=None,
                           metavar=("BASE", "FRESH"),
                           help="diff two profile sources; exits 1 when "
                                "they differ")
    p_profile.add_argument("--fold", action="store_true",
                           help="emit folded stacks (flamegraph input) on "
                                "stdout instead of the summary")
    p_profile.add_argument("--top", type=int, default=15,
                           help="frames to show (default: 15)")
    p_profile.add_argument("--json", default=None, metavar="FILE",
                           help="also write the canonical profile.json")

    p_lint = sub.add_parser(
        "lint", help="darpalint: determinism & sim-correctness rules")
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--format", choices=("text", "json"),
                        default="text")
    p_lint.add_argument("--rules", default=None, metavar="DL001,DL003",
                        help="comma-separated rule ids (default: all)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    p_lint.add_argument("--config", default=None, metavar="PYPROJECT",
                        help="pyproject.toml with [tool.darpalint]")
    p_lint.add_argument("--no-config", action="store_true",
                        help="ignore [tool.darpalint] entirely")
    p_lint.add_argument("--output", default=None, metavar="FILE",
                        help="write the report to a file")

    p_flow = sub.add_parser(
        "flow", help="darpaflow: interprocedural nondeterminism taint "
                     "analysis (DF001-DF007)")
    p_flow.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    p_flow.add_argument("--format", choices=("text", "json"),
                        default="text")
    p_flow.add_argument("--config", default=None, metavar="PYPROJECT",
                        help="pyproject.toml with [tool.darpaflow]")
    p_flow.add_argument("--no-config", action="store_true",
                        help="ignore [tool.darpaflow] entirely")
    p_flow.add_argument("--baseline", default=None, metavar="FILE",
                        help="flow-baseline.json of accepted flows")
    p_flow.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline accepting current flows")
    p_flow.add_argument("--output", default=None, metavar="FILE",
                        help="write the report to a file")

    sub.add_parser("survey", help="user-study findings")
    return parser


_COMMANDS = {
    "dataset": _cmd_dataset,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "simulate": _cmd_simulate,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "slo": _cmd_slo,
    "top": _cmd_top,
    "dash": _cmd_dash,
    "bench": _cmd_bench,
    "regress": _cmd_regress,
    "profile": _cmd_profile,
    "lint": _cmd_lint,
    "flow": _cmd_flow,
    "survey": _cmd_survey,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
