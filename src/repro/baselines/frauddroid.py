"""A FraudDroid-like heuristic AUI detector (paper Section VI-C).

FraudDroid's AdViewDetector identifies ad views from UI metadata —
resource-id strings plus size/placement features.  The module is closed
source, so the paper re-implements it and extends the string lexicon
with AUI-related ids.  We do the same against our simulated ``adb``
hierarchy dumps.

The detector's published failure mode is structural, not a tuning
artifact: it depends on *readable resource ids*, and most shipped apps
obfuscate or dynamically generate them (`repro.android.resources`), so
its recall collapses to the ~14% of Table VI while DARPA's CV pipeline
is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry.nms import ScoredBox
from repro.geometry.rect import Rect
from repro.android.adb import NodeInfo, dump_view_hierarchy

#: Resource-id substrings associated with user-preferred options.  The
#: paper "enrich[es] the UI string features by adding resource ids
#: corresponding to the AUIs" — this is that curated list.
UPO_ID_LEXICON: Tuple[str, ...] = (
    "close", "skip", "cancel", "dismiss", "exit", "later", "deny",
    "refuse", "no_thanks", "negative",
)

#: Resource-id substrings associated with app-guided options and ad
#: containers.
AGO_ID_LEXICON: Tuple[str, ...] = (
    "ad_", "_ad", "ads", "banner", "splash", "promo", "action",
    "subscribe", "download", "upgrade", "open", "confirm", "positive",
    "red_packet", "reward", "guide",
)


@dataclass(frozen=True)
class FraudDroidConfig:
    """Placement-feature thresholds (FraudDroid-style heuristics)."""

    #: A UPO candidate must be small...
    upo_max_area_frac: float = 0.012
    #: ...and near an edge/corner of the screen.
    upo_edge_margin_frac: float = 0.22
    #: An AGO candidate must be large...
    ago_min_area_frac: float = 0.04
    #: ...and roughly centered horizontally.
    ago_center_band_frac: float = 0.3
    #: Minimum clickable-view count for the screen to be dialog-like.
    min_clickable: int = 1


class FraudDroidDetector:
    """Metadata-only AUI detection over ``adb`` hierarchy dumps."""

    def __init__(self, config: Optional[FraudDroidConfig] = None,
                 screen_w: int = 360, screen_h: int = 640):
        self.config = config or FraudDroidConfig()
        self.screen_w = screen_w
        self.screen_h = screen_h

    # -- string features ------------------------------------------------

    @staticmethod
    def _matches(entry: str, lexicon: Sequence[str]) -> bool:
        entry = entry.lower()
        return bool(entry) and any(key in entry for key in lexicon)

    # -- placement features ----------------------------------------------

    def _is_upo_shaped(self, rect: Rect) -> bool:
        cfg = self.config
        screen_area = self.screen_w * self.screen_h
        if rect.area > cfg.upo_max_area_frac * screen_area or rect.is_empty():
            return False
        cx, cy = rect.center
        near_x = min(cx, self.screen_w - cx) < cfg.upo_edge_margin_frac * self.screen_w
        near_y = min(cy, self.screen_h - cy) < cfg.upo_edge_margin_frac * self.screen_h
        return near_x or near_y

    def _is_ago_shaped(self, rect: Rect) -> bool:
        cfg = self.config
        screen_area = self.screen_w * self.screen_h
        if rect.area < cfg.ago_min_area_frac * screen_area:
            return False
        cx, _ = rect.center
        return abs(cx - self.screen_w / 2) < cfg.ago_center_band_frac * self.screen_w

    # -- detection -------------------------------------------------------------

    def detect_nodes(self, nodes: Sequence[NodeInfo]) -> List[ScoredBox]:
        """Flag AGO/UPO candidates on one hierarchy dump.

        A node is flagged only when BOTH its resource-id string matches
        the lexicon AND its placement features agree — the conjunction
        FraudDroid uses to keep precision high.  Obfuscated or dynamic
        ids fail the string test, which is exactly the coverage collapse
        the paper measures.
        """
        detections: List[ScoredBox] = []
        clickables = [n for n in nodes if n.clickable]
        if len(clickables) < self.config.min_clickable:
            return detections
        for node in clickables:
            entry = node.resource_entry
            if self._matches(entry, UPO_ID_LEXICON) and self._is_upo_shaped(node.bounds):
                detections.append(ScoredBox(rect=node.bounds, label="UPO", score=0.9))
            elif self._matches(entry, AGO_ID_LEXICON) and self._is_ago_shaped(node.bounds):
                detections.append(ScoredBox(rect=node.bounds, label="AGO", score=0.9))
        return detections

    def screen_is_aui(self, nodes: Sequence[NodeInfo]) -> bool:
        """Screen-level verdict: any UPO flagged (Table VI counting)."""
        return any(d.label == "UPO" for d in self.detect_nodes(nodes))


class FraudDroidScreenDetector:
    """Adapts the metadata heuristic to the pipeline's ``Detector``
    protocol, for graceful degradation.

    While the CNN's circuit breaker is open (:mod:`repro.core.resilience`)
    the pipeline still needs *some* screen verdict; this adapter answers
    ``detect_screen`` by dumping the foreground app's view hierarchy and
    running :class:`FraudDroidDetector` over it — the screenshot pixels
    are ignored, which is exactly why the heuristic survives detector
    outages (and why its recall is the degraded ~14% of Table VI rather
    than DARPA's).
    """

    def __init__(self, device, config: Optional[FraudDroidConfig] = None):
        self.device = device
        self.inner = FraudDroidDetector(
            config,
            screen_w=device.screen.width,
            screen_h=device.screen.height,
        )
        #: Hierarchy nodes examined by the most recent pass — the
        #: heuristic's workload unit, surfaced so the tracing layer can
        #: attach it to ``fallback`` spans.
        self.last_node_count = 0

    def detect_screen(self, screen_image, refine: bool = True,
                      conf_threshold: Optional[float] = None
                      ) -> List[ScoredBox]:
        top = self.device.window_manager.top_app_window()
        nodes = dump_view_hierarchy(
            self.device.window_manager,
            package=top.package if top is not None else None,
        )
        self.last_node_count = len(nodes)
        detections = self.inner.detect_nodes(nodes)
        if conf_threshold is not None:
            detections = [d for d in detections if d.score >= conf_threshold]
        return detections
