"""Non-CV baselines the paper compares DARPA against."""

from repro.baselines.frauddroid import (
    FraudDroidConfig,
    FraudDroidDetector,
    FraudDroidScreenDetector,
    UPO_ID_LEXICON,
    AGO_ID_LEXICON,
)

__all__ = [
    "FraudDroidConfig",
    "FraudDroidDetector",
    "FraudDroidScreenDetector",
    "UPO_ID_LEXICON",
    "AGO_ID_LEXICON",
]
