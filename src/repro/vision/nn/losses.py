"""Losses and elementwise nonlinearities (with analytic gradients).

Each loss returns ``(value, grad_wrt_logits)`` so callers can feed the
gradient straight into ``Sequential.backward`` without an autograd
graph.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    z = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def bce_with_logits(
    logits: np.ndarray,
    targets: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Binary cross entropy on raw logits (numerically stable).

    ``weights`` rescales per-element contributions — the YOLO loss uses
    it to down-weight the overwhelming number of object-free cells.
    Returns (mean loss, d loss / d logits).
    """
    p = sigmoid(logits)
    eps = 1e-7
    per_elem = -(targets * np.log(p + eps) + (1 - targets) * np.log(1 - p + eps))
    grad = p - targets
    if weights is not None:
        per_elem = per_elem * weights
        grad = grad * weights
    n = logits.size
    return float(per_elem.sum() / n), (grad / n).astype(np.float32)


def mse_loss(
    preds: np.ndarray,
    targets: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Mean squared error; returns (mean loss, d loss / d preds)."""
    diff = preds - targets
    per_elem = diff ** 2
    grad = 2.0 * diff
    if weights is not None:
        per_elem = per_elem * weights
        grad = grad * weights
    n = preds.size
    return float(per_elem.sum() / n), (grad / n).astype(np.float32)


def softmax_cross_entropy(
    logits: np.ndarray,
    labels: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Multiclass CE over the last axis; ``labels`` are class indices.

    Returns (mean loss over rows, d loss / d logits).
    """
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_labels = labels.reshape(-1).astype(int)
    p = softmax(flat_logits, axis=-1)
    eps = 1e-9
    rows = np.arange(flat_labels.shape[0])
    per_row = -np.log(p[rows, flat_labels] + eps)
    grad = p.copy()
    grad[rows, flat_labels] -= 1.0
    if weights is not None:
        w = weights.reshape(-1)
        per_row = per_row * w
        grad = grad * w[:, None]
        denom = max(float(w.sum()), 1e-9)
    else:
        denom = float(flat_labels.shape[0])
    loss = float(per_row.sum() / denom)
    return loss, (grad / denom).reshape(logits.shape).astype(np.float32)
