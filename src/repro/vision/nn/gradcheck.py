"""Numerical gradient checking.

The single most effective correctness tool for hand-written backprop:
compare analytic gradients against central finite differences.  Used by
the test suite on every layer type.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.vision.nn.layers import Layer


def numerical_gradient(
    f: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central-difference gradient of scalar ``f`` with respect to ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f(x)
        x[idx] = orig - eps
        f_minus = f(x)
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_layer_gradients(
    layer: Layer,
    x: np.ndarray,
    seed: int = 0,
    eps: float = 1e-4,
) -> Dict[str, float]:
    """Max relative error of input and parameter gradients for a layer.

    The scalar objective is a fixed random projection of the layer
    output, which exercises all output elements with distinct weights.
    All arithmetic runs in float64 (layers compute in the dtype NumPy
    promotes to) so the central differences are limited by ``eps``, not
    by storage precision.  Returns a dict mapping ``"input"`` and each
    parameter name to its maximum relative error.
    """
    rng = np.random.default_rng(seed)
    x = x.astype(np.float64)
    out0 = layer.forward(x, training=True)
    proj = rng.normal(size=out0.shape).astype(np.float64)

    def objective_wrt_input(x_in: np.ndarray) -> float:
        out = layer.forward(x_in, training=True)
        return float((out.astype(np.float64) * proj).sum())

    # Analytic pass.
    for p in layer.parameters():
        p.zero_grad()
    out = layer.forward(x, training=True)
    dx = layer.backward(proj)

    errors: Dict[str, float] = {}

    num_dx = numerical_gradient(objective_wrt_input, x.copy(), eps=eps)
    errors["input"] = _max_rel_error(np.asarray(dx, dtype=np.float64), num_dx)

    for p in layer.parameters():
        analytic = p.grad.astype(np.float64).copy()

        def objective_wrt_param(v: np.ndarray, p=p) -> float:
            old = p.value
            p.value = v  # keep float64 during the probe
            out = layer.forward(x, training=True)
            p.value = old
            return float((out.astype(np.float64) * proj).sum())

        numeric = numerical_gradient(objective_wrt_param,
                                     p.value.astype(np.float64).copy(), eps=eps)
        errors[p.name] = _max_rel_error(analytic, numeric)
    del out
    return errors


def _max_rel_error(a: np.ndarray, b: np.ndarray) -> float:
    denom = np.maximum(np.abs(a) + np.abs(b), 1e-4)
    return float(np.max(np.abs(a - b) / denom))
