"""Layers with manual forward/backward passes.

Convolution uses im2col + GEMM — the same strategy mobile inference
frameworks like ncnn use on CPUs — which keeps the whole training loop
inside optimized BLAS calls.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np


class Parameter:
    """A trainable array with its gradient accumulator."""

    def __init__(self, value: np.ndarray, name: str = "param"):
        self.value = value.astype(np.float32)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape


class Layer:
    """Base layer: stateless unless it declares parameters."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        return []

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


# ---------------------------------------------------------------------------
# im2col helpers
# ---------------------------------------------------------------------------

def im2col(x: np.ndarray, kh: int, kw: int, stride: int,
           pad: int) -> Tuple[np.ndarray, int, int]:
    """Unfold (N, C, H, W) into (N * OH * OW, C * kh * kw) patches."""
    n, c, h, w = x.shape
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    # Strided sliding windows: shape (N, C, OH, OW, kh, kw), no copy.
    s = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), oh, ow


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kh: int,
           kw: int, stride: int, pad: int, oh: int, ow: int) -> np.ndarray:
    """Fold patch gradients back onto the (padded) input, then crop."""
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i:i + stride * oh:stride, j:j + stride * ow:stride] += (
                cols6[:, :, :, :, i, j]
            )
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


# ---------------------------------------------------------------------------
# Core layers
# ---------------------------------------------------------------------------

class Conv2D(Layer):
    """2-D convolution (cross-correlation) with He initialization."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 3,
                 stride: int = 1, pad: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None,
                 bias: bool = True):
        if pad is None:
            pad = kernel // 2  # "same" for stride 1
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel * kernel
        scale = np.sqrt(2.0 / fan_in)
        self.weight = Parameter(
            rng.normal(0.0, scale, (out_channels, in_channels, kernel, kernel)),
            name="conv.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name="conv.bias") if bias else None
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n = x.shape[0]
        cols, oh, ow = im2col(x, self.kernel, self.kernel, self.stride, self.pad)
        w2d = self.weight.value.reshape(self.weight.shape[0], -1)
        out = cols @ w2d.T
        if self.bias is not None:
            out += self.bias.value
        out = out.reshape(n, oh, ow, -1).transpose(0, 3, 1, 2)
        if training:
            self._cache = (x.shape, cols, oh, ow)
        return np.ascontiguousarray(out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward(training=True)")
        x_shape, cols, oh, ow = self._cache
        n = grad.shape[0]
        g2d = grad.transpose(0, 2, 3, 1).reshape(n * oh * ow, -1)
        w2d = self.weight.value.reshape(self.weight.shape[0], -1)
        self.weight.grad += (g2d.T @ cols).reshape(self.weight.shape)
        if self.bias is not None:
            self.bias.grad += g2d.sum(axis=0)
        dcols = g2d @ w2d
        return col2im(dcols, x_shape, self.kernel, self.kernel, self.stride,
                      self.pad, oh, ow)

    def parameters(self) -> List[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])


class Linear(Layer):
    """Fully-connected layer with He initialization."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None):
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.weight = Parameter(
            rng.normal(0.0, scale, (out_features, in_features)),
            name="linear.weight",
        )
        self.bias = Parameter(np.zeros(out_features), name="linear.bias")
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._x = x
        return x @ self.weight.value.T + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward before forward(training=True)")
        self.weight.grad += grad.T @ self._x
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]


class BatchNorm2D(Layer):
    """Per-channel batch normalization with running statistics."""

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5):
        self.gamma = Parameter(np.ones(channels), name="bn.gamma")
        self.beta = Parameter(np.zeros(channels), name="bn.beta")
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self.momentum = momentum
        self.eps = eps
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (self.momentum * self.running_mean
                                 + (1 - self.momentum) * mean).astype(np.float32)
            self.running_var = (self.momentum * self.running_var
                                + (1 - self.momentum) * var).astype(np.float32)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = (self.gamma.value[None, :, None, None] * x_hat
               + self.beta.value[None, :, None, None])
        if training:
            self._cache = (x_hat, inv_std, x.shape)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward(training=True)")
        x_hat, inv_std, shape = self._cache
        n, c, h, w = shape
        m = n * h * w
        self.gamma.grad += (grad * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad.sum(axis=(0, 2, 3))
        g = grad * self.gamma.value[None, :, None, None]
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        dx = (inv_std[None, :, None, None] / m) * (
            m * g - sum_g - x_hat * sum_gx
        )
        return dx

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]


class MaxPool2D(Layer):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, size: int = 2):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"input {h}x{w} not divisible by pool size {s}")
        oh, ow = h // s, w // s
        # Window axes: (n, c, oh, s, ow, s).
        xr = x.reshape(n, c, oh, s, ow, s)
        out = xr.max(axis=(3, 5))
        if training:
            mask6 = xr == out[:, :, :, None, :, None]
            # Break ties: keep only the first max per window.  Bring the
            # two window axes together before flattening them.
            flat = mask6.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, oh, ow, s * s)
            first = np.cumsum(flat, axis=-1) == 1
            mask = (flat & first).reshape(n, c, oh, ow, s, s)
            self._cache = (mask, x.shape)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward(training=True)")
        mask, x_shape = self._cache
        n, c, h, w = x_shape
        s = self.size
        # mask axes (n, c, oh, ow, s, s) -> input layout (n, c, oh, s, ow, s).
        g = grad[:, :, :, :, None, None] * mask
        return g.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)


class LeakyReLU(Layer):
    def __init__(self, slope: float = 0.1):
        self.slope = slope
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.where(x > 0, x, self.slope * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward(training=True)")
        return np.where(self._mask, grad, self.slope * grad)


class ReLU(LeakyReLU):
    def __init__(self):
        super().__init__(slope=0.0)


class Sigmoid(Layer):
    def __init__(self):
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))
        if training:
            self._out = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward before forward(training=True)")
        return grad * self._out * (1.0 - self._out)


class Flatten(Layer):
    def __init__(self):
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward before forward(training=True)")
        return grad.reshape(self._shape)


class Sequential(Layer):
    """A linear stack of layers."""

    def __init__(self, layers: Sequence[Layer]):
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params
