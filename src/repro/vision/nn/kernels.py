"""Low-level GEMM and quantization kernels for the inference plan.

Three kernel families live here, all built on the same determinism
contract as the rest of the serving path — outputs are a pure function
of the inputs, never of scheduling, batch composition or worker count:

1. **Cache-tiled matmul** — :func:`tiled_matmul` partitions the *M*
   (row) dimension of ``a @ b`` into fixed-size tiles so each tile's
   working set (``tile_rows * k`` inputs plus ``tile_rows * n``
   outputs) fits in L2 instead of streaming the whole activation
   through cache.  The K dimension is never split: every output
   element is produced by exactly one BLAS dot product, so there is no
   cross-tile reduction whose order could perturb a bit.  Tiling only
   partitions *independent* output rows.

2. **Symmetric quantization** — :func:`quantize_symmetric` maps a
   float tensor to int8 codes with a per-tensor or per-channel scale
   (``scale = absmax / 127``), the scheme mobile engines use for conv
   weights; :func:`quantize_to_float` emits the codes directly as
   *integer-valued float32*, the operand format of the exact int8 GEMM
   below.

3. **Exact int8 GEMM** — :func:`int8_gemm` multiplies two
   integer-valued float32 matrices with ordinary sgemm.  Every product
   is bounded by ``127 * 127`` and every partial sum by
   ``k * 127**2``; as long as ``k <= INT8_EXACT_MAX_K`` those sums
   stay below ``2**24`` and are therefore *exactly representable* in
   float32.  Exact integer arithmetic is associative, so the result is
   bit-identical for ANY summation order the BLAS picks — unlike the
   float path, int8 accumulation is deterministic by construction, not
   by pinned call shapes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Largest inner dimension for which int8 x int8 partial sums are
#: exactly representable in float32: ``k * 127**2 < 2**24``.
INT8_EXACT_MAX_K: int = (1 << 24) // (127 * 127)  # = 1040

#: Default row-tile height for :func:`tiled_matmul`.  Sized so a
#: ``2048 x 432`` float32 input tile (~3.4 MB with its output) sits in
#: a typical 1-4 MB L2; measured fastest on the TinyYolo step shapes.
DEFAULT_TILE_ROWS: int = 2048


def tiled_matmul(a: np.ndarray, b: np.ndarray,
                 out: Optional[np.ndarray] = None,
                 tile_rows: int = DEFAULT_TILE_ROWS) -> np.ndarray:
    """``a @ b`` with the row dimension processed in L2-sized tiles.

    ``a`` is ``(m, k)``, ``b`` is ``(k, n)``; rows are independent, so
    the tile loop carries no reduction state between iterations and the
    K dimension is reduced inside a single BLAS call per tile.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"bad matmul shapes {a.shape} x {b.shape}")
    if tile_rows < 1:
        raise ValueError("tile_rows must be >= 1")
    m = a.shape[0]
    if out is None:
        out = np.empty((m, b.shape[1]), dtype=np.result_type(a, b))
    for lo in range(0, m, tile_rows):
        hi = min(lo + tile_rows, m)
        np.matmul(a[lo:hi], b, out=out[lo:hi])
    return out


def quantize_symmetric(array: np.ndarray,
                       axis: Optional[int] = None
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric int8 quantization; returns ``(codes, scale)``.

    ``axis=None`` computes one per-tensor scale; an integer axis keeps
    that axis and reduces over all others (per-output-channel scales
    for conv weights).  The scale is ``absmax / 127`` with zero-range
    slices mapped to scale 1.0 (their codes are all zero anyway), so
    dequantization never divides by zero.
    """
    arr = np.asarray(array, dtype=np.float32)
    if axis is None:
        absmax = np.float32(np.max(np.abs(arr))) if arr.size else np.float32(0)
        scale = np.where(absmax > 0, absmax / np.float32(127.0),
                         np.float32(1.0)).astype(np.float32)
    else:
        reduce_axes = tuple(i for i in range(arr.ndim) if i != axis % arr.ndim)
        absmax = np.max(np.abs(arr), axis=reduce_axes)
        scale = np.where(absmax > 0, absmax / np.float32(127.0),
                         np.float32(1.0)).astype(np.float32)
        shape = [1] * arr.ndim
        shape[axis % arr.ndim] = -1
        scale = scale.reshape(shape)
    codes = np.clip(np.rint(arr / scale), -127, 127).astype(np.int8)
    return codes, np.squeeze(scale) if axis is not None else scale


def quantize_to_float(array: np.ndarray, scale: np.ndarray,
                      out: Optional[np.ndarray] = None) -> np.ndarray:
    """Quantize to int8 codes stored as float32 (the int8 GEMM operand).

    ``out = clip(rint(array / scale), -127, 127)`` as float32, fused
    into the output buffer when one is supplied.
    """
    if out is None:
        out = np.empty(array.shape, dtype=np.float32)
    np.divide(array, scale, out=out)
    np.rint(out, out=out)
    np.clip(out, -127.0, 127.0, out=out)
    return out


def int8_accumulation_exact(k: int) -> bool:
    """True when a k-deep int8 dot product is exact in float32."""
    return k <= INT8_EXACT_MAX_K


def int8_gemm(qa: np.ndarray, qb: np.ndarray,
              out: Optional[np.ndarray] = None,
              tile_rows: int = DEFAULT_TILE_ROWS) -> np.ndarray:
    """Exact int8 x int8 -> int32 GEMM on integer-valued float32 operands.

    Both operands must hold values in ``[-127, 127]``; the inner
    dimension must satisfy :func:`int8_accumulation_exact` so every
    partial sum stays below ``2**24`` and float32 accumulation is
    exact (hence order-independent and safe to tile arbitrarily).
    The result holds exact integers in float32, ready for a single
    requantize multiply.
    """
    k = qa.shape[1]
    if not int8_accumulation_exact(k):
        raise ValueError(
            f"inner dimension {k} exceeds INT8_EXACT_MAX_K="
            f"{INT8_EXACT_MAX_K}; float32 accumulation would round")
    return tiled_matmul(qa, qb, out=out, tile_rows=tile_rows)


__all__ = [
    "DEFAULT_TILE_ROWS",
    "INT8_EXACT_MAX_K",
    "int8_accumulation_exact",
    "int8_gemm",
    "quantize_symmetric",
    "quantize_to_float",
    "tiled_matmul",
]
