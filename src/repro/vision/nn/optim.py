"""Optimizers over :class:`~repro.vision.nn.layers.Parameter` lists."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.vision.nn.layers import Parameter


class Optimizer:
    def __init__(self, params: Sequence[Parameter]):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.value
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.value -= self.lr * g


class Adam(Optimizer):
    """Adam with bias correction (the paper trains YOLOv5 with Adam)."""

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.value
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * (g * g)
            m_hat = m / (1 - b1 ** self._t)
            v_hat = v / (1 - b2 ** self._t)
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
