"""Data-parallel batch execution for :class:`InferencePlan`.

A batched plan forward is embarrassingly parallel across images, but
naive chunking would change the answer: the float conv GEMMs are
issued over *groups* of images, and BLAS results depend on the call's
M dimension, so a worker split that changed group composition would
change bits.  The executor therefore reuses the shard-invariant scheme
of :mod:`repro.bench.parallel`:

1. **Group-aligned contiguous chunks** — the batch is split on group
   boundaries (``DeployConfig.images_per_tile`` images per group, 1 in
   ``per_image`` mode), so every group is composed of exactly the same
   images — and its GEMM of exactly the same operands — no matter how
   many workers run or which worker owns it.
2. **Sequential replay per worker** — each worker runs the plain
   in-process executor (:meth:`InferencePlan._forward_sequential`)
   over its chunk; there is no worker-local state that could leak into
   the output.
3. **Merge by global index** — chunk outputs are concatenated in
   chunk order (a fixed, left-leaning reduction tree).  Concatenation
   performs no arithmetic, so the merge is exact by construction; the
   fixed order matters only for buffer layout, and together with (1)
   and (2) it makes the merged batch byte-identical to sequential
   execution for ANY worker count — which the equivalence tests assert
   across 1/2/4 workers.

Workers are forked where the platform allows it (the compiled plan —
folded weights plus any int8 tables — is then inherited copy-on-write);
elsewhere the plan travels through its reduced pickle, which drops
scratch buffers, the profiler and the parent's own executor.  Int8
calibration must happen in the parent *before* the pool exists;
:meth:`InferencePlan.forward` auto-calibrates first and
:meth:`InferencePlan.calibrate_int8` invalidates any live pool, so
workers can never observe stale tables.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

#: Per-worker compiled plan, installed once by the pool initializer so
#: repeated forwards do not re-ship the weights.
_WORKER_PLAN = None


def _init_worker(plan) -> None:
    global _WORKER_PLAN
    _WORKER_PLAN = plan


def _run_chunk(chunk: np.ndarray) -> np.ndarray:
    """Worker entry: run one contiguous image chunk sequentially."""
    return _WORKER_PLAN._forward_sequential(chunk)


def _pool_context():
    """Prefer fork (cheap, copy-on-write weights); fall back to default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


class ParallelPlanExecutor:
    """Fan a plan's batch forward out across worker processes.

    Built lazily by :meth:`InferencePlan.forward` when
    ``DeployConfig.workers > 1``; the pool persists across calls until
    :meth:`close`.  Single-chunk batches run inline in the parent — no
    pool, no pickling.
    """

    def __init__(self, plan, n_workers: int):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self._plan = plan
        self._n_workers = n_workers
        self._pool: Optional[ProcessPoolExecutor] = None

    def chunk_bounds(self, n: int) -> List[Tuple[int, int]]:
        """Contiguous, group-aligned (lo, hi) image ranges for a batch.

        Whole GEMM groups are dealt to workers as evenly as possible
        (the same rounding split as ``repro.bench.parallel``); the
        bounds are a pure function of (batch size, deploy config) —
        never of worker identity or scheduling.
        """
        deploy = self._plan.deploy
        g = 1 if deploy.gemm == "per_image" else deploy.images_per_tile
        n_groups = -(-n // g)
        shards = max(1, min(self._n_workers, n_groups))
        bounds = [round(i * n_groups / shards) for i in range(shards + 1)]
        return [(lo * g, min(hi * g, n))
                for lo, hi in zip(bounds, bounds[1:]) if hi > lo]

    def forward(self, x: np.ndarray) -> np.ndarray:
        chunks = self.chunk_bounds(x.shape[0])
        if len(chunks) <= 1:
            return self._plan._forward_sequential(x)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=len(chunks), mp_context=_pool_context(),
                initializer=_init_worker, initargs=(self._plan,))
        futures = [self._pool.submit(_run_chunk, x[lo:hi])
                   for lo, hi in chunks]
        # Merge by global index: a fixed, left-leaning concatenation
        # tree.  No arithmetic happens here, so the merged bytes equal
        # the sequential output whenever every chunk's bytes do.
        return np.concatenate([f.result() for f in futures], axis=0)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


__all__ = ["ParallelPlanExecutor"]
