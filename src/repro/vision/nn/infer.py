"""Inference-mode fast path for the NN library.

Training needs layer caches, per-step allocations and explicit
BatchNorm statistics; serving needs none of that.  This module compiles
a trained layer stack into an :class:`InferencePlan` that applies the
standard mobile-engine optimizations:

1. **BatchNorm folding** — every Conv→BN pair is fused into a single
   convolution with rescaled weights (the same transform the ncnn-like
   port in :mod:`repro.vision.porting` applies at export time), so the
   deployed graph runs fewer kernels;
2. **Channels-last execution** — the plan runs NHWC internally.  The
   GEMM output of a convolution *is* the next layer's NHWC activation
   (no transposes between layers), im2col patch rows become a few
   contiguous memcpy runs instead of per-element gathers, and 1x1
   convolutions skip im2col entirely (the activation itself is the
   GEMM operand).  Weights are pre-reordered to (kh*kw*c, oc) at
   compile time;
3. **Operator fusion with pool-first reordering** — each
   Conv→LeakyReLU→MaxPool run is one step, and the max-pool is applied
   *directly to the GEMM output*, before the bias add and activation.
   Both reorderings are bitwise-exact: adding a per-channel bias is a
   monotone translation within each pooling window
   (``fl(max_i(a_i) + b) == max_i(fl(a_i + b))`` since ``x -> fl(x+b)``
   is non-decreasing), and ``leaky(x) = max(x, s*x)`` with
   ``s in [0, 1]`` is monotone non-decreasing, so it too commutes with
   the windowed max.  The payoff: bias/activation run over the pooled
   tensor — 4x fewer elements for a 2x2 pool;
4. **Buffer reuse** — the padded input, im2col matrix, GEMM output and
   activation temporary of each step are preallocated once per
   (step, input-shape) and overwritten on every call;
5. **Batched, tiled execution** — a plan forward over an
   ``(N, C, H, W)`` stack runs one im2col per layer for all N images,
   and issues the convolution GEMM over *groups* of
   ``DeployConfig.images_per_tile`` images so each call's working set
   stays cache-resident instead of streaming the full batch;
6. **Calibrated int8 execution** (``DeployConfig(precision="int8")``)
   — weights carry per-output-channel symmetric scales, activations a
   per-step scale calibrated from a seeded corpus
   (:meth:`InferencePlan.calibrate_int8`), and each conv step runs an
   exact int8 x int8 -> int32 GEMM (integer-valued float32 operands,
   see :mod:`repro.vision.nn.kernels`) followed by a *single*
   requantize multiply fused with the bias add.

**Determinism.**  BLAS results depend on call shape: ``matmul`` over M
rows is *not* bit-identical to the same rows split across several
calls for every (M, K, N) — measured on this platform it holds for the
TinyYolo step shapes but fails for e.g. ``K=72, N=8``.  The plan
therefore never lets scheduling choose call shapes.  Each GEMM is
issued over *groups* of images whose composition is a pure function of
the global image index (``gemm="per_image"`` is group size 1;
``gemm="tiled"`` uses ``images_per_tile``), so a given batch produces
the same bytes on every run and — because the parallel executor chunks
along group boundaries — for every worker count.  ``per_image``
additionally makes a batched forward bit-identical to running the
images one at a time (each image's GEMM has the same shape either
way); ``tiled`` trades that cross-batch-composition identity for
speed (outputs agree to float tolerance only).  The int8 path is
strongest: its accumulations are exact integer arithmetic in float32,
which is associative, so ANY tiling of the int8 GEMM — including
re-batching — is bit-identical by construction.
``DeployConfig(workers=N)`` fans a batch out across worker processes
along group boundaries (see :mod:`repro.vision.nn.parallel`) with the
same merged-by-global-index scheme as :mod:`repro.bench.parallel` —
output bytes never depend on the worker count.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.vision.nn.kernels import (
    int8_accumulation_exact,
    int8_gemm,
    INT8_EXACT_MAX_K,
    quantize_symmetric,
    quantize_to_float,
)
from repro.vision.nn.layers import (
    BatchNorm2D,
    Conv2D,
    Layer,
    LeakyReLU,
    MaxPool2D,
    Parameter,
)

#: Upper bound on ``DeployConfig.images_per_tile``: past this the
#: grouped GEMM streams its working set instead of staying
#: cache-resident, defeating the point of tiling.
MAX_IMAGES_PER_TILE = 16


@dataclass(frozen=True)
class DeployConfig:
    """How an :class:`InferencePlan` executes — precision, tiling,
    calibration and parallelism.

    This is the deployment knob the serving path plumbs end-to-end:
    :meth:`repro.vision.yolo.TinyYolo.set_deploy` rebuilds the model's
    plan with a new config, so ``detect_batch`` runs whatever precision
    and executor the config names.
    """

    #: "fp32" (default) or "int8" (calibrated, exact-GEMM execution).
    precision: str = "fp32"
    #: "per_image" (default) issues one GEMM per image, which keeps a
    #: batched forward bit-identical to per-image execution on every
    #: shape; "tiled" groups ``images_per_tile`` images per GEMM call —
    #: faster, still deterministic and worker-count-invariant, but
    #: bit-identical across batch compositions only in int8 precision.
    gemm: str = "per_image"
    images_per_tile: int = 8
    #: Synthetic calibration corpus size/seed used when int8 inference
    #: starts without an explicit :meth:`InferencePlan.calibrate_int8`
    #: call; real activations (a slice of the training split) give
    #: tighter ranges and are preferred.
    calibration_images: int = 8
    calibration_seed: int = 0
    #: Worker processes for data-parallel batch execution (1 = inline).
    workers: int = 1

    def __post_init__(self) -> None:
        if self.precision not in ("fp32", "int8"):
            raise ValueError(f"unknown precision {self.precision!r}")
        if self.gemm not in ("tiled", "per_image"):
            raise ValueError(f"unknown gemm mode {self.gemm!r}")
        if not 1 <= self.images_per_tile <= MAX_IMAGES_PER_TILE:
            raise ValueError(
                f"images_per_tile must be in [1, {MAX_IMAGES_PER_TILE}] "
                f"(the pinned bit-identity envelope), "
                f"got {self.images_per_tile}")
        if self.calibration_images < 1:
            raise ValueError("calibration_images must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


def fold_conv_bn(conv: Conv2D, bn: BatchNorm2D) -> Conv2D:
    """Return a new Conv2D computing ``bn(conv(x))`` in one op.

    Uses the BN *running* statistics, i.e. the inference-mode
    normalization.  A bias-free convolution gains a bias parameter to
    carry the folded shift.
    """
    inv_std = 1.0 / np.sqrt(bn.running_var + bn.eps)
    scale = bn.gamma.value * inv_std  # per out-channel
    folded = copy.deepcopy(conv)
    folded.weight.value = (conv.weight.value
                           * scale[:, None, None, None]).astype(np.float32)
    bias = conv.bias.value if conv.bias is not None else 0.0
    new_bias = (bias - bn.running_mean) * scale + bn.beta.value
    if folded.bias is None:
        folded.bias = Parameter(np.zeros(conv.weight.shape[0]),
                                name="conv.bias")
    folded.bias.value = new_bias.astype(np.float32)
    return folded


def fold_batchnorm(layers: Sequence[Layer]) -> List[Layer]:
    """Rewrite a layer list with every Conv→BN pair fused.

    Fused convolutions are fresh objects; all other layers are passed
    through unchanged (they hold no inference-relevant state).
    """
    out: List[Layer] = []
    i = 0
    seq = list(layers)
    while i < len(seq):
        layer = seq[i]
        nxt = seq[i + 1] if i + 1 < len(seq) else None
        if isinstance(layer, Conv2D) and isinstance(nxt, BatchNorm2D):
            out.append(fold_conv_bn(layer, nxt))
            i += 2
        else:
            out.append(layer)
            i += 1
    return out


@dataclass(eq=False)
class _ConvStep:
    """A fused Conv [+ LeakyReLU] [+ MaxPool] execution step."""

    idx: int
    conv: Conv2D
    slope: Optional[float]  # LeakyReLU slope, or None
    pool: Optional[int]     # MaxPool size, or None
    #: weight matrix reordered for NHWC patches: (kh*kw*c, oc)
    wt: np.ndarray = field(repr=False)


@dataclass(eq=False)
class _QuantStep:
    """Calibrated int8 tables for one conv step."""

    #: int8 weight codes stored as integer-valued float32, (kh*kw*c, oc)
    wq: np.ndarray = field(repr=False)
    #: per-step activation scale (absmax / 127 over the calibration set)
    x_scale: np.float32 = np.float32(1.0)
    #: fused requantize multiplier, (oc,): ``x_scale * w_scale[oc]``
    requant: np.ndarray = field(default=None, repr=False)


@dataclass(eq=False)
class _LayerStep:
    """A pass-through step for any layer the compiler does not fuse.

    Pass-through layers see standard NCHW tensors; the executor
    converts layout around them.
    """

    layer: Layer


class InferencePlan:
    """A compiled, eval-only executor for a layer stack.

    Build one from a trained stack and call :meth:`forward` with any
    batch size; buffers are grown lazily per distinct input shape and
    reused afterwards.  The plan snapshots the weights at build time
    (folding and reordering copy the convolutions), so it must be
    rebuilt after the source model trains or loads new weights —
    :class:`TinyYolo` does this automatically.

    ``deploy`` selects the execution mode (see :class:`DeployConfig`);
    the default is the tiled float32 path.  Plans pickle cleanly —
    scratch buffers, the profiler and any worker pool are dropped and
    rebuilt lazily — which is what lets the parallel executor fork the
    plan into worker processes.

    The returned array is freshly allocated per call and safe to keep.
    """

    def __init__(self, layers: Sequence[Layer], fold_bn: bool = True,
                 deploy: Optional[DeployConfig] = None):
        self.layers: List[Layer] = (fold_batchnorm(layers) if fold_bn
                                    else list(layers))
        self.deploy = deploy or DeployConfig()
        #: Optional :class:`repro.core.observability.PlanProfiler` (or
        #: anything with ``start_forward(batch)`` / ``record_step(label,
        #: macs)``).  When attached, every forward reports its per-step
        #: multiply-accumulate counts so the tracing layer can attribute
        #: the flat inference charge across the executed graph.  None
        #: (the default) costs one predicate per forward.
        self.profiler = None
        self._steps = self._compile(self.layers)
        #: idx -> calibrated int8 tables; None until calibration.
        self._quant: Optional[Dict[int, _QuantStep]] = None
        #: live only during calibration: idx -> input absmax so far.
        self._calib_absmax: Optional[Dict[int, float]] = None
        self._executor = None
        # Per-(step, input-shape) scratch buffers, all NHWC.
        self._pads: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        self._cols: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        self._outs: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        self._tmps: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        self._pools: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        self._qins: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}

    @staticmethod
    def _compile(layers: Sequence[Layer]) -> List[object]:
        steps: List[object] = []
        i = 0
        while i < len(layers):
            layer = layers[i]
            if not isinstance(layer, Conv2D):
                steps.append(_LayerStep(layer))
                i += 1
                continue
            slope: Optional[float] = None
            pool: Optional[int] = None
            j = i + 1
            if (j < len(layers) and isinstance(layers[j], LeakyReLU)
                    and 0.0 <= layers[j].slope <= 1.0):
                slope = layers[j].slope
                j += 1
            if j < len(layers) and isinstance(layers[j], MaxPool2D):
                pool = layers[j].size
                j += 1
            # (oc, c, kh, kw) -> (kh, kw, c, oc) flattened to match the
            # NHWC patch layout of the im2col rows.
            wt = np.ascontiguousarray(
                layer.weight.value.transpose(2, 3, 1, 0).reshape(
                    -1, layer.weight.shape[0]))
            steps.append(_ConvStep(idx=i, conv=layer, slope=slope, pool=pool,
                                   wt=wt))
            i = j
        return steps

    # -- pickling (the parallel executor forks plans into workers) ------

    def __getstate__(self):
        state = self.__dict__.copy()
        for key in ("_pads", "_cols", "_outs", "_tmps", "_pools", "_qins"):
            state[key] = {}
        state["profiler"] = None
        state["_executor"] = None
        state["_calib_absmax"] = None
        return state

    # -- calibration ----------------------------------------------------

    @property
    def is_calibrated(self) -> bool:
        return self._quant is not None

    def calibrate_int8(self, images: np.ndarray) -> None:
        """Build the int8 tables from a calibration batch (N, C, H, W).

        One float forward over the batch records each conv step's input
        absmax; activation scales are ``absmax / 127`` (per-tensor,
        symmetric) and weight scales are per-output-channel.  The
        requantize multiplier ``x_scale * w_scale[oc]`` is fused so the
        int8 step costs a single extra multiply over the pooled output.
        """
        if self.deploy.precision != "int8":
            raise ValueError("calibrate_int8 requires precision='int8'")
        # Forked workers snapshot the plan (tables included) when the
        # pool starts; recalibration must tear the pool down so no
        # worker can keep serving stale tables.
        self.close()
        self._quant = None
        self._calib_absmax = {}
        try:
            self._forward_sequential(np.asarray(images, dtype=np.float32))
        finally:
            absmax, self._calib_absmax = self._calib_absmax, None
        quant: Dict[int, _QuantStep] = {}
        for step in self._steps:
            if not isinstance(step, _ConvStep):
                continue
            kkc = step.wt.shape[0]
            if not int8_accumulation_exact(kkc):
                raise ValueError(
                    f"conv step {step.idx} has patch depth {kkc} > "
                    f"{INT8_EXACT_MAX_K}: int8 accumulation would not be "
                    "exact in float32")
            codes, w_scale = quantize_symmetric(step.wt, axis=1)
            x_abs = float(absmax.get(step.idx, 0.0))
            x_scale = np.float32(x_abs / 127.0 if x_abs > 0.0 else 1.0)
            requant = (x_scale * np.atleast_1d(
                np.asarray(w_scale, dtype=np.float32))).astype(np.float32)
            quant[step.idx] = _QuantStep(wq=codes.astype(np.float32),
                                         x_scale=x_scale, requant=requant)
        self._quant = quant

    def _auto_calibrate(self, x_shape: Tuple[int, ...]) -> None:
        """Calibrate on a seeded synthetic corpus shaped like the input.

        Deterministic per (seed, shape) so every process — including
        forked workers — derives identical tables; explicit
        :meth:`calibrate_int8` with real activations is preferred.
        """
        _, c, h, w = x_shape
        rng = np.random.default_rng(self.deploy.calibration_seed)
        corpus = rng.random((self.deploy.calibration_images, c, h, w),
                            dtype=np.float32)
        self.calibrate_int8(corpus)

    # -- execution ------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the stack over an (N, C, H, W) batch; returns NCHW."""
        if self.deploy.precision == "int8" and self._quant is None:
            self._auto_calibrate(x.shape)
        if self.deploy.workers > 1 and x.shape[0] > 1:
            if self._executor is None:
                from repro.vision.nn.parallel import ParallelPlanExecutor
                self._executor = ParallelPlanExecutor(
                    self, n_workers=self.deploy.workers)
            self._record_parallel_profile(x)
            return self._executor.forward(x)
        return self._forward_sequential(x)

    __call__ = forward

    def close(self) -> None:
        """Shut down the worker pool, if one was started."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def _forward_sequential(self, x: np.ndarray) -> np.ndarray:
        """The in-process executor (workers run exactly this path)."""
        prof = self.profiler
        if prof is not None:
            prof.start_forward(batch=x.shape[0])
        h = np.ascontiguousarray(x.transpose(0, 2, 3, 1), dtype=np.float32)
        for step in self._steps:
            if isinstance(step, _ConvStep):
                h = self._conv_forward(step, h)
            else:
                nchw = np.ascontiguousarray(h.transpose(0, 3, 1, 2))
                nchw = step.layer.forward(nchw, training=False)
                h = np.ascontiguousarray(nchw.transpose(0, 2, 3, 1))
                if prof is not None:
                    prof.record_step(type(step.layer).__name__.lower(),
                                     int(h.size))
        return np.ascontiguousarray(h.transpose(0, 3, 1, 2))

    def _record_parallel_profile(self, x: np.ndarray) -> None:
        """Per-op attribution for a fanned-out forward.

        Workers drop the profiler at pickling time, so the parent
        records the (static, shape-derived) MAC counts itself — the
        same labels and totals the sequential path would record.  Shape
        propagation stops at the first pass-through layer, whose output
        geometry only execution knows.
        """
        prof = self.profiler
        if prof is None:
            return
        prof.start_forward(batch=x.shape[0])
        n, c, h, w = x.shape
        for step in self._steps:
            if not isinstance(step, _ConvStep):
                return
            conv = step.conv
            k, s, p = conv.kernel, conv.stride, conv.pad
            oh = (h + 2 * p - k) // s + 1
            ow = (w + 2 * p - k) // s + 1
            oc = step.wt.shape[1]
            prof.record_step(f"conv{step.idx}", n * oh * ow * k * k * c * oc)
            if self._quant is not None:
                prof.record_step(f"quant{step.idx}", n * h * w * c)
            h, w, c = oh, ow, oc
            if step.pool:
                h //= step.pool
                w //= step.pool

    # -- internals ------------------------------------------------------

    def _buffer(self, pool: Dict, key, shape,
                zero: bool = False) -> np.ndarray:
        buf = pool.get(key)
        if buf is None:
            alloc = np.zeros if zero else np.empty
            buf = alloc(shape, dtype=np.float32)
            pool[key] = buf
        return buf

    def _conv_forward(self, step: _ConvStep, x: np.ndarray) -> np.ndarray:
        """One fused step over an NHWC activation; returns NHWC.

        The step is executed group by group: each group of
        ``images_per_tile`` images (1 in ``per_image`` mode) runs
        im2col -> GEMM -> pool back to back through *group-sized*
        scratch buffers, so the patch matrix and GEMM output stay
        cache-resident instead of streaming a full-batch im2col through
        memory.  Only the pooled result (1/ps^2 of the conv output) is
        written to the batch-sized buffer.  The bias/requantize add and
        the activation run once over that pooled tensor — both commute
        bitwise with the windowed max (per-channel affine with positive
        scale and ``leaky(x) = max(x, s*x)``, ``s in [0, 1]``, are
        monotone within each pooling window), which is what makes the
        pool-first ordering safe.
        """
        conv = step.conv
        n, h, w, c = x.shape
        k, s, p = conv.kernel, conv.stride, conv.pad
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        oc = step.wt.shape[1]
        ps = step.pool or 1
        if oh % ps or ow % ps:
            raise ValueError(
                f"input {oh}x{ow} not divisible by pool size {ps}")
        fh, fw = oh // ps, ow // ps
        if self.profiler is not None:
            # MACs of the (pre-pool) GEMM — the step's true arithmetic.
            self.profiler.record_step(f"conv{step.idx}",
                                      n * oh * ow * k * k * c * oc)
        if self._calib_absmax is not None:
            prev = self._calib_absmax.get(step.idx, 0.0)
            self._calib_absmax[step.idx] = max(prev,
                                               float(np.max(np.abs(x))))
        key = (step.idx, x.shape)
        quant = (self._quant.get(step.idx)
                 if self._quant is not None else None)
        if quant is not None:
            if self.profiler is not None:
                self.profiler.record_step(f"quant{step.idx}", int(x.size))
            xq = self._buffer(self._qins, key, x.shape)
            x = quantize_to_float(x, quant.x_scale, out=xq)
            wt = quant.wq
        else:
            wt = step.wt
        final = self._buffer(self._pools, key, (n, fh, fw, oc))
        # Group composition is a pure function of the global image
        # index, never of scheduling: BLAS results depend on the call's
        # M dimension, so this is what makes execution invariant to
        # worker count and, for group size 1, to batch composition.
        g = (1 if self.deploy.gemm == "per_image"
             else min(self.deploy.images_per_tile, n))
        rows = oh * ow
        one_by_one = k == 1 and s == 1 and p == 0
        if one_by_one:
            cols_all = x.reshape(n * h * w, c)  # 1x1: patches are rows
        for lo in range(0, n, g):
            hi = min(lo + g, n)
            gn = hi - lo
            if one_by_one:
                cols = cols_all[lo * rows:hi * rows]
            else:
                if p:
                    # Zero-filled once; the border stays zero, only the
                    # interior is rewritten per group.
                    padded = self._buffer(
                        self._pads, key, (g, h + 2 * p, w + 2 * p, c),
                        zero=True)
                    padded[:gn, p:p + h, p:p + w, :] = x[lo:hi]
                else:
                    padded = x[lo:hi]
                sn, sh, sw, sc = padded.strides
                windows = as_strided(
                    padded[:gn],
                    shape=(gn, oh, ow, k, k, c),
                    strides=(sn, sh * s, sw * s, sh, sw, sc),
                )
                cols = self._buffer(self._cols, key,
                                    (g * rows, k * k * c))[:gn * rows]
                # Each patch row is k contiguous runs of k*c floats —
                # the whole copy is memcpy-shaped, unlike the
                # per-element gathers an NCHW layout would force.
                np.copyto(cols.reshape(gn, oh, ow, k, k, c), windows)
            out = self._buffer(self._outs, key, (g * rows, oc))[:gn * rows]
            if quant is not None:
                # Exact integer accumulation is associative: any row
                # tiling of the int8 GEMM is bit-identical by
                # construction.
                int8_gemm(cols, wt, out=out)
            else:
                # One BLAS call per group: float results depend on the
                # call's M dimension, so the float path never subdivides
                # a group (the int8 branch may — exact arithmetic is
                # immune).
                np.matmul(cols, wt, out=out)
            nhwc = out.reshape(gn, oh, ow, oc)
            if step.pool is not None:
                wnd = nhwc.reshape(gn, fh, ps, fw, ps, oc)
                chunk = final[lo:hi]
                # Pairwise maxima over the ps*ps window offsets: each
                # operand is a strided view whose innermost oc run is
                # contiguous.
                np.copyto(chunk, wnd[:, :, 0, :, 0])
                for dy in range(ps):
                    for dx in range(ps):
                        if dy == 0 and dx == 0:
                            continue
                        np.maximum(chunk, wnd[:, :, dy, :, dx],
                                   out=chunk)
            else:
                chunk = final[lo:hi]
                np.copyto(chunk, nhwc)
            # Epilogue per group, while the pooled chunk is still
            # cache-hot.  Elementwise, so chunking cannot change bits.
            if quant is not None:
                # The single requantize step: int32-exact accumulators
                # back to the float activation domain, fused with the
                # bias add below.
                np.multiply(chunk, quant.requant, out=chunk)
            if conv.bias is not None:
                chunk += conv.bias.value
            if step.slope is not None:
                # leaky(x) == max(x, slope*x) for slope in [0, 1]; two
                # passes over the scratch, no allocation.
                tmp = self._buffer(self._tmps, key,
                                   (g, fh, fw, oc))[:gn]
                np.multiply(chunk, step.slope, out=tmp)
                np.maximum(chunk, tmp, out=chunk)
        return final
