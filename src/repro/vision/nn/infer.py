"""Inference-mode fast path for the NN library.

Training needs layer caches, per-step allocations and explicit
BatchNorm statistics; serving needs none of that.  This module compiles
a trained layer stack into an :class:`InferencePlan` that applies the
standard mobile-engine optimizations:

1. **BatchNorm folding** — every Conv→BN pair is fused into a single
   convolution with rescaled weights (the same transform the ncnn-like
   port in :mod:`repro.vision.porting` applies at export time), so the
   deployed graph runs fewer kernels;
2. **Channels-last execution** — the plan runs NHWC internally.  The
   GEMM output of a convolution *is* the next layer's NHWC activation
   (no transposes between layers), im2col patch rows become a few
   contiguous memcpy runs instead of per-element gathers, and 1x1
   convolutions skip im2col entirely.  Weights are pre-reordered to
   (kh*kw*c, oc) at compile time;
3. **Operator fusion** — each Conv→LeakyReLU→MaxPool run is one step:
   the activation is applied in place on the GEMM scratch and the pool
   reduces it with pairwise maxima, so the big pre-pool tensor is never
   rematerialized;
4. **Buffer reuse** — the padded input, im2col matrix, GEMM output and
   activation temporary of each step are preallocated once per
   (step, input-shape) and overwritten on every call;
5. **Batched execution** — a plan forward over an ``(N, C, H, W)``
   stack runs one im2col per layer for all N images, instead of N
   size-1 forwards, which is where dataset-wide evaluation loops win
   their wall-clock.

The plan is numerically deterministic: for a given weight state, the
per-image outputs of a batched forward are bit-identical to the outputs
of the same plan run image-by-image.  The GEMM of each convolution is
issued per image over fixed-shape slices of the shared scratch, because
BLAS kernel selection depends on the row count — a single tall GEMM
over all n*oh*ow rows can round differently from the batch-1 call.
Everything else in a step is elementwise or a windowed max, neither of
which depends on the batch dimension.  The equivalence tests assert
this bit-identity.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.vision.nn.layers import (
    BatchNorm2D,
    Conv2D,
    Layer,
    LeakyReLU,
    MaxPool2D,
    Parameter,
)


def fold_conv_bn(conv: Conv2D, bn: BatchNorm2D) -> Conv2D:
    """Return a new Conv2D computing ``bn(conv(x))`` in one op.

    Uses the BN *running* statistics, i.e. the inference-mode
    normalization.  A bias-free convolution gains a bias parameter to
    carry the folded shift.
    """
    inv_std = 1.0 / np.sqrt(bn.running_var + bn.eps)
    scale = bn.gamma.value * inv_std  # per out-channel
    folded = copy.deepcopy(conv)
    folded.weight.value = (conv.weight.value
                           * scale[:, None, None, None]).astype(np.float32)
    bias = conv.bias.value if conv.bias is not None else 0.0
    new_bias = (bias - bn.running_mean) * scale + bn.beta.value
    if folded.bias is None:
        folded.bias = Parameter(np.zeros(conv.weight.shape[0]),
                                name="conv.bias")
    folded.bias.value = new_bias.astype(np.float32)
    return folded


def fold_batchnorm(layers: Sequence[Layer]) -> List[Layer]:
    """Rewrite a layer list with every Conv→BN pair fused.

    Fused convolutions are fresh objects; all other layers are passed
    through unchanged (they hold no inference-relevant state).
    """
    out: List[Layer] = []
    i = 0
    seq = list(layers)
    while i < len(seq):
        layer = seq[i]
        nxt = seq[i + 1] if i + 1 < len(seq) else None
        if isinstance(layer, Conv2D) and isinstance(nxt, BatchNorm2D):
            out.append(fold_conv_bn(layer, nxt))
            i += 2
        else:
            out.append(layer)
            i += 1
    return out


@dataclass(eq=False)
class _ConvStep:
    """A fused Conv [+ LeakyReLU] [+ MaxPool] execution step."""

    idx: int
    conv: Conv2D
    slope: Optional[float]  # LeakyReLU slope, or None
    pool: Optional[int]     # MaxPool size, or None
    #: weight matrix reordered for NHWC patches: (kh*kw*c, oc)
    wt: np.ndarray = field(repr=False)


@dataclass(eq=False)
class _LayerStep:
    """A pass-through step for any layer the compiler does not fuse.

    Pass-through layers see standard NCHW tensors; the executor
    converts layout around them.
    """

    layer: Layer


class InferencePlan:
    """A compiled, eval-only executor for a layer stack.

    Build one from a trained stack and call :meth:`forward` with any
    batch size; buffers are grown lazily per distinct input shape and
    reused afterwards.  The plan snapshots the weights at build time
    (folding and reordering copy the convolutions), so it must be
    rebuilt after the source model trains or loads new weights —
    :class:`TinyYolo` does this automatically.

    The returned array is freshly allocated per call and safe to keep.
    """

    def __init__(self, layers: Sequence[Layer], fold_bn: bool = True):
        self.layers: List[Layer] = (fold_batchnorm(layers) if fold_bn
                                    else list(layers))
        #: Optional :class:`repro.core.observability.PlanProfiler` (or
        #: anything with ``start_forward(batch)`` / ``record_step(label,
        #: macs)``).  When attached, every forward reports its per-step
        #: multiply-accumulate counts so the tracing layer can attribute
        #: the flat inference charge across the executed graph.  None
        #: (the default) costs one predicate per forward.
        self.profiler = None
        self._steps = self._compile(self.layers)
        # Per-(step, input-shape) scratch buffers, all NHWC.
        self._pads: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        self._cols: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        self._outs: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        self._tmps: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        self._pools: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}

    @staticmethod
    def _compile(layers: Sequence[Layer]) -> List[object]:
        steps: List[object] = []
        i = 0
        while i < len(layers):
            layer = layers[i]
            if not isinstance(layer, Conv2D):
                steps.append(_LayerStep(layer))
                i += 1
                continue
            slope: Optional[float] = None
            pool: Optional[int] = None
            j = i + 1
            if (j < len(layers) and isinstance(layers[j], LeakyReLU)
                    and 0.0 <= layers[j].slope <= 1.0):
                slope = layers[j].slope
                j += 1
            if j < len(layers) and isinstance(layers[j], MaxPool2D):
                pool = layers[j].size
                j += 1
            # (oc, c, kh, kw) -> (kh, kw, c, oc) flattened to match the
            # NHWC patch layout of the im2col rows.
            wt = np.ascontiguousarray(
                layer.weight.value.transpose(2, 3, 1, 0).reshape(
                    -1, layer.weight.shape[0]))
            steps.append(_ConvStep(idx=i, conv=layer, slope=slope, pool=pool,
                                   wt=wt))
            i = j
        return steps

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the stack over an (N, C, H, W) batch; returns NCHW."""
        prof = self.profiler
        if prof is not None:
            prof.start_forward(batch=x.shape[0])
        h = np.ascontiguousarray(x.transpose(0, 2, 3, 1), dtype=np.float32)
        for step in self._steps:
            if isinstance(step, _ConvStep):
                h = self._conv_forward(step, h)
            else:
                nchw = np.ascontiguousarray(h.transpose(0, 3, 1, 2))
                nchw = step.layer.forward(nchw, training=False)
                h = np.ascontiguousarray(nchw.transpose(0, 2, 3, 1))
                if prof is not None:
                    prof.record_step(type(step.layer).__name__.lower(),
                                     int(h.size))
        return np.ascontiguousarray(h.transpose(0, 3, 1, 2))

    __call__ = forward

    # -- internals ------------------------------------------------------

    def _buffer(self, pool: Dict, key, shape,
                zero: bool = False) -> np.ndarray:
        buf = pool.get(key)
        if buf is None:
            alloc = np.zeros if zero else np.empty
            buf = alloc(shape, dtype=np.float32)
            pool[key] = buf
        return buf

    def _conv_forward(self, step: _ConvStep, x: np.ndarray) -> np.ndarray:
        """One fused step over an NHWC activation; returns NHWC."""
        conv = step.conv
        n, h, w, c = x.shape
        k, s, p = conv.kernel, conv.stride, conv.pad
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        oc = step.wt.shape[1]
        if self.profiler is not None:
            # MACs of the (pre-pool) GEMM — the step's true arithmetic.
            self.profiler.record_step(f"conv{step.idx}",
                                      n * oh * ow * k * k * c * oc)
        key = (step.idx, x.shape)
        if k == 1 and s == 1 and p == 0:
            cols = x.reshape(n * h * w, c)  # 1x1 conv: patches are rows
        else:
            if p:
                # Zero-filled once; the border stays zero, only the
                # interior is rewritten per call.
                padded = self._buffer(self._pads, key,
                                      (n, h + 2 * p, w + 2 * p, c), zero=True)
                padded[:, p:p + h, p:p + w, :] = x
            else:
                padded = x
            sn, sh, sw, sc = padded.strides
            windows = as_strided(
                padded,
                shape=(n, oh, ow, k, k, c),
                strides=(sn, sh * s, sw * s, sh, sw, sc),
            )
            cols = self._buffer(self._cols, key, (n * oh * ow, k * k * c))
            # Each patch row is k contiguous runs of k*c floats — the
            # whole copy is memcpy-shaped, unlike the per-element
            # gathers an NCHW layout would force.
            np.copyto(cols.reshape(n, oh, ow, k, k, c), windows)
        out = self._buffer(self._outs, key, (n * oh * ow, oc))
        # One GEMM call per image, each over a fixed-shape (oh*ow, kkc)
        # slice of the shared scratch.  BLAS kernel dispatch depends on
        # the M dimension, so a single (n*oh*ow)-row GEMM is not
        # guaranteed to reproduce the batch-1 rows bit-for-bit; equal
        # per-call shapes are what make batched and per-image inference
        # bit-identical.
        rows = oh * ow
        for j in range(n):
            np.matmul(cols[j * rows:(j + 1) * rows], step.wt,
                      out=out[j * rows:(j + 1) * rows])
        if conv.bias is not None:
            out += conv.bias.value
        if step.slope is not None:
            # leaky(x) == max(x, slope*x) for slope in [0, 1]; two
            # passes over the contiguous scratch, no allocation.
            tmp = self._buffer(self._tmps, key, out.shape)
            np.multiply(out, step.slope, out=tmp)
            np.maximum(out, tmp, out=out)
        nhwc = out.reshape(n, oh, ow, oc)
        if step.pool is None:
            return nhwc
        ps = step.pool
        if oh % ps or ow % ps:
            raise ValueError(
                f"input {oh}x{ow} not divisible by pool size {ps}")
        windows = nhwc.reshape(n, oh // ps, ps, ow // ps, ps, oc)
        pooled = self._buffer(self._pools, key,
                              (n, oh // ps, ow // ps, oc))
        # Pairwise maxima over the ps*ps window offsets: each operand
        # is a strided view whose innermost oc run is contiguous.
        np.copyto(pooled, windows[:, :, 0, :, 0])
        for dy in range(ps):
            for dx in range(ps):
                if dy == 0 and dx == 0:
                    continue
                np.maximum(pooled, windows[:, :, dy, :, dx], out=pooled)
        return pooled
