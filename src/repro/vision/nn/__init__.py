"""A minimal NumPy neural-network library with manual backprop.

Layout convention is NCHW (batch, channels, height, width), float32.
Every layer exposes ``forward(x, training)`` and ``backward(grad)``;
parameters and their gradients are reachable through ``parameters()``
so optimizers stay layer-agnostic.  Correctness is guarded by numerical
gradient checks in the test suite (see
:mod:`repro.vision.nn.gradcheck`).
"""

from repro.vision.nn.layers import (
    BatchNorm2D,
    Conv2D,
    Flatten,
    Layer,
    LeakyReLU,
    Linear,
    MaxPool2D,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
)
from repro.vision.nn.losses import (
    bce_with_logits,
    mse_loss,
    sigmoid,
    softmax,
    softmax_cross_entropy,
)
from repro.vision.nn.optim import SGD, Adam
from repro.vision.nn.gradcheck import numerical_gradient, check_layer_gradients
from repro.vision.nn.infer import (
    DeployConfig,
    InferencePlan,
    fold_batchnorm,
    fold_conv_bn,
)
from repro.vision.nn.kernels import (
    int8_gemm,
    quantize_symmetric,
    tiled_matmul,
)
from repro.vision.nn.parallel import ParallelPlanExecutor

__all__ = [
    "BatchNorm2D",
    "Conv2D",
    "Flatten",
    "Layer",
    "LeakyReLU",
    "Linear",
    "MaxPool2D",
    "Parameter",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "bce_with_logits",
    "mse_loss",
    "sigmoid",
    "softmax",
    "softmax_cross_entropy",
    "SGD",
    "Adam",
    "numerical_gradient",
    "check_layer_gradients",
    "DeployConfig",
    "InferencePlan",
    "ParallelPlanExecutor",
    "fold_batchnorm",
    "fold_conv_bn",
    "int8_gemm",
    "quantize_symmetric",
    "tiled_matmul",
]
