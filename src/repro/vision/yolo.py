"""TinyYOLO — the one-stage AUI detector.

A faithful (if small) instance of the paradigm the paper deploys: a
convolutional backbone over the whole image, a 1x1 prediction head
emitting per-grid-cell objectness, class scores and a YOLO-parameterized
box, confidence thresholding, and class-wise NMS.  Trained with Adam on
a composite loss (BCE objectness with down-weighted empty cells, MSE
box regression, cross-entropy class loss on object cells) — the
standard YOLO recipe.

Boxes are optionally sharpened by :mod:`repro.vision.refine` before
screen-space reporting; the strict IoU=0.9 metric needs that precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.grid import GridSpec
from repro.geometry.nms import ScoredBox, non_max_suppression
from repro.geometry.rect import Rect
from repro.vision.dataset import (
    CLASS_NAMES,
    DetectionDataset,
    INPUT_H,
    INPUT_W,
    input_rect_to_screen,
    to_input_tensor,
)
from repro.vision.nn import (
    Adam,
    BatchNorm2D,
    Conv2D,
    DeployConfig,
    InferencePlan,
    LeakyReLU,
    MaxPool2D,
    Sequential,
    sigmoid,
    softmax,
)
from repro.vision.refine import refine_detection_box

#: A detection is a scored, classed box (screen or input coordinates
#: depending on the API that produced it).
Detection = ScoredBox


@dataclass(frozen=True)
class YoloConfig:
    """Architecture and loss hyperparameters."""

    input_w: int = INPUT_W
    input_h: int = INPUT_H
    channels: Tuple[int, ...] = (16, 24, 48, 48)
    n_classes: int = 2
    lambda_coord: float = 5.0
    lambda_noobj: float = 0.4
    #: Extra weight on UPO-cell objectness/box terms: UPOs are an order
    #: of magnitude smaller than AGOs and need the emphasis.
    lambda_upo: float = 2.0
    conf_threshold: float = 0.45
    nms_iou: float = 0.4

    @property
    def cells_x(self) -> int:
        return self.input_w // 8  # three 2x poolings

    @property
    def cells_y(self) -> int:
        return self.input_h // 8

    @property
    def out_channels(self) -> int:
        return 5 + self.n_classes  # obj + 4 box + classes

    def grid(self) -> GridSpec:
        return GridSpec(self.input_w, self.input_h, self.cells_x, self.cells_y)


class TinyYolo:
    """The detector: backbone + head, encode/decode, screen-space API."""

    def __init__(self, config: Optional[YoloConfig] = None, seed: int = 0,
                 deploy: Optional[DeployConfig] = None):
        self.config = config or YoloConfig()
        self.deploy = deploy or DeployConfig()
        rng = np.random.default_rng(seed)
        c = self.config.channels
        layers = []
        in_ch = 3
        for i, out_ch in enumerate(c):
            layers.append(Conv2D(in_ch, out_ch, kernel=3, rng=rng))
            layers.append(BatchNorm2D(out_ch))
            layers.append(LeakyReLU(0.1))
            if i < 3:
                layers.append(MaxPool2D(2))
            in_ch = out_ch
        self.backbone = Sequential(layers)
        self.head = Conv2D(in_ch, self.config.out_channels, kernel=1, pad=0,
                           rng=rng)
        self.grid = self.config.grid()
        self._plan: Optional[InferencePlan] = None

    # -- plumbing -------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            # Weights and BN statistics are about to change: any
            # compiled inference plan is stale.
            self._plan = None
        feats = self.backbone.forward(x, training=training)
        return self.head.forward(feats, training=training)

    def inference_plan(self) -> InferencePlan:
        """The compiled serving path: BN folded, buffers reused.

        Built lazily (honoring :attr:`deploy`) and invalidated whenever
        the model trains or loads new weights, so callers never see
        stale weights.
        """
        if self._plan is None:
            self._plan = InferencePlan([*self.backbone.layers, self.head],
                                       deploy=self.deploy)
        return self._plan

    def set_deploy(self, deploy: DeployConfig,
                   calibration: Optional[np.ndarray] = None) -> None:
        """Switch the serving mode (precision/tiling/workers).

        Rebuilds the plan so ``detect_batch``/``detect_screen`` run
        end-to-end under the new config.  For ``precision="int8"``,
        ``calibration`` — a real (N, C, H, W) activation batch, e.g. a
        slice of the training split — drives
        :meth:`InferencePlan.calibrate_int8`; without it the plan
        calibrates itself on the seeded synthetic corpus at first use.
        """
        if self._plan is not None:
            self._plan.close()
        self.deploy = deploy
        self._plan = None
        if calibration is not None:
            self.inference_plan().calibrate_int8(calibration)

    def __getstate__(self):
        # The plan holds scratch buffers keyed by layer identity; it is
        # cheap to rebuild and meaningless across pickling (the parallel
        # runner ships models to worker processes).
        state = self.__dict__.copy()
        state["_plan"] = None
        return state

    def backward(self, grad: np.ndarray) -> None:
        self.backbone.backward(self.head.backward(grad))

    def parameters(self):
        return self.backbone.parameters() + self.head.parameters()

    def get_weights(self) -> List[np.ndarray]:
        return [p.value.copy() for p in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        params = self.parameters()
        if len(weights) != len(params):
            raise ValueError(f"expected {len(params)} arrays, got {len(weights)}")
        for p, w in zip(params, weights):
            if p.value.shape != w.shape:
                raise ValueError(f"shape mismatch for {p.name}: "
                                 f"{p.value.shape} vs {w.shape}")
            p.value = w.astype(np.float32).copy()
        self._plan = None

    def _batchnorms(self) -> List[BatchNorm2D]:
        return [l for l in self.backbone.layers if isinstance(l, BatchNorm2D)]

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Full inference state: parameters AND BatchNorm running stats.

        Keys are positional (``p000`` / ``bn000.mean`` …) so the dict
        round-trips safely through ``np.savez``.
        """
        state: Dict[str, np.ndarray] = {}
        for i, p in enumerate(self.parameters()):
            state[f"p{i:03d}"] = p.value.copy()
        for i, bn in enumerate(self._batchnorms()):
            state[f"bn{i:03d}.mean"] = bn.running_mean.copy()
            state[f"bn{i:03d}.var"] = bn.running_var.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = self.parameters()
        self.set_weights([state[f"p{i:03d}"] for i in range(len(params))])
        for i, bn in enumerate(self._batchnorms()):
            bn.running_mean = state[f"bn{i:03d}.mean"].astype(np.float32).copy()
            bn.running_var = state[f"bn{i:03d}.var"].astype(np.float32).copy()
        self._plan = None

    # -- target encoding ---------------------------------------------------

    def encode_targets(
        self, labels: Sequence[Sequence[Tuple[int, Rect]]]
    ) -> Dict[str, np.ndarray]:
        """Build dense target tensors for a batch of label lists."""
        n = len(labels)
        gy, gx = self.config.cells_y, self.config.cells_x
        obj = np.zeros((n, gy, gx), dtype=np.float32)
        box = np.zeros((n, 4, gy, gx), dtype=np.float32)
        cls = np.zeros((n, gy, gx), dtype=np.int64)
        for i, labs in enumerate(labels):
            for class_idx, rect in labs:
                col, row, t = self.grid.encode(rect)
                obj[i, row, col] = 1.0
                box[i, :, row, col] = t
                cls[i, row, col] = class_idx
        return {"obj": obj, "box": box, "cls": cls}

    # -- loss ---------------------------------------------------------------

    def loss_and_grad(
        self, raw: np.ndarray, targets: Dict[str, np.ndarray]
    ) -> Tuple[float, np.ndarray]:
        """Composite YOLO loss; returns (loss, d loss / d raw)."""
        cfg = self.config
        n = raw.shape[0]
        obj_t, box_t, cls_t = targets["obj"], targets["box"], targets["cls"]
        obj_mask = obj_t > 0.5
        n_obj = max(1.0, float(obj_mask.sum()))

        grad = np.zeros_like(raw)
        eps = 1e-7

        # Objectness: BCE over every cell; empty cells down-weighted,
        # UPO cells (tiny objects) up-weighted.
        obj_logit = raw[:, 0]
        p_obj = sigmoid(obj_logit)
        upo_cells = obj_mask & (cls_t == 1)
        pos_w = np.where(upo_cells, cfg.lambda_upo, 1.0)
        w_obj = np.where(obj_mask, pos_w, cfg.lambda_noobj)
        obj_loss = float(
            (w_obj * -(obj_t * np.log(p_obj + eps)
                       + (1 - obj_t) * np.log(1 - p_obj + eps))).sum() / n_obj
        )
        grad[:, 0] = w_obj * (p_obj - obj_t) / n_obj

        # Box regression: MSE on sigmoid outputs, object cells only,
        # with the same UPO emphasis.
        box_logit = raw[:, 1:5]
        p_box = sigmoid(box_logit)
        mask4 = (obj_mask * pos_w)[:, None, :, :]
        err = p_box - box_t
        box_loss = cfg.lambda_coord * float((err ** 2 * mask4).sum() / n_obj)
        grad[:, 1:5] = (cfg.lambda_coord * 2.0 * err * mask4
                        * p_box * (1 - p_box) / n_obj)

        # Classes: softmax CE on object cells.
        cls_logit = raw[:, 5:]  # (N, C, gy, gx)
        cls_swapped = np.moveaxis(cls_logit, 1, -1)  # (N, gy, gx, C)
        p_cls = softmax(cls_swapped, axis=-1)
        onehot = np.eye(cfg.n_classes, dtype=np.float32)[cls_t]
        ce = -(onehot * np.log(p_cls + eps)).sum(axis=-1)
        cls_loss = float((ce * obj_mask).sum() / n_obj)
        d_cls = (p_cls - onehot) * obj_mask[..., None] / n_obj
        grad[:, 5:] = np.moveaxis(d_cls, -1, 1)

        return obj_loss + box_loss + cls_loss, grad.astype(np.float32)

    # -- inference ------------------------------------------------------------

    def predict_raw(self, images: np.ndarray) -> np.ndarray:
        return self.inference_plan().forward(images)

    def decode(
        self,
        raw_single: np.ndarray,
        conf_threshold: Optional[float] = None,
    ) -> List[Detection]:
        """Raw (C, gy, gx) map -> thresholded, NMS-filtered detections
        in *input* coordinates."""
        cfg = self.config
        thr = cfg.conf_threshold if conf_threshold is None else conf_threshold
        p_obj = sigmoid(raw_single[0])
        p_box = sigmoid(raw_single[1:5])
        p_cls = softmax(np.moveaxis(raw_single[5:], 0, -1), axis=-1)
        detections: List[Detection] = []
        rows, cols = np.where(p_obj > thr)
        for row, col in zip(rows, cols):
            t = p_box[:, row, col]
            rect = self.grid.decode(int(col), int(row), t)
            class_idx = int(np.argmax(p_cls[row, col]))
            score = float(np.clip(p_obj[row, col] * p_cls[row, col, class_idx],
                                  0.0, 1.0))
            if rect.is_empty():
                continue
            detections.append(
                Detection(rect=rect, label=CLASS_NAMES[class_idx], score=score)
            )
        return non_max_suppression(detections, iou_threshold=cfg.nms_iou)

    def detect_batch(
        self,
        images: np.ndarray,
        conf_threshold: Optional[float] = None,
    ) -> List[List[Detection]]:
        raw = self.predict_raw(images)
        return [self.decode(raw[i], conf_threshold) for i in range(raw.shape[0])]

    def detect_screens(
        self,
        screen_images: Sequence[np.ndarray],
        refine: bool = True,
        conf_threshold: Optional[float] = None,
    ) -> List[List[Detection]]:
        """Batched end-to-end path: N native screenshots -> N box lists.

        All N frames are preprocessed into one (N, C, H, W) stack and
        run through a single plan forward — one im2col per layer into a
        reused scratch instead of N size-1 forwards.  Per-image results
        are bit-identical to calling :meth:`detect_screen` image by
        image (see :mod:`repro.vision.nn.infer`).
        """
        if len(screen_images) == 0:
            return []
        tensors = np.stack([to_input_tensor(img) for img in screen_images])
        batches = self.detect_batch(tensors, conf_threshold)
        out: List[List[Detection]] = []
        for img, dets in zip(screen_images, batches):
            per_image: List[Detection] = []
            for det in dets:
                rect = input_rect_to_screen(det.rect)
                if refine:
                    rect = refine_detection_box(img, rect)
                per_image.append(Detection(rect=rect, label=det.label,
                                           score=det.score))
            out.append(per_image)
        return out

    def detect_screen(
        self,
        screen_image: np.ndarray,
        refine: bool = True,
        conf_threshold: Optional[float] = None,
    ) -> List[Detection]:
        """End-to-end: native screenshot (H, W, 3) -> screen-space boxes.

        This is the call DARPA's runtime makes per settled screenshot.
        """
        return self.detect_screens([screen_image], refine=refine,
                                   conf_threshold=conf_threshold)[0]


@dataclass
class TrainHistory:
    losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class YoloTrainer:
    """Mini-batch Adam training loop for :class:`TinyYolo`.

    Pass ``augment`` (an :class:`repro.vision.augment.AugmentConfig`)
    to enable photometric/translation augmentation per batch.
    """

    def __init__(self, model: TinyYolo, lr: float = 2e-3,
                 batch_size: int = 16, seed: int = 0,
                 augment=None):
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        self.model = model
        self.optimizer = Adam(model.parameters(), lr=lr)
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        self.augment = augment

    def train_epoch(self, dataset: DetectionDataset) -> float:
        order = self.rng.permutation(len(dataset))
        total, batches = 0.0, 0
        for start in range(0, len(order), self.batch_size):
            idx = order[start:start + self.batch_size]
            images = dataset.images[idx]
            labels = [dataset.labels[i] for i in idx]
            if self.augment is not None:
                from repro.vision.augment import augment_batch
                images, labels = augment_batch(images, labels, self.rng,
                                               self.augment)
            targets = self.model.encode_targets(labels)
            self.optimizer.zero_grad()
            raw = self.model.forward(images, training=True)
            loss, grad = self.model.loss_and_grad(raw, targets)
            self.model.backward(grad)
            self.optimizer.step()
            total += loss
            batches += 1
        return total / max(1, batches)

    def evaluate_loss(self, dataset: DetectionDataset) -> float:
        targets = self.model.encode_targets(dataset.labels)
        raw = self.model.forward(dataset.images, training=False)
        loss, _ = self.model.loss_and_grad(raw, targets)
        return loss

    def fit(
        self,
        dataset: DetectionDataset,
        epochs: int,
        val_dataset: Optional[DetectionDataset] = None,
        verbose: bool = False,
    ) -> TrainHistory:
        history = TrainHistory()
        for epoch in range(epochs):
            loss = self.train_epoch(dataset)
            history.losses.append(loss)
            if val_dataset is not None:
                history.val_losses.append(self.evaluate_loss(val_dataset))
            if verbose:
                msg = f"epoch {epoch + 1}/{epochs} loss={loss:.4f}"
                if history.val_losses:
                    msg += f" val={history.val_losses[-1]:.4f}"
                print(msg)
        return history
