"""Rendering corpus samples into detection tensors.

The detector consumes fixed-size NCHW tensors.  Screens are rendered at
native 360x640 through the exact runtime screenshot pipeline, optionally
text-masked (Table IV), then downscaled by 1/5 to 72x128 — preserving
the portrait aspect ratio so corner UPOs stay in corners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.rect import Rect
from repro.imaging.filters import resize
from repro.datagen.corpus import AuiSample, render_state
from repro.datagen.masking import mask_option_texts

#: Class-index mapping used across every detector.
CLASS_NAMES: Tuple[str, str] = ("AGO", "UPO")
CLASS_TO_INDEX: Dict[str, int] = {"AGO": 0, "UPO": 1}

SCREEN_W, SCREEN_H = 360, 640
INPUT_W, INPUT_H = 72, 128
_SCALE = SCREEN_W / INPUT_W  # 5.0 on both axes


@dataclass
class DetectionDataset:
    """Images plus ground truth, in both input and screen coordinates."""

    images: np.ndarray                      # (N, 3, INPUT_H, INPUT_W) float32
    labels: List[List[Tuple[int, Rect]]]    # per-image (class_idx, input-space rect)
    screen_images: Optional[List[np.ndarray]] = None  # native-res renders
    screen_labels: List[List[Tuple[str, Rect]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.images.ndim != 4 or self.images.shape[1] != 3:
            raise ValueError(f"expected (N, 3, H, W) images, got {self.images.shape}")
        if len(self.labels) != self.images.shape[0]:
            raise ValueError("labels/images length mismatch")

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def input_size(self) -> Tuple[int, int]:
        """(width, height) of the detector input."""
        return (self.images.shape[3], self.images.shape[2])

    def class_counts(self) -> Dict[str, int]:
        counts = {name: 0 for name in CLASS_NAMES}
        for labs in self.labels:
            for cls, _ in labs:
                counts[CLASS_NAMES[cls]] += 1
        return counts


def to_input_tensor(screen_image: np.ndarray) -> np.ndarray:
    """One native screenshot (H, W, 3) -> (3, INPUT_H, INPUT_W) tensor."""
    small = resize(screen_image, INPUT_H, INPUT_W)
    return np.ascontiguousarray(small.transpose(2, 0, 1)).astype(np.float32)


def input_rect_to_screen(rect: Rect) -> Rect:
    return rect.scaled(_SCALE)


def screen_rect_to_input(rect: Rect) -> Rect:
    return rect.scaled(1.0 / _SCALE)


def build_detection_dataset(
    samples: Sequence[AuiSample],
    masked: bool = False,
    noise_seed: int = 1000,
    keep_screen_images: bool = False,
) -> DetectionDataset:
    """Render samples into a ready-to-train dataset.

    ``masked`` applies the Figure-7 text-masking transform before
    downscaling.  ``keep_screen_images`` retains native-resolution
    renders (needed by evaluation paths that run box refinement).
    """
    images = np.zeros((len(samples), 3, INPUT_H, INPUT_W), dtype=np.float32)
    labels: List[List[Tuple[int, Rect]]] = []
    screen_labels: List[List[Tuple[str, Rect]]] = []
    screen_images: List[np.ndarray] = []
    for i, sample in enumerate(samples):
        img, labs = render_state(sample.screen, noise_seed=noise_seed + i)
        if masked:
            img = mask_option_texts(img, labs)
        images[i] = to_input_tensor(img)
        labels.append(
            [(CLASS_TO_INDEX[role], screen_rect_to_input(rect))
             for role, rect in labs]
        )
        screen_labels.append(list(labs))
        if keep_screen_images:
            screen_images.append(img)
    return DetectionDataset(
        images=images,
        labels=labels,
        screen_images=screen_images if keep_screen_images else None,
        screen_labels=screen_labels,
    )
