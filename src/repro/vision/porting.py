"""The ncnn-like mobile port (paper Section IV-C, Table IV).

The paper converts the trained PyTorch YOLOv5 to ONNX, "replaces
internal redundant calculations with constants", converts to ncnn, and
runs it on the phone — reporting a ~1.7-point F1 loss.  Our port
performs the same two transformations that cause that loss in practice:

1. **Constant folding** — BatchNorm layers are folded into the weights
   and biases of the preceding convolution, so the deployed graph has
   no normalization ops (fewer kernels, fewer round-trips);
2. **Weight quantization** — folded weights are stored in reduced
   precision (fp16 by default; int8 optionally), the format mobile
   inference engines execute on ARM CPUs.

The ported model exposes the same ``detect_screen`` API as the trained
one, plus a simulated mobile execution profile for overhead accounting.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.vision.nn.infer import DeployConfig, fold_conv_bn
from repro.vision.nn.kernels import quantize_symmetric
from repro.vision.nn.layers import BatchNorm2D, Conv2D, Layer, LeakyReLU, MaxPool2D, Sequential
from repro.vision.yolo import Detection, TinyYolo


class PortError(RuntimeError):
    """Raised when the model graph cannot be exported."""


@dataclass(frozen=True)
class PortConfig:
    """Porting options."""

    quantization: str = "fp16"  # "none" | "fp16" | "int8"
    fold_batchnorm: bool = True
    #: Simulated speed-up of the mobile engine vs the unported graph
    #: (BN folding + half-precision arithmetic); used by the device
    #: cost model, not by correctness paths.
    speedup: float = 1.6

    def __post_init__(self) -> None:
        if self.quantization not in ("none", "fp16", "int8"):
            raise ValueError(f"unknown quantization {self.quantization!r}")


def _quantize(array: np.ndarray, mode: str) -> np.ndarray:
    if mode == "none":
        return array.astype(np.float32)
    if mode == "fp16":
        return array.astype(np.float16).astype(np.float32)
    # int8: symmetric quantization.  Conv weights (4-D, out-channel
    # first) get one scale per output channel — one outlier channel no
    # longer inflates the step size of every other filter, which is the
    # scheme real mobile engines use and measurably tightens the
    # round-trip error (pinned by the porting regression tests).
    # Biases and other 1-D params keep a per-tensor scale.
    axis = 0 if array.ndim == 4 else None
    codes, scale = quantize_symmetric(array, axis=axis)
    if axis is not None:
        scale = np.reshape(scale, (-1,) + (1,) * (array.ndim - 1))
    return (codes.astype(np.float32) * scale).astype(np.float32)


def _fold_bn_into_conv(conv: Conv2D, bn: BatchNorm2D) -> Conv2D:
    """Return a new Conv2D computing conv followed by bn.

    The arithmetic lives in :func:`repro.vision.nn.infer.fold_conv_bn`
    (shared with the runtime inference plan); the export pipeline only
    adds the graph-validity check.
    """
    if conv.bias is None:
        raise PortError("cannot fold BN into a bias-free convolution")
    return fold_conv_bn(conv, bn)


def _fold_sequential(seq: Sequential) -> List[Layer]:
    """Rewrite a layer list with every Conv->BN pair fused."""
    out: List[Layer] = []
    i = 0
    layers = seq.layers
    while i < len(layers):
        layer = layers[i]
        nxt = layers[i + 1] if i + 1 < len(layers) else None
        if isinstance(layer, Conv2D) and isinstance(nxt, BatchNorm2D):
            out.append(_fold_bn_into_conv(layer, nxt))
            i += 2
        else:
            out.append(copy.deepcopy(layer))
            i += 1
    return out


class MobilePort:
    """A deployed (folded + quantized) TinyYolo with the same API."""

    def __init__(self, model: TinyYolo, config: Optional[PortConfig] = None,
                 deploy: Optional[DeployConfig] = None,
                 calibration: Optional[np.ndarray] = None):
        self.config = config or PortConfig()
        self.source_config = model.config
        # Clone the full model (parameters + BN stats), then rewrite it.
        ported = TinyYolo(model.config, seed=0)
        ported.load_state_dict(model.state_dict())
        if self.config.fold_batchnorm:
            ported.backbone = Sequential(_fold_sequential(ported.backbone))
        for p in ported.parameters():
            p.value = _quantize(p.value, self.config.quantization)
        # The port stores weights in reduced precision (above); the
        # deploy config additionally selects how the serving plan
        # *executes* — e.g. DeployConfig(precision="int8") runs the
        # calibrated exact-GEMM int8 path end to end.
        if deploy is not None:
            ported.set_deploy(deploy, calibration=calibration)
        self._model = ported

    # -- inference (same API as TinyYolo) --------------------------------

    def detect_screen(self, screen_image: np.ndarray, refine: bool = True,
                      conf_threshold: Optional[float] = None) -> List[Detection]:
        return self._model.detect_screen(screen_image, refine=refine,
                                         conf_threshold=conf_threshold)

    def detect_screens(self, screen_images, refine: bool = True,
                       conf_threshold: Optional[float] = None):
        """Batched screen-space inference (see TinyYolo.detect_screens)."""
        return self._model.detect_screens(screen_images, refine=refine,
                                          conf_threshold=conf_threshold)

    def detect_batch(self, images: np.ndarray,
                     conf_threshold: Optional[float] = None):
        return self._model.detect_batch(images, conf_threshold)

    @property
    def model(self) -> TinyYolo:
        return self._model

    # -- deployment accounting ---------------------------------------------

    def layer_count(self) -> int:
        return len(self._model.backbone.layers) + 1  # + head

    def model_size_bytes(self) -> int:
        """Serialized weight footprint at the ported precision."""
        bytes_per = {"none": 4, "fp16": 2, "int8": 1}[self.config.quantization]
        return sum(p.value.size * bytes_per for p in self._model.parameters())

    def inference_time_ms(self, base_ms: float = 38.0) -> float:
        """Simulated per-frame mobile inference latency."""
        return base_ms / self.config.speedup


def port_model(model: TinyYolo, config: Optional[PortConfig] = None,
               deploy: Optional[DeployConfig] = None,
               calibration: Optional[np.ndarray] = None) -> MobilePort:
    """Convenience wrapper mirroring the paper's export pipeline."""
    return MobilePort(model, config, deploy=deploy, calibration=calibration)
