"""Detection metrics at a strict IoU threshold.

Implements the paper's evaluation protocol (Section VI-B): a predicted
option counts as a true positive when it matches a same-class ground
truth with IoU above 0.9; precision/recall/F1 are reported per class
and overall.  Also provides the screen-level AUI/non-AUI confusion
matrix of Table VI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.geometry.iou import match_boxes
from repro.geometry.nms import ScoredBox
from repro.geometry.rect import Rect

IOU_THRESHOLD = 0.9


@dataclass
class ClassMetrics:
    """TP/FP/FN tallies with derived P/R/F1."""

    tp: int = 0
    fp: int = 0
    fn: int = 0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        denom = 2 * self.tp + self.fp + self.fn
        return 2 * self.tp / denom if denom else 0.0

    def merge(self, other: "ClassMetrics") -> "ClassMetrics":
        return ClassMetrics(self.tp + other.tp, self.fp + other.fp,
                            self.fn + other.fn)


@dataclass
class EvalResult:
    """Per-class and pooled metrics for a detection run."""

    per_class: Dict[str, ClassMetrics]

    @property
    def overall(self) -> ClassMetrics:
        total = ClassMetrics()
        for metrics in self.per_class.values():
            total = total.merge(metrics)
        return total

    def row(self, name: str) -> Tuple[float, float, float]:
        """(precision, recall, f1) for a class or 'All'."""
        m = self.overall if name == "All" else self.per_class[name]
        return (m.precision, m.recall, m.f1)


class DetectionEvaluator:
    """Accumulates matches over images at one IoU threshold."""

    def __init__(self, iou_threshold: float = IOU_THRESHOLD,
                 class_names: Sequence[str] = ("AGO", "UPO")):
        if not 0.0 < iou_threshold <= 1.0:
            raise ValueError("IoU threshold must be in (0, 1]")
        self.iou_threshold = iou_threshold
        self.class_names = tuple(class_names)
        self._metrics = {name: ClassMetrics() for name in self.class_names}

    def add_image(
        self,
        predictions: Sequence[ScoredBox],
        truths: Sequence[Tuple[str, Rect]],
    ) -> None:
        """Score one image's predictions against its ground truth."""
        for name in self.class_names:
            preds = sorted(
                (p for p in predictions if p.label == name),
                key=lambda p: p.score, reverse=True,
            )
            gt = [rect for role, rect in truths if role == name]
            matches, unmatched_p, unmatched_t = match_boxes(
                [p.rect for p in preds], gt, self.iou_threshold
            )
            m = self._metrics[name]
            m.tp += len(matches)
            m.fp += len(unmatched_p)
            m.fn += len(unmatched_t)

    def add_images(
        self,
        predictions: Iterable[Sequence[ScoredBox]],
        truths: Iterable[Sequence[Tuple[str, Rect]]],
    ) -> None:
        for preds, gt in zip(predictions, truths):
            self.add_image(preds, gt)

    def result(self) -> EvalResult:
        return EvalResult(per_class={k: ClassMetrics(v.tp, v.fp, v.fn)
                                     for k, v in self._metrics.items()})


def precision_recall_curve(
    detect_fn,
    images,
    truths,
    thresholds: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    iou_threshold: float = IOU_THRESHOLD,
) -> List[Tuple[float, float, float]]:
    """Sweep the confidence threshold; returns (thr, precision, recall).

    ``detect_fn(image, conf_threshold)`` must return scored boxes.  The
    sweep re-runs detection per threshold (decode is cheap next to the
    backbone, but this keeps the function detector-agnostic).
    """
    out: List[Tuple[float, float, float]] = []
    for thr in thresholds:
        evaluator = DetectionEvaluator(iou_threshold=iou_threshold)
        for image, gt in zip(images, truths):
            evaluator.add_image(detect_fn(image, thr), gt)
        overall = evaluator.result().overall
        out.append((thr, overall.precision, overall.recall))
    return out


@dataclass
class ScreenConfusion:
    """Screen-level AUI classification confusion matrix (Table VI).

    A screen is *predicted* AUI when the detector flags at least one
    UPO on it (the paper counts "screenshots that have UPOs").
    """

    tp: int = 0  # labeled AUI, predicted AUI
    fn: int = 0  # labeled AUI, missed
    fp: int = 0  # labeled non-AUI, predicted AUI
    tn: int = 0  # labeled non-AUI, predicted non-AUI

    def add_screen(self, labeled_aui: bool, predicted_aui: bool) -> None:
        if labeled_aui and predicted_aui:
            self.tp += 1
        elif labeled_aui:
            self.fn += 1
        elif predicted_aui:
            self.fp += 1
        else:
            self.tn += 1

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    def as_matrix(self) -> Dict[str, Dict[str, int]]:
        """Rows: labeled; columns: predicted — Table VI layout."""
        return {
            "AUI": {"AUI": self.tp, "Non-AUI": self.fn},
            "Non-AUI": {"AUI": self.fp, "Non-AUI": self.tn},
        }
