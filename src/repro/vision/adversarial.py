"""Adversarial-patch attacks against the AUI detector.

The paper's Limitations section concedes that "determined attackers can
freely test the adopted CV-model to develop targeted attacks, such as
adversarial patch attacks" and that DARPA, as shipped, cannot defend
against them.  This module makes that limitation measurable:

- :func:`craft_suppression_patch` runs a PGD-style attack that
  optimizes a localized perturbation (a *patch* over the option region)
  to suppress the detector's objectness — the attack a dark-pattern
  author would mount to hide the UPO from DARPA;
- :func:`attack_recall` measures detector recall before/after patching
  every ground-truth option of a dataset;
- :func:`SmoothedDetector` wraps a detector with randomized-smoothing
  style input jitter averaging — the "more resilient models" mitigation
  direction the paper points at — trading inference cost for a harder
  attack surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.iou import iou
from repro.geometry.nms import ScoredBox, non_max_suppression
from repro.geometry.rect import Rect
from repro.vision.dataset import DetectionDataset
from repro.vision.nn.losses import sigmoid
from repro.vision.yolo import TinyYolo


@dataclass(frozen=True)
class AttackConfig:
    """PGD attack hyper-parameters."""

    steps: int = 25
    step_size: float = 0.06
    epsilon: float = 0.9       # patch pixels may move this far in [0,1]
    patch_margin: float = 1.5  # patch extends this far beyond the box

    def __post_init__(self) -> None:
        if self.steps <= 0:
            raise ValueError("steps must be positive")
        if not 0 < self.epsilon <= 1:
            raise ValueError("epsilon must be in (0, 1]")


_eval_model_cache: Dict[int, TinyYolo] = {}


def _eval_model(model: TinyYolo) -> TinyYolo:
    """A BN-folded clone whose train-mode forward equals inference.

    BatchNorm uses batch statistics under ``training=True`` (needed for
    backward caches) but running statistics at inference; attacking the
    raw graph would optimize the wrong function.  Folding BN into the
    convolutions (the same transform the mobile port applies) removes
    the discrepancy.
    """
    key = id(model)
    if key not in _eval_model_cache:
        from repro.vision.porting import MobilePort, PortConfig
        _eval_model_cache[key] = MobilePort(
            model, PortConfig(quantization="none")).model
    return _eval_model_cache[key]


def _objectness_input_gradient(model: TinyYolo, x: np.ndarray) -> Tuple[float, np.ndarray]:
    """Gradient of total objectness probability w.r.t. the input.

    The attacker's loss is ``sum(sigmoid(obj_logits))`` — pushing it
    down makes every cell deny having an object.
    """
    raw = model.forward(x, training=True)
    p_obj = sigmoid(raw[:, 0])
    loss = float(p_obj.sum())
    grad_raw = np.zeros_like(raw)
    grad_raw[:, 0] = p_obj * (1.0 - p_obj)  # d loss / d obj_logit
    d_head = model.head.backward(grad_raw)
    dx = model.backbone.backward(d_head)
    return loss, dx


def _patch_mask(shape: Tuple[int, ...], rect: Rect, margin: float) -> np.ndarray:
    """A (1, 1, H, W) mask covering the inflated target box."""
    _, _, h, w = shape
    grown = rect.inflated(margin * max(2.0, min(rect.w, rect.h) * 0.2))
    grown = grown.clipped_to(Rect(0, 0, w, h)).rounded()
    mask = np.zeros((1, 1, h, w), dtype=np.float32)
    if grown.is_empty():
        return mask
    mask[:, :, int(grown.top):int(grown.bottom),
         int(grown.left):int(grown.right)] = 1.0
    return mask


def craft_suppression_patch(
    model: TinyYolo,
    image: np.ndarray,
    target: Rect,
    config: Optional[AttackConfig] = None,
) -> np.ndarray:
    """PGD over the patch region to suppress detection.

    ``image`` is a single input tensor ``(3, H, W)`` in detector input
    space; ``target`` the option box (input coordinates) the attacker
    wants hidden.  Returns the patched input tensor.
    """
    config = config or AttackConfig()
    attacked = _eval_model(model)
    x = image[None].astype(np.float32).copy()
    original = x.copy()
    mask = _patch_mask(x.shape, target, config.patch_margin)
    for _ in range(config.steps):
        _, dx = _objectness_input_gradient(attacked, x)
        x = x - config.step_size * np.sign(dx) * mask
        # Project into the epsilon-ball around the original and [0, 1].
        x = np.clip(x, original - config.epsilon * mask,
                    original + config.epsilon * mask)
        x = np.clip(x, 0.0, 1.0)
    return x[0]


def _recall(model_like, dataset: DetectionDataset,
            images: Sequence[np.ndarray],
            conf_threshold: float, match_iou: float) -> float:
    found = total = 0
    for i, labs in enumerate(dataset.labels):
        dets = model_like.detect_batch(np.asarray(images[i])[None],
                                       conf_threshold)[0]
        for cls, rect in labs:
            total += 1
            name = ("AGO", "UPO")[cls]
            if any(d.label == name and iou(d.rect, rect) > match_iou
                   for d in dets):
                found += 1
    return found / total if total else 0.0


def attack_recall(
    model: TinyYolo,
    dataset: DetectionDataset,
    config: Optional[AttackConfig] = None,
    conf_threshold: float = 0.4,
    match_iou: float = 0.3,
    detector=None,
) -> Dict[str, float]:
    """Coarse detection recall before vs after per-option patching.

    ``detector`` defaults to the attacked model itself (white-box);
    pass a :class:`SmoothedDetector` to measure the mitigation.
    Matching uses a loose IoU because the attack targets *detection*,
    not localization — a suppressed option never reaches refinement.
    """
    config = config or AttackConfig()
    detector = detector or model
    clean = [dataset.images[i] for i in range(len(dataset))]
    patched: List[np.ndarray] = []
    for i in range(len(dataset)):
        x = dataset.images[i]
        for _, rect in dataset.labels[i]:
            x = craft_suppression_patch(model, x, rect, config)
        patched.append(x)
    return {
        "clean_recall": _recall(detector, dataset, clean,
                                conf_threshold, match_iou),
        "attacked_recall": _recall(detector, dataset, patched,
                                   conf_threshold, match_iou),
    }


class SmoothedDetector:
    """Randomized-smoothing-style wrapper: detect over jittered copies.

    Runs the base model on ``n_samples`` noisy copies of the input and
    keeps boxes that persist across a majority of them.  Adversarial
    patches tuned to one exact input lose much of their bite under the
    noise; the cost is ``n_samples``x inference.
    """

    def __init__(self, model: TinyYolo, n_samples: int = 5,
                 noise_sigma: float = 0.04, vote_frac: float = 0.5,
                 seed: int = 0):
        if n_samples < 1:
            raise ValueError("need at least one sample")
        self.model = model
        self.n_samples = n_samples
        self.noise_sigma = noise_sigma
        self.vote_frac = vote_frac
        self.rng = np.random.default_rng(seed)

    def detect_batch(self, images: np.ndarray,
                     conf_threshold: Optional[float] = None
                     ) -> List[List[ScoredBox]]:
        out: List[List[ScoredBox]] = []
        for i in range(images.shape[0]):
            x = images[i]
            votes: List[ScoredBox] = []
            for _ in range(self.n_samples):
                noisy = np.clip(
                    x + self.rng.normal(0, self.noise_sigma,
                                        x.shape).astype(np.float32),
                    0, 1,
                )
                votes.extend(self.model.detect_batch(noisy[None],
                                                     conf_threshold)[0])
            out.append(self._consensus(votes))
        return out

    def _consensus(self, votes: Sequence[ScoredBox]) -> List[ScoredBox]:
        needed = max(1, int(np.ceil(self.vote_frac * self.n_samples)))
        merged = non_max_suppression(list(votes), iou_threshold=0.5)
        kept = []
        for box in merged:
            support = sum(1 for v in votes
                          if v.label == box.label and iou(v.rect, box.rect) > 0.5)
            if support >= needed:
                kept.append(box)
        return kept
