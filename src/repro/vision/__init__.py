"""The CV stack: NN library, detectors, porting, metrics.

No deep-learning framework is available offline, so this package
implements the paper's detection machinery from scratch on NumPy:

- :mod:`repro.vision.nn` — a layer library (Conv2D, BatchNorm, pooling,
  Linear) with manual backprop, SGD/Adam, and numerical grad checking;
- :mod:`repro.vision.yolo` — *TinyYOLO*, a one-stage grid detector in
  the spirit of the paper's YOLOv5 (objectness + class + box heads per
  cell, confidence thresholding, NMS);
- :mod:`repro.vision.refine` — classical edge-snap refinement that
  sharpens regressed boxes to the strict IoU=0.9 evaluation regime;
- :mod:`repro.vision.rcnn` — two-stage Faster/Mask-RCNN-style baselines
  with "VGG16"/"ResNet50" classical feature backbones (Table V);
- :mod:`repro.vision.porting` — the ncnn-like mobile port: BN constant
  folding and weight quantization (Table IV);
- :mod:`repro.vision.dataset` — rendering samples into training
  tensors and targets;
- :mod:`repro.vision.metrics` — IoU-thresholded P/R/F1 and screen-level
  confusion matrices (Tables III-VI).
"""

from repro.vision.dataset import DetectionDataset, build_detection_dataset
from repro.vision.nn import DeployConfig
from repro.vision.yolo import TinyYolo, YoloConfig, YoloTrainer, Detection
from repro.vision.refine import snap_box_to_edges
from repro.vision.metrics import (
    ClassMetrics,
    DetectionEvaluator,
    EvalResult,
    ScreenConfusion,
)
from repro.vision.porting import MobilePort, PortConfig, port_model
from repro.vision.adversarial import (
    AttackConfig,
    SmoothedDetector,
    attack_recall,
    craft_suppression_patch,
)

__all__ = [
    "AttackConfig",
    "SmoothedDetector",
    "attack_recall",
    "craft_suppression_patch",
    "DeployConfig",
    "DetectionDataset",
    "build_detection_dataset",
    "TinyYolo",
    "YoloConfig",
    "YoloTrainer",
    "Detection",
    "snap_box_to_edges",
    "ClassMetrics",
    "DetectionEvaluator",
    "EvalResult",
    "ScreenConfusion",
    "MobilePort",
    "PortConfig",
    "port_model",
]
