"""Training-time data augmentation.

The paper's YOLOv5 training inherits ultralytics' augmentation stack;
our corpus is synthetic and already randomized, so augmentation is
opt-in — but it measurably hardens the detector against render-level
shifts (brightness, noise, small translations) and is exercised by the
robustness-oriented tests.

All transforms operate on NCHW batches and adjust labels when geometry
changes, returning new arrays (inputs are never mutated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.rect import Rect

Labels = List[List[Tuple[int, Rect]]]


@dataclass(frozen=True)
class AugmentConfig:
    """Augmentation strengths (0 disables a transform)."""

    brightness: float = 0.12     # additive, uniform in [-b, +b]
    contrast: float = 0.15       # multiplicative, in [1-c, 1+c]
    noise_sigma: float = 0.015   # Gaussian pixel noise
    max_shift_px: int = 3        # random translation (labels follow)
    hflip_prob: float = 0.0      # UIs are chirality-sensitive: default off

    def __post_init__(self) -> None:
        if self.max_shift_px < 0:
            raise ValueError("shift must be non-negative")
        if not 0.0 <= self.hflip_prob <= 1.0:
            raise ValueError("hflip_prob must be a probability")


def augment_batch(
    images: np.ndarray,
    labels: Labels,
    rng: np.random.Generator,
    config: AugmentConfig = AugmentConfig(),
) -> Tuple[np.ndarray, Labels]:
    """Apply per-sample photometric + geometric augmentation."""
    n, _, h, w = images.shape
    if len(labels) != n:
        raise ValueError("labels/images length mismatch")
    out = images.copy()
    new_labels: Labels = []
    for i in range(n):
        img = out[i]
        # Photometric: contrast about the mean, then brightness shift.
        if config.contrast > 0:
            factor = 1.0 + float(rng.uniform(-config.contrast, config.contrast))
            mean = img.mean()
            img = (img - mean) * factor + mean
        if config.brightness > 0:
            img = img + float(rng.uniform(-config.brightness, config.brightness))
        if config.noise_sigma > 0:
            img = img + rng.normal(0, config.noise_sigma,
                                   img.shape).astype(np.float32)
        img = np.clip(img, 0.0, 1.0)

        labs = list(labels[i])
        # Geometric: integer translation with edge padding.
        if config.max_shift_px > 0:
            dx = int(rng.integers(-config.max_shift_px, config.max_shift_px + 1))
            dy = int(rng.integers(-config.max_shift_px, config.max_shift_px + 1))
            img = _shift(img, dx, dy)
            labs = [(cls, _shift_rect(rect, dx, dy, w, h))
                    for cls, rect in labs]
            labs = [(cls, rect) for cls, rect in labs if not rect.is_empty()]
        if config.hflip_prob > 0 and rng.random() < config.hflip_prob:
            img = img[:, :, ::-1].copy()
            labs = [(cls, Rect(w - rect.right, rect.y, rect.w, rect.h))
                    for cls, rect in labs]
        out[i] = img
        new_labels.append(labs)
    return out, new_labels


def _shift(img: np.ndarray, dx: int, dy: int) -> np.ndarray:
    """Translate a CHW image, edge-padding the uncovered strip."""
    shifted = np.roll(img, shift=(dy, dx), axis=(1, 2))
    if dy > 0:
        shifted[:, :dy, :] = shifted[:, dy:dy + 1, :]
    elif dy < 0:
        shifted[:, dy:, :] = shifted[:, dy - 1:dy, :]
    if dx > 0:
        shifted[:, :, :dx] = shifted[:, :, dx:dx + 1]
    elif dx < 0:
        shifted[:, :, dx:] = shifted[:, :, dx - 1:dx]
    return shifted


def _shift_rect(rect: Rect, dx: int, dy: int, w: int, h: int) -> Rect:
    moved = rect.translated(dx, dy)
    return moved.clipped_to(Rect(0, 0, w, h))
