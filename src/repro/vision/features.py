"""Classical feature extraction for the two-stage baselines.

The paper compares YOLOv5 against Faster/Mask-RCNN with VGG16 and
ResNet50 backbones (Table V).  Without a DL framework we substitute the
learned backbones with classical descriptor stacks of two different
capacities, preserving the comparison's structure (a weaker and a
stronger feature extractor feeding identical detection heads):

- :class:`Vgg16Backbone` — HOG-style orientation histograms on a 4x4
  spatial grid plus mean-color statistics (the weaker descriptor);
- :class:`Resnet50Backbone` — a two-scale pyramid of orientation
  histograms, color moments and edge-density channels (the stronger
  descriptor, at roughly 2.5x the dimensionality and cost).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import ndimage

from repro.geometry.rect import Rect
from repro.imaging.filters import resize, to_grayscale


def _orientation_histograms(gray: np.ndarray, cells: int,
                            bins: int) -> np.ndarray:
    """HOG-like descriptor: per-cell gradient-orientation histograms."""
    gx = ndimage.sobel(gray, axis=1)
    gy = ndimage.sobel(gray, axis=0)
    mag = np.hypot(gx, gy)
    ang = np.mod(np.arctan2(gy, gx), np.pi)  # unsigned orientations
    h, w = gray.shape
    ch, cw = h // cells, w // cells
    feats = np.zeros((cells, cells, bins), dtype=np.float32)
    bin_idx = np.minimum((ang / np.pi * bins).astype(int), bins - 1)
    for r in range(cells):
        for c in range(cells):
            m = mag[r * ch:(r + 1) * ch, c * cw:(c + 1) * cw]
            b = bin_idx[r * ch:(r + 1) * ch, c * cw:(c + 1) * cw]
            for k in range(bins):
                feats[r, c, k] = m[b == k].sum()
    flat = feats.reshape(-1)
    norm = np.linalg.norm(flat)
    return flat / norm if norm > 0 else flat


def _color_moments(patch: np.ndarray) -> np.ndarray:
    """Per-channel mean and standard deviation."""
    flat = patch.reshape(-1, 3)
    return np.concatenate([flat.mean(axis=0), flat.std(axis=0)]).astype(np.float32)


def _geometry_features(rect: Rect, image_shape: Tuple[int, int]) -> np.ndarray:
    """Normalized placement/size cues (both RCNN heads receive them)."""
    h, w = image_shape
    cx, cy = rect.center
    return np.array([
        cx / w, cy / h,
        rect.w / w, rect.h / h,
        rect.area / (w * h),
        min(cx, w - cx) / w,   # horizontal edge proximity
        min(cy, h - cy) / h,   # vertical edge proximity
        rect.w / max(1.0, rect.h),  # aspect ratio
    ], dtype=np.float32)


def _crop(image: np.ndarray, rect: Rect, out: int) -> np.ndarray:
    h, w = image.shape[:2]
    r = rect.inflated(2).clipped_to(Rect(0, 0, w, h)).rounded()
    if r.is_empty():
        return np.zeros((out, out, 3), dtype=np.float32)
    patch = image[int(r.top):int(r.bottom), int(r.left):int(r.right)]
    return resize(patch, out, out)


class Vgg16Backbone:
    """The weaker descriptor: single-scale HOG + color means."""

    name = "VGG16"
    #: Relative per-proposal cost (used by the latency model).
    unit_cost = 1.0

    def extract(self, image: np.ndarray, rect: Rect) -> np.ndarray:
        patch = _crop(image, rect, 32)
        gray = to_grayscale(patch)
        return np.concatenate([
            _orientation_histograms(gray, cells=4, bins=8),
            _color_moments(patch),
            _geometry_features(rect, image.shape[:2]),
        ])

    @property
    def dim(self) -> int:
        return 4 * 4 * 8 + 6 + 8


class Resnet50Backbone:
    """The stronger descriptor: two-scale HOG pyramid + edge density."""

    name = "ResNet50"
    unit_cost = 2.4

    def extract(self, image: np.ndarray, rect: Rect) -> np.ndarray:
        patch = _crop(image, rect, 48)
        gray = to_grayscale(patch)
        coarse = _orientation_histograms(gray, cells=4, bins=9)
        fine = _orientation_histograms(gray, cells=6, bins=9)
        gx = ndimage.sobel(gray, axis=1)
        gy = ndimage.sobel(gray, axis=0)
        mag = np.hypot(gx, gy)
        density = np.array([
            float((mag > 0.25).mean()),
            float(mag.mean()),
            float(mag.std()),
        ], dtype=np.float32)
        return np.concatenate([
            coarse, fine, density,
            _color_moments(patch),
            _geometry_features(rect, image.shape[:2]),
        ])

    @property
    def dim(self) -> int:
        return 4 * 4 * 9 + 6 * 6 * 9 + 3 + 6 + 8
