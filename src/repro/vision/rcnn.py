"""Two-stage (R-CNN-style) baseline detectors for Table V.

Structure mirrors Faster/Mask RCNN: a class-agnostic *region proposal*
stage followed by a per-region *classification head*, with the "Mask"
variants adding a segmentation-based box refinement stage.  Proposals
come from connected components of a color-quantized downsampling — the
classical selective-search idea specialized for flat UI imagery — and
the heads are softmax classifiers over the backbone descriptors of
:mod:`repro.vision.features`.

The structural handicap these models reproduce is the paper's: their
localization is bounded by proposal quality, so at the strict IoU=0.9
threshold they trail the one-stage detector even when classification is
good — and the Mask variants (which refine boxes) beat the Faster ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import ndimage

from repro.geometry.iou import pairwise_iou
from repro.geometry.nms import ScoredBox, non_max_suppression
from repro.geometry.rect import Rect
from repro.imaging.filters import resize
from repro.vision.dataset import CLASS_NAMES, DetectionDataset
from repro.vision.features import Resnet50Backbone, Vgg16Backbone
from repro.vision.nn import Adam, Linear, softmax, softmax_cross_entropy
from repro.vision.refine import snap_box_to_region
from repro.wallclock import monotonic_ms

_BG_CLASS = 2  # after AGO=0, UPO=1


def propose_regions(
    image: np.ndarray,
    downscale: int = 2,
    quant_levels: int = 14,
    min_side: float = 7.0,
    max_area_frac: float = 0.5,
    max_proposals: int = 110,
    denoise_sigma: float = 0.8,
) -> List[Rect]:
    """Class-agnostic proposals from color-quantized segmentation.

    The image is downsampled, colors are quantized to ``quant_levels``
    per channel, and each connected same-color component becomes one
    proposal (its bounding box, scaled back to native coordinates).
    Flat-colored UI widgets — buttons, chips, cards — segment cleanly;
    photographs and gradients shatter into fragments that the size
    filters drop.
    """
    h, w = image.shape[:2]
    small = resize(image, h // downscale, w // downscale)
    if denoise_sigma > 0:
        from repro.imaging.filters import gaussian_blur
        small = gaussian_blur(small, denoise_sigma)
    quant = np.minimum((small * quant_levels).astype(np.int32),
                       quant_levels - 1)
    codes = (quant[..., 0] * quant_levels + quant[..., 1]) * quant_levels + quant[..., 2]
    proposals: List[Rect] = []
    for code in np.unique(codes):
        mask = codes == code
        if mask.sum() < (min_side / downscale) ** 2:
            continue
        labeled, n = ndimage.label(mask)
        slices = ndimage.find_objects(labeled)
        for sl in slices:
            if sl is None:
                continue
            ys, xs = sl
            rect = Rect.from_corners(
                xs.start * downscale, ys.start * downscale,
                xs.stop * downscale, ys.stop * downscale,
            )
            if rect.w < min_side or rect.h < min_side:
                continue
            if rect.area > max_area_frac * w * h:
                continue
            proposals.append(rect)
    proposals.extend(_edge_blob_proposals(image))
    proposals = _dedupe(proposals)
    # Deterministic order: large, salient regions first.
    proposals.sort(key=lambda r: r.area, reverse=True)
    return proposals[:max_proposals]


def _edge_blob_proposals(image: np.ndarray, threshold: float = 0.18,
                         min_side: float = 9.0,
                         max_side: float = 110.0) -> List[Rect]:
    """Second proposal modality: connected high-gradient blobs.

    Small widgets (close buttons, skip chips) shatter or merge under
    color quantization, but their icon strokes and outlines form
    compact edge blobs at full resolution — the classical complement
    to segmentation-based proposals.
    """
    from repro.imaging.filters import gradient_magnitude
    grad = gradient_magnitude(image)
    mask = grad > threshold
    mask = ndimage.binary_closing(mask, structure=np.ones((3, 3)))
    labeled, _ = ndimage.label(mask)
    out: List[Rect] = []
    for sl in ndimage.find_objects(labeled):
        if sl is None:
            continue
        ys, xs = sl
        rect = Rect.from_corners(xs.start, ys.start, xs.stop, ys.stop)
        if not (min_side <= rect.w <= max_side and min_side <= rect.h <= max_side):
            continue
        out.append(rect)
    return out


def _dedupe(proposals: List[Rect], iou_threshold: float = 0.8) -> List[Rect]:
    kept: List[Rect] = []
    for rect in proposals:
        if not any(_fast_iou(rect, k) > iou_threshold for k in kept):
            kept.append(rect)
    return kept


def _fast_iou(a: Rect, b: Rect) -> float:
    inter = a.intersection(b).area
    union = a.area + b.area - inter
    return inter / union if union > 0 else 0.0


@dataclass(frozen=True)
class RcnnConfig:
    """Training/inference hyper-parameters shared by all variants."""

    pos_iou: float = 0.5
    bg_per_image: int = 6
    epochs: int = 60
    lr: float = 5e-3
    score_threshold: float = 0.6
    nms_iou: float = 0.4
    #: Ridge strength for the closed-form bbox-regression head.
    bbox_ridge: float = 1.0


class BBoxRegressor:
    """Closed-form ridge regression of proposal->truth box deltas.

    Faster/Mask RCNN refine proposals with a learned regression head;
    ours predicts the standard parameterization — center offsets scaled
    by proposal size, log size ratios — from the backbone features, fit
    in one normal-equations solve.
    """

    def __init__(self, ridge: float = 1.0):
        self.ridge = ridge
        self._w: Optional[np.ndarray] = None  # (dim + 1, 4)

    @staticmethod
    def encode(proposal: Rect, truth: Rect) -> np.ndarray:
        return np.array([
            (truth.center[0] - proposal.center[0]) / max(1.0, proposal.w),
            (truth.center[1] - proposal.center[1]) / max(1.0, proposal.h),
            np.log(max(1.0, truth.w) / max(1.0, proposal.w)),
            np.log(max(1.0, truth.h) / max(1.0, proposal.h)),
        ], dtype=np.float32)

    @staticmethod
    def apply(proposal: Rect, deltas: np.ndarray) -> Rect:
        dx, dy, dw, dh = (float(v) for v in deltas)
        # Clamp to sane ranges: the head must adjust, not teleport.
        dx, dy = np.clip([dx, dy], -0.5, 0.5)
        dw, dh = np.clip([dw, dh], -0.7, 0.7)
        cx = proposal.center[0] + dx * proposal.w
        cy = proposal.center[1] + dy * proposal.h
        w = proposal.w * float(np.exp(dw))
        h = proposal.h * float(np.exp(dh))
        return Rect.from_center(cx, cy, w, h)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        """Solve ``min ||X w - t||^2 + ridge ||w||^2`` (bias unpenalized
        only in spirit — the ridge is small enough not to matter)."""
        if features.shape[0] < 8:
            return  # too little signal; stay disabled
        x = np.hstack([features, np.ones((features.shape[0], 1),
                                         dtype=np.float32)])
        a = x.T @ x + self.ridge * np.eye(x.shape[1], dtype=np.float32)
        b = x.T @ targets
        self._w = np.linalg.solve(a, b).astype(np.float32)

    @property
    def fitted(self) -> bool:
        return self._w is not None

    def predict(self, feature: np.ndarray) -> np.ndarray:
        if self._w is None:
            return np.zeros(4, dtype=np.float32)
        x = np.concatenate([feature, [1.0]]).astype(np.float32)
        return x @ self._w


class RcnnDetector:
    """One Table V row: a backbone plus optional mask-style refinement."""

    def __init__(
        self,
        backbone_name: str = "ResNet50",
        mask_refinement: bool = False,
        config: Optional[RcnnConfig] = None,
        seed: int = 0,
    ):
        if backbone_name == "VGG16":
            self.backbone = Vgg16Backbone()
        elif backbone_name == "ResNet50":
            self.backbone = Resnet50Backbone()
        else:
            raise ValueError(f"unknown backbone {backbone_name!r}")
        self.mask_refinement = mask_refinement
        self.config = config or RcnnConfig()
        self.head = Linear(self.backbone.dim, 3,
                           rng=np.random.default_rng(seed))
        self.bbox_head = BBoxRegressor(ridge=self.config.bbox_ridge)
        self.rng = np.random.default_rng(seed + 1)
        self._fitted = False
        self.last_inference_ms: float = 0.0

    @property
    def name(self) -> str:
        family = "Mask RCNN" if self.mask_refinement else "Faster RCNN"
        return f"{family}+{self.backbone.name}"

    # -- training -------------------------------------------------------

    def _training_rows(
        self, dataset: DetectionDataset
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if dataset.screen_images is None:
            raise ValueError("RCNN training needs keep_screen_images=True")
        feats: List[np.ndarray] = []
        labels: List[int] = []
        reg_feats: List[np.ndarray] = []
        reg_targets: List[np.ndarray] = []
        for img, truths in zip(dataset.screen_images, dataset.screen_labels):
            proposals = propose_regions(img)
            if not proposals:
                continue
            gt_rects = [rect for _, rect in truths]
            gt_classes = [0 if role == "AGO" else 1 for role, _ in truths]
            matrix = pairwise_iou(proposals, gt_rects) if gt_rects else None
            bg_pool: List[int] = []
            for pi, rect in enumerate(proposals):
                cls = _BG_CLASS
                ti = -1
                if matrix is not None and matrix.shape[1]:
                    ti = int(np.argmax(matrix[pi]))
                    if matrix[pi, ti] >= self.config.pos_iou:
                        cls = gt_classes[ti]
                if cls == _BG_CLASS:
                    bg_pool.append(pi)
                    continue
                feat = self.backbone.extract(img, rect)
                feats.append(feat)
                labels.append(cls)
                reg_feats.append(feat)
                reg_targets.append(BBoxRegressor.encode(rect, gt_rects[ti]))
            # Balanced background sampling keeps the head calibrated.
            self.rng.shuffle(bg_pool)
            for pi in bg_pool[: self.config.bg_per_image]:
                feats.append(self.backbone.extract(img, proposals[pi]))
                labels.append(_BG_CLASS)
        if not feats:
            raise ValueError("no training rows produced — dataset too small?")
        return (np.stack(feats).astype(np.float32), np.array(labels),
                np.stack(reg_feats).astype(np.float32) if reg_feats
                else np.zeros((0, self.backbone.dim), dtype=np.float32),
                np.stack(reg_targets).astype(np.float32) if reg_targets
                else np.zeros((0, 4), dtype=np.float32))

    def fit(self, dataset: DetectionDataset, verbose: bool = False) -> List[float]:
        """Train the softmax head and the bbox-regression head."""
        x, y, reg_x, reg_t = self._training_rows(dataset)
        self.bbox_head.fit(reg_x, reg_t)
        optimizer = Adam(self.head.parameters(), lr=self.config.lr)
        losses: List[float] = []
        n = x.shape[0]
        batch = 128
        for epoch in range(self.config.epochs):
            order = self.rng.permutation(n)
            total, count = 0.0, 0
            for start in range(0, n, batch):
                idx = order[start:start + batch]
                optimizer.zero_grad()
                logits = self.head.forward(x[idx], training=True)
                loss, grad = softmax_cross_entropy(logits, y[idx])
                self.head.backward(grad)
                optimizer.step()
                total += loss
                count += 1
            losses.append(total / max(1, count))
            if verbose and epoch % 10 == 0:
                print(f"{self.name} epoch {epoch}: loss={losses[-1]:.4f}")
        self._fitted = True
        return losses

    # -- inference ----------------------------------------------------------

    def detect_screen(self, image: np.ndarray) -> List[ScoredBox]:
        if not self._fitted:
            raise RuntimeError(f"{self.name} used before fit()")
        start = monotonic_ms()
        proposals = propose_regions(image)
        detections: List[ScoredBox] = []
        if proposals:
            # One stacked head forward for every proposal on the screen
            # (a single GEMM) instead of a size-1 forward per proposal.
            feats = np.stack([self.backbone.extract(image, rect)
                              for rect in proposals]).astype(np.float32)
            probs = softmax(self.head.forward(feats), axis=-1)
            for rect, feat, p in zip(proposals, feats, probs):
                cls = int(np.argmax(p))
                if cls == _BG_CLASS or p[cls] < self.config.score_threshold:
                    continue
                box = rect
                if self.bbox_head.fitted:
                    box = BBoxRegressor.apply(rect, self.bbox_head.predict(feat))
                if self.mask_refinement:
                    box = snap_box_to_region(image, box)
                detections.append(ScoredBox(rect=box, label=CLASS_NAMES[cls],
                                            score=float(np.clip(p[cls], 0, 1))))
        kept = non_max_suppression(detections, iou_threshold=self.config.nms_iou)
        self.last_inference_ms = monotonic_ms() - start
        return kept

    def detect_screens(self, images: Sequence[np.ndarray],
                       refine: bool = True,
                       conf_threshold: Optional[float] = None
                       ) -> List[List[ScoredBox]]:
        """Batched evaluation entry point (Detector batch protocol).

        Proposal generation is inherently per-image; the win here is the
        stacked per-proposal head inside :meth:`detect_screen`.
        ``refine``/``conf_threshold`` are accepted for signature parity
        with the one-stage detectors and ignored (refinement is the
        mask_refinement flag; the score threshold is in the config).
        """
        return [self.detect_screen(img) for img in images]


def table5_model_suite(seed: int = 0) -> Dict[str, RcnnDetector]:
    """The four RCNN rows of Table V, ready to fit."""
    return {
        "Faster RCNN+VGG16": RcnnDetector("VGG16", mask_refinement=False, seed=seed),
        "Faster RCNN+ResNet50": RcnnDetector("ResNet50", mask_refinement=False, seed=seed),
        "Mask RCNN+VGG16": RcnnDetector("VGG16", mask_refinement=True, seed=seed),
        "Mask RCNN+ResNet50": RcnnDetector("ResNet50", mask_refinement=True, seed=seed),
    }
