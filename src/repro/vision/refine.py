"""Classical box refinement: snapping regressed boxes to widget extents.

The paper evaluates at IoU > 0.9 — far stricter than the usual 0.5 —
which a coarse grid regressor cannot reach on its own.  UI widgets,
however, are solid-colored regions with crisp extents, so a cheap
deterministic post-step recovers the precision.  (YOLOv5 itself reaches
sub-cell precision through multi-scale heads and finer grids; this step
plays the same role for our down-scaled single-scale TinyYOLO.)

Two strategies are provided:

- :func:`snap_box_to_region` (default) — nearest-centroid color
  segmentation.  Seed color comes from the box center, background color
  from a surrounding ring; a pixel belongs to the widget when it is
  closer to the seed than to the background.  For a widget composited
  with alpha ``t`` over the background, a pixel at coverage ``c`` has
  color ``c*t*w + (1-c*t)*bg``, so the decision boundary sits exactly at
  half coverage — the same boundary a human annotator draws.  The box
  becomes the bounding box of the connected component under the center.
- :func:`snap_box_to_edges` — per-edge gradient-profile maximization;
  weaker on busy backgrounds, kept for the ablation benchmark.

Both degrade to "return the regressed box unchanged" when the image
offers no usable structure, so refinement never invents detections.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import ndimage

from repro.geometry.rect import Rect
from repro.imaging.filters import gradient_magnitude


def _plausible(pred: Rect, probe: Rect, refined: Rect) -> bool:
    """Sanity gate on a refinement result.

    A correct widget snap contains the regressor's center (the one
    signal grid detectors get nearly right), does not drift far from
    it, and does not balloon relative to the probe it grew from —
    ballooning is the signature of merging into neighbouring content.
    """
    cx, cy = pred.center
    if not refined.contains_point(cx, cy):
        return False
    rcx, rcy = refined.center
    max_shift = 0.55 * max(pred.w, pred.h) + 2.0
    if abs(rcx - cx) > max_shift or abs(rcy - cy) > max_shift:
        return False
    if refined.w > 2.1 * probe.w + 4 or refined.h > 2.1 * probe.h + 4:
        return False
    return True


def _iterate_snap(image: np.ndarray, start: Rect, iterations: int,
                  **kwargs) -> Rect:
    current = start
    for _ in range(max(1, iterations)):
        nxt = snap_box_to_region(image, current, **kwargs)
        if nxt == current:
            break
        current = nxt
    return current


def refine_detection_box(
    image: np.ndarray,
    rect: Rect,
    iterations: int = 3,
    min_probe: float = 14.0,
    max_probe: float = 40.0,
) -> Rect:
    """Production refinement: gated, multi-strategy region snapping.

    Grid regressors get centers nearly right but sizes badly wrong for
    small widgets (sqrt-encoded sizes at 1/5 scale), so a single snap
    seeded by the raw box often samples off-widget, captures only the
    icon strokes, or merges into adjacent same-colored content.  Three
    strategies run in order — iterated snap from the raw box, from a
    canonical probe at the predicted center, and a strict (no gap
    bridging, tight color distance) snap — and the first result passing
    the :func:`_plausible` gate wins.  When everything fails the raw
    box is returned: refinement must never invent detections.
    """
    candidates = []
    first = _iterate_snap(image, rect, iterations)
    if first != rect:
        candidates.append((rect, first))
    side_w = float(np.clip(rect.w, min_probe, max_probe))
    side_h = float(np.clip(rect.h, min_probe, max_probe))
    probe = Rect.from_center(*rect.center, side_w, side_h)
    if rect.w < 90 and rect.h < 90:
        second = _iterate_snap(image, probe, iterations)
        if second != probe:
            candidates.append((probe, second))
        third = _iterate_snap(image, probe, iterations,
                              max_seed_dist=0.22, bridge_gaps=False)
        if third != probe:
            candidates.append((probe, third))
        fourth = _iterate_snap(image, probe, iterations,
                               max_seed_dist=0.5, expand_frac=0.75)
        if fourth != probe:
            candidates.append((probe, fourth))
    plausible = [refined for used_probe, refined in candidates
                 if _plausible(rect, used_probe, refined)]
    if plausible:
        # Partial captures (an icon stroke instead of the whole button)
        # are the dominant residual failure and are always undersized;
        # the gate already rejects oversized merges, so prefer the
        # largest surviving candidate.
        return max(plausible, key=lambda r: r.area)
    return rect


def snap_box_to_region(
    image: np.ndarray,
    rect: Rect,
    expand_frac: float = 0.55,
    max_seed_dist: float = 0.38,
    bridge_gaps: bool = True,
    grad: Optional[np.ndarray] = None,
) -> Rect:
    """Refine ``rect`` to the extent of the color region under it."""
    del grad  # unused; accepted for interface parity with the edge snap
    h, w = image.shape[:2]
    r = rect.clipped_to(Rect(0, 0, w, h))
    if r.is_empty() or r.w < 3 or r.h < 3:
        return rect

    pad_x = max(4, int(r.w * expand_frac))
    pad_y = max(4, int(r.h * expand_frac))
    x0 = max(0, int(r.left) - pad_x)
    x1 = min(w, int(np.ceil(r.right)) + pad_x)
    y0 = max(0, int(r.top) - pad_y)
    y1 = min(h, int(np.ceil(r.bottom)) + pad_y)
    window = image[y0:y1, x0:x1].astype(np.float32)
    wh, ww = window.shape[:2]
    if wh < 6 or ww < 6:
        return rect

    # Widget colors: buttons are "background fill + icon/text strokes",
    # so a single center sample would hit the stroke and segment only
    # the glyph.  Take two seeds — the central patch (stroke color) and
    # a mid-radius annulus (fill color) — and accept a pixel when it is
    # close to either.
    cx = int(r.center[0]) - x0
    cy = int(r.center[1]) - y0
    sx = max(1, int(r.w * 0.18))
    sy = max(1, int(r.h * 0.18))
    patch = window[max(0, cy - sy):cy + sy + 1, max(0, cx - sx):cx + sx + 1]
    seed_center = np.median(patch.reshape(-1, 3), axis=0)
    annulus = _annulus_pixels(window, cx, cy, r.w, r.h)
    seed_fill = (np.median(annulus.reshape(-1, 3), axis=0)
                 if annulus.size else seed_center)

    # Background: median color of a ring hugging the predicted box
    # (local surroundings, not the far window border — UI backgrounds
    # change across a dialog card boundary).
    ring_pixels = _ring_pixels(window, cx, cy, r.w, r.h)
    if ring_pixels.size == 0:
        return rect
    bg = np.median(ring_pixels.reshape(-1, 3), axis=0)

    sep_center = float(np.linalg.norm(seed_center - bg))
    sep_fill = float(np.linalg.norm(seed_fill - bg))
    if max(sep_center, sep_fill) < 0.05:
        return rect  # widget is indistinguishable from its surroundings

    d_bg = np.linalg.norm(window - bg, axis=-1)
    d_seed = np.full_like(d_bg, np.inf)
    for seed, sep in ((seed_center, sep_center), (seed_fill, sep_fill)):
        if sep >= 0.05:  # a seed equal to the background segments nothing
            d_seed = np.minimum(d_seed,
                                np.linalg.norm(window - seed, axis=-1))
    mask = (d_seed < d_bg) & (d_seed < max_seed_dist)

    if bridge_gaps:
        # Bridge small gaps (icon strokes, text glyphs inside widgets).
        mask = ndimage.binary_closing(mask, structure=np.ones((3, 3)))
    labeled, n_regions = ndimage.label(mask)
    if n_regions == 0:
        return rect
    target = labeled[min(cy, wh - 1), min(cx, ww - 1)]
    if target == 0:
        # Center fell on an icon stroke; take the largest component that
        # overlaps the central patch.
        sub = labeled[max(0, cy - sy):cy + sy + 1, max(0, cx - sx):cx + sx + 1]
        counts = np.bincount(sub.reshape(-1), minlength=n_regions + 1)
        counts[0] = 0
        if counts.max() == 0:
            return rect
        target = int(np.argmax(counts))

    ys, xs = np.where(labeled == target)
    # A component bleeding across the search window on both axes is the
    # background itself, not the widget.
    spans_x = xs.min() == 0 and xs.max() == ww - 1
    spans_y = ys.min() == 0 and ys.max() == wh - 1
    if spans_x and spans_y:
        return rect
    refined = Rect.from_corners(x0 + xs.min(), y0 + ys.min(),
                                x0 + xs.max() + 1, y0 + ys.max() + 1)
    # Reject drastic collapses/explosions — the regressor is coarse but
    # not wrong by more than the search window.
    if refined.area < 0.2 * rect.area or refined.area > 5.0 * rect.area:
        return rect
    return refined


def _annulus_pixels(window: np.ndarray, cx: int, cy: int,
                    box_w: float, box_h: float) -> np.ndarray:
    """Pixels between ~55% and ~85% of the box half-extent — the fill
    region of a button, outside any central icon/text strokes."""
    wh, ww = window.shape[:2]
    in_x, in_y = int(box_w * 0.28), int(box_h * 0.28)
    out_x, out_y = max(in_x + 1, int(box_w * 0.42)), max(in_y + 1, int(box_h * 0.42))
    ys = np.arange(wh)[:, None]
    xs = np.arange(ww)[None, :]
    outside_inner = (np.abs(xs - cx) > in_x) | (np.abs(ys - cy) > in_y)
    inside_outer = (np.abs(xs - cx) <= out_x) & (np.abs(ys - cy) <= out_y)
    return window[outside_inner & inside_outer]


def _ring_pixels(window: np.ndarray, cx: int, cy: int,
                 box_w: float, box_h: float) -> np.ndarray:
    """Pixels in a thin ring just outside the predicted box."""
    wh, ww = window.shape[:2]
    inner_x = int(box_w * 0.62)
    inner_y = int(box_h * 0.62)
    outer_x = inner_x + max(2, int(box_w * 0.2))
    outer_y = inner_y + max(2, int(box_h * 0.2))
    ys = np.arange(wh)[:, None]
    xs = np.arange(ww)[None, :]
    outside_inner = (np.abs(xs - cx) > inner_x) | (np.abs(ys - cy) > inner_y)
    inside_outer = (np.abs(xs - cx) <= outer_x) & (np.abs(ys - cy) <= outer_y)
    sel = outside_inner & inside_outer
    return window[sel]


def _best_line(profile: np.ndarray, lo: int, hi: int, anchor: int,
               min_strength: float, bias: float = 0.02) -> int:
    """Index in [lo, hi) with the strongest profile, lightly biased
    towards the regressor's ``anchor``; anchor wins when nothing is
    strong enough."""
    lo = max(0, lo)
    hi = min(len(profile), hi)
    if hi <= lo:
        return anchor
    window = profile[lo:hi].astype(np.float64).copy()
    if window.max() < min_strength:
        return anchor
    idxs = np.arange(lo, hi)
    window -= bias * window.max() * np.abs(idxs - anchor) / max(1, hi - lo)
    return int(idxs[int(np.argmax(window))])


def snap_box_to_edges(
    image: np.ndarray,
    rect: Rect,
    search_frac: float = 0.45,
    min_strength: float = 0.12,
    grad: Optional[np.ndarray] = None,
) -> Rect:
    """Gradient-profile edge snapping (the ablation alternative).

    Each edge searches within ``search_frac`` of the box dimension for
    the row/column whose mean gradient across the box extent is maximal;
    weak-gradient regions keep the regressed edge.
    """
    h, w = image.shape[:2]
    r = rect.clipped_to(Rect(0, 0, w, h))
    if r.is_empty() or r.w < 2 or r.h < 2:
        return rect
    if grad is None:
        grad = gradient_magnitude(image)

    pad_x = max(3, int(r.w * search_frac))
    pad_y = max(3, int(r.h * search_frac))
    x0 = max(0, int(r.left) - pad_x)
    x1 = min(w, int(r.right) + pad_x)
    y0 = max(0, int(r.top) - pad_y)
    y1 = min(h, int(r.bottom) + pad_y)
    region = grad[y0:y1, x0:x1]
    if region.size == 0:
        return rect

    bx0 = int(r.left) - x0
    bx1 = int(np.ceil(r.right)) - x0
    by0 = int(r.top) - y0
    by1 = int(np.ceil(r.bottom)) - y0
    col_profile = region[max(0, by0):max(1, by1), :].mean(axis=0)
    row_profile = region[:, max(0, bx0):max(1, bx1)].mean(axis=1)

    left = _best_line(col_profile, 0, bx0 + pad_x + 1, bx0, min_strength)
    right = _best_line(col_profile, bx1 - pad_x - 1, len(col_profile),
                       min(bx1, len(col_profile) - 1), min_strength)
    top = _best_line(row_profile, 0, by0 + pad_y + 1, by0, min_strength)
    bottom = _best_line(row_profile, by1 - pad_y - 1, len(row_profile),
                        min(by1, len(row_profile) - 1), min_strength)

    if right <= left + 1 or bottom <= top + 1:
        return rect
    refined = Rect.from_corners(x0 + left, y0 + top, x0 + right + 1,
                                y0 + bottom + 1)
    if refined.area < 0.25 * rect.area or refined.area > 4.0 * rect.area:
        return rect
    return refined
