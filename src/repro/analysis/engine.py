"""darpalint core: AST walking, findings, suppressions, orchestration.

The engine is a zero-dependency (stdlib ``ast``) static analyzer for
the repo's own determinism invariants.  Everything downstream of the
batched/sharded serving path assumes behaviour is a pure function of
the simulated clock and explicit seeds; the rules in
:mod:`repro.analysis.rules` flag the source-level patterns that break
that assumption (wall clocks, unseeded RNGs, unordered iteration in
merge paths, float accumulation, swallowed exceptions).

Design notes:

- One AST walk per file.  The walker maintains the ancestor stack and
  the enclosing-function name stack; rules are passed a
  :class:`FileContext` exposing both plus import-alias resolution
  (``np.random.rand`` resolves to ``numpy.random.rand`` whatever the
  import spelling was).
- Findings are plain sortable records.  The engine stable-sorts by
  ``(path, line, col, rule)`` and deduplicates, so output is
  byte-identical for any input path order — the same invariant the
  linted code is held to.
- ``# darpalint: disable=DL001[,DL002|all]`` on a finding's line
  suppresses it; per-rule path allowlists come from
  ``[tool.darpalint]`` in ``pyproject.toml`` (see
  :mod:`repro.analysis.config`).
- A file that fails to parse yields a single :data:`PARSE_ERROR_RULE`
  finding instead of crashing the run.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.config import LintConfig, rule_allowed

#: Pseudo-rule reported for files the parser rejects.
PARSE_ERROR_RULE = "DL000"

_SUPPRESS_RE = re.compile(
    r"#\s*darpalint:\s*disable=([A-Za-z0-9_,\s]+)")


class LintPathError(Exception):
    """A requested lint target does not exist or is not lintable."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source location.

    Ordering is the output ordering: path, then line, then column,
    then rule id — fully deterministic regardless of rule evaluation
    or file traversal order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f" [{self.hint}]"
        return text


@dataclass
class FileContext:
    """Per-file state handed to every rule check.

    ``stack`` is the ancestor node list (outermost first, current node
    excluded); ``scope`` the enclosing function-name stack.  Both are
    live views maintained by the walker — rules must not mutate them.
    """

    path: str
    source_lines: Sequence[str]
    aliases: Dict[str, str] = field(default_factory=dict)
    stack: List[ast.AST] = field(default_factory=list)
    scope: List[str] = field(default_factory=list)
    config: LintConfig = field(default_factory=LintConfig)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an expression, import aliases expanded.

        ``Name('np')`` → ``numpy``; ``Attribute(Name('np'), 'random')``
        → ``numpy.random``; anything non-name-like → ``None``.
        """
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def scope_name(self) -> str:
        """Dotted enclosing-function name (empty at module level)."""
        return ".".join(self.scope)

    def enclosing_calls(self) -> Iterator[str]:
        """Resolved callee names of enclosing Call ancestors, innermost
        first (used to recognise ``sorted(... for ... in unordered)``)."""
        for ancestor in reversed(self.stack):
            if isinstance(ancestor, ast.Call):
                name = self.resolve(ancestor.func)
                if name is not None:
                    yield name


def _collect_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to canonical dotted import paths."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = (
                    f"{node.module}.{item.name}")
    return aliases


def _collect_suppressions(source_lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Line number → set of upper-cased rule ids disabled on that line."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source_lines, 1):
        match = _SUPPRESS_RE.search(line)
        if match:
            out[lineno] = {token.strip().upper()
                           for token in match.group(1).split(",")
                           if token.strip()}
    return out


def display_path(path: str) -> str:
    """Stable posix-style display path (relative to cwd when inside)."""
    abspath = os.path.abspath(path)
    cwd = os.getcwd()
    if abspath == cwd or abspath.startswith(cwd + os.sep):
        abspath = os.path.relpath(abspath, cwd)
    return abspath.replace(os.sep, "/")


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, deduplicated file list.

    Directories are walked recursively for ``*.py`` (sorted at every
    level, ``__pycache__`` pruned); explicit file arguments are taken
    as-is.  The returned display paths are sorted, so any input order
    — including shuffled — yields the same lint run.
    """
    found: Dict[str, None] = {}
    for path in paths:
        if os.path.isfile(path):
            found[display_path(path)] = None
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames
                                     if d != "__pycache__")
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found[display_path(os.path.join(dirpath, name))] = None
        else:
            raise LintPathError(f"no such file or directory: {path}")
    return sorted(found)


class _Walker:
    """Single-pass AST visitor dispatching every node to every rule."""

    def __init__(self, rules: Sequence, ctx: FileContext):
        self.rules = rules
        self.ctx = ctx
        self.findings: List[Finding] = []

    def walk(self, node: ast.AST) -> None:
        for rule in self.rules:
            self.findings.extend(rule.check(node, self.ctx))
        is_scope = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if is_scope:
            self.ctx.scope.append(node.name)
        self.ctx.stack.append(node)
        for child in ast.iter_child_nodes(node):
            self.walk(child)
        self.ctx.stack.pop()
        if is_scope:
            self.ctx.scope.pop()


class LintEngine:
    """Runs a rule set over sources, applying suppressions/allowlists."""

    def __init__(self, rules: Optional[Sequence] = None,
                 config: Optional[LintConfig] = None):
        if rules is None:
            from repro.analysis.rules import default_rules
            rules = default_rules()
        self.rules = tuple(rules)
        self.config = config or LintConfig()

    def lint_source(self, source: str, path: str = "<string>"
                    ) -> List[Finding]:
        """Lint one source text; returns sorted, filtered findings."""
        source_lines = source.splitlines()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            finding = Finding(path=path, line=exc.lineno or 1,
                              col=(exc.offset or 1) - 1,
                              rule=PARSE_ERROR_RULE,
                              message=f"file does not parse: {exc.msg}",
                              hint="fix the syntax error to lint this file")
            return self._filter([finding], source_lines)
        ctx = FileContext(path=path, source_lines=source_lines,
                          aliases=_collect_aliases(tree),
                          config=self.config)
        walker = _Walker(self.rules, ctx)
        walker.walk(tree)
        return self._filter(walker.findings, source_lines)

    def lint_file(self, path: str) -> List[Finding]:
        shown = display_path(path)
        try:
            with open(path, encoding="utf-8") as fp:
                source = fp.read()
        except OSError as exc:
            raise LintPathError(f"cannot read {shown}: {exc}")
        return self.lint_source(source, path=shown)

    def lint_paths(self, paths: Sequence[str]) -> List[Finding]:
        """Lint files and/or directory trees; deterministic output.

        The expanded file list is sorted and deduplicated first, so
        shuffling the input path order cannot change a byte of the
        report.
        """
        findings: List[Finding] = []
        for path in iter_python_files(paths):
            if self.config.excluded(path):
                continue
            findings.extend(self.lint_file(path))
        return sorted(set(findings))

    # -- filtering -------------------------------------------------------

    def _filter(self, findings: Iterable[Finding],
                source_lines: Sequence[str]) -> List[Finding]:
        suppressions = _collect_suppressions(source_lines)
        out = []
        for finding in findings:
            disabled = suppressions.get(finding.line, ())
            if finding.rule in disabled or "ALL" in disabled:
                continue
            if rule_allowed(self.config, finding.rule, finding.path):
                continue
            out.append(finding)
        return sorted(set(out))


def lint_paths(paths: Sequence[str],
               rules: Optional[Sequence] = None,
               config: Optional[LintConfig] = None) -> List[Finding]:
    """Convenience one-shot: lint ``paths`` with ``rules``/``config``."""
    return LintEngine(rules=rules, config=config).lint_paths(paths)


__all__ = [
    "Finding",
    "FileContext",
    "LintEngine",
    "LintPathError",
    "PARSE_ERROR_RULE",
    "display_path",
    "iter_python_files",
    "lint_paths",
]
