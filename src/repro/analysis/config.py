"""darpalint configuration: ``[tool.darpalint]`` in ``pyproject.toml``.

Schema (all keys optional)::

    [tool.darpalint]
    exclude = ["src/generated/*"]          # paths never linted
    dl003-functions = ["*merge*", ...]     # scopes DL003 applies to
    dl004-functions = ["*merge*", ...]     # scopes DL004 applies to
    dl007-functions = ["*merge*", ...]     # scopes DL007 applies to

    [tool.darpalint.allow]
    # Per-rule path allowlists.  Every entry should carry a comment
    # justifying WHY the rule does not apply to that file.
    DL001 = ["repro/wallclock.py"]

Patterns are ``fnmatch`` globs over posix-style paths; a bare relative
pattern like ``repro/wallclock.py`` also matches any path *suffix*
(``src/repro/wallclock.py``), so the config does not hard-code the
checkout layout.

Parsing uses :mod:`tomllib` where available (Python ≥ 3.11) and falls
back to a minimal line-oriented parser good for the subset above —
the engine stays zero-dependency on 3.9/3.10 where neither ``tomllib``
nor ``tomli`` can be assumed.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:
    import tomllib as _toml  # Python >= 3.11
except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
    _toml = None

#: Function-name globs inside which DL003 (unordered iteration) fires.
DEFAULT_DL003_FUNCTIONS: Tuple[str, ...] = (
    "*merge*", "*snapshot*", "*export*", "*to_dict*", "*to_json*",
    "*serialize*", "*prometheus*", "*jsonl*",
)

#: Function-name globs inside which DL004 (float accumulation) fires.
DEFAULT_DL004_FUNCTIONS: Tuple[str, ...] = ("*merge*", "*snapshot*")

#: Function-name globs inside which DL007 (undocumented matmul
#: reduction) fires — the merge/reduction scopes where a BLAS dot
#: product hides an order-sensitive float sum.
DEFAULT_DL007_FUNCTIONS: Tuple[str, ...] = (
    "*merge*", "*reduce*", "*accumulate*", "*fold*", "*snapshot*",
)


class ConfigError(Exception):
    """``[tool.darpalint]`` is present but malformed."""


@dataclass
class LintConfig:
    """Parsed lint configuration (defaults = lint everything)."""

    #: rule id → path globs where the rule is intentionally off.
    allow: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: path globs skipped entirely.
    exclude: Tuple[str, ...] = ()
    dl003_functions: Tuple[str, ...] = DEFAULT_DL003_FUNCTIONS
    dl004_functions: Tuple[str, ...] = DEFAULT_DL004_FUNCTIONS
    dl007_functions: Tuple[str, ...] = DEFAULT_DL007_FUNCTIONS

    def excluded(self, path: str) -> bool:
        return _path_matches(path, self.exclude)


def _path_matches(path: str, patterns: Sequence[str]) -> bool:
    path = path.replace(os.sep, "/")
    for pattern in patterns:
        pattern = pattern.replace(os.sep, "/")
        if fnmatchcase(path, pattern) or fnmatchcase(path, "*/" + pattern):
            return True
    return False


def rule_allowed(config: LintConfig, rule_id: str, path: str) -> bool:
    """True when ``path`` is allowlisted for ``rule_id``."""
    return _path_matches(path, config.allow.get(rule_id.upper(), ()))


# ---------------------------------------------------------------------------
# pyproject.toml loading
# ---------------------------------------------------------------------------

def find_pyproject(start: Optional[str] = None) -> Optional[str]:
    """Nearest ``pyproject.toml`` at or above ``start`` (default: cwd)."""
    here = os.path.abspath(start or os.getcwd())
    while True:
        candidate = os.path.join(here, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(here)
        if parent == here:
            return None
        here = parent


def load_tool_table(pyproject_path: Optional[str] = None,
                    tool: str = "darpalint") -> Mapping[str, object]:
    """Raw decoded ``[tool.<tool>]`` table (empty when absent).

    Shared by darpalint and darpaflow: ``tomllib`` where available,
    the tool-scoped mini-TOML fallback elsewhere.  Raises
    :class:`ConfigError` on unreadable/malformed input.
    """
    path = pyproject_path or find_pyproject()
    if path is None:
        return {}
    try:
        with open(path, encoding="utf-8") as fp:
            text = fp.read()
    except OSError as exc:
        raise ConfigError(f"cannot read {path}: {exc}")
    if _toml is not None:
        try:
            data = _toml.loads(text)
        except _toml.TOMLDecodeError as exc:
            raise ConfigError(f"{path}: {exc}")
    else:  # pragma: no cover - exercised only on 3.9/3.10
        data = _parse_mini_toml(text, tool=tool)
    table = data.get("tool", {}).get(tool, {})
    if not isinstance(table, Mapping):
        raise ConfigError(f"{path}: [tool.{tool}] must be a table")
    return table


def load_config(pyproject_path: Optional[str] = None) -> LintConfig:
    """Config from ``pyproject.toml`` (searched upward when not given).

    A missing file or a file with no ``[tool.darpalint]`` table yields
    the defaults; a malformed table raises :class:`ConfigError`.
    """
    path = pyproject_path or find_pyproject()
    if path is None:
        return LintConfig()
    return config_from_table(load_tool_table(path, tool="darpalint"),
                             origin=path)


def config_from_table(table: Mapping[str, object],
                      origin: str = "<config>") -> LintConfig:
    """Build a :class:`LintConfig` from a decoded ``[tool.darpalint]``."""
    if not isinstance(table, Mapping):
        raise ConfigError(f"{origin}: [tool.darpalint] must be a table")
    config = LintConfig()
    for key, value in table.items():
        if key == "allow":
            if not isinstance(value, Mapping):
                raise ConfigError(
                    f"{origin}: [tool.darpalint.allow] must be a table")
            config.allow = {
                str(rule).upper(): _string_tuple(value[rule], origin,
                                                 f"allow.{rule}")
                for rule in value}
        elif key == "exclude":
            config.exclude = _string_tuple(value, origin, key)
        elif key == "dl003-functions":
            config.dl003_functions = _string_tuple(value, origin, key)
        elif key == "dl004-functions":
            config.dl004_functions = _string_tuple(value, origin, key)
        elif key == "dl007-functions":
            config.dl007_functions = _string_tuple(value, origin, key)
        else:
            raise ConfigError(
                f"{origin}: unknown [tool.darpalint] key {key!r}")
    return config


def _string_tuple(value: object, origin: str, key: str) -> Tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    if isinstance(value, (list, tuple)) and all(
            isinstance(item, str) for item in value):
        return tuple(value)
    raise ConfigError(
        f"{origin}: [tool.darpalint] {key} must be a string list")


# ---------------------------------------------------------------------------
# Fallback mini-TOML parser (3.9/3.10, zero-dependency constraint)
# ---------------------------------------------------------------------------

_SECTION_RE = re.compile(r"^\[([A-Za-z0-9_.\-\"']+)\]\s*$")
_KEY_RE = re.compile(r"^([A-Za-z0-9_\-\"']+)\s*=\s*(.*)$")


def _strip_comment(line: str) -> str:
    """Drop a trailing ``#`` comment (quote-aware)."""
    out, in_string, quote = [], False, ""
    for ch in line:
        if in_string:
            out.append(ch)
            if ch == quote:
                in_string = False
        elif ch in ("'", '"'):
            in_string, quote = True, ch
            out.append(ch)
        elif ch == "#":
            break
        else:
            out.append(ch)
    return "".join(out).strip()


def _parse_scalar(token: str) -> object:
    token = token.strip()
    if token.startswith(("'", '"')) and token.endswith(token[0]) \
            and len(token) >= 2:
        return token[1:-1]
    if token in ("true", "false"):
        return token == "true"
    try:
        return int(token)
    except ValueError:
        try:
            return float(token)
        except ValueError:
            raise ConfigError(f"mini-toml: cannot parse value {token!r}")


def _parse_value(token: str) -> object:
    token = token.strip()
    if token.startswith("["):
        body = token[1:-1] if token.endswith("]") else token[1:]
        items: List[object] = []
        for part in _split_list(body):
            if part:
                items.append(_parse_scalar(part))
        return items
    return _parse_scalar(token)


def _split_list(body: str) -> List[str]:
    parts, buf, in_string, quote = [], [], False, ""
    for ch in body:
        if in_string:
            buf.append(ch)
            if ch == quote:
                in_string = False
        elif ch in ("'", '"'):
            in_string, quote = True, ch
            buf.append(ch)
        elif ch == ",":
            parts.append("".join(buf).strip())
            buf = []
        else:
            buf.append(ch)
    parts.append("".join(buf).strip())
    return parts


def _parse_mini_toml(text: str, tool: str = "darpalint") -> Dict[str, object]:
    """Just enough TOML for one ``[tool.<name>]`` family: sections,
    string / bool / number scalars and (multiline) flat lists.

    Everything OUTSIDE ``[tool.<name>*]`` sections is skipped
    wholesale — the rest of a real ``pyproject.toml`` uses TOML
    features (inline tables, escapes) this fallback has no business
    understanding.  Inside the scoped tables, malformed lines raise
    :class:`ConfigError` rather than being silently dropped.
    """
    root: Dict[str, object] = {}
    section: Optional[Dict[str, object]] = None  # None = skip this section
    pending_key: Optional[str] = None
    pending: List[str] = []
    for raw in text.splitlines():
        line = _strip_comment(raw)
        if not line:
            continue
        if pending_key is not None:
            pending.append(line)
            if line.endswith("]"):
                assert section is not None
                section[pending_key] = _parse_value(" ".join(pending))
                pending_key, pending = None, []
            continue
        match = _SECTION_RE.match(line)
        if match:
            parts = [part.strip("\"'")
                     for part in match.group(1).split(".")]
            if parts[:2] != ["tool", tool]:
                section = None
                continue
            cursor: Dict[str, object] = root
            for part in parts:
                cursor = cursor.setdefault(part, {})  # type: ignore[assignment]
                if not isinstance(cursor, dict):
                    raise ConfigError(
                        f"mini-toml: section {match.group(1)!r} clashes "
                        "with a value")
            section = cursor
            continue
        if section is None:
            continue
        match = _KEY_RE.match(line)
        if match is None:
            raise ConfigError(f"mini-toml: cannot parse line {raw!r}")
        key = match.group(1).strip("\"'")
        value = match.group(2).strip()
        if value.startswith("[") and not value.endswith("]"):
            pending_key, pending = key, [value]
            continue
        section[key] = _parse_value(value)
    if pending_key is not None:
        raise ConfigError(f"mini-toml: unterminated list for {pending_key!r}")
    return root


__all__ = [
    "ConfigError",
    "DEFAULT_DL003_FUNCTIONS",
    "DEFAULT_DL004_FUNCTIONS",
    "DEFAULT_DL007_FUNCTIONS",
    "LintConfig",
    "config_from_table",
    "find_pyproject",
    "load_config",
    "load_tool_table",
    "rule_allowed",
]
