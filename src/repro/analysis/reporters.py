"""darpalint output: deterministic text and JSON reports.

Both renderers consume the engine's already-sorted finding list and
add nothing run-dependent (no timestamps, no absolute paths, no
ordering surprises), so two lint runs over the same tree — whatever
the input path order — produce byte-identical reports.  CI uploads
the JSON form as an artifact; the schema is versioned so downstream
tooling can gate on it.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.engine import Finding

#: Bump when the JSON report schema changes shape.
REPORT_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """Human-facing report: one line per finding plus a summary."""
    lines = [finding.render() for finding in findings]
    if findings:
        by_rule: Dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        breakdown = ", ".join(f"{rule}={count}"
                              for rule, count in sorted(by_rule.items()))
        lines.append("")
        lines.append(f"{len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines) + "\n"


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-facing report (sorted keys, stable ordering)."""
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "version": REPORT_VERSION,
        "count": len(findings),
        "by_rule": by_rule,
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


RENDERERS = {
    "text": render_text,
    "json": render_json,
}


def render(findings: Sequence[Finding], fmt: str = "text") -> str:
    try:
        renderer = RENDERERS[fmt]
    except KeyError:
        raise ValueError(f"unknown report format {fmt!r}")
    return renderer(list(findings))


__all__ = ["REPORT_VERSION", "RENDERERS", "render", "render_json",
           "render_text"]
