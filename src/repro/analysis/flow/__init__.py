"""darpaflow: interprocedural nondeterminism taint analysis.

Where darpalint (:mod:`repro.analysis`) catches *syntactic* uses of
nondeterminism, darpaflow follows the **values**: a ``time.time()``
result passed through three helpers before landing in
``canonical_bytes`` is invisible to a per-node rule but is exactly a
source→sink flow here, reported with every hop as ``path:line``.

Layout:

- :mod:`~repro.analysis.flow.specs` — sources / sanitizers / sinks
  tables and the ``[tool.darpaflow]`` loader;
- :mod:`~repro.analysis.flow.graph` — module graph + function
  registry + callee resolution;
- :mod:`~repro.analysis.flow.taint` — the summary-based worklist
  engine and :class:`FlowFinding`;
- :mod:`~repro.analysis.flow.baseline` — line-insensitive accepted
  flows (``flow-baseline.json``);
- :mod:`~repro.analysis.flow.reporters` / `~repro.analysis.flow.cli`
  — deterministic text/JSON reports and the ``repro flow`` command.
"""

from repro.analysis.flow.baseline import (
    BaselineError,
    fingerprint,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.flow.graph import (
    FunctionInfo,
    ModuleInfo,
    ProgramGraph,
    build_graph,
    module_name_for,
)
from repro.analysis.flow.reporters import (
    FLOW_REPORT_VERSION,
    render,
    render_json,
    render_text,
)
from repro.analysis.flow.specs import (
    CATEGORY_IDS,
    FlowSpecs,
    ORDER_CATEGORIES,
    load_flow_specs,
    specs_from_table,
)
from repro.analysis.flow.taint import (
    FLOW_PARSE_ERROR_RULE,
    FlowFinding,
    Hop,
    Taint,
    analyze_graph,
    analyze_paths,
)

__all__ = [
    "BaselineError",
    "CATEGORY_IDS",
    "FLOW_PARSE_ERROR_RULE",
    "FLOW_REPORT_VERSION",
    "FlowFinding",
    "FlowSpecs",
    "FunctionInfo",
    "Hop",
    "ModuleInfo",
    "ORDER_CATEGORIES",
    "ProgramGraph",
    "Taint",
    "analyze_graph",
    "analyze_paths",
    "build_graph",
    "fingerprint",
    "load_baseline",
    "load_flow_specs",
    "module_name_for",
    "partition",
    "render",
    "render_json",
    "render_text",
    "specs_from_table",
    "write_baseline",
]
