"""``python -m repro.analysis.flow`` — darpaflow without the repro CLI."""

import sys

from repro.analysis.flow.cli import main

if __name__ == "__main__":
    sys.exit(main())
