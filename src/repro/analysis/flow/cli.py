"""darpaflow command line (``repro flow`` / ``python -m repro.analysis.flow``).

Exit codes follow the :mod:`repro.bench.regress` / darpalint
conventions:

- ``0`` — no unbaselined flows;
- ``1`` — at least one new flow (traces on stdout);
- ``2`` — usage error: missing path, malformed config or baseline
  (reason on stderr; argparse itself also exits 2).

Like darpalint's CLI, this module stays importable in a bare stdlib
environment (no numpy), which keeps the CI flow-gate job cheap.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.config import ConfigError
from repro.analysis.engine import LintPathError
from repro.analysis.flow.baseline import (
    BaselineError,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.flow.reporters import render
from repro.analysis.flow.specs import FlowSpecs, load_flow_specs
from repro.analysis.flow.taint import analyze_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro flow",
        description="Interprocedural nondeterminism taint analysis: "
                    "reports every source->sink flow (DF001-DF007) "
                    "with its full hop trace.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--config", default=None, metavar="PYPROJECT",
                        help="pyproject.toml to read [tool.darpaflow] "
                             "from (default: nearest upward from cwd)")
    parser.add_argument("--no-config", action="store_true",
                        help="ignore [tool.darpaflow] entirely")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="flow-baseline.json of accepted flows to "
                             "subtract before gating")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline accepting every current "
                             "flow (preserves existing reasons), then "
                             "exit 0")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write the report here instead of stdout")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.update_baseline and not args.baseline:
        print("flow: --update-baseline requires --baseline FILE",
              file=sys.stderr)
        return 2

    if args.no_config:
        specs = FlowSpecs()
    else:
        try:
            specs = load_flow_specs(args.config)
        except ConfigError as exc:
            print(f"flow: bad config: {exc}", file=sys.stderr)
            return 2

    try:
        findings = analyze_paths(list(args.paths), specs)
    except LintPathError as exc:
        print(f"flow: {exc}", file=sys.stderr)
        return 2

    accepted = {}
    if args.baseline and not args.update_baseline:
        try:
            accepted = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"flow: {exc}", file=sys.stderr)
            return 2

    if args.update_baseline:
        try:
            existing = load_baseline(args.baseline)
        except BaselineError:
            existing = {}
        try:
            count = write_baseline(args.baseline, findings, existing)
        except OSError as exc:
            print(f"flow: cannot write {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"flow: baseline {args.baseline} now accepts {count} "
              f"flow(s)")
        return 0

    fresh, known = partition(findings, accepted)
    report = render(fresh, args.format, baselined=len(known))
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as fp:
                fp.write(report)
        except OSError as exc:
            print(f"flow: cannot write {args.output}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        sys.stdout.write(report)
    return 1 if fresh else 0


__all__ = ["build_parser", "main"]
