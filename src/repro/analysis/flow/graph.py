"""darpaflow program graph: modules, functions, callee resolution.

The interprocedural analysis needs two maps built once per run:

- a **module graph**: every analyzed file parsed, its canonical dotted
  module name derived from the package layout (walking up while
  ``__init__.py`` exists, so ``src/repro/core/daemon.py`` is
  ``repro.core.daemon`` whatever directory the scan started from; a
  loose file without a package is just its stem), plus darpalint's
  import-alias table so ``from time import time as now`` still
  resolves to ``time.time``;
- a **function registry**: every ``def`` (including methods, keyed
  ``module.Class.method``) with its AST body, parameter names, and the
  enclosing class, ready for summary computation.

Callee resolution is deliberately conservative and its misses are the
analysis' documented false-negative edges (DESIGN §5k): ``self.m()``
resolves within the enclosing class, ``mod.f()`` through the alias
table, ``f()`` against the current module — anything else (callables
in variables, duck-typed receivers, ``getattr``) is an *unknown* call,
through which taint still flows args→result but whose body is never
entered.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine import (
    _collect_aliases,
    display_path,
    iter_python_files,
)


@dataclass(frozen=True)
class FunctionInfo:
    """One analyzed ``def``: identity plus what the summaries need."""

    qualname: str            # module.[Class.]name
    module: str
    cls: Optional[str]       # enclosing class name, if a method
    name: str
    path: str                # display path of the defining file
    lineno: int
    params: Tuple[str, ...]  # positional+kw-only names, ``self`` kept
    node: ast.AST = field(compare=False, hash=False, repr=False)


@dataclass
class ModuleInfo:
    """One parsed file."""

    path: str                # display path
    module: str              # canonical dotted name
    tree: ast.AST
    aliases: Dict[str, str]
    source_lines: Sequence[str]


@dataclass
class ProgramGraph:
    """Everything :mod:`repro.analysis.flow.taint` walks."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: files that failed to parse: display path -> error message.
    parse_errors: Dict[str, str] = field(default_factory=dict)

    def resolve_callee(self, dotted: Optional[str], module: str,
                       cls: Optional[str]) -> Optional[FunctionInfo]:
        """Known :class:`FunctionInfo` for a resolved callee name.

        ``dotted`` is the alias-expanded callee (``repro.ops.routes.
        canonical_bytes``, ``helper``, ``self.close``); ``module`` and
        ``cls`` locate the call site.  Returns None for unknown calls.
        """
        if dotted is None:
            return None
        if cls is not None and dotted.startswith("self."):
            return self.functions.get(
                f"{module}.{cls}.{dotted[len('self.'):]}")
        hit = self.functions.get(dotted)
        if hit is not None:
            return hit
        return self.functions.get(f"{module}.{dotted}")


def module_name_for(path: str) -> str:
    """Canonical dotted module name from the package layout on disk."""
    abspath = os.path.abspath(path)
    stem = os.path.splitext(os.path.basename(abspath))[0]
    parts: List[str] = [] if stem == "__init__" else [stem]
    here = os.path.dirname(abspath)
    while os.path.isfile(os.path.join(here, "__init__.py")):
        parts.insert(0, os.path.basename(here))
        parent = os.path.dirname(here)
        if parent == here:  # pragma: no cover - filesystem root package
            break
        here = parent
    return ".".join(parts) if parts else stem


def _collect_functions(info: ModuleInfo,
                       registry: Dict[str, FunctionInfo]) -> None:
    """Register every top-level function and every method.

    Nested ``def``s (functions inside functions) are deliberately NOT
    registered: their closures would need environment capture the
    lattice does not model, so calls to them stay unknown calls —
    taint still flows through args→result conservatively.
    """
    def visit(node: ast.AST, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = child.args
                params = tuple(
                    a.arg for a in
                    getattr(args, "posonlyargs", []) + args.args
                    + args.kwonlyargs)
                qual = (f"{info.module}.{cls}.{child.name}" if cls
                        else f"{info.module}.{child.name}")
                registry[qual] = FunctionInfo(
                    qualname=qual, module=info.module, cls=cls,
                    name=child.name, path=info.path, lineno=child.lineno,
                    params=params, node=child)
            elif isinstance(child, ast.ClassDef):
                visit(child, child.name)

    visit(info.tree, None)


def build_graph(paths: Sequence[str],
                exclude: Sequence[str] = ()) -> ProgramGraph:
    """Parse every python file under ``paths`` into a program graph.

    File discovery reuses darpalint's sorted, deduplicated walk, so
    the graph — and everything derived from it — is identical for any
    input path order.  Unparseable files land in ``parse_errors``
    instead of aborting the run.
    """
    from repro.analysis.config import LintConfig

    config = LintConfig(exclude=tuple(exclude))
    graph = ProgramGraph()
    for path in iter_python_files(paths):
        if config.excluded(path):
            continue
        shown = display_path(path)
        try:
            with open(path, encoding="utf-8") as fp:
                source = fp.read()
        except OSError as exc:
            graph.parse_errors[shown] = f"cannot read: {exc}"
            continue
        try:
            tree = ast.parse(source, filename=shown)
        except SyntaxError as exc:
            graph.parse_errors[shown] = f"does not parse: {exc.msg}"
            continue
        info = ModuleInfo(path=shown, module=module_name_for(path),
                          tree=tree, aliases=_collect_aliases(tree),
                          source_lines=source.splitlines())
        graph.modules[shown] = info
        _collect_functions(info, graph.functions)
    return graph


__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "ProgramGraph",
    "build_graph",
    "module_name_for",
]
