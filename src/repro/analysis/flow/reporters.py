"""darpaflow output: deterministic text and JSON flow reports.

Mirrors :mod:`repro.analysis.reporters`: both renderers consume the
engine's already-sorted finding list and add nothing run-dependent, so
two flow runs over the same tree — whatever the input path order —
produce byte-identical reports.  The text form prints every hop of
every trace (that is the whole point of the tool); JSON carries the
same traces structurally plus the count of baselined flows so CI logs
show what was intentionally ignored.
"""

from __future__ import annotations

import json
from typing import Dict, Sequence

from repro.analysis.flow.taint import FlowFinding

#: Bump when the JSON flow-report schema changes shape.
FLOW_REPORT_VERSION = 1


def render_text(findings: Sequence[FlowFinding],
                baselined: int = 0) -> str:
    """Human-facing report: finding + indented hop trace, then summary."""
    lines = [finding.render() for finding in findings]
    suffix = f" ({baselined} baselined flow(s) not shown)" if baselined \
        else ""
    if findings:
        by_rule: Dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        breakdown = ", ".join(f"{rule}={count}"
                              for rule, count in sorted(by_rule.items()))
        lines.append("")
        lines.append(f"{len(findings)} flow(s) ({breakdown}){suffix}")
    else:
        lines.append(f"clean: no unsanitized flows{suffix}")
    return "\n".join(lines) + "\n"


def render_json(findings: Sequence[FlowFinding],
                baselined: int = 0) -> str:
    """Machine-facing report (sorted keys, stable ordering)."""
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "version": FLOW_REPORT_VERSION,
        "count": len(findings),
        "baselined": baselined,
        "by_rule": by_rule,
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


RENDERERS = {
    "text": render_text,
    "json": render_json,
}


def render(findings: Sequence[FlowFinding], fmt: str = "text",
           baselined: int = 0) -> str:
    try:
        renderer = RENDERERS[fmt]
    except KeyError:
        raise ValueError(f"unknown report format {fmt!r}")
    return renderer(list(findings), baselined)


__all__ = ["FLOW_REPORT_VERSION", "RENDERERS", "render", "render_json",
           "render_text"]
