"""darpaflow specs: what taints, what cleans, where tainting matters.

The taint analysis is parameterized by three frozen tables:

- **Sources** introduce taint.  Each belongs to a *category* with a
  stable ``DFxxx`` id (wall clock, unseeded RNG, filesystem listing
  order, dict/set iteration order, environment reads, object identity,
  scheduling results).  Categories split into two classes:

  - *value* taints (``wall-clock``, ``unseeded-rng``, ``env``,
    ``identity``, ``scheduling``) — the bytes themselves differ run to
    run; no reordering operation can clean them, only an explicit
    ``# darpaflow: sanitized=REASON`` marker (or a configured
    sanitizer) may;
  - *order* taints (``listing``, ``dict-set-order``) — the values are
    stable but their enumeration order is not; ``sorted()``,
    ``math.fsum()`` and friends genuinely erase them.

- **Sanitizers** erase taint of the categories they are declared for.
  ``sorted`` erases order taints but must never clear a wall-clock
  value (``sorted([time.time()])`` is still nondeterministic), which
  is why every sanitizer entry carries its category set.

- **Sinks** are the byte-exact artifact writers: a tainted value
  passed as an argument to one is a finding.  Entries match either a
  fully-resolved dotted name (``repro.ops.routes.canonical_bytes``) or
  a bare trailing attribute (``canonical_bytes``) so method sinks on
  untyped receivers are still caught.

All three tables extend through ``[tool.darpaflow]`` in
``pyproject.toml`` (see :func:`load_flow_specs`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.analysis.config import ConfigError, load_tool_table
from repro.analysis.rules import (
    GLOBAL_RANDOM_FNS,
    NUMPY_GLOBAL_FNS,
    SEEDED_CONSTRUCTORS,
    WALL_CLOCK_CALLS,
)

#: Inline marker erasing every taint produced on its line.  Must carry
#: a reason: ``# darpaflow: sanitized=derived-before-fork``.
SANITIZED_MARKER_RE = r"#\s*darpaflow:\s*sanitized=(\S+)"

#: category name -> stable finding id (mirrors darpalint's DLxxx ids).
CATEGORY_IDS: Mapping[str, str] = {
    "wall-clock": "DF001",
    "unseeded-rng": "DF002",
    "listing": "DF003",
    "dict-set-order": "DF004",
    "env": "DF005",
    "identity": "DF006",
    "scheduling": "DF007",
}

#: Categories whose taint is an enumeration *order*, not a value —
#: the only ones an order-erasing sanitizer may clean.
ORDER_CATEGORIES = frozenset({"listing", "dict-set-order"})

#: Dotted source names per category (exact match after alias
#: resolution).  Unseeded-RNG constructor checks are special-cased in
#: the taint engine: ``random.Random(seed)`` is clean, ``random.Random()``
#: is a source.
DEFAULT_SOURCES: Mapping[str, Tuple[str, ...]] = {
    "wall-clock": tuple(sorted(WALL_CLOCK_CALLS)),
    "unseeded-rng": tuple(sorted(
        {f"random.{fn}" for fn in GLOBAL_RANDOM_FNS}
        | {f"numpy.random.{fn}" for fn in NUMPY_GLOBAL_FNS})),
    "listing": ("glob.glob", "glob.iglob", "os.listdir", "os.scandir"),
    "dict-set-order": (),  # attribute/literal driven; see taint engine
    "env": ("os.environ.get", "os.getenv", "os.environb.get"),
    "identity": ("id",),
    "scheduling": ("concurrent.futures.as_completed", "os.getpid",
                   "os.urandom", "threading.current_thread",
                   "threading.get_ident", "uuid.uuid1", "uuid.uuid4"),
}

#: Trailing method names treated as listing sources whatever the
#: (usually unresolvable) receiver: ``Path(...).iterdir()`` etc.
LISTING_METHOD_ATTRS = frozenset({"iterdir", "glob", "rglob"})

#: Trailing method/constructor names producing hash-ordered iterables.
DICT_SET_ORDER_ATTRS = frozenset({"keys", "values", "items"})

#: Dotted sanitizer name -> categories it erases (None = every one).
DEFAULT_SANITIZERS: Mapping[str, Optional[frozenset]] = {
    "sorted": ORDER_CATEGORIES,
    "math.fsum": ORDER_CATEGORIES,
    "min": ORDER_CATEGORIES,
    "max": ORDER_CATEGORIES,
    "len": ORDER_CATEGORIES,
    "sum": ORDER_CATEGORIES,
    "any": ORDER_CATEGORIES,
    "all": ORDER_CATEGORIES,
    # The one sanctioned directory enumeration: sorted inside,
    # injectable for tests — its result carries no listing order.
    "repro.ops.artifacts.injectable_listing": None,
    "injectable_listing": None,
}

#: Artifact-writer sinks: dotted-or-suffix name -> human description.
DEFAULT_SINKS: Mapping[str, str] = {
    "repro.ops.routes.canonical_bytes": "canonical route bytes",
    "canonical_bytes": "canonical route bytes",
    "repro.bench.parallel.write_session_part": "journal/checkpoint shard part",
    "write_session_part": "journal/checkpoint shard part",
    "repro.bench.provenance.build_manifest": "BENCH payload manifest",
    "build_manifest": "BENCH payload manifest",
    "repro.core.telemetry.registry_prometheus_lines": "Prometheus exposition",
    "registry_prometheus_lines": "Prometheus exposition",
    "prometheus_lines": "Prometheus exposition",
    "to_prometheus": "Prometheus exposition",
    "to_json": "profile.json / telemetry snapshot emitter",
}


@dataclass(frozen=True)
class FlowSpecs:
    """The three tables the taint engine runs with (immutable)."""

    sources: Mapping[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_SOURCES))
    sanitizers: Mapping[str, Optional[frozenset]] = field(
        default_factory=lambda: dict(DEFAULT_SANITIZERS))
    sinks: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_SINKS))
    exclude: Tuple[str, ...] = ()

    def source_category(self, dotted: str) -> Optional[str]:
        """Category of a resolved callee, or None when not a source."""
        for category in sorted(self.sources):
            if dotted in self.sources[category]:
                return category
        return None

    def sanitizer_categories(self, dotted: str) -> Optional[object]:
        """``False`` when not a sanitizer; else the erased-category set
        (``None`` meaning *all*)."""
        if dotted in self.sanitizers:
            return self.sanitizers[dotted]
        tail = dotted.rpartition(".")[2]
        if tail != dotted and tail in self.sanitizers:
            return self.sanitizers[tail]
        return False

    def sink_description(self, dotted: str) -> Optional[str]:
        """Description of a sink callee, or None when not a sink."""
        if dotted in self.sinks:
            return self.sinks[dotted]
        tail = dotted.rpartition(".")[2]
        if tail != dotted and tail in self.sinks:
            return self.sinks[tail]
        return None


def specs_from_table(table: Mapping[str, object],
                     origin: str = "<config>") -> FlowSpecs:
    """Extend the defaults with a decoded ``[tool.darpaflow]`` table.

    Schema (all keys optional)::

        [tool.darpaflow]
        exclude = ["src/generated/*"]       # paths never analyzed
        sinks = ["mylib.emit_artifact"]     # extra sink names
        sanitizers = ["mylib.canon"]        # extra sanitizers (erase all)

        [tool.darpaflow.sources]
        wall-clock = ["mylib.clock.read"]   # extra sources per category
    """
    specs = FlowSpecs()
    sources = {cat: tuple(names) for cat, names in specs.sources.items()}
    sanitizers = dict(specs.sanitizers)
    sinks = dict(specs.sinks)
    exclude: Tuple[str, ...] = ()
    for key, value in table.items():
        if key == "sources":
            if not isinstance(value, Mapping):
                raise ConfigError(
                    f"{origin}: [tool.darpaflow.sources] must be a table")
            for category, names in value.items():
                if category not in CATEGORY_IDS:
                    raise ConfigError(
                        f"{origin}: unknown darpaflow source category "
                        f"{category!r} (known: "
                        f"{', '.join(sorted(CATEGORY_IDS))})")
                sources[category] = tuple(sorted(
                    set(sources.get(category, ()))
                    | set(_string_list(names, origin, f"sources.{category}"))))
        elif key == "sanitizers":
            for name in _string_list(value, origin, key):
                sanitizers[name] = None
        elif key == "sinks":
            for name in _string_list(value, origin, key):
                sinks[name] = "configured sink"
        elif key == "exclude":
            exclude = tuple(_string_list(value, origin, key))
        else:
            raise ConfigError(
                f"{origin}: unknown [tool.darpaflow] key {key!r}")
    return replace(FlowSpecs(), sources=sources, sanitizers=sanitizers,
                   sinks=sinks, exclude=exclude)


def _string_list(value: object, origin: str, key: str) -> Tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    if isinstance(value, (list, tuple)) and all(
            isinstance(item, str) for item in value):
        return tuple(value)
    raise ConfigError(
        f"{origin}: [tool.darpaflow] {key} must be a string list")


def load_flow_specs(pyproject_path: Optional[str] = None) -> FlowSpecs:
    """Specs from ``pyproject.toml``'s ``[tool.darpaflow]`` (defaults
    when the file or table is absent)."""
    table = load_tool_table(pyproject_path, tool="darpaflow")
    return specs_from_table(table) if table else FlowSpecs()


__all__ = [
    "CATEGORY_IDS",
    "DEFAULT_SANITIZERS",
    "DEFAULT_SINKS",
    "DEFAULT_SOURCES",
    "DICT_SET_ORDER_ATTRS",
    "FlowSpecs",
    "LISTING_METHOD_ATTRS",
    "ORDER_CATEGORIES",
    "SANITIZED_MARKER_RE",
    "SEEDED_CONSTRUCTORS",
    "load_flow_specs",
    "specs_from_table",
]
