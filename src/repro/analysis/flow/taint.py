"""darpaflow taint lattice + interprocedural worklist propagation.

The analysis computes, for every function (and every module top level,
treated as a zero-parameter pseudo-function), a **summary**:

- ``returns`` — taints the return value may carry;
- ``hits`` — taints that reach an artifact-sink call inside the body.

Parameters are modelled as pseudo-taints (``<param:i>``), so one
intraprocedural pass per function produces both the *local* flows
(source called here reaches a sink here) and the *transfer* facts
(parameter ``i`` flows to the return value / to sink ``s`` through
these hops).  The interprocedural engine then iterates all summaries
to fixpoint: a call site expands its callee's summary, binding real
taints to parameter pseudo-taints and splicing the hop chains — so a
``time.time()`` value that crosses three helpers before landing in
``canonical_bytes`` arrives with every hop recorded as ``path:line``.

**Lattice / termination.**  A taint is identified by its source site
``(category, source, origin, param_index, erased)``; an environment
maps names to keyed taint sets with first-writer-wins joins.  Key sets
only grow, are finite (one per source site × sanitizer-erasure set),
and the fixpoint test compares key sets — so the worklist terminates,
and because files, functions and statements are all processed in
sorted/AST order, the result is byte-deterministic for any input path
order (the same invariant the analyzed code is held to).

**Sanitizers and parameters.**  Erasing a real taint is immediate; a
*parameter* pseudo-taint cannot be erased at sanitization time (its
eventual category is unknown), so sanitizers fold their category set
into ``Taint.erased`` and the binding at the call site drops any real
taint whose category was erased en route.  This is what makes
``sorted(x)`` inside a helper kill a listing flow through that helper
without clearing a wall-clock value.

**Documented approximations (false-negative edges, DESIGN §5k):**
calls through variables/``getattr``, duck-typed method receivers,
nested ``def`` closures, and ``*args``/``**kwargs`` fan-in are not
entered (taint still passes args→result through unknown calls);
attribute stores taint the whole object; recursion deeper than the
fixpoint's key growth keeps the first hop chain seen.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.flow.graph import (
    FunctionInfo,
    ModuleInfo,
    ProgramGraph,
    build_graph,
)
from repro.analysis.flow.specs import (
    CATEGORY_IDS,
    FlowSpecs,
    LISTING_METHOD_ATTRS,
    SANITIZED_MARKER_RE,
    SEEDED_CONSTRUCTORS,
)

#: Pseudo-rule for files the parser rejects (mirrors darpalint DL000).
FLOW_PARSE_ERROR_RULE = "DF000"

#: Hop-chain cap: extensions past this keep the existing chain.
MAX_HOPS = 48

#: Fixpoint round cap — a backstop far above any real call depth.
MAX_ROUNDS = 64

_MARKER_RE = re.compile(SANITIZED_MARKER_RE)


@dataclass(frozen=True, order=True)
class Hop:
    """One step of a flow trace, anchored to ``path:line``."""

    path: str
    line: int
    note: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.note}"


@dataclass(frozen=True)
class Taint:
    """One tainted value: where it came from, how it got here."""

    category: str                 # spec category, or "param"
    source: str                   # dotted source name, or "<param:i>"
    origin: Hop
    hops: Tuple[Hop, ...] = ()
    param_index: Optional[int] = None
    erased: Tuple[str, ...] = ()  # categories sanitized along the way

    def key(self) -> Tuple:
        return (self.category, self.source, self.origin,
                self.param_index, self.erased)

    def extend(self, *extra: Hop) -> "Taint":
        hops = self.hops
        for hop in extra:
            if len(hops) >= MAX_HOPS:
                break
            hops = hops + (hop,)
        return Taint(self.category, self.source, self.origin, hops,
                     self.param_index, self.erased)

    def erase(self, categories: Iterable[str]) -> "Taint":
        merged = tuple(sorted(set(self.erased) | set(categories)))
        return Taint(self.category, self.source, self.origin, self.hops,
                     self.param_index, merged)


@dataclass(frozen=True)
class SinkHit:
    """A taint arriving at a sink call (possibly still parametric)."""

    sink: str
    description: str
    hop: Hop
    col: int
    taint: Taint

    def key(self) -> Tuple:
        return (self.sink, self.hop, self.col, self.taint.key())


@dataclass(frozen=True)
class Summary:
    """Fixpoint state of one function / module pseudo-function."""

    returns: Tuple[Taint, ...] = ()
    hits: Tuple[SinkHit, ...] = ()

    def key(self) -> Tuple:
        return (tuple(sorted(t.key() for t in self.returns)),
                tuple(sorted(h.key() for h in self.hits)))


EMPTY_SUMMARY = Summary()

#: name -> keyed taints.  First writer wins per key.
TaintSet = Dict[Tuple, Taint]
Env = Dict[str, TaintSet]


def _union(*sets: TaintSet) -> TaintSet:
    out: TaintSet = {}
    for ts in sets:
        for key, taint in ts.items():
            out.setdefault(key, taint)
    return out


def _marker_lines(source_lines: Sequence[str]) -> Dict[int, str]:
    """Line -> reason for every ``# darpaflow: sanitized=`` marker."""
    out: Dict[int, str] = {}
    for lineno, line in enumerate(source_lines, 1):
        match = _MARKER_RE.search(line)
        if match:
            out[lineno] = match.group(1)
    return out


class _UnitAnalyzer:
    """One intraprocedural pass over a function or module body."""

    def __init__(self, graph: ProgramGraph, specs: FlowSpecs,
                 summaries: Mapping[str, Summary], module: ModuleInfo,
                 qualname: str, cls: Optional[str],
                 body: Sequence[ast.stmt],
                 params: Tuple[str, ...], def_line: int):
        self.graph = graph
        self.specs = specs
        self.summaries = summaries
        self.module = module
        self.qualname = qualname
        self.cls = cls
        self.body = body
        self.markers = _marker_lines(module.source_lines)
        self.returns: TaintSet = {}
        self.hits: Dict[Tuple, SinkHit] = {}
        self.env: Env = {}
        self._suppress = 0
        for index, name in enumerate(params):
            taint = Taint(
                category="param", source=f"<param:{index}>",
                origin=Hop(module.path, def_line,
                           f"parameter {name!r} of {qualname}()"),
                param_index=index)
            self.env[name] = {taint.key(): taint}

    def run(self) -> Summary:
        self._block(self.body)
        return Summary(
            returns=tuple(self.returns[k] for k in sorted(self.returns)),
            hits=tuple(self.hits[k] for k in sorted(self.hits)))

    # -- statements -----------------------------------------------------

    def _block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        suppressed = getattr(stmt, "lineno", 0) in self.markers
        if suppressed:
            self._suppress += 1
        try:
            self._dispatch(stmt)
        finally:
            if suppressed:
                self._suppress -= 1

    def _dispatch(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            ts = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, ts, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self._eval(stmt.value), stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            ts = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                existing = self.env.get(stmt.target.id, {})
                self._assign(stmt.target, _union(existing, ts), stmt.lineno)
            else:
                self._assign(stmt.target, ts, stmt.lineno)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None and not self._suppress:
                hop = Hop(self.module.path, stmt.lineno, "return")
                for taint in self._eval(stmt.value).values():
                    extended = taint.extend(hop)
                    self.returns.setdefault(extended.key(), extended)
            elif stmt.value is not None:
                self._eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            ts = self._eval(stmt.iter)
            # Two rounds: taint assigned on round one reaches uses that
            # lexically precede the assignment on round two.
            for _ in range(2):
                self._assign(stmt.target, ts, stmt.lineno)
                self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            for _ in range(2):
                self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ts = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, ts, stmt.lineno)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self._eval(sub)
        # Nested defs/classes, imports, pass, etc.: no taint transfer.

    def _assign(self, target: ast.expr, ts: TaintSet, line: int) -> None:
        if self._suppress:
            ts = {}
        if isinstance(target, ast.Name):
            hop = Hop(self.module.path, line, f"-> {target.id}")
            self.env[target.id] = {
                t.extend(hop).key(): t.extend(hop) for t in ts.values()}
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, ts, line)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, ts, line)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # Weak update: taint the whole base object.
            base = target.value
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name):
                existing = self.env.get(base.id, {})
                hop = Hop(self.module.path, line,
                          f"-> {ast.unparse(target)}")
                extended = {t.extend(hop).key(): t.extend(hop)
                            for t in ts.values()}
                self.env[base.id] = _union(existing, extended)

    # -- expressions ----------------------------------------------------

    def _eval(self, node: Optional[ast.expr]) -> TaintSet:
        if node is None:
            return {}
        if isinstance(node, ast.Name):
            return dict(self.env.get(node.id, {}))
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return self._eval(node.value)
        if isinstance(node, (ast.Set, ast.SetComp)):
            return _union(self._set_order_taint(node),
                          self._eval_children(node))
        if isinstance(node, ast.Lambda):
            return {}
        return self._eval_children(node)

    def _eval_children(self, node: ast.expr) -> TaintSet:
        parts = []
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for comp in node.generators:
                ts = self._eval(comp.iter)
                self._assign(comp.target, ts, node.lineno)
                for cond in comp.ifs:
                    parts.append(self._eval(cond))
            if isinstance(node, ast.DictComp):
                parts += [self._eval(node.key), self._eval(node.value)]
            else:
                parts.append(self._eval(node.elt))
            return _union(*parts) if parts else {}
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                parts.append(self._eval(child))
        return _union(*parts) if parts else {}

    def _set_order_taint(self, node: ast.expr) -> TaintSet:
        if self._suppress:
            return {}
        taint = Taint(
            category="dict-set-order", source="set",
            origin=Hop(self.module.path, node.lineno, "set literal"))
        return {taint.key(): taint}

    def _resolve(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.module.aliases.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def _eval_call(self, node: ast.Call) -> TaintSet:
        dotted = self._resolve(node.func)
        arg_sets = [self._eval(arg.value) if isinstance(arg, ast.Starred)
                    else self._eval(arg) for arg in node.args]
        kw_sets = {kw.arg: self._eval(kw.value) for kw in node.keywords}
        receiver = (self._eval(node.func.value)
                    if isinstance(node.func, ast.Attribute) else {})
        everything = _union(receiver, *arg_sets, *kw_sets.values())
        line = node.lineno
        path = self.module.path

        # 1. Sanitizers (before sinks/sources/callees: the injectable
        #    listing helper is also an analyzed function and a spec'd
        #    sanitizer — sanitizer wins).
        if dotted is not None:
            cats = self.specs.sanitizer_categories(dotted)
            if cats is not False:
                if cats is None:
                    return {}
                out: TaintSet = {}
                for taint in everything.values():
                    if taint.category == "param":
                        erased = taint.erase(cats)
                        out.setdefault(erased.key(), erased)
                    elif taint.category not in cats:
                        out.setdefault(taint.key(), taint)
                return out

        # 2. Sinks: every tainted argument is a hit.
        if dotted is not None:
            description = self.specs.sink_description(dotted)
            if description is not None:
                if not self._suppress:
                    hop = Hop(path, line, f"{dotted}() [sink]")
                    for taint in everything.values():
                        hit = SinkHit(sink=dotted, description=description,
                                      hop=hop, col=node.col_offset,
                                      taint=taint)
                        self.hits.setdefault(hit.key(), hit)
                return everything

        # 3. Sources.
        if not self._suppress:
            source_taint = self._source_taint(node, dotted)
            if source_taint is not None:
                return _union(
                    {source_taint.key(): source_taint}, everything)

        # 4. Known callees: splice the callee summary in.
        info = self.graph.resolve_callee(dotted, self.module.module,
                                         self.cls)
        if info is not None and dotted is not None:
            return self._expand_call(node, dotted, info, arg_sets, kw_sets)

        # 5. Unknown call: taint passes through args -> result.
        return everything

    def _source_taint(self, node: ast.Call,
                      dotted: Optional[str]) -> Optional[Taint]:
        if dotted is not None:
            if dotted in SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    return Taint(
                        category="unseeded-rng", source=dotted,
                        origin=Hop(self.module.path, node.lineno,
                                   f"{dotted}() constructed without a seed"
                                   " [source]"))
                return None  # seeded construction is the sanctioned form
            category = self.specs.source_category(dotted)
            if category is not None:
                return Taint(
                    category=category, source=dotted,
                    origin=Hop(self.module.path, node.lineno,
                               f"{dotted}() [source]"))
            if dotted in ("set", "frozenset"):
                return Taint(
                    category="dict-set-order", source=dotted,
                    origin=Hop(self.module.path, node.lineno,
                               f"{dotted}() [source]"))
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in LISTING_METHOD_ATTRS and \
                self.graph.resolve_callee(dotted, self.module.module,
                                          self.cls) is None:
            return Taint(
                category="listing", source=f".{node.func.attr}",
                origin=Hop(self.module.path, node.lineno,
                           f".{node.func.attr}() [source]"))
        return None

    def _expand_call(self, node: ast.Call, dotted: str, info: FunctionInfo,
                     arg_sets: List[TaintSet],
                     kw_sets: Dict[Optional[str], TaintSet]) -> TaintSet:
        summary = self.summaries.get(info.qualname, EMPTY_SUMMARY)
        offset = 1 if dotted.startswith("self.") else 0
        by_param: Dict[int, TaintSet] = {}
        spill: List[TaintSet] = []
        for position, ts in enumerate(arg_sets):
            if isinstance(node.args[position], ast.Starred):
                spill.append(ts)
            else:
                by_param[position + offset] = ts
        for name, ts in kw_sets.items():
            if name is not None and name in info.params:
                by_param[info.params.index(name)] = ts
            else:
                spill.append(ts)
        call_hop = Hop(self.module.path, node.lineno,
                       f"argument to {dotted}()")
        out: TaintSet = _union(*spill) if spill else {}

        for ret in summary.returns:
            if ret.param_index is None:
                bound = ret.extend(
                    Hop(self.module.path, node.lineno,
                        f"returned by {dotted}()"))
                out.setdefault(bound.key(), bound)
                continue
            for taint in by_param.get(ret.param_index, {}).values():
                spliced = self._bind(taint, ret, call_hop)
                if spliced is not None:
                    out.setdefault(spliced.key(), spliced)

        if not self._suppress:
            for hit in summary.hits:
                if hit.taint.param_index is None:
                    continue  # callee-local finding, reported there
                for taint in by_param.get(hit.taint.param_index,
                                          {}).values():
                    spliced = self._bind(taint, hit.taint, call_hop)
                    if spliced is None:
                        continue
                    new_hit = SinkHit(sink=hit.sink,
                                      description=hit.description,
                                      hop=hit.hop, col=hit.col,
                                      taint=spliced)
                    self.hits.setdefault(new_hit.key(), new_hit)
        return out

    def _bind(self, actual: Taint, formal: Taint,
              call_hop: Hop) -> Optional[Taint]:
        """Splice an argument's taint through a parameter pseudo-taint."""
        if actual.category != "param" and actual.category in formal.erased:
            return None  # sanitized somewhere along the callee chain
        hops = actual.hops
        for hop in (call_hop, formal.origin) + formal.hops:
            if len(hops) >= MAX_HOPS:
                break
            hops = hops + (hop,)
        if actual.category == "param":
            return Taint(
                category="param", source=actual.source,
                origin=actual.origin, hops=hops,
                param_index=actual.param_index,
                erased=tuple(sorted(set(actual.erased)
                                    | set(formal.erased))))
        return Taint(category=actual.category, source=actual.source,
                     origin=actual.origin, hops=hops,
                     erased=actual.erased)


# ---------------------------------------------------------------------------
# Findings + the interprocedural driver
# ---------------------------------------------------------------------------

@dataclass(frozen=True, order=True)
class FlowFinding:
    """One source→sink flow, with its complete hop trace."""

    path: str          # sink file
    line: int          # sink line
    col: int
    rule: str          # DFxxx category id
    category: str
    source: str        # dotted source name
    sink: str          # resolved sink callee
    message: str
    trace: Tuple[Hop, ...] = field(compare=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "category": self.category,
            "source": self.source,
            "sink": self.sink,
            "message": self.message,
            "trace": [{"path": hop.path, "line": hop.line,
                       "note": hop.note} for hop in self.trace],
        }

    def render(self) -> str:
        lines = [f"{self.path}:{self.line}:{self.col}: {self.rule} "
                 f"{self.message}"]
        lines += [f"    {hop.render()}" for hop in self.trace]
        return "\n".join(lines)


def _units(graph: ProgramGraph) -> List[Tuple[str, ModuleInfo,
                                              Optional[str],
                                              Sequence[ast.stmt],
                                              Tuple[str, ...], int]]:
    """Every analyzable unit in deterministic (sorted) order."""
    units = []
    for path in sorted(graph.modules):
        info = graph.modules[path]
        units.append((f"{info.module}.<module>", info, None,
                      info.tree.body, (), 1))
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        module = graph.modules.get(fn.path)
        if module is None:  # pragma: no cover - registry from same walk
            continue
        units.append((qual, module, fn.cls, fn.node.body, fn.params,
                      fn.lineno))
    return units


def analyze_graph(graph: ProgramGraph,
                  specs: Optional[FlowSpecs] = None) -> List[FlowFinding]:
    """Run the taint worklist to fixpoint; return sorted findings."""
    specs = specs or FlowSpecs()
    units = _units(graph)
    summaries: Dict[str, Summary] = {qual: EMPTY_SUMMARY
                                     for qual, *_ in units}
    for _ in range(MAX_ROUNDS):
        changed = False
        for qual, module, cls, body, params, def_line in units:
            analyzer = _UnitAnalyzer(graph, specs, summaries, module,
                                     qual, cls, body, params, def_line)
            fresh = analyzer.run()
            if fresh.key() != summaries[qual].key():
                summaries[qual] = fresh
                changed = True
        if not changed:
            break

    findings = set()
    for path in sorted(graph.parse_errors):
        findings.add(FlowFinding(
            path=path, line=1, col=0, rule=FLOW_PARSE_ERROR_RULE,
            category="parse-error", source="", sink="",
            message=f"file {graph.parse_errors[path]}", trace=()))
    for qual in sorted(summaries):
        for hit in summaries[qual].hits:
            taint = hit.taint
            if taint.category == "param":
                continue  # never bound to a real source by any caller
            trace = (taint.origin,) + taint.hops + (hit.hop,)
            findings.add(FlowFinding(
                path=hit.hop.path, line=hit.hop.line, col=hit.col,
                rule=CATEGORY_IDS[taint.category], category=taint.category,
                source=taint.source, sink=hit.sink,
                message=(f"{taint.category} value from {taint.source} "
                         f"({taint.origin.path}:{taint.origin.line}) "
                         f"reaches artifact sink {hit.sink}() "
                         f"[{hit.description}] unsanitized"),
                trace=trace))
    return sorted(findings)


def analyze_paths(paths: Sequence[str],
                  specs: Optional[FlowSpecs] = None) -> List[FlowFinding]:
    """Convenience one-shot: graph + fixpoint over ``paths``."""
    specs = specs or FlowSpecs()
    graph = build_graph(paths, exclude=specs.exclude)
    return analyze_graph(graph, specs)


__all__ = [
    "FLOW_PARSE_ERROR_RULE",
    "FlowFinding",
    "Hop",
    "MAX_HOPS",
    "SinkHit",
    "Summary",
    "Taint",
    "analyze_graph",
    "analyze_paths",
]
