"""darpaflow baseline: reviewed-and-accepted flows CI ignores.

A committed ``flow-baseline.json`` lists flows a reviewer has looked
at and accepted (with a reason); ``repro flow --baseline`` subtracts
them so the gate fails only on *new* flows.  Fingerprints are
**line-insensitive** — category, source name, source file, sink name,
sink file — so refactors that merely move code do not churn the
baseline, while moving a flow to a different file (or introducing a
second one elsewhere) correctly reads as new.

Schema::

    {
      "version": 1,
      "accepted": [
        {"fingerprint": "DF001:time.time@src/a.py->canonical_bytes@src/b.py",
         "reason": "clock is the SimulatedClock shim, reviewed 2026-08"}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from repro.analysis.flow.taint import FlowFinding

#: Bump when the baseline schema changes shape.
BASELINE_VERSION = 1

DEFAULT_REASON = "accepted via --update-baseline (review me)"


class BaselineError(Exception):
    """The baseline file is present but unreadable or malformed."""


def fingerprint(finding: FlowFinding) -> str:
    """Line-insensitive identity of one flow."""
    source_path = finding.trace[0].path if finding.trace else finding.path
    return (f"{finding.rule}:{finding.source}@{source_path}"
            f"->{finding.sink}@{finding.path}")


def load_baseline(path: str) -> Dict[str, str]:
    """``fingerprint -> reason`` from a baseline file."""
    try:
        with open(path, encoding="utf-8") as fp:
            data = json.load(fp)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}")
    except ValueError as exc:
        raise BaselineError(f"baseline {path} is not JSON: {exc}")
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path}: expected version {BASELINE_VERSION}")
    entries = data.get("accepted", [])
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: 'accepted' must be a list")
    out: Dict[str, str] = {}
    for entry in entries:
        if not isinstance(entry, dict) or \
                not isinstance(entry.get("fingerprint"), str):
            raise BaselineError(
                f"baseline {path}: every entry needs a string "
                "'fingerprint'")
        out[entry["fingerprint"]] = str(entry.get("reason", ""))
    return out


def partition(findings: Sequence[FlowFinding],
              accepted: Dict[str, str]) -> Tuple[List[FlowFinding],
                                                 List[FlowFinding]]:
    """Split findings into (new, baselined) against ``accepted``."""
    fresh: List[FlowFinding] = []
    known: List[FlowFinding] = []
    for finding in findings:
        (known if fingerprint(finding) in accepted else fresh).append(
            finding)
    return fresh, known


def write_baseline(path: str, findings: Sequence[FlowFinding],
                   existing: Dict[str, str] = None) -> int:
    """Write a baseline accepting every flow in ``findings``.

    Reasons from ``existing`` (a prior baseline) are preserved for
    fingerprints that persist; new fingerprints get a placeholder
    reason a reviewer is expected to replace.  Returns the number of
    accepted entries written.
    """
    existing = existing or {}
    prints = sorted({fingerprint(finding) for finding in findings})
    payload = {
        "version": BASELINE_VERSION,
        "accepted": [{"fingerprint": fp,
                      "reason": existing.get(fp, DEFAULT_REASON)}
                     for fp in prints],
    }
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")
    return len(prints)


__all__ = [
    "BASELINE_VERSION",
    "BaselineError",
    "DEFAULT_REASON",
    "fingerprint",
    "load_baseline",
    "partition",
    "write_baseline",
]
