"""darpalint command line (``python -m repro lint`` / ``-m repro.analysis``).

Exit codes follow :mod:`repro.bench.regress` conventions:

- ``0`` — every linted file is clean;
- ``1`` — at least one finding (listed on stdout);
- ``2`` — usage error: missing path, unknown rule id, malformed
  config (reason on stderr; argparse itself also exits 2).

The module deliberately avoids importing the rest of :mod:`repro`
(and its numpy dependency): ``python -m repro.analysis src/`` works in
a bare stdlib environment, which is what keeps the CI lint job cheap.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.config import ConfigError, LintConfig, load_config
from repro.analysis.engine import LintEngine, LintPathError
from repro.analysis.reporters import render
from repro.analysis.rules import default_rules, rules_for_ids


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & sim-correctness linter "
                    "(rules DL001-DL008).",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--rules", default=None, metavar="DL001,DL003",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry (id, summary, "
                             "allowlisted paths from pyproject) and exit")
    parser.add_argument("--config", default=None, metavar="PYPROJECT",
                        help="pyproject.toml to read [tool.darpalint] "
                             "from (default: nearest upward from cwd)")
    parser.add_argument("--no-config", action="store_true",
                        help="ignore [tool.darpalint] entirely "
                             "(no allowlists, no excludes)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write the report here instead of stdout")
    return parser


def render_rule_list(config: LintConfig) -> str:
    """One deterministic line per registered rule.

    Shows each rule's id, name and summary, plus — when the loaded
    ``[tool.darpalint.allow]`` table allowlists paths for it — the
    globs the rule is intentionally off for, so config debugging
    doesn't require reading ``rules.py``.
    """
    lines = []
    for rule in default_rules():
        allowed = config.allow.get(rule.id, ())
        state = (f"allowlisted for: {', '.join(allowed)}" if allowed
                 else "enabled everywhere")
        lines.append(f"{rule.id}  {rule.name:<32} {rule.summary}")
        lines.append(f"       {state}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.no_config:
        config = LintConfig()
    else:
        try:
            config = load_config(args.config)
        except ConfigError as exc:
            print(f"lint: bad config: {exc}", file=sys.stderr)
            return 2

    if args.list_rules:
        sys.stdout.write(render_rule_list(config))
        return 0

    if args.rules is None:
        rules = default_rules()
    else:
        try:
            rules = rules_for_ids(args.rules.split(","))
        except KeyError as exc:
            print(f"lint: unknown rule id {exc.args[0]!r} "
                  f"(known: {', '.join(sorted(r.id for r in default_rules()))})",
                  file=sys.stderr)
            return 2

    engine = LintEngine(rules=rules, config=config)
    try:
        findings = engine.lint_paths(list(args.paths))
    except LintPathError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    report = render(findings, args.format)
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as fp:
                fp.write(report)
        except OSError as exc:
            print(f"lint: cannot write {args.output}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        sys.stdout.write(report)
    return 1 if findings else 0


__all__ = ["build_parser", "main", "render_rule_list"]
