"""darpalint rules DL001–DL008: the repo's real nondeterminism hazards.

Every rule encodes one defect class that has (or would have) broken
the serving path's core invariant — *sequential and sharded runs are
byte-identical, because all behaviour is a pure function of the
simulated clock and explicit seeds*:

- **DL001 wall-clock** — ``time.time()``/``perf_counter``/
  ``datetime.now`` etc. read the host clock, which differs per run and
  per worker.  Simulation state must use
  :class:`repro.android.clock.SimulatedClock`; genuinely wall-clock
  needs (user-facing progress, micro-bench timing) go through the
  allowlisted :mod:`repro.wallclock` helper.
- **DL002 unseeded-rng** — the ``random`` module's global instance and
  numpy's legacy global RNG are process-wide hidden state; an unseeded
  ``random.Random()``/``default_rng()`` seeds from the OS.  All
  randomness must flow from explicit seeds.
- **DL003 unordered-iteration** — iterating a ``set``, ``dict.keys()``
  or ``os.listdir`` result inside merge/export/serialization functions
  without ``sorted(...)`` makes output depend on hash/filesystem
  order: exactly the bug class the shard-merge paths are exposed to.
- **DL004 float-accumulation-in-merge** — ``+=`` on float state inside
  ``merge``/``snapshot`` functions is order-sensitive (float addition
  is not associative); the telemetry merge algebra is all-integer (or
  ``math.fsum``) for this reason.
- **DL005 swallowed-exception** — bare ``except:`` / ``except X: pass``
  masks fault-injection outcomes the resilience layer must observe.
- **DL006 mutable-default-arg** — a shared mutable default leaks state
  across calls (and across fleet sessions within a worker).
- **DL007 undocumented-matmul-reduction** — ``@`` / ``np.dot`` /
  ``np.matmul`` inside merge/reduction scopes hides an order-sensitive
  float sum behind a BLAS call whose internal accumulation order is
  shape- and build-dependent (the kernel work measured grouped GEMMs
  diverging from per-row GEMMs at specific shapes).  Such products
  must carry a ``reduction-order:`` comment stating why the order is
  fixed (or why divergence is acceptable).
- **DL008 unsorted-listing** — ``os.listdir``/``Path.iterdir``/
  ``glob.glob`` enumerate in on-disk order, which differs across hosts
  and runs; unless immediately sorted (or reduced by an
  order-insensitive aggregate), everything derived from the listing
  inherits that ordering.  The sanctioned raw enumeration lives in
  :func:`repro.ops.artifacts.injectable_listing`, which sorts
  internally and accepts an injected listing for tests.  This is the
  intraprocedural shadow of darpaflow's ``listing`` taint source.

Rules are deliberately syntactic: no type inference, no data flow.
False positives are handled by ``# darpalint: disable=RULE`` inline
suppressions or ``[tool.darpalint.allow]`` path allowlists — both of
which require a human to leave a justification behind.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.analysis.engine import FileContext, Finding


class Rule:
    """Base class: one defect pattern, one stable id."""

    id: str = "DL000"
    name: str = "abstract"
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""
    hint: str = ""

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, node: ast.AST, ctx: FileContext,
                message: str) -> Finding:
        return Finding(path=ctx.path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0), rule=self.id,
                       message=message, hint=self.hint)


def _in_scope(ctx: FileContext, patterns: Sequence[str]) -> bool:
    """True when any enclosing function name matches a pattern."""
    return any(fnmatchcase(name, pattern)
               for name in ctx.scope for pattern in patterns)


# ---------------------------------------------------------------------------
# DL001 — wall clock
# ---------------------------------------------------------------------------

#: Canonical dotted names that read the host clock.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
    "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class WallClockRule(Rule):
    id = "DL001"
    name = "wall-clock"
    summary = "host wall-clock read outside repro.wallclock"
    hint = ("use the SimulatedClock for simulation state, or "
            "repro.wallclock for user-facing progress timing")

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        dotted = ctx.resolve(node.func)
        if dotted in WALL_CLOCK_CALLS:
            yield self.finding(
                node, ctx, f"call to wall clock {dotted}() — behaviour "
                           "must be a pure function of the simulated "
                           "clock and explicit seeds")


# ---------------------------------------------------------------------------
# DL002 — unseeded RNG
# ---------------------------------------------------------------------------

#: Draw/shuffle functions of the ``random`` module's *global* instance.
GLOBAL_RANDOM_FNS = frozenset({
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "sample", "shuffle", "random_bytes", "randbytes", "getrandbits",
    "gauss", "normalvariate", "lognormvariate", "expovariate",
    "betavariate", "gammavariate", "paretovariate", "weibullvariate",
    "vonmisesvariate", "triangular", "binomialvariate", "seed",
})

#: Legacy numpy global-RNG entry points (``np.random.rand`` et al.).
NUMPY_GLOBAL_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "lognormal", "exponential", "poisson",
    "binomial", "beta", "gamma", "bytes", "seed",
})

#: Constructors that must be handed an explicit seed argument.
SEEDED_CONSTRUCTORS = frozenset({
    "random.Random", "random.SystemRandom",
    "numpy.random.default_rng", "numpy.random.RandomState",
})


class UnseededRngRule(Rule):
    id = "DL002"
    name = "unseeded-rng"
    summary = "process-global or unseeded RNG"
    hint = ("derive randomness from an explicit seed: "
            "np.random.default_rng(seed) or random.Random(seed)")

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        dotted = ctx.resolve(node.func)
        if dotted is None:
            return
        if dotted in SEEDED_CONSTRUCTORS:
            if not node.args and not node.keywords:
                yield self.finding(
                    node, ctx, f"{dotted}() constructed without a seed — "
                               "it seeds itself from the OS")
            return
        head, _, tail = dotted.rpartition(".")
        if head == "random" and tail in GLOBAL_RANDOM_FNS:
            yield self.finding(
                node, ctx, f"{dotted}() uses the process-global RNG — "
                           "hidden state shared across the whole run")
        elif head == "numpy.random" and tail in NUMPY_GLOBAL_FNS:
            yield self.finding(
                node, ctx, f"{dotted}() uses numpy's legacy global RNG — "
                           "hidden state shared across the whole run")


# ---------------------------------------------------------------------------
# DL003 — unordered iteration in merge/export paths
# ---------------------------------------------------------------------------

#: Calls producing unordered (hash/filesystem-ordered) iterables.
UNORDERED_PRODUCERS = frozenset({
    "set", "frozenset", "os.listdir", "os.scandir", "glob.glob",
    "glob.iglob",
})

#: Callees that erase iteration order, making the operand's own order
#: irrelevant (``sorted(x)`` is the canonical fix).
ORDER_ERASERS = frozenset({"sorted", "set", "frozenset"})


def _is_unordered(expr: ast.AST, ctx: FileContext) -> Optional[str]:
    """Describe why ``expr`` iterates in unordered fashion, or None."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set literal"
    if isinstance(expr, ast.Call):
        dotted = ctx.resolve(expr.func)
        if dotted in UNORDERED_PRODUCERS:
            return f"{dotted}(...)"
        if isinstance(expr.func, ast.Attribute) and \
                expr.func.attr == "keys" and not expr.args:
            return ".keys() without sorted(...)"
        return None
    if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        # Set algebra: flag when either operand is itself unordered
        # (``set(a) - set(b)``); plain ``a - b`` on names stays quiet.
        for side in (expr.left, expr.right):
            reason = _is_unordered(side, ctx)
            if reason is not None:
                return f"set algebra over {reason}"
    return None


class UnorderedIterationRule(Rule):
    id = "DL003"
    name = "unordered-iteration"
    summary = "unordered iteration inside merge/export scopes"
    hint = "wrap the iterable in sorted(...) so merge output is stable"

    def _iter_exprs(self, node: ast.AST) -> Iterable[ast.AST]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                yield comp.iter

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not _in_scope(ctx, ctx.config.dl003_functions):
            return
        order_erased = any(
            callee.rpartition(".")[2] in ORDER_ERASERS
            for callee in ctx.enclosing_calls())
        if order_erased:
            return
        for expr in self._iter_exprs(node):
            reason = _is_unordered(expr, ctx)
            if reason is not None:
                yield self.finding(
                    expr, ctx,
                    f"iterating {reason} inside "
                    f"{ctx.scope_name() or '<module>'}() — output depends "
                    "on hash/filesystem order, breaking byte-identical "
                    "shard merges")


# ---------------------------------------------------------------------------
# DL004 — float accumulation in merge/snapshot functions
# ---------------------------------------------------------------------------

def _is_floaty(expr: ast.AST) -> bool:
    """True when ``expr`` certainly produces a float somewhere."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                and sub.func.id == "float":
            return True
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return True
    return False


def _expr_fingerprint(node: ast.AST) -> Optional[Tuple]:
    """Structural identity of a simple lvalue, load/store agnostic."""
    if isinstance(node, ast.Name):
        return ("name", node.id)
    if isinstance(node, ast.Attribute):
        base = _expr_fingerprint(node.value)
        return None if base is None else ("attr", base, node.attr)
    if isinstance(node, ast.Subscript):
        base = _expr_fingerprint(node.value)
        key = _expr_fingerprint(node.slice)
        if base is None or key is None:
            return None
        return ("item", base, key)
    if isinstance(node, ast.Constant):
        return ("const", repr(node.value))
    return None


def _reads_target(value: ast.AST, target: ast.AST) -> bool:
    fp = _expr_fingerprint(target)
    if fp is None:
        return False
    return any(_expr_fingerprint(sub) == fp for sub in ast.walk(value))


class FloatAccumulationRule(Rule):
    id = "DL004"
    name = "float-accumulation-in-merge"
    summary = "order-sensitive float accumulation in merge scopes"
    hint = ("keep merge state integer (e.g. micros) or use math.fsum "
            "over the collected values — float += is order-sensitive")

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not _in_scope(ctx, ctx.config.dl004_functions):
            return
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            if _is_floaty(node.value):
                yield self.finding(
                    node, ctx,
                    f"float += inside {ctx.scope_name()}() — float "
                    "addition is not associative, so merge order changes "
                    "the result")
        elif isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.BinOp) and \
                isinstance(node.value.op, ast.Add) and \
                _is_floaty(node.value):
            for target in node.targets:
                if _reads_target(node.value, target):
                    yield self.finding(
                        node, ctx,
                        f"float accumulation into {ast.unparse(target)} "
                        f"inside {ctx.scope_name()}() — float addition is "
                        "not associative, so merge order changes the result")
                    break


# ---------------------------------------------------------------------------
# DL005 — swallowed exceptions
# ---------------------------------------------------------------------------

class SwallowedExceptionRule(Rule):
    id = "DL005"
    name = "swallowed-exception"
    summary = "bare except / except-pass hides fault outcomes"
    hint = ("catch specific exceptions and record the outcome — the "
            "fault-injection layer must be able to observe failures")

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not isinstance(node, ast.ExceptHandler):
            return
        if node.type is None:
            yield self.finding(
                node, ctx, "bare except: catches everything, including "
                           "injected faults and KeyboardInterrupt")
            return
        if all(isinstance(stmt, ast.Pass) or
               (isinstance(stmt, ast.Expr) and
                isinstance(stmt.value, ast.Constant) and
                stmt.value.value is Ellipsis)
               for stmt in node.body):
            yield self.finding(
                node, ctx, "except-with-pass silently swallows the "
                           "failure — fault outcomes must stay observable")


# ---------------------------------------------------------------------------
# DL006 — mutable default argument
# ---------------------------------------------------------------------------

#: Constructor calls that build a fresh mutable container.
MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.OrderedDict",
    "collections.Counter", "collections.deque",
})


class MutableDefaultRule(Rule):
    id = "DL006"
    name = "mutable-default-arg"
    summary = "mutable default argument shared across calls"
    hint = "default to None and create the container inside the body"

    def _is_mutable(self, expr: ast.AST, ctx: FileContext) -> bool:
        if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.SetComp, ast.DictComp)):
            return True
        if isinstance(expr, ast.Call):
            return ctx.resolve(expr.func) in MUTABLE_CONSTRUCTORS
        return False

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            return
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        name = getattr(node, "name", "<lambda>")
        for default in defaults:
            if self._is_mutable(default, ctx):
                yield self.finding(
                    default, ctx,
                    f"mutable default argument in {name}() — the "
                    "container is shared across every call")


# ---------------------------------------------------------------------------
# DL007 — undocumented matmul reduction in merge/reduction scopes
# ---------------------------------------------------------------------------

#: Dotted callables that reduce through a BLAS dot product.
MATMUL_CALLS = frozenset({
    "numpy.dot", "numpy.matmul", "numpy.vdot", "numpy.inner",
    "numpy.einsum", "numpy.tensordot",
})

#: Marker comment documenting a product's accumulation order.  Same or
#: previous line, e.g. ``# reduction-order: fixed K, never split``.
REDUCTION_ORDER_MARKER = "reduction-order:"


class UndocumentedMatmulReductionRule(Rule):
    id = "DL007"
    name = "undocumented-matmul-reduction"
    summary = "undocumented BLAS reduction in merge scopes"
    hint = ("a BLAS product is a float reduction with shape-dependent "
            "internal order; add a '# reduction-order: ...' comment "
            "stating why the accumulation order is fixed here")

    def _documented(self, node: ast.AST, ctx: FileContext) -> bool:
        lineno = getattr(node, "lineno", 1)
        for line_index in (lineno - 1, lineno - 2):
            if 0 <= line_index < len(ctx.source_lines) and \
                    REDUCTION_ORDER_MARKER in ctx.source_lines[line_index]:
                return True
        return False

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not _in_scope(ctx, ctx.config.dl007_functions):
            return
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            what = "the @ operator"
        elif isinstance(node, ast.Call):
            dotted = ctx.resolve(node.func)
            if dotted not in MATMUL_CALLS:
                return
            what = f"{dotted}()"
        else:
            return
        if self._documented(node, ctx):
            return
        yield self.finding(
            node, ctx,
            f"{what} inside {ctx.scope_name() or '<module>'}() reduces "
            "floats in BLAS-internal order — document it with a "
            "'reduction-order:' comment or hoist it out of the merge path")


# ---------------------------------------------------------------------------
# DL008 — unsorted filesystem enumeration
# ---------------------------------------------------------------------------

#: Dotted callables that enumerate a directory in filesystem order.
LISTING_CALLS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})

#: ``pathlib.Path`` methods that enumerate in filesystem order.  The
#: receiver is usually untypeable syntactically, so any ``.iterdir()``
#: counts — the method names are specific enough in practice.
LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Enclosing callees that make enumeration order irrelevant: sorting,
#: set construction, and order-insensitive aggregates.
LISTING_ORDER_ERASERS = frozenset({
    "sorted", "set", "frozenset", "len", "min", "max", "sum", "any",
    "all",
})

#: Functions allowed to touch the raw listing: they sort internally
#: and accept an injected listing for tests (repro.ops.artifacts).
LISTING_HELPERS = frozenset({"injectable_listing"})


class UnsortedListingRule(Rule):
    id = "DL008"
    name = "unsorted-listing"
    summary = "unsorted filesystem enumeration"
    hint = ("wrap the enumeration in sorted(...), or go through "
            "repro.ops.artifacts.injectable_listing — filesystem "
            "order differs across hosts and runs")

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        if any(name in LISTING_HELPERS for name in ctx.scope):
            return
        dotted = ctx.resolve(node.func)
        if dotted in LISTING_CALLS:
            what = f"{dotted}()"
        elif isinstance(node.func, ast.Attribute) and \
                node.func.attr in LISTING_METHODS and \
                (dotted is None or
                 dotted.partition(".")[0] not in ("glob", "os")):
            what = f".{node.func.attr}()"
        else:
            return
        if any(callee.rpartition(".")[2] in LISTING_ORDER_ERASERS
               for callee in ctx.enclosing_calls()):
            return
        yield self.finding(
            node, ctx,
            f"{what} enumerates the filesystem in on-disk order — "
            "anything derived from it inherits a per-host, per-run "
            "ordering")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

ALL_RULES: Tuple[type, ...] = (
    WallClockRule,
    UnseededRngRule,
    UnorderedIterationRule,
    FloatAccumulationRule,
    SwallowedExceptionRule,
    MutableDefaultRule,
    UndocumentedMatmulReductionRule,
    UnsortedListingRule,
)

RULES_BY_ID: Dict[str, type] = {cls.id: cls for cls in ALL_RULES}


def default_rules() -> Tuple[Rule, ...]:
    """One fresh instance of every registered rule, in id order."""
    return tuple(cls() for cls in ALL_RULES)


def rules_for_ids(ids: Iterable[str]) -> Tuple[Rule, ...]:
    """Instances for ``ids`` (case-insensitive); unknown ids raise."""
    out = []
    for rule_id in ids:
        cls = RULES_BY_ID.get(rule_id.strip().upper())
        if cls is None:
            raise KeyError(rule_id)
        out.append(cls())
    return tuple(out)


__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "Rule",
    "WallClockRule",
    "UnseededRngRule",
    "UnorderedIterationRule",
    "FloatAccumulationRule",
    "SwallowedExceptionRule",
    "MutableDefaultRule",
    "UndocumentedMatmulReductionRule",
    "UnsortedListingRule",
    "default_rules",
    "rules_for_ids",
]
