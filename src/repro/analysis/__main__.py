"""``python -m repro.analysis`` — darpalint without the numpy stack."""

import sys

from repro.analysis.cli import main

sys.exit(main())
