"""repro.analysis — darpalint, the repo's determinism linter.

A zero-dependency (stdlib ``ast``) static-analysis engine enforcing
the invariant every serving-path layer is built on: behaviour is a
pure function of the simulated clock and explicit seeds, so
sequential and sharded runs are byte-identical.

- :mod:`repro.analysis.engine` — AST walker with parent/scope links,
  :class:`Finding` records, inline suppressions, stable ordering;
- :mod:`repro.analysis.rules` — DL001–DL006 (wall clocks, unseeded
  RNGs, unordered merge iteration, float accumulation, swallowed
  exceptions, mutable defaults);
- :mod:`repro.analysis.config` — ``[tool.darpalint]`` allowlists and
  excludes from ``pyproject.toml``;
- :mod:`repro.analysis.reporters` — deterministic text/JSON reports;
- :mod:`repro.analysis.cli` — ``python -m repro lint`` /
  ``python -m repro.analysis`` entry points (exit codes 0/1/2).
"""

from repro.analysis.config import (
    ConfigError,
    LintConfig,
    config_from_table,
    load_config,
    rule_allowed,
)
from repro.analysis.engine import (
    Finding,
    LintEngine,
    LintPathError,
    PARSE_ERROR_RULE,
    iter_python_files,
    lint_paths,
)
from repro.analysis.reporters import render, render_json, render_text
from repro.analysis.rules import (
    ALL_RULES,
    RULES_BY_ID,
    Rule,
    default_rules,
    rules_for_ids,
)

__all__ = [
    "ALL_RULES",
    "ConfigError",
    "Finding",
    "LintConfig",
    "LintEngine",
    "LintPathError",
    "PARSE_ERROR_RULE",
    "RULES_BY_ID",
    "Rule",
    "config_from_table",
    "default_rules",
    "iter_python_files",
    "lint_paths",
    "load_config",
    "render",
    "render_json",
    "render_text",
    "rule_allowed",
    "rules_for_ids",
]
