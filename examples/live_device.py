"""Runtime mechanics demo: calibration (Figure 4) and auto-bypass.

Uses a ground-truth oracle in place of the CV model so the runtime
behaviour — event debouncing, the anchor-view coordinate calibration,
decoration placement, and the auto-click bypass — is exact and easy to
follow.  Saves before/after screenshots (PPM) showing the paper's
Figure 4: an uncalibrated decoration lands a status-bar-height too low.

Run:  python examples/live_device.py [output_dir]
"""

import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.android import (
    AccessibilityService,
    AppSpec,
    Device,
    SemanticRole,
    SimulatedApp,
    UiStep,
    UiTimeline,
    View,
    render_screen,
)
from repro.android.apps import ScreenState
from repro.core import DarpaConfig, DarpaService, ScreenshotPolicy, ViewDecorator
from repro.geometry import Rect, ScoredBox
from repro.imaging.color import PALETTE


def save_ppm(path: Path, image: np.ndarray) -> None:
    data = (np.clip(image, 0, 1) * 255).astype(np.uint8)
    h, w = data.shape[:2]
    with open(path, "wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode())
        fh.write(data.tobytes())


def build_aui() -> ScreenState:
    """A promo dialog with a huge AGO and a tiny corner UPO."""
    root = View(bounds=Rect(0, 0, 360, 568), bg_color=PALETTE["white"])
    root.add_child(View(bounds=Rect(0, 0, 360, 568),
                        bg_color=PALETTE["black"], bg_alpha=0.55))
    card = root.add_child(View(bounds=Rect(40, 140, 280, 300),
                               bg_color=PALETTE["white"], corner_radius=14))
    ago = root.add_child(View(bounds=Rect(80, 340, 200, 56), clickable=True,
                              role=SemanticRole.AGO, bg_color=PALETTE["red"],
                              corner_radius=26, text="join free",
                              text_size=15, text_color=PALETTE["white"]))
    closed: List[int] = []
    upo = root.add_child(View(bounds=Rect(316, 120, 22, 22), clickable=True,
                              role=SemanticRole.UPO, bg_color=PALETTE["light_gray"],
                              icon="cross", icon_color=PALETTE["dark_gray"],
                              on_click=lambda: closed.append(1)))
    state = ScreenState(root=root, is_aui=True, name="promo",
                        label_boxes=[("AGO", ago.bounds), ("UPO", upo.bounds)])
    state.closed = closed  # type: ignore[attr-defined]
    del card
    return state


class Oracle:
    def __init__(self, device: Device, app: SimulatedApp):
        self.device = device
        self.app = app

    def detect_screen(self, screen_image, refine=True, conf_threshold=None):
        state = self.app.current
        if state is None or not state.is_aui:
            return []
        top = self.device.window_manager.top_app_window()
        return [ScoredBox(rect=rect.offset_by(top.offset), label=role,
                          score=0.98)
                for role, rect in state.label_boxes]


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "device_shots")
    out_dir.mkdir(exist_ok=True)

    # --- Figure 4: decoration with and without calibration ------------
    print("== Figure 4: why decoration needs calibration ==")
    for calibrate in (False, True):
        device = Device(seed=0)
        state = build_aui()
        device.window_manager.attach_app_window(state.root, "com.demo",
                                                fullscreen=False)
        svc = AccessibilityService(device)
        deco = ViewDecorator(svc, calibrate=calibrate)
        top = device.window_manager.top_app_window()
        detections = [ScoredBox(rect=rect.offset_by(top.offset), label=role,
                                score=0.98)
                      for role, rect in state.label_boxes]
        deco.decorate(detections)
        shot = render_screen(device.window_manager)
        name = "fig4b_calibrated.ppm" if calibrate else "fig4a_uncalibrated.ppm"
        save_ppm(out_dir / name, shot.pixels)
        upo_overlay = min(device.window_manager.overlays(),
                          key=lambda w: w.root.bounds.area)
        loc = device.window_manager.get_location_on_screen(upo_overlay.root)
        truth_y = 120 + 24  # window y + status bar
        print(f"  calibrate={calibrate}: UPO decoration top at screen "
              f"y={loc.y:.0f} (true option at y={truth_y}) -> {name}")

    # --- Auto-bypass ----------------------------------------------------
    print("\n== Auto-bypass: DARPA clicks the UPO for the user ==")
    device = Device(seed=1)
    state = build_aui()
    timeline = UiTimeline([UiStep(0, state)])
    app = SimulatedApp(device, AppSpec(package="com.demo", timeline=timeline))
    service = DarpaService(
        device, Oracle(device, app),
        config=DarpaConfig(ct_ms=200.0, auto_bypass=True),
        policy=ScreenshotPolicy(consent_given=True),
    )
    service.start()
    app.launch()
    device.clock.advance(1_000)
    print(f"  bypass clicks: {service.stats.bypass_clicks}")
    print(f"  the app's close handler ran: {bool(state.closed)}")
    service.stop()
    print(f"\nScreenshots written to {out_dir}/")


if __name__ == "__main__":
    main()
