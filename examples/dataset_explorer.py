"""Dataset explorer: corpus statistics and rendered screen previews.

Regenerates the measurement-study numbers (Tables I/II, the layout
statistics of Section III-A) and writes a handful of rendered AUI
screens — with their ground-truth boxes burned in — as PPM images you
can open in any viewer.

Run:  python examples/dataset_explorer.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.datagen import build_corpus, split_corpus, to_coco
from repro.datagen.corpus import render_state
from repro.datagen.splits import split_summary
from repro.geometry import Rect
from repro.imaging import Canvas
from repro.imaging.color import PALETTE


def save_ppm(path: Path, image: np.ndarray) -> None:
    """Write an (H, W, 3) float image as a binary PPM file."""
    data = (np.clip(image, 0, 1) * 255).astype(np.uint8)
    h, w = data.shape[:2]
    with open(path, "wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode())
        fh.write(data.tobytes())


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "dataset_previews")
    out_dir.mkdir(exist_ok=True)

    corpus = build_corpus(seed=0)
    print("== Table I: AUI type distribution ==")
    for aui_type, count in sorted(corpus.type_distribution().items(),
                                  key=lambda kv: -kv[1]):
        print(f"  {aui_type.value:<32} {count:>5}  "
              f"({count / len(corpus.samples):.1%})")

    ago, upo = corpus.box_totals()
    print(f"\n== Box totals ==  AGO: {ago}, UPO: {upo}")

    stats = corpus.layout_statistics()
    print("\n== Section III-A layout patterns ==")
    print(f"  central AGOs:   {stats['ago_central']:.1%} (paper 94.6%)")
    print(f"  corner UPOs:    {stats['upo_corner']:.1%} (paper 73.1%)")
    print(f"  first-party:    {stats['first_party']:.1%} (paper 35.1%)")

    splits = split_corpus(corpus)
    print("\n== Table II: splits ==")
    for name, (shots, n_ago, n_upo) in split_summary(splits).items():
        print(f"  {name:<6} shots={shots:>4} AGO={n_ago:>4} UPO={n_upo:>4}")

    coco = to_coco(splits["test"][:50])
    print(f"\nCOCO export sample: {len(coco['images'])} images, "
          f"{len(coco['annotations'])} annotations, "
          f"categories={[c['name'] for c in coco['categories']]}")

    print(f"\nRendering previews into {out_dir}/ ...")
    seen_types = set()
    for sample in corpus.samples:
        if sample.aui_type in seen_types:
            continue
        seen_types.add(sample.aui_type)
        img, labels = render_state(sample.screen, noise_seed=1)
        canvas = Canvas.from_array(img)
        for role, rect in labels:
            color = PALETTE["green"] if role == "UPO" else PALETTE["red"]
            canvas.stroke_rect(rect.inflated(3), color, thickness=2)
        slug = sample.aui_type.name.lower()
        save_ppm(out_dir / f"aui_{slug}.ppm", canvas.pixels)
        print(f"  aui_{slug}.ppm  "
              f"({len(labels)} labeled options, app {sample.app.package})")
    print("Done — green boxes mark UPOs, red boxes mark AGOs.")


if __name__ == "__main__":
    main()
