"""Quickstart: train a small AUI detector and run DARPA end to end.

This is the 2-minute tour: build the synthetic corpus, train a reduced
TinyYOLO on a slice of it, deploy the ported model into a simulated
Android device, replay an app session that pops an AUI interstitial,
and watch DARPA decorate the user-preferred option.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.android import AppSpec, Device, SimulatedApp, UiStep, UiTimeline
from repro.core import DarpaConfig, DarpaService, ScreenshotPolicy
from repro.datagen import build_corpus, build_non_aui_screen, split_corpus
from repro.datagen.templates import build_aui_screen
from repro.vision import (
    PortConfig,
    TinyYolo,
    YoloConfig,
    YoloTrainer,
    build_detection_dataset,
    port_model,
)


def main() -> None:
    rng = np.random.default_rng(7)

    print("1) Building the synthetic AUI corpus (Tables I/II)...")
    corpus = build_corpus(seed=0)
    splits = split_corpus(corpus)
    print(f"   {len(corpus.samples)} AUI screenshots across "
          f"{len(corpus.apps)} apps; split "
          f"{[len(v) for v in splits.values()]}")

    print("2) Training a small detector (120 images, 25 epochs)...")
    train = build_detection_dataset(splits["train"][:120])
    model = TinyYolo(YoloConfig(), seed=0)
    history = YoloTrainer(model, lr=2e-3, batch_size=16).fit(train, epochs=25)
    print(f"   final training loss: {history.final_loss:.3f}")

    print("3) Porting the model for mobile deployment (ncnn-style)...")
    ported = port_model(model, PortConfig(quantization="fp16"))
    print(f"   {ported.layer_count()} layers, "
          f"{ported.model_size_bytes() / 1024:.0f} KiB of weights, "
          f"~{ported.inference_time_ms():.0f} ms/frame simulated")

    print("4) Replaying an app session under DARPA...")
    device = Device(seed=1)
    aui_sample = splits["test"][0]
    aui_screen = build_aui_screen(aui_sample.spec, package="com.demo.shop")
    timeline = UiTimeline([
        UiStep(0, build_non_aui_screen(rng, package="com.demo.shop")),
        UiStep(2_000, aui_screen, minor_updates=2, minor_spacing_ms=60),
        UiStep(8_000, build_non_aui_screen(rng, package="com.demo.shop")),
    ])
    app = SimulatedApp(device, AppSpec(package="com.demo.shop",
                                       timeline=timeline))
    policy = ScreenshotPolicy()
    print("   privacy policy shown to the user:")
    print("   " + policy.give_consent()[:72] + "...")
    service = DarpaService(device, ported,
                           config=DarpaConfig(ct_ms=200.0),
                           policy=policy)
    service.start()
    app.launch()
    device.clock.advance(10_000)

    stats = service.stats
    print(f"   events seen: {stats.events_seen}, screens analyzed: "
          f"{stats.screens_analyzed}, AUIs flagged: {stats.auis_flagged}, "
          f"decorations drawn: {stats.decorations_drawn}")
    for record in stats.records:
        if record.flagged_aui:
            for det in record.detections:
                r = det.rect
                print(f"   -> {det.label} @ ({r.x:.0f},{r.y:.0f}) "
                      f"{r.w:.0f}x{r.h:.0f} (score {det.score:.2f})")
    print(f"   screenshots captured: {policy.captures}, "
          f"rinsed: {policy.rinses} (outstanding: {policy.outstanding})")
    service.stop()
    print("Done.")


if __name__ == "__main__":
    main()
