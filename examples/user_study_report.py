"""User-study report: Section III-B findings from simulated responses.

Runs the survey pipeline — instrument validation, quality gating,
analysis — over the calibrated simulated population and prints the
findings next to the paper's published aggregates.

Run:  python examples/user_study_report.py
"""

from repro.userstudy import SurveyInstrument, analyze_responses, simulate_responses


def main() -> None:
    instrument = SurveyInstrument()
    for response in simulate_responses(seed=0):
        instrument.submit(response)
    print(f"Valid responses: {instrument.n_valid} "
          f"(rejected by the 90s quality gate: {instrument.rejected})")

    f = analyze_responses(instrument.responses)

    rows = [
        ("Examples feel misleading (Q1)", f"{f.frac_misleading:.1%}", "94.5%"),
        ("Often misclick (Q2)", f"{f.frac_often_misclick:.1%}", "77.0%"),
        ("AGO accessibility, mean (Q3-5)", f"{f.ago_mean_rating:.2f}", "7.49"),
        ("UPO accessibility, mean (Q3-5)", f"{f.upo_mean_rating:.2f}", "4.38"),
        ("Accessibility gap", f"{f.accessibility_gap:.2f}", "3.11"),
        ("Bothered by misclicks (Q7)", f"{f.frac_bothered:.1%}", "83.0%"),
        ("More AUIs in China (Q8)", f"{f.frac_more_auis_in_china:.1%}", "76.8%"),
        ("UPO at least equally important (Q9)",
         f"{f.frac_upo_at_least_equal:.1%}", "72.7%"),
        ("Demand for a solution (Q10)", f"{f.demand_mean_rating:.2f}", "7.64"),
        ("Prefer highlighting (Q12)", f"{f.frac_prefer_highlight:.1%}", ">50%"),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"\n{'aggregate':<{width}}  measured   paper")
    print("-" * (width + 20))
    for label, measured, paper in rows:
        print(f"{label:<{width}}  {measured:>8}   {paper}")

    print("\nFindings:")
    print(f"  1. Users strongly agree AUIs are misleading:      "
          f"{f.finding1_auis_misleading}")
    print(f"  2. AUIs hurt usability (esp. apps in China):      "
          f"{f.finding2_negative_usability_impact}")
    print(f"  3. Users expect practical countermeasures:        "
          f"{f.finding3_users_expect_solutions}")
    print(f"\nDemographic caveat (as in the paper): "
          f"{f.frac_bachelor:.1%} hold a bachelor's degree and "
          f"{f.frac_age_18_35:.1%} are 18-35, so real-world demand is "
          f"likely higher still.")


if __name__ == "__main__":
    main()
