"""Record/replay overhead measurement (the paper's Table VII method).

The paper measures overhead by recording a manual app session (SoloPi)
and replaying it twice — without and with DARPA — so both measurements
see the identical workload.  This example does exactly that on the
simulated substrate:

1. drive an app session with Monkey while recording the event/tap trace;
2. replay the trace on a fresh device without DARPA (baseline);
3. replay it again with DARPA attached;
4. print the SoloPi-style metric deltas.

Run:  python examples/record_replay_overhead.py
"""

import numpy as np

from repro.android import AppSpec, Device, Monkey, SimulatedApp, UiStep, UiTimeline
from repro.android.replay import SessionRecorder, TraceEntry, replay_trace
from repro.bench.experiments import OracleDetector
from repro.core import DarpaConfig, DarpaService, ScreenshotPolicy
from repro.datagen import build_corpus, build_non_aui_screen, build_aui_screen, split_corpus

DURATION_MS = 30_000.0


def make_app(device: Device) -> SimulatedApp:
    corpus = build_corpus(seed=0)
    splits = split_corpus(corpus)
    rng = np.random.default_rng(11)
    sample = next(s for s in splits["test"] if s.spec.n_upo > 0)
    timeline = UiTimeline([
        UiStep(0, build_non_aui_screen(rng, package="com.rr.demo"),
               minor_updates=3, minor_spacing_ms=80),
        UiStep(8_000, build_aui_screen(sample.spec, package="com.rr.demo"),
               minor_updates=2, minor_spacing_ms=60),
        UiStep(20_000, build_non_aui_screen(rng, package="com.rr.demo"),
               minor_updates=2, minor_spacing_ms=90),
    ])
    return SimulatedApp(device, AppSpec(package="com.rr.demo",
                                        timeline=timeline))


def main() -> None:
    # --- 1. Record a live session -------------------------------------
    print("Recording a live Monkey-driven session...")
    source = Device(seed=0)
    app = make_app(source)
    recorder = SessionRecorder(source)
    recorder.start()
    app.launch()
    monkey = Monkey(source, seed=4, taps_per_second=1.0)
    monkey.schedule_run(DURATION_MS)
    source.clock.advance(DURATION_MS)
    for tap in monkey.taps:  # drivers log taps alongside dispatch
        recorder._entries.append(TraceEntry(at_ms=tap.at_ms, kind="tap",
                                            x=tap.x, y=tap.y))
    trace = recorder.trace()
    print(f"  trace: {len(trace.events())} events, {len(trace.taps())} taps, "
          f"{trace.duration_ms / 1000:.1f}s")

    # --- 2/3. Replay twice --------------------------------------------
    reports = {}
    for label, with_darpa in (("baseline", False), ("with DARPA", True)):
        device = Device(seed=1)
        replay_app = make_app(device)
        if with_darpa:
            service = DarpaService(
                device, OracleDetector(device, replay_app),
                config=DarpaConfig(ct_ms=200.0, stub_screenshots=True),
                policy=ScreenshotPolicy(consent_given=True),
            )
            service.start()
        replay_app.launch()
        replay_trace(trace, device, include_taps=True)
        device.clock.advance(DURATION_MS)
        reports[label] = device.perf.report(DURATION_MS)
        if with_darpa:
            print(f"  replay with DARPA: {service.stats.screens_analyzed} "
                  f"screens analyzed, {service.stats.auis_flagged} AUIs flagged")

    # --- 4. Compare -------------------------------------------------------
    base, darpa = reports["baseline"], reports["with DARPA"]
    print("\nmetric          baseline   with DARPA   delta")
    print("-" * 48)
    rows = (("CPU %", base.cpu_pct, darpa.cpu_pct),
            ("memory MB", base.memory_mb, darpa.memory_mb),
            ("frame rate", base.fps, darpa.fps),
            ("power mW", base.power_mw, darpa.power_mw))
    for name, b, d in rows:
        print(f"{name:<14} {b:>9.2f} {d:>12.2f} {d - b:>+8.2f}")
    print("\nIdentical replayed workload; only DARPA differs — the paper's "
          "Table VII methodology.")


if __name__ == "__main__":
    main()
