"""Miniature Table V: train TinyYOLO and an RCNN baseline, compare.

A scaled-down version of the paper's model comparison — fewer training
images and epochs so it runs in a couple of minutes — showing the
one-stage vs two-stage gap at the strict IoU=0.9 protocol and the
latency gap that motivated the paper's model choice.

Run:  python examples/train_and_compare.py
"""

import time

from repro.datagen import build_corpus, split_corpus
from repro.vision import (
    DetectionEvaluator,
    TinyYolo,
    YoloConfig,
    YoloTrainer,
    build_detection_dataset,
)
from repro.vision.rcnn import RcnnConfig, RcnnDetector


def evaluate(detector, dataset, is_yolo):
    evaluator = DetectionEvaluator(iou_threshold=0.9)
    start = time.perf_counter()
    for i in range(len(dataset)):
        if is_yolo:
            dets = detector.detect_screen(dataset.screen_images[i],
                                          conf_threshold=0.4)
        else:
            dets = detector.detect_screen(dataset.screen_images[i])
        evaluator.add_image(dets, dataset.screen_labels[i])
    latency = (time.perf_counter() - start) * 1000 / len(dataset)
    return evaluator.result(), latency


def main() -> None:
    print("Building corpus and splits...")
    corpus = build_corpus(seed=0)
    splits = split_corpus(corpus)
    train = build_detection_dataset(splits["train"][:160],
                                    keep_screen_images=True)
    test = build_detection_dataset(splits["test"][:60],
                                   keep_screen_images=True)
    print(f"train={len(train)} test={len(test)}")

    print("\nTraining TinyYOLO (30 epochs)...")
    yolo = TinyYolo(YoloConfig(), seed=0)
    t0 = time.time()
    YoloTrainer(yolo, lr=2e-3, batch_size=16).fit(train, epochs=30)
    print(f"  trained in {time.time() - t0:.0f}s")

    print("Training Mask RCNN+ResNet50 head...")
    rcnn = RcnnDetector("ResNet50", mask_refinement=True,
                        config=RcnnConfig(epochs=40))
    t0 = time.time()
    rcnn.fit(train)
    print(f"  trained in {time.time() - t0:.0f}s")

    print("\n== Results (IoU 0.9) ==")
    header = f"{'model':<24} {'P':>6} {'R':>6} {'F1':>6} {'ms/frame':>9}"
    print(header)
    print("-" * len(header))
    for name, det, is_yolo in (("TinyYOLO (ours)", yolo, True),
                               ("Mask RCNN+ResNet50", rcnn, False)):
        result, latency = evaluate(det, test, is_yolo)
        p, r, f = result.row("All")
        print(f"{name:<24} {p:>6.3f} {r:>6.3f} {f:>6.3f} {latency:>9.0f}")
    print("\nNote: at this miniature training budget the sample-efficient "
          "classical RCNN can out-score the under-trained CNN; at the full "
          "budget (pytest benchmarks/ bench_table5) the one-stage detector "
          "wins on accuracy AND speed, as in the paper's Table V.  The "
          "latency gap is visible at any scale.")


if __name__ == "__main__":
    main()
