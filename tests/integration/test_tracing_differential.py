"""Differential tests: tracing is bit-inert, and span-derived timings
reproduce the legacy measurement path exactly.

Two claims, each over seeded sessions:

1. **Span fidelity** — for every traced session, the
   :class:`~repro.android.device.PerfReport` rebuilt purely from the
   exported spans is bit-identical to the one the device meter measured
   (the Table VII/VIII path), and the span-derived workload counters
   match the legacy stats.
2. **Bit-inertness** — running the identical seeded session with
   tracing on vs off leaves every measured output unchanged:
   PerfReport, screen verdicts, analysis records, and the decoration
   overlay geometry on screen.
"""

from typing import List, Tuple

import pytest

from repro.android.device import PerfOp
from repro.bench.experiments import (
    build_runtime_fleet,
    run_darpa_over_fleet,
    run_darpa_session,
)
from repro.core import ScreenshotPolicy
from repro.core.observability import (
    Tracer,
    ops_from_spans,
    report_from_spans,
    session_root,
    stage_cpu_ms,
)
from repro.core.pipeline import DarpaService

from tests.core.test_pipeline import make_session

N_SESSIONS = 50
DURATION_MS = 60_000.0


@pytest.fixture(scope="module")
def fleet():
    return build_runtime_fleet(n_apps=N_SESSIONS, seed=0)


class TestSpanFidelity:
    def test_span_reports_bit_identical_over_50_sessions(self, fleet):
        results = run_darpa_over_fleet(fleet, "oracle", ct_ms=200.0,
                                       mode="full", trace=True)
        assert len(results) == N_SESSIONS
        for r in results:
            rebuilt = report_from_spans(r.spans, duration_ms=DURATION_MS)
            assert rebuilt == r.perf, \
                f"span-derived report diverged for {r.package}"
            # Default duration comes from the root span and agrees too.
            assert report_from_spans(r.spans) == r.perf
            root = session_root(r.spans)
            assert root["end_ms"] - root["start_ms"] == DURATION_MS

    def test_span_workload_counters_match_legacy(self, fleet):
        results = run_darpa_over_fleet(fleet, "oracle", ct_ms=200.0,
                                       mode="full", trace=True)
        for r in results:
            ops = ops_from_spans(r.spans)
            assert ops.get(PerfOp.EVENT_DELIVERED.value, 0) == r.events_total
            analyzed = sum(
                1 for s in r.spans
                if s["name"] == "analyze"
                and s["attributes"].get("outcome") == "ok")
            assert analyzed == r.screens_analyzed
            # Stage CPU decomposes the total: summing every stage equals
            # the report's arithmetic input by construction.
            assert set(stage_cpu_ms(r.spans)) == {s["name"] for s in r.spans}

    @pytest.mark.parametrize("mode", ["baseline", "monitor", "detect"])
    def test_other_modes_also_rebuild_exactly(self, fleet, mode):
        for i, session in enumerate(fleet[:5]):
            r = run_darpa_session(session, "oracle", ct_ms=200.0, mode=mode,
                                  monkey_seed=1000 + i, trace=True)
            assert report_from_spans(r.spans, duration_ms=DURATION_MS) == r.perf


class TestTracingBitInert:
    def test_traced_and_untraced_sessions_identical(self, fleet):
        for i, session in enumerate(fleet[:10]):
            on = run_darpa_session(session, "oracle", ct_ms=200.0,
                                   mode="full", monkey_seed=1000 + i,
                                   trace=True)
            off = run_darpa_session(session, "oracle", ct_ms=200.0,
                                    mode="full", monkey_seed=1000 + i,
                                    trace=False)
            assert on.perf == off.perf
            assert on.screen_verdicts == off.screen_verdicts
            assert on.auis_flagged == off.auis_flagged
            assert on.resilience == off.resilience
            assert off.spans is None and off.metrics == {}

    def _overlay_geometry(self, trace: bool) -> List[Tuple]:
        device, app, detector, service = make_session()
        if trace:
            service = DarpaService(
                device, detector, config=service.config,
                policy=ScreenshotPolicy(consent_given=True),
                tracer=Tracer(device.clock))
        service.start()
        app.launch()
        device.clock.advance(2000)  # the AUI screen is decorated now
        geometry = []
        for window in device.window_manager.windows:
            for view in window.root.iter_tree():
                rect = view.bounds
                geometry.append((window.package, window.kind.name,
                                 window.offset.x, window.offset.y,
                                 rect.x, rect.y, rect.w, rect.h))
        return geometry

    def test_overlay_geometry_bit_identical(self):
        assert self._overlay_geometry(trace=False) == \
            self._overlay_geometry(trace=True)

    def test_detections_bit_identical(self):
        records = []
        for trace in (False, True):
            device, app, detector, service = make_session()
            if trace:
                service = DarpaService(
                    device, detector, config=service.config,
                    policy=ScreenshotPolicy(consent_given=True),
                    tracer=Tracer(device.clock))
            service.start()
            app.launch()
            device.clock.advance(6000)
            records.append([
                (r.timestamp_ms, r.package, r.degraded,
                 [(d.label, d.score, d.rect.x, d.rect.y, d.rect.w, d.rect.h)
                  for d in r.detections])
                for r in service.stats.records])
        assert records[0] == records[1]
