"""Full-system integration: train -> port -> deploy -> protect.

The miniature version of the paper's whole story in one test module: a
detector trained on the synthetic corpus, ported for mobile, deployed
in a DarpaService on a simulated device, run against scripted apps that
pop AUI interstitials, validating detection, decoration placement, and
the privacy lifecycle together.
"""

import numpy as np
import pytest

from repro.android import AppSpec, Device, SimulatedApp, UiStep, UiTimeline
from repro.bench.experiments import get_corpus_and_splits
from repro.core import DarpaConfig, DarpaService, ScreenshotPolicy
from repro.datagen import build_aui_screen, build_non_aui_screen
from repro.geometry import Rect, iou
from repro.vision import (
    PortConfig,
    TinyYolo,
    YoloConfig,
    YoloTrainer,
    build_detection_dataset,
    port_model,
)


@pytest.fixture(scope="module")
def deployed_model():
    """A quickly-trained, ported detector (quality: demo-grade)."""
    _, splits = get_corpus_and_splits(seed=0)
    train = build_detection_dataset(splits["train"][:140])
    model = TinyYolo(YoloConfig(), seed=0)
    YoloTrainer(model, lr=2e-3, batch_size=16, seed=0).fit(train, epochs=25)
    return port_model(model, PortConfig(quantization="fp16"))


@pytest.fixture()
def protected_session(deployed_model):
    _, splits = get_corpus_and_splits(seed=0)
    rng = np.random.default_rng(5)
    # Pick an easy AUI: distinct AGO, one normal UPO.
    sample = next(s for s in splits["test"]
                  if s.spec.has_ago and s.spec.n_upo == 1
                  and not s.spec.hard_upo)
    aui = build_aui_screen(sample.spec, package="com.it.demo")
    timeline = UiTimeline([
        UiStep(0, build_non_aui_screen(rng, package="com.it.demo")),
        UiStep(1_500, aui, minor_updates=2, minor_spacing_ms=60),
        UiStep(7_000, build_non_aui_screen(rng, package="com.it.demo")),
    ])
    device = Device(seed=2)
    app = SimulatedApp(device, AppSpec(package="com.it.demo",
                                       timeline=timeline))
    policy = ScreenshotPolicy(consent_given=True)
    service = DarpaService(device, deployed_model,
                           config=DarpaConfig(ct_ms=200.0), policy=policy)
    service.start()
    app.launch()
    device.clock.advance(9_000)
    return device, app, service, aui


class TestEndToEnd:
    def test_all_screens_analyzed(self, protected_session):
        _, _, service, _ = protected_session
        assert service.stats.screens_analyzed == 3

    def test_aui_flagged_by_real_model(self, protected_session):
        _, _, service, _ = protected_session
        assert service.stats.auis_flagged >= 1

    def test_upo_decoration_near_truth(self, protected_session):
        device, _, service, aui = protected_session
        flagged = [r for r in service.stats.records if r.flagged_aui]
        assert flagged
        truth = aui.boxes_of("UPO")[0].translated(0, 24)  # + status bar
        upo_dets = [d for r in flagged for d in r.detections
                    if d.label == "UPO"]
        assert any(iou(d.rect, truth) > 0.5 for d in upo_dets), (
            f"no UPO detection near {truth}: "
            f"{[(d.label, tuple(d.rect)) for r in flagged for d in r.detections]}"
        )

    def test_privacy_lifecycle_clean(self, protected_session):
        _, _, service, _ = protected_session
        assert service.policy.outstanding == 0
        assert service.policy.captures == service.stats.screens_analyzed

    def test_decorations_cleared_after_aui_leaves(self, protected_session):
        device, _, service, _ = protected_session
        # The final screen is non-AUI: nothing may remain decorated.
        assert device.window_manager.overlays() == []

    def test_overhead_accounted(self, protected_session):
        device, _, service, _ = protected_session
        report = device.perf.report(9_000)
        assert report.cpu_pct > 55.22
        assert report.counts["inference"] == service.stats.screens_analyzed
