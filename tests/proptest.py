"""Property-based harness for the DARPA serving path.

Hand-rolled (no new dependencies) and fully seeded: each case draws a
random view-tree pool, UI timeline, fault plan, and service config from
``numpy``'s ``default_rng``, replays the session through a traced
:class:`~repro.core.pipeline.DarpaService`, and checks structural
invariants of the observability layer that must hold for EVERY input:

- every span is closed, no charge was orphaned, none were dropped;
- children nest inside their parents in both identity and time;
- stage histograms agree with stage counters and with the per-span
  attributed CPU;
- the span-derived :class:`~repro.android.device.PerfReport` is
  bit-identical to the device meter's;
- a cache hit never charges an inference (or runs the fallback);
- an open breaker never runs the CNN — fallback inference only;
- the ``darpa.pipeline.*`` counters match what the spans recorded;
- telemetry sketch merges are associative, commutative and idempotent
  on empty sketches, fleet snapshots are invariant to shard order, and
  the SLO engine emits the same burn-rate alert sequence whether the
  per-session series was derived in one pass or shard by shard;
- darpalint (``repro.analysis``) flags every generated rule-violating
  snippet with exactly the seeded rule, and never flags generated
  clean snippets, across the same seed matrix.

Two case indices are pinned rather than random so the matrix is
non-vacuous under ANY seed base: case 0 is a chaos run (screenshot
failures, detector crashes, latency spikes past the deadline, a
hair-trigger breaker) and case 1 is a cache-friendly zero-fault run
(two screens reused across the whole timeline).

Run a different matrix with ``DARPA_PROPTEST_SEED_BASE=<n> pytest
tests/proptest.py`` — CI exercises a second base to widen coverage.
"""

import json
import os
from dataclasses import dataclass
from types import SimpleNamespace
from typing import Dict, List, Set

import numpy as np
import pytest

from repro.analysis import LintConfig, LintEngine
from repro.analysis.flow import FlowSpecs
from repro.analysis.flow import analyze_paths as flow_analyze
from repro.analysis.flow import render_json as flow_render_json
from repro.android import (
    AppSpec,
    SemanticRole,
    SimulatedApp,
    UiStep,
    UiTimeline,
    View,
)
from repro.android.apps import ScreenState
from repro.android.device import PerfOp
from repro.android.faults import FaultPlan, FaultyDetector, FaultyDevice
from repro.core import DarpaConfig, DarpaService, ScreenshotPolicy
from repro.core.observability import (
    Tracer,
    ops_from_spans,
    report_from_spans,
    session_root,
    stage_cpu_ms,
)
from repro.core.telemetry import (
    BurnPolicy,
    FleetTelemetry,
    QuantileSketch,
    SessionTelemetry,
    SloEngine,
    SloSpec,
)
from repro.geometry import Rect
from repro.imaging.color import PALETTE

from tests.core.test_pipeline import OracleDetector

SEED_BASE = int(os.environ.get("DARPA_PROPTEST_SEED_BASE", "0"))
N_CASES = 8
CASES = list(range(N_CASES))

WINDOW_W, WINDOW_H = 360, 568

#: Case 0: chaos.  Spikes (100 + 400 ms) blow the 150 ms deadline, the
#: two-strike breaker opens early, and captures fail 30% of the time.
CHAOS_PLAN = dict(
    screenshot_failure_rate=0.3,
    overlay_rejection_rate=0.25,
    detector_failure_rate=0.35,
    detector_spike_rate=0.35,
    detector_spike_ms=400.0,
    detector_base_ms=100.0,
)
CHAOS_CONFIG = dict(
    ct_ms=100.0,
    screen_cache_size=0,
    retry_max_attempts=2,
    breaker_failure_threshold=2,
    breaker_cooldown_ms=1500.0,
    deadline_ms=150.0,
    fallback_to_heuristic=True,
)

#: Case 1: cache-friendly.  No faults, two screens reused all session.
CACHE_CONFIG = dict(ct_ms=100.0, screen_cache_size=64,
                    fallback_to_heuristic=True)


# ---------------------------------------------------------------------------
# Random session generation
# ---------------------------------------------------------------------------

def _random_rect(rng: np.random.Generator) -> Rect:
    x = int(rng.integers(0, WINDOW_W - 40))
    y = int(rng.integers(0, WINDOW_H - 40))
    w = int(rng.integers(20, min(WINDOW_W - x, 220)))
    h = int(rng.integers(20, min(WINDOW_H - y, 160)))
    return Rect(x, y, w, h)


def _random_color(rng: np.random.Generator):
    names = sorted(PALETTE)
    return PALETTE[names[int(rng.integers(0, len(names)))]]


def _random_screen(rng: np.random.Generator, index: int,
                   force_aui: bool = False) -> ScreenState:
    root = View(bounds=Rect(0, 0, WINDOW_W, WINDOW_H),
                bg_color=_random_color(rng))
    for _ in range(int(rng.integers(1, 5))):
        root.add_child(View(bounds=_random_rect(rng),
                            bg_color=_random_color(rng),
                            clickable=bool(rng.random() < 0.3)))
    if force_aui or rng.random() < 0.45:
        ago = root.add_child(View(
            bounds=Rect(int(rng.integers(40, 140)),
                        int(rng.integers(180, 340)),
                        int(rng.integers(120, 220)),
                        int(rng.integers(40, 80))),
            clickable=True, role=SemanticRole.AGO, bg_color=PALETTE["red"]))
        labels = [("AGO", ago.bounds)]
        if rng.random() < 0.7:
            upo = root.add_child(View(bounds=Rect(320, 16, 24, 24),
                                      clickable=True, role=SemanticRole.UPO))
            labels.append(("UPO", upo.bounds))
        return ScreenState(root=root, is_aui=True, name=f"aui-{index}",
                           label_boxes=labels)
    return ScreenState(root=root, name=f"plain-{index}")


def _random_timeline(rng: np.random.Generator,
                     pool: List[ScreenState]) -> UiTimeline:
    steps, t = [], 0.0
    for _ in range(int(rng.integers(6, 13))):
        screen = pool[int(rng.integers(0, len(pool)))]
        steps.append(UiStep(t, screen,
                            minor_updates=int(rng.integers(0, 4)),
                            minor_spacing_ms=float(rng.integers(30, 90))))
        t += float(rng.integers(400, 1500))
    return UiTimeline(steps)


def _random_plan(rng: np.random.Generator, seed: int) -> FaultPlan:
    def rate(p_zero: float, hi: float) -> float:
        return 0.0 if rng.random() < p_zero else float(rng.uniform(0.05, hi))

    return FaultPlan(
        seed=seed * 31 + 7,
        screenshot_failure_rate=rate(0.5, 0.3),
        event_drop_rate=rate(0.7, 0.15),
        event_duplicate_rate=rate(0.7, 0.2),
        event_storm_rate=rate(0.8, 0.1),
        overlay_rejection_rate=rate(0.6, 0.3),
        detector_failure_rate=rate(0.5, 0.35),
        detector_spike_rate=rate(0.6, 0.4),
        detector_spike_ms=float(rng.integers(200, 600)),
        detector_base_ms=float(rng.integers(40, 160)),
    )


def _random_config(rng: np.random.Generator) -> Dict:
    return dict(
        ct_ms=float(rng.choice([50.0, 100.0, 200.0, 300.0])),
        screen_cache_size=int(rng.choice([0, 8, 64])),
        retry_max_attempts=int(rng.integers(1, 4)),
        breaker_failure_threshold=int(rng.integers(1, 4)),
        breaker_cooldown_ms=float(rng.choice([1000.0, 3000.0, 6000.0])),
        deadline_ms=float(rng.choice([0.0, 120.0, 450.0])),
        fallback_to_heuristic=bool(rng.random() < 0.8),
        auto_bypass=bool(rng.random() < 0.2),
    )


# ---------------------------------------------------------------------------
# Case runner (one replay per case, cached for all invariant tests)
# ---------------------------------------------------------------------------

@dataclass
class Case:
    seed: int
    config: DarpaConfig
    plan: FaultPlan
    device: FaultyDevice
    service: DarpaService
    tracer: Tracer
    spans: List[Dict]
    duration_ms: float


_CASE_CACHE: Dict[int, Case] = {}


def _run_case(index: int) -> Case:
    seed = SEED_BASE + index
    rng = np.random.default_rng(seed)
    pool = [_random_screen(rng, 0, force_aui=True)]
    pool += [_random_screen(rng, i) for i in range(1, int(rng.integers(2, 6)))]
    if index == 0:
        plan = FaultPlan(seed=seed * 31 + 7, **CHAOS_PLAN)
        config = DarpaConfig(**CHAOS_CONFIG)
    elif index == 1:
        pool = pool[:2]
        plan = FaultPlan(seed=seed * 31 + 7)
        config = DarpaConfig(**CACHE_CONFIG)
    else:
        plan = _random_plan(rng, seed)
        config = DarpaConfig(**_random_config(rng))
    timeline = _random_timeline(rng, pool)

    device = FaultyDevice(plan=plan, seed=seed)
    tracer = Tracer(device.clock, trace_id=f"proptest-{seed}")
    tracer.observe_perf(device.perf)
    app = SimulatedApp(device, AppSpec(package=f"com.prop.case{index}",
                                       timeline=timeline))
    detector = OracleDetector(device, app)
    if not plan.is_null:
        detector = FaultyDetector(detector, device.faults)
    service = DarpaService(device, detector, config=config,
                           policy=ScreenshotPolicy(consent_given=True),
                           tracer=tracer)
    service.start()
    root = tracer.start_span("session", package=app.spec.package, case=index)
    app.launch()
    duration_ms = timeline.duration_ms + 3000.0
    device.clock.advance(duration_ms)
    app.finish()
    tracer.end_span(root, components=sorted(tracer.components),
                    duration_ms=duration_ms)
    return Case(seed=seed, config=config, plan=plan, device=device,
                service=service, tracer=tracer, spans=tracer.export(),
                duration_ms=duration_ms)


@pytest.fixture(params=CASES, ids=lambda i: f"case{i}-seed{SEED_BASE + i}")
def case(request) -> Case:
    index = request.param
    if index not in _CASE_CACHE:
        _CASE_CACHE[index] = _run_case(index)
    return _CASE_CACHE[index]


def _subtree(spans: List[Dict], root_id: int) -> List[Dict]:
    """All spans in the subtree rooted at ``root_id`` (root excluded)."""
    children: Dict[int, List[Dict]] = {}
    for span in spans:
        if span["parent_id"] is not None:
            children.setdefault(span["parent_id"], []).append(span)
    out, stack = [], [root_id]
    while stack:
        for child in children.get(stack.pop(), []):
            out.append(child)
            stack.append(child["span_id"])
    return out


def _analyze_spans(spans: List[Dict]) -> List[Dict]:
    return [s for s in spans if s["name"] == "analyze"]


# ---------------------------------------------------------------------------
# Structural invariants
# ---------------------------------------------------------------------------

class TestSpanStructure:
    def test_every_span_closed_nothing_orphaned(self, case):
        assert case.tracer.open_spans == []
        assert case.tracer.orphan_ops == {}
        assert case.tracer.dropped == 0
        for span in case.spans:
            assert span["end_ms"] is not None, f"{span['name']} never closed"
            assert span["end_ms"] >= span["start_ms"]

    def test_parents_contain_children(self, case):
        by_id = {s["span_id"]: s for s in case.spans}
        for span in case.spans:
            parent_id = span["parent_id"]
            if parent_id is None:
                continue
            parent = by_id[parent_id]
            assert parent["start_ms"] <= span["start_ms"]
            assert span["end_ms"] <= parent["end_ms"]

    def test_single_session_root(self, case):
        root = session_root(case.spans)
        assert root["attributes"]["case"] in CASES
        assert root["end_ms"] - root["start_ms"] == case.duration_ms

    def test_span_names_are_known_stages(self, case):
        known = {"session", "event", "debounce", "analyze", "screenshot",
                 "cache_probe", "inference", "fallback", "decorate",
                 "breaker_transition"}
        assert {s["name"] for s in case.spans} <= known


class TestMetricCoherence:
    def test_histogram_counts_match_stage_counters(self, case):
        snap = case.tracer.registry.snapshot()
        for name, hist in snap["histograms"].items():
            if not name.startswith("darpa.stage."):
                continue
            stage = name[len("darpa.stage."):-len(".cpu_ms")]
            assert hist["count"] == \
                snap["counters"][f"darpa.stage.{stage}.count"]

    def test_histogram_sums_match_span_cpu(self, case):
        snap = case.tracer.registry.snapshot()
        per_stage = stage_cpu_ms(case.spans,
                                 profile=case.device.perf.profile)
        for stage, cpu in per_stage.items():
            assert snap["histograms"][f"darpa.stage.{stage}.cpu_ms"]["sum"] \
                == cpu

    def test_pipeline_counters_match_spans(self, case):
        spans, stats = case.spans, case.service.stats
        analyze = _analyze_spans(spans)
        outcome = lambda s: s["attributes"].get("outcome")  # noqa: E731
        assert stats.screens_analyzed == \
            sum(1 for s in analyze if outcome(s) == "ok")
        assert stats.screenshot_failures == \
            sum(1 for s in analyze if outcome(s) == "screenshot_failed")
        assert stats.deadline_skips == \
            sum(1 for s in analyze if outcome(s) == "deadline_abandoned")
        assert stats.cache_hits == sum(
            1 for s in spans if s["name"] == "cache_probe"
            and s["attributes"]["hit"])
        assert stats.fallback_detections == \
            sum(1 for s in spans if s["name"] == "fallback")
        assert stats.detector_failures == sum(
            1 for s in spans if s["name"] == "inference"
            and s["attributes"].get("crashed"))

    def test_inference_charges_match_surviving_inferences(self, case):
        ops = ops_from_spans(case.spans)
        survived = sum(1 for s in case.spans if s["name"] == "inference"
                       and not s["attributes"].get("crashed"))
        assert ops.get(PerfOp.INFERENCE.value, 0) == survived
        assert ops.get(PerfOp.FALLBACK_INFERENCE.value, 0) == \
            case.service.stats.fallback_detections


class TestPerfFidelity:
    def test_span_report_bit_identical_to_meter(self, case):
        rebuilt = report_from_spans(case.spans,
                                    duration_ms=case.duration_ms)
        assert rebuilt == case.device.perf.report(case.duration_ms)

    def test_op_totals_match_meter_counts(self, case):
        assert ops_from_spans(case.spans) == {
            op: n for op, n in case.device.perf.counts().items() if n}


class TestPipelineExclusions:
    def test_cache_hit_charges_no_inference(self, case):
        for span in _analyze_spans(case.spans):
            if not span["attributes"].get("cache_hit"):
                continue
            subtree = _subtree(case.spans, span["span_id"])
            names = {s["name"] for s in subtree}
            assert "inference" not in names and "fallback" not in names
            charged: Set[str] = set(span["ops"])
            for child in subtree:
                charged |= set(child["ops"])
            assert PerfOp.INFERENCE.value not in charged
            assert PerfOp.FALLBACK_INFERENCE.value not in charged

    def test_breaker_open_means_fallback_only(self, case):
        for span in _analyze_spans(case.spans):
            if not span["attributes"].get("breaker_open"):
                continue
            subtree = _subtree(case.spans, span["span_id"])
            assert all(s["name"] != "inference" for s in subtree)
            charged: Set[str] = set(span["ops"])
            for child in subtree:
                charged |= set(child["ops"])
            assert PerfOp.INFERENCE.value not in charged
            if case.config.fallback_to_heuristic and \
                    span["attributes"].get("outcome") == "ok":
                assert any(s["name"] == "fallback" for s in subtree)


# ---------------------------------------------------------------------------
# Telemetry algebra: sketch merges and SLO alerting must be invariant
# to how the fleet was partitioned into shards.
# ---------------------------------------------------------------------------

def _sketch_snapshot(sketch: QuantileSketch) -> str:
    return json.dumps(sketch.snapshot(), sort_keys=True)


def _random_latencies(rng: np.random.Generator) -> List[float]:
    values = rng.lognormal(mean=3.0, sigma=1.2,
                           size=int(rng.integers(20, 200))).tolist()
    # Sprinkle exact zeros: the zero bucket must merge like any other.
    return [0.0 if rng.random() < 0.1 else float(v) for v in values]


def _observe_all(values: List[float], session: int = 0,
                 start_id: int = 0) -> QuantileSketch:
    """Exemplar ids are global (offset by ``start_id``), like span ids
    that travel with the session regardless of sharding."""
    sketch = QuantileSketch()
    for i, v in enumerate(values):
        sketch.observe(v, exemplar={"session": session,
                                    "span_id": start_id + i,
                                    "trace_id": f"t{session}"})
    return sketch


class TestSketchMergeAlgebra:
    @pytest.mark.parametrize("seed", range(6))
    def test_merge_is_associative_and_commutative(self, seed):
        rng = np.random.default_rng(SEED_BASE * 1000 + seed)
        parts = [_observe_all(_random_latencies(rng), session=i)
                 for i in range(4)]

        def fold(order, pairing):
            copies = [QuantileSketch().merge(parts[i]) for i in order]
            if pairing == "left":
                acc = copies[0]
                for sketch in copies[1:]:
                    acc.merge(sketch)
                return acc
            # Balanced tree: (0+1) + (2+3).
            return copies[0].merge(copies[1]).merge(
                copies[2].merge(copies[3]))

        want = _sketch_snapshot(fold([0, 1, 2, 3], "left"))
        assert _sketch_snapshot(fold([3, 1, 0, 2], "left")) == want
        assert _sketch_snapshot(fold([2, 3, 0, 1], "tree")) == want

    @pytest.mark.parametrize("seed", range(3))
    def test_merge_empty_is_identity(self, seed):
        rng = np.random.default_rng(SEED_BASE * 2000 + seed)
        sketch = _observe_all(_random_latencies(rng))
        want = _sketch_snapshot(sketch)
        assert _sketch_snapshot(sketch.merge(QuantileSketch())) == want
        assert _sketch_snapshot(QuantileSketch().merge(sketch)) == want

    @pytest.mark.parametrize("seed", range(3))
    def test_sharding_never_changes_the_sketch(self, seed):
        rng = np.random.default_rng(SEED_BASE * 3000 + seed)
        values = _random_latencies(rng)
        whole = _sketch_snapshot(_observe_all(values))
        for n_shards in (1, 2, 3, 7):
            bounds = [round(i * len(values) / n_shards)
                      for i in range(n_shards + 1)]
            shards = [_observe_all(values[lo:hi], start_id=lo)
                      for lo, hi in zip(bounds[:-1], bounds[1:])]
            acc = QuantileSketch()
            for shard in reversed(shards):
                acc.merge(shard)
            assert _sketch_snapshot(acc) == whole


def _fleet_results() -> List[SimpleNamespace]:
    cases = [_CASE_CACHE.setdefault(i, _run_case(i)) for i in CASES]
    return [SimpleNamespace(spans=c.spans,
                            metrics=c.tracer.registry.snapshot())
            for c in cases]


#: Hair-trigger objective so the chaos cases actually fire alerts: any
#: screenshot failure blows the 10% budget over one-session windows.
TRIGGER_SLO = SloSpec(
    name="capture", objective=0.9, kind="ratio",
    bad_counter="screenshot_failures",
    total_counters=("screens_analyzed", "screenshot_failures"),
    policies=(BurnPolicy(severity="page", fast_window=1, slow_window=2,
                         burn_threshold=1.0),))


class TestSloShardInvariance:
    def test_fleet_snapshot_invariant_to_shard_order(self):
        results = _fleet_results()
        whole = FleetTelemetry.from_results(results)
        for split in ((4,), (2, 5), (1, 3, 6)):
            bounds = [0, *split, len(results)]
            shards = [
                FleetTelemetry.from_results(results[lo:hi], start_index=lo)
                for lo, hi in zip(bounds[:-1], bounds[1:])]
            for order in (shards, list(reversed(shards))):
                acc = FleetTelemetry()
                for shard in order:
                    acc.merge(shard)
                assert (json.dumps(acc.snapshot(), sort_keys=True)
                        == json.dumps(whole.snapshot(), sort_keys=True))

    def test_alert_sequence_identical_sequential_vs_sharded(self):
        results = _fleet_results()
        whole_series = [SessionTelemetry.from_result(i, r)
                        for i, r in enumerate(results)]
        engine = SloEngine([TRIGGER_SLO])
        want = engine.evaluate(whole_series).to_dict()
        assert want["alerts"], "trigger SLO never fired — vacuous check"
        for bounds in ([0, 3, 8], [0, 1, 4, 8], [0, 8]):
            sharded_series = []
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                sharded_series.extend(
                    SessionTelemetry.from_result(lo + i, r)
                    for i, r in enumerate(results[lo:hi]))
            got = engine.evaluate(sharded_series).to_dict()
            assert (json.dumps(got, sort_keys=True)
                    == json.dumps(want, sort_keys=True))


# ---------------------------------------------------------------------------
# Serving-daemon invariants: for ANY seeded scheduling policy the daemon
# must keep lane FIFO order, respect queue bounds, land every offered
# session on exactly one terminal outcome, and resume a killed run to
# the same bytes as an uninterrupted one.
# ---------------------------------------------------------------------------

N_DAEMON_CASES = 5


def _random_daemon_config(rng: np.random.Generator) -> "DaemonConfig":
    from repro.core.daemon import DaemonConfig, LaneConfig

    lanes = (LaneConfig("interactive", capacity=int(rng.integers(1, 4))),
             LaneConfig("background", capacity=int(rng.integers(1, 4))))
    return DaemonConfig(
        inter_arrival_ms=float(rng.choice([5.0, 40.0, 120.0])),
        admission_rate_per_s=float(rng.choice([5.0, 40.0, 200.0])),
        admission_burst=int(rng.integers(1, 6)),
        lanes=lanes,
        background_every=int(rng.choice([0, 2, 3])),
        workers=int(rng.integers(1, 4)),
        batch_max=int(rng.integers(1, 5)),
        batch_service_ms=float(rng.choice([100.0, 300.0, 600.0])),
        shed_deadline_ms=float(rng.choice([0.0, 50.0, 400.0])),
    )


_DAEMON_FLEET = None
_DAEMON_REPORTS: Dict[int, object] = {}


def _daemon_case(index: int):
    """One daemon run per case index, cached across the invariants."""
    from repro.bench.experiments import build_runtime_fleet
    from repro.core.daemon import DarpaDaemon

    global _DAEMON_FLEET
    if _DAEMON_FLEET is None:
        _DAEMON_FLEET = build_runtime_fleet(n_apps=4, seed=0)
    if index not in _DAEMON_REPORTS:
        rng = np.random.default_rng(SEED_BASE * 6000 + index)
        config = _random_daemon_config(rng)
        plan = None
        if rng.random() < 0.5:
            plan = FaultPlan(seed=SEED_BASE * 31 + index,
                             worker_crash_rate=float(rng.choice([0.0, 0.3])),
                             worker_stall_rate=float(rng.choice([0.0, 0.4])),
                             worker_restart_ms=200.0,
                             worker_stall_ms=500.0)
            if plan.is_null:
                plan = None
        report = DarpaDaemon(
            _DAEMON_FLEET, "oracle", config=config, fault_plan=plan,
            trace=False, keep_results=False).run()
        _DAEMON_REPORTS[index] = (config, report)
    return _DAEMON_REPORTS[index]


@pytest.fixture(params=range(N_DAEMON_CASES),
                ids=lambda i: f"daemon{i}-seed{SEED_BASE * 6000 + i}")
def daemon_case(request):
    return _daemon_case(request.param)


class TestDaemonProperty:
    def test_outcome_trichotomy(self, daemon_case):
        from repro.core.daemon import OUTCOMES

        _, report = daemon_case
        c = report.counters
        # Every offered session reached exactly one terminal outcome —
        # nothing hangs, nothing is counted twice.
        assert c["decorated"] + c["degraded"] + c["shed"] == c["offered"]
        assert len(report.outcomes) == c["offered"]
        assert set(report.outcomes.values()) <= set(OUTCOMES)
        assert c["shed"] == len(report.rejections)

    def test_fifo_within_every_lane(self, daemon_case):
        _, report = daemon_case
        served: Dict[str, List[int]] = {}
        for batch in report.batches:
            if batch.fault == "crash":
                continue  # never ran; its sessions re-enqueued at head
            served.setdefault(batch.lane, []).extend(batch.indices)
        for lane, indices in served.items():
            assert indices == sorted(indices), f"lane {lane} broke FIFO"

    def test_batches_respect_the_size_bound(self, daemon_case):
        config, report = daemon_case
        for batch in report.batches:
            assert 1 <= len(batch.indices) <= config.batch_max

    def test_lane_occupancy_never_exceeds_capacity(self, daemon_case):
        config, report = daemon_case
        capacity = {lane.name: lane.capacity for lane in config.lanes}
        admitted = [e for e in report.schedules
                    if e.outcome in ("decorated", "degraded")]
        for entry in admitted:
            t = entry.arrival_ms
            # Queued in the same lane at this arrival instant: arrived
            # at or before t and not yet taken by a batch formed <= t.
            queued = sum(
                1 for other in admitted
                if other.lane == entry.lane and other.arrival_ms <= t
                and (other.start_ms is None or other.start_ms > t))
            assert queued <= capacity[entry.lane], (
                f"lane {entry.lane} exceeded capacity at t={t}")

    def test_crashed_batches_left_no_outcome(self, daemon_case):
        _, report = daemon_case
        crashed = [b for b in report.batches if b.fault == "crash"]
        completed = {i for b in report.batches if b.fault != "crash"
                     for i in b.indices}
        for batch in crashed:
            # Every session of a crashed batch was eventually served by
            # a later (non-crashed) batch — exactly-once execution.
            assert set(batch.indices) <= completed

    def test_kill_resume_equals_uninterrupted(self, tmp_path):
        import filecmp

        from repro.core.daemon import DaemonConfig, DarpaDaemon

        from repro.bench.experiments import build_runtime_fleet

        fleet = _DAEMON_FLEET or build_runtime_fleet(n_apps=4, seed=0)
        rng = np.random.default_rng(SEED_BASE * 7000)
        config = DaemonConfig(
            inter_arrival_ms=float(rng.choice([60.0, 120.0])),
            admission_rate_per_s=200.0, admission_burst=16,
            workers=int(rng.integers(1, 3)),
            batch_max=int(rng.integers(1, 4)),
            batch_service_ms=250.0, shed_deadline_ms=0.0)
        full, kr = tmp_path / "full", tmp_path / "kr"
        DarpaDaemon(fleet, "oracle", config=config,
                    out_dir=str(full), keep_results=False).run()
        killed = DarpaDaemon(fleet, "oracle", config=config,
                             out_dir=str(kr), keep_results=False
                             ).run(max_batches=1)
        assert killed.killed
        resumed = DarpaDaemon(fleet, "oracle", config=config,
                              out_dir=str(kr), keep_results=False
                              ).run(resume=True)
        assert resumed.completed
        for name in ("trace.jsonl", "metrics.jsonl", "telemetry.json",
                     "telemetry.prom", "daemon.json", "drain.json"):
            assert filecmp.cmp(str(full / name), str(kr / name),
                               shallow=False), f"{name} diverged"


# ---------------------------------------------------------------------------
# darpalint: generated violating snippets are always flagged with the
# seeded rule (and only it); generated clean snippets never are.
# ---------------------------------------------------------------------------

_SNIPPET_NAMES = ("alpha", "bravo", "delta", "kappa", "sigma", "omega")


def _pick(rng: np.random.Generator, options):
    return options[int(rng.integers(0, len(options)))]


def _lint_rules(source: str) -> List[str]:
    # Explicit default config so the repo's own [tool.darpalint]
    # allowlists cannot leak into generated-snippet expectations.
    engine = LintEngine(config=LintConfig())
    return sorted({f.rule for f in engine.lint_source(source, path="gen.py")})


def _dirty_dl001(rng):
    call = _pick(rng, ("time.time()", "time.perf_counter()",
                       "time.monotonic()", "time.time_ns()"))
    return (f"import time\n\ndef {_pick(rng, _SNIPPET_NAMES)}():\n"
            f"    return {call}\n")


def _dirty_dl002(rng):
    call = _pick(rng, ("random.random()", "random.Random()",
                       f"random.randint(0, {int(rng.integers(2, 99))})",
                       "random.shuffle(items)"))
    return (f"import random\n\ndef {_pick(rng, _SNIPPET_NAMES)}(items):\n"
            f"    return {call}\n")


def _dirty_dl003(rng):
    scope = _pick(rng, ("merge_", "export_")) + _pick(rng, _SNIPPET_NAMES)
    iterable = _pick(rng, ("table.keys()", "set(rows)",
                           "set(left) | right"))
    return (f"def {scope}(table, rows, left, right):\n"
            f"    out = []\n"
            f"    for item in {iterable}:\n"
            f"        out.append(item)\n"
            f"    return out\n")


def _dirty_dl004(rng):
    scope = _pick(rng, ("merge_", "snapshot_")) + _pick(rng, _SNIPPET_NAMES)
    step = _pick(rng, ("float(part)", f"part * {float(rng.integers(1, 9))}",
                       "part / 2"))
    return (f"def {scope}(parts):\n"
            f"    total = 0.0\n"
            f"    for part in parts:\n"
            f"        total += {step}\n"
            f"    return total\n")


def _dirty_dl005(rng):
    handler = _pick(rng, ("except OSError:", "except Exception:", "except:"))
    return (f"def {_pick(rng, _SNIPPET_NAMES)}(path):\n"
            f"    try:\n"
            f"        handle = open(path)\n"
            f"    {handler}\n"
            f"        pass\n")


def _dirty_dl006(rng):
    default = _pick(rng, ("[]", "{}", "set()", "dict()", "list()"))
    return (f"def {_pick(rng, _SNIPPET_NAMES)}(item, acc={default}):\n"
            f"    return acc\n")


_DIRTY_GENERATORS = {
    "DL001": _dirty_dl001,
    "DL002": _dirty_dl002,
    "DL003": _dirty_dl003,
    "DL004": _dirty_dl004,
    "DL005": _dirty_dl005,
    "DL006": _dirty_dl006,
}


def _clean_snippets(rng: np.random.Generator) -> List[str]:
    name = _pick(rng, _SNIPPET_NAMES)
    seed = int(rng.integers(1, 999))
    return [
        # Simulated clock, not wall clock.
        f"def {name}(clock):\n    return clock.now_ms()\n",
        # Explicitly seeded RNGs.
        (f"import random\n\ndef {name}():\n"
         f"    return random.Random({seed}).random()\n"),
        (f"import numpy as np\n\ndef {name}():\n"
         f"    return np.random.default_rng({seed})\n"),
        # Sorted iteration inside a merge scope.
        (f"def merge_{name}(table):\n"
         f"    return [key for key in sorted(table.keys())]\n"),
        # Integer accumulation in a merge scope; fsum for floats.
        (f"import math\n\ndef merge_{name}(parts):\n"
         f"    count = 0\n"
         f"    for part in parts:\n"
         f"        count += 1\n"
         f"    return count, math.fsum(parts)\n"),
        # Exception recorded, not swallowed.
        (f"def {name}(path, errors):\n"
         f"    try:\n"
         f"        return open(path)\n"
         f"    except OSError as exc:\n"
         f"        errors.append(str(exc))\n"
         f"        return None\n"),
        # None-default idiom.
        (f"def {name}(item, acc=None):\n"
         f"    if acc is None:\n"
         f"        acc = []\n"
         f"    acc.append(item)\n"
         f"    return acc\n"),
    ]


class TestDarpalintProperty:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("rule", sorted(_DIRTY_GENERATORS))
    def test_violating_snippets_always_flagged(self, rule, seed):
        rng = np.random.default_rng(
            SEED_BASE * 4000 + seed * 10 + int(rule[2:]))
        source = _DIRTY_GENERATORS[rule](rng)
        assert _lint_rules(source) == [rule], source

    @pytest.mark.parametrize("seed", range(4))
    def test_clean_snippets_never_flagged(self, seed):
        rng = np.random.default_rng(SEED_BASE * 5000 + seed)
        for source in _clean_snippets(rng):
            assert _lint_rules(source) == [], source


# ---------------------------------------------------------------------------
# darpaflow: a seeded interprocedural source->sink chain through N>=2
# random helpers is always reported with the exact hop chain; inserting
# a sanitizer on ANY hop kills the report; report bytes are invariant
# to input path order.
# ---------------------------------------------------------------------------

_FLOW_KINDS = ("wall-clock", "listing")


def _flow_chain(rng, kind, sanitize_hop=None):
    """Generated module: one source->sink flow through n>=2 helpers.

    Returns ``(source_text, helper_names)``.  ``sanitize_hop`` inserts
    the kind-appropriate sanitizer inside that helper — ``sorted()``
    for the listing chain (order taints are genuinely erased by
    sorting), the ``# darpaflow: sanitized=`` marker for wall clock
    (a value taint no reordering can clean).
    """
    n_hops = int(rng.integers(2, 5))
    order = [str(name) for name in rng.permutation(list(_SNIPPET_NAMES))]
    helpers = [f"hop_{name}" for name in order[:n_hops]]
    source_call = ("time.time()" if kind == "wall-clock"
                   else "os.listdir(root)")
    lines = ["import os", "import time", "",
             "from repro.ops.routes import canonical_bytes", "", "",
             "def read_source(root):",
             f"    value = {source_call}",
             "    return value", "", ""]
    for index, helper in enumerate(helpers):
        if index == sanitize_hop and kind == "listing":
            body = "    held = sorted(value)"
        elif index == sanitize_hop:
            body = "    held = value  # darpaflow: sanitized=proptest"
        else:
            body = "    held = value"
        lines += [f"def {helper}(value):", body, "    return held", "", ""]
    lines += ["def emit(root):", "    value = read_source(root)"]
    lines += [f"    value = {helper}(value)" for helper in helpers]
    lines.append('    return canonical_bytes({"value": value})')
    return "\n".join(lines) + "\n", helpers


class TestDarpaflowProperty:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("kind", _FLOW_KINDS)
    def test_chain_always_reported_with_exact_hops(self, kind, seed,
                                                   tmp_path):
        rng = np.random.default_rng(
            SEED_BASE * 10000 + seed * 10 + len(kind))
        source, helpers = _flow_chain(rng, kind)
        (tmp_path / "gen.py").write_text(source)
        findings = flow_analyze([str(tmp_path)], FlowSpecs())
        assert len(findings) == 1, source
        finding = findings[0]
        expected_rule = "DF001" if kind == "wall-clock" else "DF003"
        assert finding.rule == expected_rule
        assert finding.sink == "repro.ops.routes.canonical_bytes"
        notes = [hop.note for hop in finding.trace]
        assert notes[0].endswith("[source]")
        assert notes[-1].endswith("[sink]")
        # Every helper appears as a parameter hop, in chain order.
        positions = [notes.index(f"parameter 'value' of gen.{helper}()")
                     for helper in helpers]
        assert positions == sorted(positions), source

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("kind", _FLOW_KINDS)
    def test_sanitizer_on_any_hop_kills_the_flow(self, kind, seed,
                                                 tmp_path):
        seed_value = SEED_BASE * 11000 + seed * 10 + len(kind)
        dirty, helpers = _flow_chain(np.random.default_rng(seed_value),
                                     kind)
        base = tmp_path / "dirty"
        base.mkdir()
        (base / "gen.py").write_text(dirty)
        assert len(flow_analyze([str(base)], FlowSpecs())) == 1, dirty
        for hop in range(len(helpers)):
            # Fresh rng, same seed: the identical chain, one hop
            # sanitized.  Whichever hop it is, the report dies.
            clean, _ = _flow_chain(np.random.default_rng(seed_value),
                                   kind, sanitize_hop=hop)
            sub = tmp_path / f"hop{hop}"
            sub.mkdir()
            (sub / "gen.py").write_text(clean)
            assert flow_analyze([str(sub)], FlowSpecs()) == [], clean

    @pytest.mark.parametrize("seed", range(2))
    def test_report_bytes_invariant_to_path_order(self, seed, tmp_path):
        rng = np.random.default_rng(SEED_BASE * 12000 + seed)
        dirs = []
        for index in range(3):
            source, _ = _flow_chain(rng, _FLOW_KINDS[index % 2])
            sub = tmp_path / f"m{index}"
            sub.mkdir()
            # Distinct module names: colliding qualnames would shadow
            # one another in the function registry.
            (sub / f"gen{index}.py").write_text(source)
            dirs.append(str(sub))
        baseline = None
        for _ in range(4):
            order = [dirs[int(i)] for i in rng.permutation(len(dirs))]
            payload = flow_render_json(flow_analyze(order, FlowSpecs()))
            if baseline is None:
                baseline = payload
            assert payload == baseline


# ---------------------------------------------------------------------------
# Ops dashboard: the route layer is invariant to how the run directory
# was sharded and listed, and every exemplar link lands on a real span.
# ---------------------------------------------------------------------------

N_OPS_CASES = 3

_OPS_RESULTS = None


def _ops_results():
    """One traced 4-session fleet run, cached across the ops cases."""
    from repro.bench.experiments import (
        build_runtime_fleet,
        run_darpa_over_fleet,
    )

    global _OPS_RESULTS
    if _OPS_RESULTS is None:
        fleet = build_runtime_fleet(n_apps=4, seed=SEED_BASE,
                                    duration_ms=5_000.0)
        _OPS_RESULTS = list(enumerate(run_darpa_over_fleet(
            fleet, "oracle", ct_ms=200.0, mode="full", trace=True)))
    return _OPS_RESULTS


def _random_partition(rng: np.random.Generator, n: int):
    """Random contiguous index partition of ``range(n)`` into shards."""
    n_cuts = int(rng.integers(0, n))
    cuts = sorted({int(c) for c in rng.integers(1, n, size=n_cuts)})
    bounds = [0] + cuts + [n]
    return list(zip(bounds, bounds[1:]))


def _ops_case(index: int, tmp_path):
    """Write one random sharding as both part files and merged files."""
    from repro.bench.parallel import (
        _write_shard_artifacts,
        merge_trace_artifacts,
    )

    results = _ops_results()
    rng = np.random.default_rng(SEED_BASE * 8000 + index)
    parts_dir, merged_dir = tmp_path / "parts", tmp_path / "merged"
    parts_dir.mkdir(), merged_dir.mkdir()
    for lo, hi in _random_partition(rng, len(results)):
        _write_shard_artifacts(str(parts_dir), results[lo:hi])
        _write_shard_artifacts(str(merged_dir), results[lo:hi])
    merge_trace_artifacts(str(merged_dir))
    return rng, str(parts_dir), str(merged_dir)


class TestOpsProperty:
    @pytest.mark.parametrize("index", range(N_OPS_CASES))
    def test_routes_from_parts_equal_routes_from_merged(self, index,
                                                        tmp_path):
        from repro.ops.artifacts import load_run
        from repro.ops.routes import dump_routes

        rng, parts_dir, merged_dir = _ops_case(index, tmp_path)
        from_parts = dump_routes(load_run(parts_dir, ct_ms=200.0))
        from_merged = dump_routes(load_run(merged_dir, ct_ms=200.0))
        # Overview KPIs — and every other route — must not care whether
        # the telemetry arrived as shard parts or as the merged
        # telemetry.json/trace.jsonl the parts fold into.
        assert from_parts == from_merged

    @pytest.mark.parametrize("index", range(N_OPS_CASES))
    def test_listing_order_never_changes_the_bytes(self, index, tmp_path):
        from repro.ops.artifacts import load_run
        from repro.ops.routes import dump_routes

        rng, parts_dir, _ = _ops_case(index, tmp_path)
        names = sorted(os.listdir(parts_dir))
        baseline = dump_routes(load_run(parts_dir, ct_ms=200.0))
        for _ in range(3):
            shuffled = [names[i] for i in rng.permutation(len(names))]
            assert dump_routes(load_run(parts_dir, ct_ms=200.0,
                                        names=shuffled)) == baseline

    @pytest.mark.parametrize("index", range(N_OPS_CASES))
    def test_every_exemplar_resolves_to_a_recorded_span(self, index,
                                                        tmp_path):
        from repro.ops.artifacts import load_run
        from repro.ops.routes import METRIC_SKETCHES, resolve

        _, parts_dir, _ = _ops_case(index, tmp_path)
        model = load_run(parts_dir, ct_ms=200.0)
        recorded = {
            session: {(s["span_id"], s["trace_id"])
                      for s in result.spans or ()}
            for session, result in _ops_results()
        }
        seen = 0
        for metric in sorted(METRIC_SKETCHES):
            payload = resolve(model, f"/api/quantiles/{metric}")
            for bucket in payload["buckets"]:
                exemplar = bucket["exemplar"]
                if exemplar is None:
                    continue
                seen += 1
                assert exemplar["resolves"] is True
                assert exemplar["href"] == (
                    f"/api/traces/{exemplar['session']}")
                # The link lands on a span the run actually recorded,
                # in the trace it claims to belong to.
                assert (exemplar["span_id"], exemplar["trace_id"]) in (
                    recorded[exemplar["session"]])
        assert seen > 0, "no exemplars survived the merge — vacuous case"


# ---------------------------------------------------------------------------
# Profiling: the stack-profile merge algebra under random shardings.
# Invariants: any merge tree over per-session profiles serializes to
# the same bytes; a sharded run's profile.json parts fold to exactly
# the merged artifact; diff(A, A) is empty for every folded profile.
# ---------------------------------------------------------------------------

N_PROFILING_CASES = 3


class TestProfilingProperty:
    @pytest.mark.parametrize("index", range(N_PROFILING_CASES))
    def test_any_merge_tree_gives_identical_bytes(self, index):
        from repro.profiling import Profile, profile_from_result

        results = _ops_results()
        rng = np.random.default_rng(SEED_BASE * 9000 + index)
        parts = [profile_from_result(result).to_dict()
                 for _, result in results]
        baseline = None
        for _ in range(4):
            # A random binary merge tree: repeatedly fold a random
            # profile into a random other until one remains.
            pool = [Profile.from_dict(p) for p in parts]
            while len(pool) > 1:
                j = int(rng.integers(1, len(pool)))
                k = int(rng.integers(0, j))
                pool[k].merge(pool.pop(j))
            got = pool[0].to_json()
            baseline = baseline or got
            assert got == baseline, "merge tree changed the bytes"

    @pytest.mark.parametrize("index", range(N_PROFILING_CASES))
    def test_sharded_profile_equals_merged_artifact(self, index, tmp_path):
        from repro.profiling import load_profile

        _, parts_dir, merged_dir = _ops_case(index, tmp_path)
        from_parts = load_profile(parts_dir)
        from_merged = load_profile(merged_dir)
        assert from_parts.to_json() == from_merged.to_json()
        assert from_parts.sessions == len(_ops_results())

    @pytest.mark.parametrize("index", range(N_PROFILING_CASES))
    def test_trace_refold_matches_shipped_profile(self, index, tmp_path):
        from repro.profiling import load_profile
        from repro.profiling.io import _fold_span_records, _read_jsonl

        _, _, merged_dir = _ops_case(index, tmp_path)
        records = _read_jsonl(os.path.join(merged_dir, "trace.jsonl"))
        refolded = _fold_span_records(records)
        # Dropped counts ride the metrics lines, not the trace; with no
        # drops in these runs the refold is bit-equal to the artifact.
        assert refolded.to_json() == load_profile(merged_dir).to_json()

    @pytest.mark.parametrize("index", range(N_PROFILING_CASES))
    def test_self_diff_is_empty(self, index, tmp_path):
        from repro.profiling import diff_profiles, load_profile

        _, parts_dir, merged_dir = _ops_case(index, tmp_path)
        for source in (parts_dir, merged_dir):
            profile = load_profile(source)
            assert profile.frames, "vacuous case — no frames folded"
            assert diff_profiles(profile, profile).empty


# ---------------------------------------------------------------------------
# Non-vacuousness: the matrix must actually exercise the paths the
# invariants constrain, whatever seed base is in effect.
# ---------------------------------------------------------------------------

def test_matrix_exercises_the_interesting_paths():
    cases = [_CASE_CACHE.setdefault(i, _run_case(i)) for i in CASES]
    totals = {
        "cache_hits": sum(c.service.stats.cache_hits for c in cases),
        "screenshot_failures": sum(c.service.stats.screenshot_failures
                                   for c in cases),
        "detector_failures": sum(c.service.stats.detector_failures
                                 for c in cases),
        "deadline_skips": sum(c.service.stats.deadline_skips for c in cases),
        "fallbacks": sum(c.service.stats.fallback_detections for c in cases),
        "breaker_opens": sum(c.service.stats.breaker_opens for c in cases),
        "decorations": sum(c.service.stats.decorations_drawn for c in cases),
        "analyzed": sum(c.service.stats.screens_analyzed for c in cases),
    }
    vacuous = [name for name, total in totals.items() if total == 0]
    assert not vacuous, f"matrix never exercised: {vacuous} ({totals})"
