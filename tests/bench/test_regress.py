"""Tests for repro.bench.regress: the benchmark regression gate."""

import json
from pathlib import Path

import pytest

from repro.bench.regress import (
    DEFAULT_RULES,
    Rule,
    compare,
    main,
    parse_rule,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestCompare:
    def test_identical_payloads_pass(self):
        payload = {"rows": [{"cpu_pct": 61.2, "plan": "x"}], "n_apps": 12}
        assert compare(payload, json.loads(json.dumps(payload))) == []

    def test_within_tolerance_passes(self):
        base = {"rows": [{"cpu_pct": 100.0}]}
        fresh = {"rows": [{"cpu_pct": 101.5}]}  # rule *cpu_pct* rel 0.02
        assert compare(base, fresh) == []

    def test_outside_tolerance_fails_both_directions(self):
        base = {"rows": [{"cpu_pct": 100.0}]}
        for drifted in (110.0, 90.0):  # improvement is as suspicious
            violations = compare(base, {"rows": [{"cpu_pct": drifted}]})
            assert len(violations) == 1
            assert violations[0].path == "rows/0/cpu_pct"

    def test_unmatched_numeric_leaf_must_be_exact(self):
        assert compare({"alerts_total": 9}, {"alerts_total": 9}) == []
        violations = compare({"alerts_total": 9}, {"alerts_total": 10})
        assert violations and "exact-match" in violations[0].reason

    def test_schema_drift_is_a_violation(self):
        base = {"a": 1, "b": 2}
        gone = compare(base, {"a": 1})
        assert gone[0].path == "b" and "missing" in gone[0].reason
        extra = compare(base, {"a": 1, "b": 2, "c": 3})
        assert extra[0].path == "c" and "not in baseline" in extra[0].reason
        assert compare({"xs": [1, 2]}, {"xs": [1]})[0].reason \
            == "length changed"
        assert "type changed" in compare({"v": 1}, {"v": "1"})[0].reason

    def test_bool_is_not_a_tolerant_number(self):
        violations = compare({"zero_fault_bit_identical": True},
                             {"zero_fault_bit_identical": False})
        assert len(violations) == 1

    def test_first_matching_rule_wins(self):
        rules = (Rule("rows/*", rel=1.0),) + DEFAULT_RULES
        assert compare({"rows": [{"cpu_pct": 100.0}]},
                       {"rows": [{"cpu_pct": 199.0}]}, rules) == []

    def test_parse_rule(self):
        rule = parse_rule("rows/*/recall=abs:0.05")
        assert rule.pattern == "rows/*/recall" and rule.abs_tol == 0.05
        assert parse_rule("x=rel:0.1").rel == 0.1
        for bad in ("norule", "x=pct:1", "x=rel:nan-ish"):
            with pytest.raises(Exception):
                parse_rule(bad)


class TestMain:
    def test_identical_files_exit_zero(self, tmp_path, capsys):
        path = write(tmp_path, "base.json", {"rows": [{"cpu_pct": 1.0}]})
        assert main(["--baseline", path, "--fresh", path]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_regression_exits_one_and_lists_violations(self, tmp_path,
                                                       capsys):
        base = write(tmp_path, "base.json", {"alerts_total": 9})
        fresh = write(tmp_path, "fresh.json", {"alerts_total": 12})
        assert main(["--baseline", base, "--fresh", fresh]) == 1
        assert "alerts_total" in capsys.readouterr().err

    def test_extra_rule_can_absorb_drift(self, tmp_path):
        base = write(tmp_path, "base.json", {"alerts_total": 9})
        fresh = write(tmp_path, "fresh.json", {"alerts_total": 12})
        assert main(["--baseline", base, "--fresh", fresh,
                     "--rule", "alerts_total=abs:5"]) == 0

    def test_missing_or_malformed_file_exits_two(self, tmp_path):
        good = write(tmp_path, "base.json", {})
        assert main(["--baseline", str(tmp_path / "nope.json"),
                     "--fresh", good]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["--baseline", good, "--fresh", str(bad)]) == 2

    def test_committed_slo_baseline_self_compares_clean(self):
        baseline = REPO_ROOT / "BENCH_slo.json"
        assert baseline.exists(), "BENCH_slo.json must be committed"
        assert main(["--baseline", str(baseline),
                     "--fresh", str(baseline), "--quiet"]) == 0
