"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.plotting import ascii_line_chart


class TestAsciiLineChart:
    def test_basic_render(self):
        chart = ascii_line_chart(
            {"events": [100, 80, 40, 30], "auis": [50, 49, 47, 40]},
            x_labels=["50", "100", "200", "500"],
        )
        lines = chart.splitlines()
        assert any(l.startswith("+---") for l in lines)
        assert "* events" in chart
        assert "o auis" in chart
        assert "[30 .. 100]" in chart

    def test_title_first_line(self):
        chart = ascii_line_chart({"s": [1, 2]}, ["a", "b"], title="My Title")
        assert chart.splitlines()[0] == "My Title"

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError):
            ascii_line_chart({}, [])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"s": [1, 2, 3]}, ["a", "b"])

    def test_rejects_tiny_height(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"s": [1, 2]}, ["a", "b"], height=2)

    def test_constant_series_renders(self):
        chart = ascii_line_chart({"flat": [5, 5, 5]}, ["a", "b", "c"])
        assert chart.count("*") >= 3

    def test_monotone_series_markers_descend(self):
        chart = ascii_line_chart({"down": [10, 5, 0]}, ["a", "b", "c"],
                                 height=5)
        rows = [i for i, line in enumerate(chart.splitlines())
                if "*" in line]
        assert rows == sorted(rows)
        assert len(set(rows)) >= 2
