"""Tests for the benchmark harness (cache, tables, fleet runner)."""

import numpy as np
import pytest

from repro.bench import format_table
from repro.bench.cache import BenchCache
from repro.bench.experiments import (
    _burst_pause_offsets,
    build_runtime_fleet,
    run_darpa_session,
)


class TestBenchCache:
    def test_store_and_load(self, tmp_path):
        cache = BenchCache(root=tmp_path)
        arrays = {"a": np.arange(5), "b": np.eye(3)}
        cache.store("thing", {"k": 1}, arrays)
        assert cache.has("thing", {"k": 1})
        loaded = cache.load("thing", {"k": 1})
        assert np.array_equal(loaded["a"], arrays["a"])
        assert np.array_equal(loaded["b"], arrays["b"])

    def test_fingerprint_sensitivity(self):
        assert BenchCache.fingerprint({"a": 1}) != BenchCache.fingerprint({"a": 2})
        assert BenchCache.fingerprint({"a": 1, "b": 2}) == \
            BenchCache.fingerprint({"b": 2, "a": 1})

    def test_get_or_build_builds_once(self, tmp_path):
        cache = BenchCache(root=tmp_path)
        calls = []

        def builder():
            calls.append(1)
            return {"x": np.ones(3)}

        a = cache.get_or_build("m", {"s": 0}, builder)
        b = cache.get_or_build("m", {"s": 0}, builder)
        assert len(calls) == 1
        assert np.array_equal(a["x"], b["x"])

    def test_different_config_different_artifact(self, tmp_path):
        cache = BenchCache(root=tmp_path)
        cache.store("m", {"s": 0}, {"x": np.zeros(1)})
        assert not cache.has("m", {"s": 1})

    def test_corrupt_artifact_is_rebuilt(self, tmp_path):
        cache = BenchCache(root=tmp_path)
        path = cache.store("m", {"s": 0}, {"x": np.arange(4)})
        path.write_bytes(b"PK\x03\x04 not actually a zip")
        rebuilt = cache.get_or_build("m", {"s": 0},
                                     lambda: {"x": np.arange(4) * 2})
        assert np.array_equal(rebuilt["x"], np.arange(4) * 2)
        # The rebuild is persisted, so the next load works again.
        assert np.array_equal(cache.load("m", {"s": 0})["x"], np.arange(4) * 2)

    def test_store_safe_under_concurrent_writers(self, tmp_path):
        """Racing writers never leave a torn .npz behind.

        Each writer stages to a unique temp file and atomically renames
        it over the target, so a reader sees some complete writer's
        arrays — never a mix, never a truncated archive.
        """
        import threading

        cache = BenchCache(root=tmp_path)
        n_writers, n_rounds = 8, 5
        errors = []

        def writer(tag):
            try:
                for _ in range(n_rounds):
                    cache.store("shared", {"k": 0},
                                {"who": np.full(64, tag), "tag": np.array(tag)})
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(n_writers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        loaded = cache.load("shared", {"k": 0})
        winner = int(loaded["tag"])
        assert 0 <= winner < n_writers
        assert np.array_equal(loaded["who"], np.full(64, winner))
        # No stray temp files left in the cache directory.
        assert not list(cache.root.glob("*.tmp-*"))


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "value"], [["alpha", 0.12345], ["b", 2]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "0.123" in text
        assert all(len(l) <= max(len(x) for x in lines) for l in lines)

    def test_handles_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestBurstPause:
    def test_offsets_sorted_and_bounded(self):
        rng = np.random.default_rng(0)
        offsets = _burst_pause_offsets(rng, 8000.0)
        assert offsets == sorted(offsets)
        assert all(0 < o < 8000 for o in offsets)
        assert len(offsets) > 5

    def test_contains_pauses(self):
        rng = np.random.default_rng(1)
        offsets = _burst_pause_offsets(rng, 10_000.0)
        gaps = np.diff(offsets)
        assert gaps.max() > gaps.min() * 1.5  # bursts + pauses, not uniform


class TestFleet:
    @pytest.fixture(scope="class")
    def sessions(self):
        return build_runtime_fleet(n_apps=3, seed=0, duration_ms=20_000.0)

    def test_fleet_shape(self, sessions):
        assert len(sessions) == 3
        for s in sessions:
            assert s.aui_screens, "every session must show AUIs"
            assert s.non_aui_screens
            assert all(state.boxes_of("UPO") for state in s.aui_screens)

    def test_oracle_session_catches_auis(self, sessions):
        result = run_darpa_session(sessions[0], "oracle", ct_ms=200.0,
                                   mode="full", duration_ms=20_000.0)
        assert result.screens_analyzed > 0
        assert result.auis_shown > 0
        assert result.auis_flagged <= result.auis_shown
        assert result.perf.cpu_pct > 55.22  # above the baseline

    def test_baseline_mode_runs_nothing(self, sessions):
        result = run_darpa_session(sessions[0], "oracle", ct_ms=200.0,
                                   mode="baseline", duration_ms=20_000.0)
        assert result.screens_analyzed == 0
        assert result.perf.cpu_pct == pytest.approx(55.22)

    def test_monitor_mode_cheaper_than_full(self, sessions):
        monitor = run_darpa_session(sessions[0], "oracle", ct_ms=200.0,
                                    mode="monitor", duration_ms=20_000.0)
        full = run_darpa_session(sessions[0], "oracle", ct_ms=200.0,
                                 mode="full", duration_ms=20_000.0)
        assert monitor.perf.cpu_pct < full.perf.cpu_pct
        assert monitor.perf.memory_mb < full.perf.memory_mb

    def test_smaller_ct_analyzes_more(self, sessions):
        fast = run_darpa_session(sessions[1], "oracle", ct_ms=50.0,
                                 mode="full", duration_ms=20_000.0)
        slow = run_darpa_session(sessions[1], "oracle", ct_ms=400.0,
                                 mode="full", duration_ms=20_000.0)
        assert fast.screens_analyzed > slow.screens_analyzed

    def test_unknown_mode_rejected(self, sessions):
        with pytest.raises(ValueError):
            run_darpa_session(sessions[0], "oracle", mode="turbo")

    def test_frauddroid_verdicts_collected(self, sessions):
        from repro.baselines import FraudDroidDetector
        result = run_darpa_session(sessions[0], "oracle", ct_ms=200.0,
                                   mode="full", duration_ms=20_000.0,
                                   frauddroid=FraudDroidDetector())
        # One verdict per shown screen that was analyzed at least once.
        assert 0 < len(result.frauddroid_verdicts) <= len(result.screen_verdicts)


class TestArtifactMemos:
    def test_corpus_memoized(self):
        from repro.bench import get_corpus_and_splits
        a = get_corpus_and_splits(seed=0)
        b = get_corpus_and_splits(seed=0)
        assert a[0] is b[0]

    def test_evaluate_requires_screen_images(self):
        from repro.bench import evaluate_detector
        from repro.vision.dataset import DetectionDataset
        import numpy as np
        ds = DetectionDataset(images=np.zeros((1, 3, 8, 8), dtype=np.float32),
                              labels=[[]])

        class Dummy:
            def detect_screen(self, image, refine=True, conf_threshold=None):
                return []

        with pytest.raises(ValueError):
            evaluate_detector(Dummy(), ds)
