"""Shard-merge determinism for the fleet runner's trace artifacts.

The contract: with ``trace_dir`` set, the parallel runner writes one
``shard-<first-index>.{trace,metrics}.jsonl`` (+ ``.telemetry.json``
+ ``.profile.json``) part per shard and merges them into
``trace.jsonl`` + ``metrics.jsonl`` ordered by global session index,
plus the fleet-level ``telemetry.json`` / ``telemetry.prom`` /
``profile.json`` — and the merged bytes are identical for ANY worker
or shard count, including the inline single-worker path.
"""

import json
import os

import pytest

from repro.bench import build_runtime_fleet, run_darpa_over_fleet_parallel
from repro.core.telemetry import FleetTelemetry

MERGED_ARTIFACTS = ("trace.jsonl", "metrics.jsonl", "telemetry.json",
                    "telemetry.prom", "profile.json")

N_APPS = 8


@pytest.fixture(scope="module")
def sessions():
    return build_runtime_fleet(n_apps=N_APPS, seed=3, duration_ms=20_000.0)


def run_traced(sessions, tmp_path, n_workers, n_shards=None):
    trace_dir = str(tmp_path / f"w{n_workers}-s{n_shards}")
    results = run_darpa_over_fleet_parallel(
        sessions, "oracle", ct_ms=200.0, mode="full",
        n_workers=n_workers, n_shards=n_shards, trace_dir=trace_dir)
    return results, trace_dir


def read_artifacts(trace_dir):
    out = []
    for name in MERGED_ARTIFACTS:
        with open(os.path.join(trace_dir, name), "rb") as fp:
            out.append(fp.read())
    return tuple(out)


class TestTraceArtifactMerge:
    def test_merged_bytes_identical_across_worker_counts(self, sessions,
                                                         tmp_path):
        artifacts = {}
        for n_workers in (1, 2, 7):
            _, trace_dir = run_traced(sessions, tmp_path, n_workers)
            artifacts[n_workers] = read_artifacts(trace_dir)
        assert artifacts[1] == artifacts[2] == artifacts[7]

    def test_merged_bytes_identical_across_shard_counts(self, sessions,
                                                        tmp_path):
        baseline = None
        for n_shards in (1, 3, 8):
            _, trace_dir = run_traced(sessions, tmp_path, 2, n_shards)
            got = read_artifacts(trace_dir)
            baseline = baseline or got
            assert got == baseline, f"n_shards={n_shards} changed the bytes"

    def test_shard_parts_are_cleaned_up(self, sessions, tmp_path):
        _, trace_dir = run_traced(sessions, tmp_path, 3)
        assert sorted(os.listdir(trace_dir)) == sorted(MERGED_ARTIFACTS)

    def test_telemetry_matches_in_memory_results(self, sessions, tmp_path):
        results, trace_dir = run_traced(sessions, tmp_path, 2)
        with open(os.path.join(trace_dir, "telemetry.json")) as fp:
            merged = FleetTelemetry.from_snapshot(json.load(fp))
        direct = FleetTelemetry.from_results(results)
        assert merged.snapshot() == direct.snapshot()
        assert merged.sessions == N_APPS
        with open(os.path.join(trace_dir, "telemetry.prom")) as fp:
            assert fp.read() == direct.to_prometheus()

    def test_lines_ordered_by_global_session_index(self, sessions, tmp_path):
        _, trace_dir = run_traced(sessions, tmp_path, 2)
        with open(os.path.join(trace_dir, "trace.jsonl")) as fp:
            indices = [json.loads(line)["session"] for line in fp]
        assert indices == sorted(indices)
        assert set(indices) == set(range(N_APPS))
        with open(os.path.join(trace_dir, "metrics.jsonl")) as fp:
            sessions_seen = [json.loads(line)["session"] for line in fp]
        assert sessions_seen == list(range(N_APPS))

    def test_lines_match_in_memory_spans(self, sessions, tmp_path):
        results, trace_dir = run_traced(sessions, tmp_path, 2)
        by_session = {}
        with open(os.path.join(trace_dir, "trace.jsonl")) as fp:
            for line in fp:
                record = json.loads(line)
                by_session.setdefault(record.pop("session"), []).append(record)
        for index, result in enumerate(results):
            assert by_session[index] == result.spans

    def test_trace_dir_implies_tracing(self, sessions, tmp_path):
        results, _ = run_traced(sessions, tmp_path, 1)
        assert all(r.spans is not None for r in results)
