"""Provenance manifests and the regress manifest gate (exit code 3)."""

import json

import pytest

from repro.bench.provenance import (
    MANIFEST_KEY,
    MANIFEST_VERSION,
    build_manifest,
    config_hash,
    git_sha,
    manifest_mismatches,
)
from repro.bench.regress import main as regress_main


class TestManifestBuilding:
    def test_fields_and_version(self, monkeypatch):
        monkeypatch.setenv("DARPA_GIT_SHA", "deadbeef")
        manifest = build_manifest("corpus-v1", 7, {"apps": 10})
        assert manifest["manifest_version"] == MANIFEST_VERSION
        assert manifest["corpus_version"] == "corpus-v1"
        assert manifest["seed_base"] == 7
        assert manifest["git_sha"] == "deadbeef"
        assert manifest["config_hash"] == config_hash({"apps": 10})

    def test_config_hash_is_key_order_invariant(self):
        assert config_hash({"a": 1, "b": [2, 3]}) == \
            config_hash({"b": [2, 3], "a": 1})

    def test_config_hash_distinguishes_configs(self):
        assert config_hash({"apps": 10}) != config_hash({"apps": 12})

    def test_git_sha_env_override(self, monkeypatch):
        monkeypatch.setenv("DARPA_GIT_SHA", "cafe1234")
        assert git_sha() == "cafe1234"

    def test_git_sha_without_override_is_nonempty(self, monkeypatch):
        monkeypatch.delenv("DARPA_GIT_SHA", raising=False)
        assert git_sha()  # repo SHA here, "unknown" outside a checkout


class TestManifestMismatches:
    def test_both_absent_is_comparable(self):
        assert manifest_mismatches(None, None) == []

    def test_one_sided_presence_is_a_mismatch(self):
        manifest = build_manifest("v1", 0, {})
        assert manifest_mismatches(manifest, None)
        assert manifest_mismatches(None, manifest)

    def test_identical_manifests_match(self):
        a = build_manifest("v1", 0, {"k": 1})
        assert manifest_mismatches(a, dict(a)) == []

    def test_git_sha_is_excluded(self):
        a = build_manifest("v1", 0, {"k": 1})
        b = dict(a, git_sha="someone-elses-tree")
        assert manifest_mismatches(a, b) == []

    def test_config_drift_is_reported(self):
        a = build_manifest("v1", 0, {"k": 1})
        b = build_manifest("v1", 0, {"k": 2})
        assert any("config_hash" in m for m in manifest_mismatches(a, b))


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestRegressGate:
    def _payload(self, value=1.5, manifest=True, seed=0):
        payload = {"metric": value}
        if manifest:
            payload[MANIFEST_KEY] = build_manifest("v1", seed, {"r": 1})
        return payload

    def test_matching_manifests_compare_and_pass(self, tmp_path):
        base = _write(tmp_path, "base.json", self._payload())
        fresh = _write(tmp_path, "fresh.json", self._payload())
        assert regress_main(["--baseline", base, "--fresh", fresh]) == 0

    def test_mismatched_manifests_exit_3(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", self._payload(seed=0))
        fresh = _write(tmp_path, "fresh.json", self._payload(seed=1))
        assert regress_main(["--baseline", base, "--fresh", fresh]) == 3
        assert "provenance mismatch" in capsys.readouterr().err

    def test_one_sided_manifest_exits_3(self, tmp_path):
        base = _write(tmp_path, "base.json", self._payload(manifest=False))
        fresh = _write(tmp_path, "fresh.json", self._payload())
        assert regress_main(["--baseline", base, "--fresh", fresh]) == 3

    def test_ignore_manifest_overrides(self, tmp_path):
        base = _write(tmp_path, "base.json", self._payload(seed=0))
        fresh = _write(tmp_path, "fresh.json", self._payload(seed=1))
        assert regress_main(["--baseline", base, "--fresh", fresh,
                             "--ignore-manifest"]) == 0

    def test_value_drift_still_fails_after_manifest_check(self, tmp_path):
        base = _write(tmp_path, "base.json", self._payload(value=1.0))
        fresh = _write(tmp_path, "fresh.json", self._payload(value=2.0))
        assert regress_main(["--baseline", base, "--fresh", fresh]) == 1

    def test_legacy_payloads_without_manifests_still_compare(self, tmp_path):
        base = _write(tmp_path, "base.json", self._payload(manifest=False))
        fresh = _write(tmp_path, "fresh.json", self._payload(manifest=False))
        assert regress_main(["--baseline", base, "--fresh", fresh]) == 0

    def test_differing_git_sha_alone_is_comparable(self, tmp_path):
        base_payload = self._payload()
        fresh_payload = json.loads(json.dumps(base_payload))
        fresh_payload[MANIFEST_KEY]["git_sha"] = "another-tree"
        base = _write(tmp_path, "base.json", base_payload)
        fresh = _write(tmp_path, "fresh.json", fresh_payload)
        assert regress_main(["--baseline", base, "--fresh", fresh]) == 0
