"""Determinism tests for the parallel fleet runner.

The contract: :func:`run_darpa_over_fleet_parallel` is a drop-in for
the sequential :func:`run_darpa_over_fleet` — same sessions, same
seeds, same results, for ANY worker or shard count.  Seeds travel with
each session's global fleet index, never with worker identity, so the
confusion-matrix rows of Table VI cannot depend on parallelism.
"""

import pytest

from repro.bench import (
    build_runtime_fleet,
    run_darpa_over_fleet,
    run_darpa_over_fleet_parallel,
)


def result_key(result):
    """Everything a table row is derived from, as a comparable tuple."""
    return (
        result.package,
        result.events_total,
        result.screens_analyzed,
        tuple(result.screen_verdicts),
        tuple(result.frauddroid_verdicts),
        result.auis_shown,
        result.auis_flagged,
        result.perf.as_row(),
        tuple(sorted(result.perf.counts.items())),
    )


@pytest.fixture(scope="module")
def sessions():
    return build_runtime_fleet(n_apps=4, seed=3, duration_ms=20_000.0)


@pytest.fixture(scope="module")
def sequential(sessions):
    return run_darpa_over_fleet(sessions, "oracle", ct_ms=200.0, mode="full")


class TestParallelDeterminism:
    def test_inline_single_worker_matches_sequential(self, sessions, sequential):
        inline = run_darpa_over_fleet_parallel(
            sessions, "oracle", ct_ms=200.0, mode="full", n_workers=1)
        assert [result_key(r) for r in inline] == \
            [result_key(r) for r in sequential]

    def test_process_pool_matches_sequential(self, sessions, sequential):
        pooled = run_darpa_over_fleet_parallel(
            sessions, "oracle", ct_ms=200.0, mode="full",
            n_workers=2, n_shards=2)
        assert [result_key(r) for r in pooled] == \
            [result_key(r) for r in sequential]

    def test_shard_count_is_invisible(self, sessions, sequential):
        want = [result_key(r) for r in sequential]
        for n_shards in (1, 3, 4):
            got = run_darpa_over_fleet_parallel(
                sessions, "oracle", ct_ms=200.0, mode="full",
                n_workers=2, n_shards=n_shards)
            assert [result_key(r) for r in got] == want, (
                f"n_shards={n_shards} changed the fleet results")

    def test_results_come_back_in_fleet_order(self, sessions):
        pooled = run_darpa_over_fleet_parallel(
            sessions, "oracle", ct_ms=200.0, mode="full",
            n_workers=2, n_shards=3)
        assert [r.package for r in pooled] == \
            [s.spec.package for s in sessions]

    def test_empty_fleet(self):
        assert run_darpa_over_fleet_parallel([], "oracle") == []

    def test_chaotic_plan_is_shard_invariant(self, sessions):
        # Fault seeds travel with the global fleet index too, so a
        # chaos run is just as shard-invariant as a clean one.
        from repro.android.faults import FaultPlan
        plan = FaultPlan(screenshot_failure_rate=0.2, event_drop_rate=0.1,
                         detector_failure_rate=0.1)
        kwargs = {"breaker_failure_threshold": 2}

        def chaos_key(r):
            return result_key(r) + (tuple(sorted(r.resilience.items())),
                                    tuple(sorted(r.injected.items())))

        seq = run_darpa_over_fleet(
            sessions, "oracle", ct_ms=200.0, mode="full",
            fault_plan=plan, darpa_kwargs=kwargs)
        par = run_darpa_over_fleet_parallel(
            sessions, "oracle", ct_ms=200.0, mode="full",
            n_workers=2, n_shards=3, fault_plan=plan, darpa_kwargs=kwargs)
        assert [chaos_key(r) for r in par] == [chaos_key(r) for r in seq]
        # The plan actually did something in this fleet.
        assert sum(r.resilience["screenshot_failures"] for r in seq) > 0
