"""Unit tests for the run-directory loader (:mod:`repro.ops.artifacts`)."""

import json
import os

import pytest

from repro.ops.artifacts import RunDirectoryError, load_run
from repro.ops.routes import RouteError, resolve

HERE = os.path.dirname(os.path.abspath(__file__))
RUN_DIR = os.path.join(HERE, "fixtures", "run")


def write(path, text):
    with open(path, "w") as fp:
        fp.write(text)


SPAN = {"name": "session", "span_id": 1, "parent_id": None,
        "trace_id": "t0", "start_ms": 0.0, "end_ms": 100.0,
        "attributes": {}, "ops": {}}
CHILD = {"name": "capture", "span_id": 2, "parent_id": 1,
         "trace_id": "t0", "start_ms": 10.0, "end_ms": 20.0,
         "attributes": {}, "ops": {"screenshot": 1}}
GRANDCHILD = {"name": "encode", "span_id": 3, "parent_id": 2,
              "trace_id": "t0", "start_ms": 12.0, "end_ms": 15.0,
              "attributes": {}, "ops": {}}


def write_trace(run_dir, spans, session=0, name="trace.jsonl"):
    lines = [json.dumps({"session": session, **span}) for span in spans]
    write(os.path.join(run_dir, name), "".join(l + "\n" for l in lines))


class TestErrorPaths:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(RunDirectoryError, match="cannot list"):
            load_run(str(tmp_path / "nope"))

    def test_empty_directory(self, tmp_path):
        with pytest.raises(RunDirectoryError, match="no run artifacts"):
            load_run(str(tmp_path))

    def test_unrelated_files_only(self, tmp_path):
        write(str(tmp_path / "README.txt"), "not a run\n")
        with pytest.raises(RunDirectoryError, match="no run artifacts"):
            load_run(str(tmp_path))

    def test_malformed_trace_line_names_file_and_line(self, tmp_path):
        write(str(tmp_path / "trace.jsonl"),
              json.dumps({"session": 0, **SPAN}) + "\n{oops\n")
        with pytest.raises(RunDirectoryError, match=r"trace\.jsonl:2"):
            load_run(str(tmp_path))

    def test_non_object_trace_line(self, tmp_path):
        write(str(tmp_path / "trace.jsonl"), "[1,2,3]\n")
        with pytest.raises(RunDirectoryError, match="object per line"):
            load_run(str(tmp_path))

    def test_malformed_telemetry_json(self, tmp_path):
        write(str(tmp_path / "telemetry.json"), "{broken")
        with pytest.raises(RunDirectoryError, match="malformed JSON"):
            load_run(str(tmp_path))

    def test_malformed_daemon_json(self, tmp_path):
        write_trace(str(tmp_path), [SPAN])
        write(str(tmp_path / "daemon.json"), "nope{")
        with pytest.raises(RunDirectoryError, match=r"daemon\.json"):
            load_run(str(tmp_path))


class TestMinimalDirectories:
    def test_bare_trace_loads_and_rebuilds_telemetry(self, tmp_path):
        write_trace(str(tmp_path), [SPAN, CHILD])
        model = load_run(str(tmp_path))
        assert model.sessions == (0,)
        # Telemetry-free directory: the fleet snapshot is rebuilt from
        # the spans so the overview still has sketches to project.
        assert model.fleet.sessions == 1
        assert model.daemon is None and model.drain is None

    def test_daemon_only_directory_loads(self, tmp_path):
        write(str(tmp_path / "daemon.json"),
              json.dumps({"version": 1, "sessions": [], "rejections": [],
                          "batches": []}) + "\n")
        model = load_run(str(tmp_path))
        assert model.sessions == ()
        assert model.daemon is not None
        assert resolve(model, "/api/daemon")["available"] is True

    def test_precomputed_slo_json_wins_over_derivation(self, tmp_path):
        write_trace(str(tmp_path), [SPAN])
        canned = {"slos": [], "alerts": [], "all_met": False}
        write(str(tmp_path / "slo.json"), json.dumps(canned) + "\n")
        model = load_run(str(tmp_path))
        assert model.slo == canned


class TestTraceProjection:
    def test_depth_follows_parent_chain(self, tmp_path):
        write_trace(str(tmp_path), [GRANDCHILD, CHILD, SPAN])
        trace = load_run(str(tmp_path)).traces[0]
        by_name = {s.name: s for s in trace.spans}
        assert by_name["session"].depth == 0
        assert by_name["capture"].depth == 1
        assert by_name["encode"].depth == 2

    def test_spans_sorted_by_start_then_span_id(self, tmp_path):
        write_trace(str(tmp_path), [GRANDCHILD, CHILD, SPAN])
        trace = load_run(str(tmp_path)).traces[0]
        keys = [(s.start_ms, s.span_id) for s in trace.spans]
        assert keys == sorted(keys)

    def test_session_root_defines_trace_bounds(self, tmp_path):
        write_trace(str(tmp_path), [CHILD, SPAN])
        trace = load_run(str(tmp_path)).traces[0]
        assert trace.trace_id == "t0"
        assert (trace.start_ms, trace.end_ms) == (0.0, 100.0)

    def test_cpu_ms_prices_ops_through_the_cost_model(self, tmp_path):
        write_trace(str(tmp_path), [SPAN, CHILD])
        by_name = {s.name: s
                   for s in load_run(str(tmp_path)).traces[0].spans}
        assert by_name["capture"].cpu_ms > 0.0   # one screenshot op
        assert by_name["session"].cpu_ms == 0.0  # no ops of its own

    def test_span_ids_resolve_per_session(self, tmp_path):
        write_trace(str(tmp_path), [SPAN, CHILD])
        model = load_run(str(tmp_path))
        assert model.span_ids(0) == frozenset({1, 2})
        assert model.span_ids(99) == frozenset()


class TestFixtureModel:
    def test_budget_is_ct_plus_stage_costs_plus_slack(self):
        model = load_run(RUN_DIR, ct_ms=200.0)
        assert model.reaction_budget_ms == pytest.approx(355.0)
        other = load_run(RUN_DIR, ct_ms=100.0)
        assert other.reaction_budget_ms == pytest.approx(255.0)

    def test_unknown_routes_404(self):
        model = load_run(RUN_DIR)
        for path in ("/api/nope", "/api/traces/999", "/api/traces/abc",
                     "/api/quantiles/bogus"):
            with pytest.raises(RouteError) as err:
                resolve(model, path)
            assert err.value.status == 404
