"""Regenerate the ops-dashboard fixture run and its golden responses.

Usage::

    PYTHONPATH=src python tests/ops/regen_fixture.py

Writes ``tests/ops/fixtures/run/`` (a seeded 12-session fleet run left
as four 3-session shard part file sets, plus the ``daemon.json`` /
``drain.json`` of a zero-shed daemon pass over the same fleet, plus a
``baseline.profile.json`` folded from the same spans under a 20%
cheaper cost model so ``/api/flame/diff`` has a real regression to
rank) and ``tests/ops/goldens/`` (one canonical-JSON file per
dashboard route, exactly the bytes ``repro dash --once`` dumps).

Everything here is seeded, so reruns are byte-identical; regenerate
ONLY when the artifact schema or the route payloads intentionally
change, and commit the diff together with the code that changed them.
"""

import dataclasses
import os
import shutil
import tempfile

from repro.android.device import DeviceProfile
from repro.bench.experiments import build_runtime_fleet, run_darpa_over_fleet
from repro.bench.parallel import _write_shard_artifacts
from repro.core.daemon import DaemonConfig, DarpaDaemon
from repro.ops.artifacts import load_run
from repro.ops.routes import dump_routes, golden_name, route_paths
from repro.profiling import profile_from_results

#: Fixture workload: 12 sessions, 5 s each, seed 0 — big enough that
#: every route has real content (alerts, exemplars, nested spans),
#: small enough to commit.
N_SESSIONS = 12
SEED = 0
DURATION_MS = 5_000.0
CT_MS = 200.0
SHARD_SIZE = 3

#: In-capacity daemon config (mirrors the daemon tests' zero-shed
#: setup): nothing sheds or degrades, so daemon.json stays coherent
#: with the shard telemetry written by the plain fleet pass.
DAEMON_CONFIG = dict(inter_arrival_ms=120.0, workers=2, batch_max=3,
                     admission_rate_per_s=50.0, admission_burst=16,
                     batch_service_ms=250.0, shed_deadline_ms=0.0,
                     background_every=3)

HERE = os.path.dirname(os.path.abspath(__file__))
RUN_DIR = os.path.join(HERE, "fixtures", "run")
GOLDEN_DIR = os.path.join(HERE, "goldens")
#: The profiling goldens (canonical profile.json + folded stacks) are
#: folded from this same fixture run, so one regen keeps them in sync.
PROFILE_GOLDEN_DIR = os.path.join(os.path.dirname(HERE), "profiling",
                                  "goldens")


def regenerate() -> None:
    fleet = build_runtime_fleet(n_apps=N_SESSIONS, seed=SEED,
                                duration_ms=DURATION_MS)
    results = run_darpa_over_fleet(fleet, "oracle", ct_ms=CT_MS,
                                   mode="full", trace=True)

    shutil.rmtree(RUN_DIR, ignore_errors=True)
    os.makedirs(RUN_DIR)
    pairs = list(enumerate(results))
    for lo in range(0, N_SESSIONS, SHARD_SIZE):
        _write_shard_artifacts(RUN_DIR, pairs[lo:lo + SHARD_SIZE])

    # A synthetic "last known good" profile: the same spans folded
    # under a 20% cheaper capture/inference cost model, so the current
    # run reads as a seeded regression and /api/flame/diff ranks the
    # screenshot path as its top positive delta.
    cheaper = dataclasses.replace(
        DeviceProfile(),
        screenshot_cpu_ms=DeviceProfile.screenshot_cpu_ms * 0.8,
        inference_cpu_ms=DeviceProfile.inference_cpu_ms * 0.8)
    baseline = profile_from_results(results, profile=cheaper)
    with open(os.path.join(RUN_DIR, "baseline.profile.json"), "w") as fp:
        fp.write(baseline.to_json())

    # Scheduling artifacts from a daemon pass over the same fleet.  The
    # run lands in a scratch dir; only daemon.json/drain.json move into
    # the fixture — the shard parts above stay the telemetry source.
    scratch = tempfile.mkdtemp(prefix="ops-fixture-daemon-")
    try:
        DarpaDaemon(fleet, "oracle", config=DaemonConfig(**DAEMON_CONFIG),
                    ct_ms=CT_MS, out_dir=scratch, trace=False,
                    keep_results=False).run()
        for name in ("daemon.json", "drain.json"):
            shutil.copyfile(os.path.join(scratch, name),
                            os.path.join(RUN_DIR, name))
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    model = load_run(RUN_DIR, ct_ms=CT_MS)
    dumped = dump_routes(model)
    shutil.rmtree(GOLDEN_DIR, ignore_errors=True)
    os.makedirs(GOLDEN_DIR)
    for path in route_paths(model):
        with open(os.path.join(GOLDEN_DIR, golden_name(path)), "wb") as fp:
            fp.write(dumped[path])

    shutil.rmtree(PROFILE_GOLDEN_DIR, ignore_errors=True)
    os.makedirs(PROFILE_GOLDEN_DIR)
    run_profile = profile_from_results(results)
    with open(os.path.join(PROFILE_GOLDEN_DIR, "profile.json"), "w") as fp:
        fp.write(run_profile.to_json())
    with open(os.path.join(PROFILE_GOLDEN_DIR, "profile.folded"), "w") as fp:
        fp.write(run_profile.folded_text())

    print(f"fixture: {len(os.listdir(RUN_DIR))} files in {RUN_DIR}")
    print(f"goldens: {len(dumped)} routes in {GOLDEN_DIR}")
    print(f"profile goldens: {len(os.listdir(PROFILE_GOLDEN_DIR))} files "
          f"in {PROFILE_GOLDEN_DIR}")


if __name__ == "__main__":
    regenerate()
