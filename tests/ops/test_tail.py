"""Unit tests for the SSE tail cursor (:mod:`repro.ops.tail`).

The cursor contract: an event's cursor is the byte offset just past its
line's newline, so resuming a new :class:`JsonlTail` from any event's
cursor replays exactly the bytes an uninterrupted reader would have
seen — which is what makes ``Last-Event-ID`` reconnects lossless.
"""

import os

from repro.ops.tail import JsonlTail, TailEvent, format_sse


def append(path, text):
    with open(path, "a") as fp:
        fp.write(text)


def make(path, text=""):
    with open(path, "w") as fp:
        fp.write(text)
    return str(path)


class TestPolling:
    def test_complete_lines_become_events(self, tmp_path):
        path = make(tmp_path / "t.jsonl", '{"a":1}\n{"a":2}\n')
        events = JsonlTail(path).poll()
        assert [e.data for e in events] == ['{"a":1}', '{"a":2}']
        assert [e.cursor for e in events] == [8, 16]

    def test_missing_file_is_quietly_empty(self, tmp_path):
        tail = JsonlTail(str(tmp_path / "absent.jsonl"))
        assert tail.poll() == []
        assert tail.cursor == 0

    def test_poll_is_incremental(self, tmp_path):
        path = make(tmp_path / "t.jsonl", '{"a":1}\n')
        tail = JsonlTail(path)
        assert len(tail.poll()) == 1
        assert tail.poll() == []          # nothing new
        append(path, '{"a":2}\n')
        assert [e.data for e in tail.poll()] == ['{"a":2}']

    def test_blank_lines_are_skipped_but_consumed(self, tmp_path):
        path = make(tmp_path / "t.jsonl", '{"a":1}\n\n{"a":2}\n')
        events = JsonlTail(path).poll()
        assert [e.data for e in events] == ['{"a":1}', '{"a":2}']
        # The blank line advanced the cursor even though it emitted
        # nothing — resuming from the last event must not re-read it.
        assert events[-1].cursor == os.path.getsize(path)


class TestPartialWrites:
    def test_partial_line_is_withheld_until_terminated(self, tmp_path):
        path = make(tmp_path / "t.jsonl", '{"a":1}\n{"a":2')
        tail = JsonlTail(path)
        assert [e.data for e in tail.poll()] == ['{"a":1}']
        assert tail.poll() == []          # still mid-line
        append(path, '}\n')
        assert [e.data for e in tail.poll()] == ['{"a":2}']

    def test_partial_line_never_moves_the_cursor(self, tmp_path):
        path = make(tmp_path / "t.jsonl", '{"a":1}\n')
        tail = JsonlTail(path)
        tail.poll()
        append(path, '{"a":2')
        tail.poll()
        assert tail.cursor == 8           # parked at the last newline


class TestRotation:
    def test_truncation_restarts_from_zero(self, tmp_path):
        path = make(tmp_path / "t.jsonl", '{"a":1}\n{"a":2}\n')
        tail = JsonlTail(path)
        tail.poll()
        make(path, '{"b":1}\n')           # rotated: shorter than cursor
        events = tail.poll()
        assert [e.data for e in events] == ['{"b":1}']
        assert events[0].cursor == 8


class TestResume:
    def test_resume_from_cursor_equals_uninterrupted_read(self, tmp_path):
        path = make(tmp_path / "t.jsonl", "")
        lines = [f'{{"n":{i}}}\n' for i in range(10)]
        # One reader stays attached the whole time.
        attached = JsonlTail(path)
        seen = []
        # The other is killed and re-created from its cursor mid-stream.
        cursor = 0
        resumed = []
        for i, line in enumerate(lines):
            append(path, line)
            seen += attached.poll()
            if i % 3 == 0:  # kill + resume at every third write
                fresh = JsonlTail(path, cursor=cursor)
            events = fresh.poll()
            resumed += events
            if events:
                cursor = events[-1].cursor
        assert resumed == seen
        assert [e.data for e in seen] == [l.rstrip("\n") for l in lines]

    def test_resume_past_end_waits_for_new_data(self, tmp_path):
        path = make(tmp_path / "t.jsonl", '{"a":1}\n')
        tail = JsonlTail(path, cursor=8)
        assert tail.poll() == []
        append(path, '{"a":2}\n')
        assert [e.data for e in tail.poll()] == ['{"a":2}']


class TestSseFraming:
    def test_frame_carries_cursor_as_event_id(self):
        frame = format_sse(TailEvent(cursor=42, data='{"a":1}'))
        assert frame == b'id: 42\ndata: {"a":1}\n\n'

    def test_event_is_immutable(self):
        event = TailEvent(cursor=1, data="x")
        try:
            event.cursor = 2
        except AttributeError:
            return
        raise AssertionError("TailEvent should be frozen")
