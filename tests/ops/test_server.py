"""Server tests driven synchronously — fake sockets, no live ports, no
sleeps.

:func:`respond` and :func:`stream_events` are pure-ish seams
(``BytesIO`` in, bytes out); :class:`OpsHandler` is exercised through a
fake socket so the full request path — headers, status line, SSE
framing, ``Last-Event-ID`` resume — runs without ever binding a port
or spawning a thread.
"""

import io
import json
import os

import pytest

from repro.ops.artifacts import load_run
from repro.ops.routes import canonical_bytes, resolve
from repro.ops.server import OpsHandler, respond, static_html, stream_events
from repro.ops.tail import JsonlTail

HERE = os.path.dirname(os.path.abspath(__file__))
RUN_DIR = os.path.join(HERE, "fixtures", "run")


@pytest.fixture(scope="module")
def model():
    return load_run(RUN_DIR, ct_ms=200.0)


# ---------------------------------------------------------------------------
# respond(): the pure request -> Response seam
# ---------------------------------------------------------------------------

class TestRespond:
    def test_root_serves_the_static_panel(self, model):
        for path in ("/", "/index.html"):
            response = respond(model, path)
            assert response.status == 200
            assert response.content_type.startswith("text/html")
            assert response.body == static_html()
            assert b"darpa ops" in response.body

    def test_api_routes_serve_canonical_bytes(self, model):
        for path in ("/api/overview", "/api/slo", "/api/daemon",
                     "/api/quantiles/reaction", "/api/traces/0"):
            response = respond(model, path)
            assert response.status == 200
            assert response.content_type == "application/json"
            assert response.body == canonical_bytes(resolve(model, path))

    def test_unknown_path_is_a_json_404(self, model):
        response = respond(model, "/api/bogus")
        assert response.status == 404
        assert json.loads(response.body) == {
            "error": "no such route '/api/bogus'", "status": 404}

    def test_query_strings_are_ignored_for_routing(self, model):
        assert (respond(model, "/api/overview?x=1").body
                == respond(model, "/api/overview").body)


# ---------------------------------------------------------------------------
# stream_events(): BytesIO in, SSE frames out
# ---------------------------------------------------------------------------

def counting_cadence(rounds):
    """A cadence that allows ``rounds`` poll rounds, then stops."""
    state = {"left": rounds}

    def cadence():
        state["left"] -= 1
        return state["left"] > 0
    return cadence


class TestStreamEvents:
    def test_drains_existing_lines_then_stops(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as fp:
            fp.write('{"n":1}\n{"n":2}\n')
        out = io.BytesIO()
        sent = stream_events(out, JsonlTail(path), counting_cadence(1))
        assert sent == 2
        assert out.getvalue() == (b'id: 8\ndata: {"n":1}\n\n'
                                  b'id: 16\ndata: {"n":2}\n\n')

    def test_max_events_caps_the_stream_mid_poll(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as fp:
            fp.write('{"n":1}\n{"n":2}\n{"n":3}\n')
        out = io.BytesIO()
        sent = stream_events(out, JsonlTail(path), counting_cadence(99),
                             max_events=2)
        assert sent == 2
        assert out.getvalue().count(b"data: ") == 2

    def test_picks_up_lines_written_between_polls(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as fp:
            fp.write('{"n":1}\n')
        tail = JsonlTail(path)

        def write_then_continue():
            with open(path, "a") as fp:
                fp.write('{"n":2}\n')
            return cadence_inner()
        cadence_inner = counting_cadence(2)
        out = io.BytesIO()
        sent = stream_events(out, tail, write_then_continue)
        assert sent == 2

    def test_closed_sink_ends_the_stream(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as fp:
            fp.write('{"n":1}\n')
        out = io.BytesIO()
        out.close()
        # flush() on a closed BytesIO raises ValueError -> clean stop.
        sent = stream_events(out, JsonlTail(path, cursor=8),
                             counting_cadence(99))
        assert sent == 0


# ---------------------------------------------------------------------------
# OpsHandler through a fake socket
# ---------------------------------------------------------------------------

class FakeSocket:
    """Just enough socket for ``StreamRequestHandler``: reads come from
    the canned request, writes land in ``sent``."""

    def __init__(self, request: bytes):
        self._request = request
        self.sent = bytearray()

    def makefile(self, mode, *args, **kwargs):
        assert "r" in mode
        return io.BytesIO(self._request)

    def sendall(self, data):
        self.sent += data


def serve(handler_cls, request_line, headers=()):
    request = request_line.encode() + b"\r\n"
    for name, value in headers:
        request += f"{name}: {value}\r\n".encode()
    request += b"\r\n"
    sock = FakeSocket(request)
    handler_cls(sock, ("127.0.0.1", 0), None)
    raw = bytes(sock.sent)
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    header_map = {}
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.decode().partition(": ")
        header_map[name.lower()] = value
    return status, header_map, body


@pytest.fixture(scope="module")
def handler_cls(model):
    trace = os.path.join(RUN_DIR, "shard-000000.trace.jsonl")
    return type("TestOpsHandler", (OpsHandler,), {
        "model": model,
        "trace_path": trace,
        "cadence": staticmethod(lambda: False),
        "max_events": None,
    })


class TestHandler:
    def test_api_response_with_headers(self, model, handler_cls):
        status, headers, body = serve(handler_cls,
                                      "GET /api/overview HTTP/1.0")
        expected = canonical_bytes(resolve(model, "/api/overview"))
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert headers["content-length"] == str(len(expected))
        assert body == expected

    def test_static_page(self, handler_cls):
        status, headers, body = serve(handler_cls, "GET / HTTP/1.0")
        assert status == 200
        assert headers["content-type"].startswith("text/html")
        assert body == static_html()

    def test_404_status_line(self, handler_cls):
        status, _, body = serve(handler_cls, "GET /api/bogus HTTP/1.0")
        assert status == 404
        assert json.loads(body)["status"] == 404

    def test_events_streams_sse_frames(self, handler_cls):
        status, headers, body = serve(handler_cls,
                                      "GET /events?limit=3 HTTP/1.0")
        assert status == 200
        assert headers["content-type"] == "text/event-stream"
        assert body.count(b"\n\n") == 3
        assert body.startswith(b"id: ")

    def test_killed_and_resumed_stream_is_byte_identical(self,
                                                         handler_cls):
        # One uninterrupted read of the first 6 events...
        _, _, whole = serve(handler_cls, "GET /events?limit=6 HTTP/1.0")
        frames = whole.split(b"\n\n")[:-1]
        # ...versus a stream killed after 3 and resumed via the SSE
        # reconnect protocol (Last-Event-ID = last seen event id).
        _, _, first = serve(handler_cls, "GET /events?limit=3 HTTP/1.0")
        last_id = first.split(b"\n\n")[-2].split(b"\n")[0]
        cursor = int(last_id.split(b": ")[1])
        _, _, second = serve(handler_cls, "GET /events?limit=3 HTTP/1.0",
                             headers=[("Last-Event-ID", str(cursor))])
        assert first + second == whole
        assert len(frames) == 6

    def test_cursor_query_parameter_also_resumes(self, handler_cls):
        _, _, first = serve(handler_cls, "GET /events?limit=1 HTTP/1.0")
        cursor = int(first.split(b"\n")[0].split(b": ")[1])
        _, _, by_header = serve(handler_cls, "GET /events?limit=1 HTTP/1.0",
                                headers=[("Last-Event-ID", str(cursor))])
        _, _, by_query = serve(
            handler_cls, f"GET /events?limit=1&cursor={cursor} HTTP/1.0")
        assert by_query == by_header
        assert by_query != first
