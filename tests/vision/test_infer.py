"""Tests for the inference fast path (repro.vision.nn.infer).

The contract under test: a compiled InferencePlan computes the same
function as the training-mode layer stack in eval mode (up to BN-folding
float error), batched execution is *bit-identical* to per-image
execution, and stale plans are rebuilt whenever weights can change.
"""

import numpy as np
import pytest

from repro.vision import TinyYolo, YoloConfig
from repro.vision.nn import (
    BatchNorm2D,
    Conv2D,
    InferencePlan,
    LeakyReLU,
    MaxPool2D,
    Sequential,
    fold_batchnorm,
    fold_conv_bn,
)


@pytest.fixture(scope="module")
def small_config():
    return YoloConfig(input_w=24, input_h=24, channels=(8, 8, 8, 8))


@pytest.fixture(scope="module")
def model(small_config):
    return TinyYolo(small_config, seed=0)


def random_screens(n, seed=0, h=160, w=90):
    rng = np.random.default_rng(seed)
    return [rng.random((h, w, 3)) for _ in range(n)]


def warmed_batchnorm(channels, seed):
    """A BN layer with non-trivial running statistics."""
    bn = BatchNorm2D(channels)
    rng = np.random.default_rng(seed)
    for _ in range(4):
        bn.forward(rng.normal(0.5, 2.0, (4, channels, 6, 6)).astype(np.float32),
                   training=True)
    bn.gamma.value = rng.normal(1.0, 0.2, channels).astype(np.float32)
    bn.beta.value = rng.normal(0.0, 0.2, channels).astype(np.float32)
    return bn


class TestFolding:
    def test_fold_conv_bn_matches_eval_composition(self):
        rng = np.random.default_rng(1)
        conv = Conv2D(4, 6, kernel=3, rng=rng)
        bn = warmed_batchnorm(6, seed=2)
        x = rng.normal(0, 1, (3, 4, 8, 8)).astype(np.float32)
        want = bn.forward(conv.forward(x), training=False)
        got = fold_conv_bn(conv, bn).forward(x)
        np.testing.assert_allclose(got, want, atol=1e-5)

    def test_fold_creates_bias_when_absent(self):
        conv = Conv2D(2, 3, kernel=1, bias=False,
                      rng=np.random.default_rng(0))
        folded = fold_conv_bn(conv, warmed_batchnorm(3, seed=1))
        assert folded.bias is not None
        assert folded.bias.value.shape == (3,)

    def test_fold_batchnorm_rewrites_pairs_only(self):
        rng = np.random.default_rng(3)
        layers = [Conv2D(3, 4, kernel=3, rng=rng), warmed_batchnorm(4, seed=4),
                  LeakyReLU(0.1), MaxPool2D(2), Conv2D(4, 5, kernel=1, rng=rng)]
        folded = fold_batchnorm(layers)
        assert len(folded) == 4
        assert not any(isinstance(l, BatchNorm2D) for l in folded)
        # Unpaired layers pass through as the same objects.
        assert folded[1] is layers[2]
        assert folded[3] is layers[4]

    def test_original_layers_unmodified(self):
        rng = np.random.default_rng(5)
        conv = Conv2D(3, 4, kernel=3, rng=rng)
        before = conv.weight.value.copy()
        fold_conv_bn(conv, warmed_batchnorm(4, seed=6))
        np.testing.assert_array_equal(conv.weight.value, before)


class TestPlanEquivalence:
    def test_plan_matches_eval_forward(self, model, small_config):
        x = np.random.default_rng(7).normal(
            0, 1, (4, 3, 24, 24)).astype(np.float32)
        plan = InferencePlan([*model.backbone.layers, model.head])
        np.testing.assert_allclose(plan.forward(x),
                                   model.forward(x, training=False),
                                   atol=1e-4)

    def test_batched_bit_identical_to_per_image(self, model):
        x = np.random.default_rng(8).normal(
            0, 1, (6, 3, 24, 24)).astype(np.float32)
        plan = model.inference_plan()
        batched = plan.forward(x)
        singles = np.concatenate([plan.forward(x[i:i + 1]) for i in range(6)])
        np.testing.assert_array_equal(batched, singles)

    def test_buffer_reuse_is_consistent_across_calls(self, model):
        x = np.random.default_rng(9).normal(
            0, 1, (2, 3, 24, 24)).astype(np.float32)
        plan = model.inference_plan()
        first = plan.forward(x)
        again = plan.forward(x)
        np.testing.assert_array_equal(first, again)
        # The returned array is a fresh copy, not a view of scratch.
        plan.forward(np.zeros_like(x))
        np.testing.assert_array_equal(first, again)

    def test_detect_screens_matches_detect_screen(self, model):
        screens = random_screens(5, seed=10)
        for refine in (False, True):
            batched = model.detect_screens(screens, refine=refine)
            singles = [model.detect_screen(s, refine=refine) for s in screens]
            assert batched == singles

    def test_detect_screens_empty_input(self, model):
        assert model.detect_screens([]) == []


class TestPlanLifecycle:
    def test_training_forward_invalidates_plan(self, small_config):
        model = TinyYolo(small_config, seed=1)
        stale = model.inference_plan()
        x = np.random.default_rng(11).normal(
            0, 1, (2, 3, 24, 24)).astype(np.float32)
        model.forward(x, training=True)
        assert model.inference_plan() is not stale

    def test_load_state_dict_invalidates_plan(self, small_config):
        model = TinyYolo(small_config, seed=1)
        other = TinyYolo(small_config, seed=2)
        x = np.random.default_rng(12).normal(
            0, 1, (1, 3, 24, 24)).astype(np.float32)
        before = model.predict_raw(x)
        model.load_state_dict(other.state_dict())
        after = model.predict_raw(x)
        assert not np.array_equal(before, after)
        np.testing.assert_allclose(after, other.predict_raw(x), atol=1e-6)

    def test_plan_survives_pickling_via_model(self, small_config):
        import pickle
        model = TinyYolo(small_config, seed=1)
        model.inference_plan()  # built, then dropped by __getstate__
        clone = pickle.loads(pickle.dumps(model))
        x = np.random.default_rng(13).normal(
            0, 1, (2, 3, 24, 24)).astype(np.float32)
        np.testing.assert_array_equal(clone.predict_raw(x),
                                      model.predict_raw(x))
