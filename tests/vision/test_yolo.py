"""Tests for TinyYOLO: encoding, loss, decode, training dynamics."""

import numpy as np
import pytest

from repro.geometry import Rect, iou
from repro.vision import TinyYolo, YoloConfig, YoloTrainer
from repro.vision.dataset import DetectionDataset


@pytest.fixture(scope="module")
def small_config():
    # 24x24 input -> 3x3 grid: fast enough for unit tests.
    return YoloConfig(input_w=24, input_h=24, channels=(8, 8, 8, 8))


@pytest.fixture(scope="module")
def model(small_config):
    return TinyYolo(small_config, seed=0)


def synthetic_dataset(n=24, seed=0, w=24, h=24):
    """Bright squares on dark backgrounds; class by size."""
    rng = np.random.default_rng(seed)
    images = np.zeros((n, 3, h, w), dtype=np.float32)
    labels = []
    for i in range(n):
        big = i % 2 == 0
        size = 12 if big else 5
        x = int(rng.integers(1, w - size - 1))
        y = int(rng.integers(1, h - size - 1))
        images[i, :, y:y + size, x:x + size] = 1.0
        cls = 0 if big else 1
        labels.append([(cls, Rect(x, y, size, size))])
    return DetectionDataset(images=images, labels=labels)


class TestConfig:
    def test_grid_from_input(self):
        cfg = YoloConfig(input_w=72, input_h=128)
        assert cfg.cells_x == 9 and cfg.cells_y == 16

    def test_out_channels(self):
        assert YoloConfig(n_classes=2).out_channels == 7


class TestForward:
    def test_output_shape(self, model, small_config):
        x = np.zeros((2, 3, 24, 24), dtype=np.float32)
        raw = model.forward(x)
        assert raw.shape == (2, small_config.out_channels, 3, 3)


class TestTargets:
    def test_encode_marks_correct_cell(self, model):
        labels = [[(1, Rect(8, 8, 6, 6))]]  # center (11, 11) -> cell (1,1)
        t = model.encode_targets(labels)
        assert t["obj"][0, 1, 1] == 1.0
        assert t["obj"].sum() == 1.0
        assert t["cls"][0, 1, 1] == 1

    def test_encode_empty_labels(self, model):
        t = model.encode_targets([[]])
        assert t["obj"].sum() == 0


class TestLoss:
    def test_loss_positive_and_grad_shaped(self, model):
        x = np.random.default_rng(0).normal(0, 1, (2, 3, 24, 24)).astype(np.float32)
        raw = model.forward(x, training=True)
        targets = model.encode_targets([[(0, Rect(4, 4, 10, 10))], []])
        loss, grad = model.loss_and_grad(raw, targets)
        assert loss > 0
        assert grad.shape == raw.shape

    def test_perfect_prediction_low_loss(self, model, small_config):
        """Crafted raw outputs matching the targets give near-zero loss."""
        labels = [[(1, Rect(8, 8, 8, 8))]]
        targets = model.encode_targets(labels)
        gy, gx = small_config.cells_y, small_config.cells_x
        raw = np.zeros((1, small_config.out_channels, gy, gx), dtype=np.float32)
        raw[0, 0] = -12.0  # no object anywhere...
        row, col = np.argwhere(targets["obj"][0] > 0)[0]
        raw[0, 0, row, col] = 12.0  # ...except the labeled cell
        box_t = targets["box"][0, :, row, col]
        eps = 1e-5
        logits = np.log(np.clip(box_t, eps, 1 - eps) / np.clip(1 - box_t, eps, 1 - eps))
        raw[0, 1:5, row, col] = logits
        raw[0, 5, row, col] = -12.0
        raw[0, 6, row, col] = 12.0  # class 1
        loss, _ = model.loss_and_grad(raw, targets)
        assert loss < 0.05


class TestDecode:
    def test_decode_confident_cell(self, model, small_config):
        gy, gx = small_config.cells_y, small_config.cells_x
        raw = np.full((small_config.out_channels, gy, gx), -10.0, dtype=np.float32)
        raw[0, 1, 1] = 10.0   # objectness
        raw[1:5, 1, 1] = 0.0  # box center mid-cell, medium size
        raw[5, 1, 1] = 6.0    # class 0 (AGO)
        dets = model.decode(raw)
        assert len(dets) == 1
        assert dets[0].label == "AGO"
        assert dets[0].score > 0.9
        cx, cy = dets[0].rect.center
        assert 8 < cx < 16 and 8 < cy < 16  # inside cell (1,1)

    def test_decode_respects_threshold(self, model, small_config):
        gy, gx = small_config.cells_y, small_config.cells_x
        raw = np.full((small_config.out_channels, gy, gx), -10.0, dtype=np.float32)
        raw[0, 0, 0] = 0.0  # p=0.5
        assert model.decode(raw, conf_threshold=0.6) == []
        assert len(model.decode(raw, conf_threshold=0.4)) == 1


class TestStateDict:
    def test_roundtrip_preserves_inference(self, small_config):
        a = TinyYolo(small_config, seed=1)
        ds = synthetic_dataset(8)
        YoloTrainer(a, lr=5e-3, batch_size=4).fit(ds, epochs=2)
        b = TinyYolo(small_config, seed=99)
        b.load_state_dict(a.state_dict())
        x = ds.images[:4]
        assert np.allclose(a.predict_raw(x), b.predict_raw(x), atol=1e-5)

    def test_savez_roundtrip(self, small_config, tmp_path):
        a = TinyYolo(small_config, seed=1)
        ds = synthetic_dataset(8)
        YoloTrainer(a, lr=5e-3, batch_size=4).fit(ds, epochs=2)
        path = tmp_path / "state.npz"
        np.savez(path, **a.state_dict())
        loaded = dict(np.load(path))
        b = TinyYolo(small_config, seed=7)
        b.load_state_dict(loaded)
        x = ds.images[:2]
        assert np.allclose(a.predict_raw(x), b.predict_raw(x), atol=1e-5)

    def test_set_weights_shape_mismatch_raises(self, small_config):
        a = TinyYolo(small_config, seed=0)
        weights = a.get_weights()
        weights[0] = weights[0][..., :1]
        with pytest.raises(ValueError):
            a.set_weights(weights)


class TestTraining:
    def test_loss_decreases(self, small_config):
        model = TinyYolo(small_config, seed=2)
        ds = synthetic_dataset(24)
        trainer = YoloTrainer(model, lr=3e-3, batch_size=8, seed=0)
        history = trainer.fit(ds, epochs=12)
        assert history.losses[-1] < history.losses[0] * 0.5

    def test_learns_the_toy_task(self, small_config):
        """After training, the model must localize and classify squares."""
        model = TinyYolo(small_config, seed=3)
        ds = synthetic_dataset(32, seed=5)
        trainer = YoloTrainer(model, lr=3e-3, batch_size=8, seed=0)
        trainer.fit(ds, epochs=40)
        hits = 0
        total = 0
        for i in range(len(ds)):
            dets = model.detect_batch(ds.images[i:i + 1], conf_threshold=0.4)[0]
            cls, truth = ds.labels[i][0]
            total += 1
            for d in dets:
                if d.label == ("AGO", "UPO")[cls] and iou(d.rect, truth) > 0.4:
                    hits += 1
                    break
        assert hits / total > 0.7

    def test_trainer_rejects_bad_batch(self, model):
        with pytest.raises(ValueError):
            YoloTrainer(model, batch_size=0)

    def test_validation_loss_tracked(self, small_config):
        model = TinyYolo(small_config, seed=4)
        ds = synthetic_dataset(16)
        val = synthetic_dataset(8, seed=9)
        history = YoloTrainer(model, batch_size=8).fit(ds, epochs=3,
                                                       val_dataset=val)
        assert len(history.val_losses) == 3
