"""Tests for region proposals, feature backbones, and RCNN detectors."""

import numpy as np
import pytest

from repro.datagen import build_corpus, split_corpus
from repro.geometry import Rect, iou
from repro.vision.dataset import build_detection_dataset
from repro.vision.features import Resnet50Backbone, Vgg16Backbone
from repro.vision.rcnn import (
    RcnnConfig,
    RcnnDetector,
    propose_regions,
    table5_model_suite,
)
from repro.imaging import Canvas
from repro.imaging.color import PALETTE


@pytest.fixture(scope="module")
def small_split():
    corpus = build_corpus(seed=0, n_negatives=0)
    splits = split_corpus(corpus)
    train = build_detection_dataset(splits["train"][:40], keep_screen_images=True)
    test = build_detection_dataset(splits["test"][:20], keep_screen_images=True)
    return train, test


class TestProposals:
    def test_flat_button_proposed(self):
        canvas = Canvas(360, 640, background=PALETTE["white"])
        truth = Rect(100, 200, 120, 48)
        canvas.fill_rect(truth, PALETTE["blue"])
        proposals = propose_regions(canvas.to_array())
        assert any(iou(p, truth) > 0.6 for p in proposals)

    def test_respects_max_proposals(self):
        rng = np.random.default_rng(0)
        img = rng.random((640, 360, 3)).astype(np.float32)
        assert len(propose_regions(img, max_proposals=10)) <= 10

    def test_tiny_regions_filtered(self):
        canvas = Canvas(360, 640, background=PALETTE["white"])
        canvas.fill_rect(Rect(10, 10, 3, 3), PALETTE["red"])
        proposals = propose_regions(canvas.to_array(), min_side=8)
        assert all(p.w >= 8 and p.h >= 8 for p in proposals)

    def test_covers_real_aui_options(self, small_split):
        """Proposals must reach most ground-truth options at IoU 0.5."""
        _, test = small_split
        covered = total = 0
        for img, labels in zip(test.screen_images, test.screen_labels):
            proposals = propose_regions(img)
            for _, gt in labels:
                total += 1
                if any(iou(p, gt) > 0.5 for p in proposals):
                    covered += 1
        assert covered / total > 0.6


class TestBackbones:
    def test_feature_dims_match_declaration(self, small_split):
        _, test = small_split
        img = test.screen_images[0]
        rect = Rect(50, 50, 60, 40)
        for backbone in (Vgg16Backbone(), Resnet50Backbone()):
            feat = backbone.extract(img, rect)
            assert feat.shape == (backbone.dim,)
            assert np.isfinite(feat).all()

    def test_resnet_richer_than_vgg(self):
        assert Resnet50Backbone().dim > Vgg16Backbone().dim
        assert Resnet50Backbone().unit_cost > Vgg16Backbone().unit_cost

    def test_features_differ_across_patches(self, small_split):
        _, test = small_split
        img = test.screen_images[0]
        bb = Vgg16Backbone()
        a = bb.extract(img, Rect(10, 10, 50, 50))
        b = bb.extract(img, Rect(200, 400, 80, 40))
        assert not np.allclose(a, b)

    def test_offscreen_rect_yields_finite_features(self, small_split):
        _, test = small_split
        feat = Vgg16Backbone().extract(test.screen_images[0],
                                       Rect(350, 630, 40, 40))
        assert np.isfinite(feat).all()


class TestRcnnDetector:
    def test_unknown_backbone_rejected(self):
        with pytest.raises(ValueError):
            RcnnDetector("AlexNet")

    def test_detect_before_fit_raises(self, small_split):
        _, test = small_split
        det = RcnnDetector("VGG16")
        with pytest.raises(RuntimeError):
            det.detect_screen(test.screen_images[0])

    def test_names(self):
        assert RcnnDetector("VGG16").name == "Faster RCNN+VGG16"
        assert RcnnDetector("ResNet50", mask_refinement=True).name == "Mask RCNN+ResNet50"

    def test_fit_reduces_loss_and_detects(self, small_split):
        train, test = small_split
        det = RcnnDetector("ResNet50", mask_refinement=True,
                           config=RcnnConfig(epochs=25))
        losses = det.fit(train)
        assert losses[-1] < losses[0]
        # After fitting, it should find at least some true options.
        hits = 0
        for img, labels in zip(test.screen_images, test.screen_labels):
            dets = det.detect_screen(img)
            for d in dets:
                if any(d.label == role and iou(d.rect, gt) > 0.5
                       for role, gt in labels):
                    hits += 1
        assert hits > 0
        assert det.last_inference_ms > 0

    def test_training_needs_screen_images(self):
        ds = build_detection_dataset([], keep_screen_images=False)
        det = RcnnDetector("VGG16")
        import pytest as _pytest
        with _pytest.raises(ValueError):
            det.fit(ds)

    def test_suite_has_four_table5_rows(self):
        suite = table5_model_suite()
        assert set(suite) == {
            "Faster RCNN+VGG16", "Faster RCNN+ResNet50",
            "Mask RCNN+VGG16", "Mask RCNN+ResNet50",
        }


class TestBBoxRegressor:
    def test_encode_apply_roundtrip(self):
        from repro.vision.rcnn import BBoxRegressor
        proposal = Rect(100, 100, 40, 30)
        truth = Rect(104, 96, 44, 36)
        deltas = BBoxRegressor.encode(proposal, truth)
        back = BBoxRegressor.apply(proposal, deltas)
        assert iou(back, truth) > 0.95

    def test_unfitted_predicts_zero_deltas(self):
        from repro.vision.rcnn import BBoxRegressor
        reg = BBoxRegressor()
        assert not reg.fitted
        deltas = reg.predict(np.zeros(16, dtype=np.float32))
        assert np.allclose(deltas, 0.0)
        rect = Rect(10, 10, 20, 20)
        assert iou(BBoxRegressor.apply(rect, deltas), rect) > 0.99

    def test_fit_requires_enough_rows(self):
        from repro.vision.rcnn import BBoxRegressor
        reg = BBoxRegressor()
        reg.fit(np.zeros((3, 8), dtype=np.float32), np.zeros((3, 4)))
        assert not reg.fitted

    def test_fit_learns_constant_shift(self):
        from repro.vision.rcnn import BBoxRegressor
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, (64, 8)).astype(np.float32)
        t = np.tile(np.array([0.2, -0.1, 0.0, 0.0], dtype=np.float32), (64, 1))
        reg = BBoxRegressor(ridge=0.1)
        reg.fit(x, t)
        pred = reg.predict(x[0])
        assert abs(pred[0] - 0.2) < 0.05
        assert abs(pred[1] + 0.1) < 0.05

    def test_apply_clamps_extreme_deltas(self):
        from repro.vision.rcnn import BBoxRegressor
        rect = Rect(100, 100, 20, 20)
        wild = np.array([5.0, -5.0, 3.0, -3.0], dtype=np.float32)
        out = BBoxRegressor.apply(rect, wild)
        assert out.center_distance(rect) < 30
        assert 0.3 * rect.w < out.w < 3 * rect.w
